"""Tests for edge counting, inlining, contraction, and the greedy expander."""

import pytest

from repro.bytecode import assemble
from repro.grammar.cfg import fragment_size
from repro.grammar.initial import initial_grammar
from repro.parsing.forest import terminal_yield, tree_size
from repro.parsing.stackparser import build_forest, parse_blocks
from repro.training.edges import EdgeIndex, count_edges
from repro.training.expander import expand_grammar
from repro.training.inline import contract_occurrence, inline_rule

LOOPY_ASM = """
.global buf data 0
.bss 64
.proc f framesize=8
    ADDRLP 0 0
    LIT1 0
    ASGNU
top:
    ADDRLP 0 0
    INDIRU
    LIT1 16
    LTU
    BrTrue @body
    RETV
body:
    ADDRGP $buf
    ADDRLP 0 0
    INDIRU
    ADDU
    LIT1 7
    ASGNC
    ADDRLP 0 0
    ADDRLP 0 0
    INDIRU
    LIT1 1
    ADDU
    ASGNU
    JUMPV @top
.endproc
"""


def _forest(grammar):
    return build_forest(grammar, [assemble(LOOPY_ASM)])


def test_count_edges_matches_manual():
    g = initial_grammar()
    module = assemble(".proc f\n    LIT1 3\n    ARGU\n    LIT1 3\n"
                      "    ARGU\n    RETV\n.endproc\n")
    forest = build_forest(g, [module])
    counts = count_edges(forest)
    # x -> <v> <x1> with v -> v0 under it happens twice.
    v = g.nonterminal("v")
    x = g.nonterminal("x")
    v0 = g.nonterminal("v0")
    chain_x1 = next(r for r in g.rules_for(x) if r.rhs == (v, g.nonterminal("x1")))
    v_from_v0 = next(r for r in g.rules_for(v) if r.rhs == (v0,))
    assert counts[(chain_x1.id, 0, v_from_v0.id)] == 2


def test_edge_index_matches_recount_initially():
    g = initial_grammar()
    forest = _forest(g)
    index = EdgeIndex(g, forest)
    index.verify_against(forest)


def test_contract_occurrence_updates_index():
    g = initial_grammar()
    forest = _forest(g)
    index = EdgeIndex(g, forest)
    found = index.best(lambda key: True, min_count=2)
    assert found is not None
    (pid, slot, cid), count = found
    new_rule = inline_rule(g, g.rules[pid], slot, g.rules[cid])
    occ = list(index.occurrences((pid, slot, cid)))
    before = forest.size()
    contract_occurrence(occ[0], slot, new_rule.id, index)
    index.verify_against(forest)
    assert forest.size() == before - 1


def test_contraction_preserves_yield():
    g = initial_grammar()
    forest = _forest(g)
    yields_before = [terminal_yield(b, g) for b in forest.blocks]
    expand_grammar(g, forest)
    yields_after = [terminal_yield(b, g) for b in forest.blocks]
    assert yields_before == yields_after


def test_expander_shrinks_forest():
    g = initial_grammar()
    forest = _forest(g)
    report = expand_grammar(g, forest)
    assert report.final_size < report.initial_size
    assert report.final_size == forest.size()
    assert report.rules_added > 0
    assert report.contractions >= report.rules_added  # each inline fires >=2
    g.check()


def test_expander_incremental_counts_stay_exact():
    g = initial_grammar()
    forest = _forest(g)
    expand_grammar(g, forest, verify_every=1)  # asserts internally


def test_expander_history_counts_nonincreasing():
    g = initial_grammar()
    forest = _forest(g)
    report = expand_grammar(g, forest, keep_history=True,
                            remove_subsumed=False)
    counts = [c for c, _ in report.history]
    assert counts == sorted(counts, reverse=True)


def test_expander_respects_rule_cap():
    g = initial_grammar(max_rules_per_nt=12)
    initial_counts = {nt: g.num_rules(nt) for nt in g.nonterminals}
    forest = _forest(g)
    expand_grammar(g, forest)
    for nt in g.nonterminals:
        # Growth stops at the cap; nonterminals that started over the cap
        # (e.g. <v1> with 22 original rules) gain no rules at all.
        assert g.num_rules(nt) <= max(12, initial_counts[nt])
        if initial_counts[nt] >= 12:
            assert g.num_rules(nt) == initial_counts[nt]


def test_expander_min_count():
    g = initial_grammar()
    forest = _forest(g)
    report = expand_grammar(g, forest, min_count=5)
    for count, _ in report.history:
        pass
    # With a high threshold, fewer rules are added than default.
    g2 = initial_grammar()
    forest2 = _forest(g2)
    report2 = expand_grammar(g2, forest2, min_count=2)
    assert report.rules_added <= report2.rules_added


def test_subsumed_rules_removed():
    g = initial_grammar()
    forest = _forest(g)
    report = expand_grammar(g, forest, remove_subsumed=True)
    # Every surviving inlined rule is either used in the final forest or
    # subsumption removal is off; with removal on, unused inlined rules
    # must be gone.
    used = {node.rule_id for node in forest.nodes()}
    for rule in g:
        if rule.origin == "inlined":
            assert rule.id in used
    assert report.rules_removed >= 0


def test_original_rules_survive_training():
    g = initial_grammar()
    n_original = g.total_rules()
    forest = _forest(g)
    expand_grammar(g, forest)
    originals = [r for r in g if r.origin == "original"]
    assert len(originals) == n_original


def test_inlined_rule_fragments_grow():
    g = initial_grammar()
    forest = _forest(g)
    expand_grammar(g, forest)
    for rule in g:
        if rule.origin == "inlined":
            assert fragment_size(rule.fragment) >= 2
            assert rule.arity == len([
                s for i, s in enumerate(rule.rhs) if s < 0
            ])


def test_max_iterations_cap():
    g = initial_grammar()
    forest = _forest(g)
    report = expand_grammar(g, forest, max_iterations=3)
    assert report.iterations <= 3


def test_inline_rule_validates_slot():
    g = initial_grammar()
    start = g.nonterminal("start")
    chain = g.rules_for(start)[1]  # start -> start x
    byte_rule = g.rules_for(g.nonterminal("byte"))[0]
    with pytest.raises(ValueError):
        inline_rule(g, chain, 0, byte_rule)  # slot 0 is <start>, not <byte>


def test_inlining_byte_rules_burns_literals():
    """Inlining a <byte> rule into a parent creates a partially-constrained
    literal (paper Section 5)."""
    g = initial_grammar()
    v0 = g.nonterminal("v0")
    byte = g.nonterminal("byte")
    lit1 = next(r for r in g.rules_for(v0)
                if r.rhs and r.rhs[0] == 6 or True)
    # take ADDRFP <byte> <byte> (first v0 rule) and burn first byte = 0
    addrfp = g.rules_for(v0)[0]
    zero = g.rules_for(byte)[0]
    new = inline_rule(g, addrfp, 0, zero)
    assert new.rhs == (addrfp.rhs[0], 256 + 0, byte)
    assert new.arity == 1
