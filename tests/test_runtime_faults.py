"""Fault-injection tests: the machine fails loudly and precisely."""

import pytest

from repro.bytecode import assemble
from repro.interp.interp1 import Interpreter1
from repro.interp.memory import Memory, MemoryError_
from repro.interp.runtime import INTRINSIC_BASE, Machine, TRAMPOLINE_BASE
from repro.interp.state import Trap


def machine_for(text, **kwargs):
    module = assemble(text)
    return Machine(module, Interpreter1(module), **kwargs)


def test_call_stack_overflow():
    m = machine_for("""
.entry main
.proc main framesize=16 trampoline
    LocalCALLV %main
    RETV
.endproc
""")
    with pytest.raises(Trap, match="call stack overflow"):
        m.run()


def test_out_of_heap():
    m = machine_for("""
.entry main
.global malloc lib
.proc main framesize=0 trampoline
top:
    LIT4 0 0 16 0
    ARGU
    ADDRGP $malloc
    CALLU
    POPU
    JUMPV @top
.endproc
""", heap_size=1 << 16)
    with pytest.raises(Trap, match="out of heap"):
        m.run()


def test_unresolved_library_symbol():
    module = assemble("""
.entry main
.global no_such_fn lib
.proc main framesize=0 trampoline
    RETV
.endproc
""")
    with pytest.raises(Trap, match="unresolved library symbol"):
        Machine(module, Interpreter1(module))


def test_call_to_data_address():
    m = machine_for("""
.entry main
.global blob data 0
.bss 16
.proc main framesize=0 trampoline
    ADDRGP $blob
    CALLV
    RETV
.endproc
""")
    with pytest.raises(Trap, match="non-function"):
        m.run()


def test_wild_load_faults():
    m = machine_for("""
.entry main
.proc main framesize=0 trampoline
    LIT4 255 255 255 127
    INDIRU
    RETU
.endproc
""")
    with pytest.raises(MemoryError_, match="out of range"):
        m.run()


def test_null_write_faults():
    # Address 0 is below DATA_BASE... the guard page is unmapped only in
    # the sense that nothing lives there; stores to [0,64) are in-bounds
    # bytes.  The real guarantee is negative/oob faults:
    m = machine_for("""
.entry main
.proc main framesize=0 trampoline
    LIT1 0
    LIT1 1
    ASGNU
    RETV
.endproc
""")
    # writing at address 0 succeeds (flat memory) -- the documented model
    assert m.run() == 0


def test_memory_bounds_checks():
    mem = Memory(64)
    with pytest.raises(MemoryError_):
        mem.load_u32(62)
    with pytest.raises(MemoryError_):
        mem.store_f64(60, 1.0)
    with pytest.raises(MemoryError_):
        mem.read_bytes(0, 65)
    with pytest.raises(MemoryError_, match="unterminated"):
        mem.read_cstring(0) if mem.write_bytes(0, b"\x01" * 64) or True \
            else None


def test_branch_label_out_of_range():
    from repro.bytecode.module import Module, Procedure
    from repro.bytecode.opcodes import opcode
    code = bytes([opcode("JUMPV"), 7, 0])
    module = Module(
        procedures=[Procedure("f", code, [0], 0, True)], entry=0
    )
    m = Machine(module, Interpreter1(module))
    with pytest.raises(Trap, match="label 7 out of range"):
        m.run()


def test_trampoline_addresses_are_stable():
    module = assemble("""
.entry main
.global f proc 1
.proc main framesize=0 trampoline
    RETV
.endproc
.proc f framesize=0 trampoline
    RETV
.endproc
""")
    m = Machine(module, Interpreter1(module))
    assert m.global_address(0) == TRAMPOLINE_BASE + 1


def test_intrinsic_addresses_distinct_from_trampolines():
    assert INTRINSIC_BASE > TRAMPOLINE_BASE
    module = assemble("""
.entry main
.global putchar lib
.global exit lib
.proc main framesize=0 trampoline
    RETV
.endproc
""")
    m = Machine(module, Interpreter1(module))
    a, b = m.global_address(0), m.global_address(1)
    assert a != b
    assert a >= INTRINSIC_BASE and b >= INTRINSIC_BASE
