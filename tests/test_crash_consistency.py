"""Crash consistency and self-healing for the grammar registry.

The central invariant: a crash at *any* point inside a registry write
leaves the store in the old state or the new state — never a torn,
half-visible one — and a subsequent ``startup_scan`` (= the service's
boot pass, = ``repro registry verify --repair`` + ``gc``) returns the
store to a clean bill of health without losing any intact grammar.

Faults are injected with ``repro.faults``: the atomic-write primitive
exposes a site at every distinct failure window (payload corruption,
torn temp file, crash before the rename, crash after the rename), and
each test kills the write at one of them.
"""

import pytest

import repro
from repro import faults
from repro.faults import InjectedFault
from repro.cli import main
from repro.minic import compile_source
from repro.registry import GrammarRegistry, RegistryError
from repro.storage import save_grammar

SOURCE = """
int main(void) {
    int i, s;
    s = 0;
    for (i = 0; i < 9; i++) s += i;
    putint(s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def grammar_data():
    grammar, _ = repro.train_grammar([compile_source(SOURCE)])
    return save_grammar(grammar)


@pytest.fixture(autouse=True)
def _no_leaked_plane():
    yield
    assert faults.ACTIVE is None, "a test leaked an active fault plane"
    faults.deactivate()


def _healthy(root, grammar_data, digest=None):
    """Assert the registry at ``root`` heals to a clean state and any
    surviving copy of the grammar is byte-intact."""
    registry = GrammarRegistry(root)  # fresh open: no warm cache
    report = registry.startup_scan()
    assert registry.verify()["clean"], report
    if digest is not None and digest in registry:
        assert registry.get_bytes(digest) == grammar_data
    return registry


# -- the tentpole invariant: old state or new state at every kill point ------

# put_bytes performs three atomic writes when tagging: provenance
# metadata, then the object, then the tag file.  Kill each one, at each
# of its crash windows.
KILL_SITES = ["registry.atomic.torn", "registry.atomic.pre_rename",
              "registry.atomic.post_rename"]


@pytest.mark.parametrize("write_index", [1, 2, 3])
@pytest.mark.parametrize("site", KILL_SITES)
def test_killed_put_leaves_old_or_new_state(tmp_path, grammar_data,
                                            site, write_index):
    registry = GrammarRegistry(tmp_path)
    plan = {"seed": 0, "sites": {site: {"at": [write_index]}}}
    with faults.injected(plan) as plane:
        try:
            registry.put_bytes(grammar_data, tags=["prod"])
            # post_rename on the last write completes the put before the
            # simulated crash; every other case must have raised.
            assert (site, write_index) == \
                ("registry.atomic.post_rename", 3)
        except InjectedFault:
            pass
        assert plane.fired(site) == 1

    healed = _healthy(tmp_path, grammar_data)
    # Whatever survived must be all-or-nothing: a listed grammar has
    # intact bytes and valid metadata; a surviving tag resolves.
    for record in healed.list():
        assert healed.get_bytes(record["hash"]) == grammar_data
        assert record["rules"] > 0
    for tag, digest in healed.tags().items():
        assert healed.get_bytes(healed.resolve(tag)) == grammar_data


def test_killed_retag_preserves_old_tag(tmp_path, grammar_data):
    """An interrupted tag *update* must leave the tag pointing at the
    old target (rename is the commit point)."""
    registry = GrammarRegistry(tmp_path)
    digest = registry.put_bytes(grammar_data, tags=["prod"])
    other = registry.put_bytes(
        grammar_data + b"",  # same bytes: same digest; use meta variant
        tags=[])
    assert other == digest  # content-addressed: same grammar, same name
    with faults.injected(
            {"seed": 0, "sites": {"registry.atomic.torn": {"at": 1}}}):
        with pytest.raises(InjectedFault):
            registry.tag(digest, "prod")
    assert GrammarRegistry(tmp_path).tags()["prod"] == digest
    _healthy(tmp_path, grammar_data, digest)


def test_corrupted_payload_is_caught_and_quarantined(tmp_path,
                                                     grammar_data):
    """A bit flipped between hashing and writing (the classic silent-
    corruption window) must never be served: the read-side re-hash
    catches it and quarantines the object."""
    registry = GrammarRegistry(tmp_path)
    # write 2 is the object itself (write 1 is the metadata)
    with faults.injected(
            {"seed": 5,
             "sites": {"registry.atomic.corrupt": {"at": [2]}}}):
        digest = registry.put_bytes(grammar_data)
    fresh = GrammarRegistry(tmp_path)
    with pytest.raises(RegistryError, match="integrity check"):
        fresh.get_bytes(digest)
    qdir = fresh.quarantine_dir
    assert (qdir / f"{digest}.rgr").exists()
    assert "mismatch" in (qdir / f"{digest}.reason").read_text()
    # quarantine is terminal: the store itself is clean again
    assert fresh.verify()["clean"]


def test_torn_write_leaves_reapable_temp_file(tmp_path, grammar_data):
    registry = GrammarRegistry(tmp_path)
    with faults.injected(
            {"seed": 0, "sites": {"registry.atomic.torn": {"at": 1}}}):
        with pytest.raises(InjectedFault):
            registry.put_bytes(grammar_data)
    report = registry.verify()
    assert report["tmp_files"] and not report["clean"]
    assert registry.gc()["tmp_files"] == len(report["tmp_files"])
    assert registry.verify()["clean"]


def test_orphan_meta_from_pre_rename_crash_is_reaped(tmp_path,
                                                     grammar_data):
    """put writes metadata before the object, so a crash between the two
    leaves an invisible orphan record — gc's job, never a visible
    half-grammar."""
    registry = GrammarRegistry(tmp_path)
    with faults.injected(
            {"seed": 0,
             "sites": {"registry.atomic.post_rename": {"at": [1]}}}):
        with pytest.raises(InjectedFault):
            registry.put_bytes(grammar_data)
    assert len(registry) == 0  # nothing half-visible
    assert registry.verify()["orphan_meta"]
    registry.gc()
    assert registry.verify()["clean"]


# -- verifying reads ---------------------------------------------------------

def test_missing_object_read_is_structured(tmp_path, grammar_data):
    registry = GrammarRegistry(tmp_path)
    digest = registry.put_bytes(grammar_data)
    with faults.injected(
            {"seed": 0,
             "sites": {"registry.read.missing": {"at": [1]}}}):
        with pytest.raises(RegistryError, match="missing from object"):
            GrammarRegistry(tmp_path).get_bytes(digest)


def test_bit_rot_on_read_quarantines(tmp_path, grammar_data):
    registry = GrammarRegistry(tmp_path)
    digest = registry.put_bytes(grammar_data)
    with faults.injected(
            {"seed": 9,
             "sites": {"registry.read.corrupt": {"at": [1]}}}):
        with pytest.raises(RegistryError, match="quarantined"):
            GrammarRegistry(tmp_path).get_bytes(digest)
    assert (GrammarRegistry(tmp_path).quarantine_dir
            / f"{digest}.rgr").exists()


# -- dangling tags (satellite: structured error, CLI exit 2) -----------------

def _make_dangling(tmp_path, grammar_data):
    registry = GrammarRegistry(tmp_path)
    digest = registry.put_bytes(grammar_data, tags=["prod"])
    (registry.root / "objects" / f"{digest}.rgr").unlink()
    (registry.root / "meta" / f"{digest}.json").unlink()
    return registry, digest


def test_dangling_tag_raises_structured_error(tmp_path, grammar_data):
    registry, digest = _make_dangling(tmp_path, grammar_data)
    with pytest.raises(RegistryError, match="dangling tag") as exc:
        registry.resolve("prod")
    assert digest[:12] in str(exc.value)
    assert "registry verify" in str(exc.value)


def test_dangling_tag_cli_is_one_line_exit_2(tmp_path, grammar_data,
                                             capsys):
    _make_dangling(tmp_path, grammar_data)
    code = main(["registry", "-d", str(tmp_path), "show", "prod"])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.count("\n") == 1
    assert "dangling tag" in captured.err
    assert "Traceback" not in captured.err


def test_verify_reports_and_repairs_dangling_tag(tmp_path, grammar_data):
    registry, digest = _make_dangling(tmp_path, grammar_data)
    report = registry.verify()
    assert report["dangling_tags"] == [{"tag": "prod", "target": digest}]
    registry.verify(repair=True)
    assert registry.verify()["clean"]
    assert "prod" not in registry.tags()


# -- the CLI surface ---------------------------------------------------------

def test_cli_verify_exit_codes(tmp_path, grammar_data, capsys):
    registry = GrammarRegistry(tmp_path)
    digest = registry.put_bytes(grammar_data, tags=["prod"])
    assert main(["registry", "-d", str(tmp_path), "verify"]) == 0

    # flip one stored byte: verify must fail, --repair must heal
    obj = registry.root / "objects" / f"{digest}.rgr"
    raw = bytearray(obj.read_bytes())
    raw[len(raw) // 2] ^= 0x40
    obj.write_bytes(bytes(raw))

    assert main(["registry", "-d", str(tmp_path), "verify"]) == 1
    out = capsys.readouterr().out
    assert "content hash mismatch" in out

    assert main(["registry", "-d", str(tmp_path), "verify",
                 "--repair"]) == 0
    capsys.readouterr()
    assert main(["registry", "-d", str(tmp_path), "gc"]) == 0
    assert main(["registry", "-d", str(tmp_path), "verify"]) == 0
    assert GrammarRegistry(tmp_path).verify()["clean"]


def test_startup_scan_full_heal(tmp_path, grammar_data):
    """One pass over a store with every kind of damage at once."""
    registry = GrammarRegistry(tmp_path)
    digest = registry.put_bytes(grammar_data, tags=["good"])

    # damage: dangling tag, orphan meta, temp debris, corrupt object
    (registry.root / "tags" / "gone").write_text("f" * 64 + "\n")
    (registry.root / "meta" / ("e" * 64 + ".json")).write_text("{}")
    (registry.root / "objects" / "x.rgr.tmp.123").write_bytes(b"junk")
    bad = b"RGR1" + b"\x00" * 32
    bad_digest = __import__("hashlib").sha256(bad).hexdigest()
    (registry.root / "objects" / f"{bad_digest}.rgr").write_bytes(bad)

    report = GrammarRegistry(tmp_path).startup_scan()
    assert report["quarantined"] == [bad_digest]
    assert report["gc"]["dangling_tags"] == 0  # verify already took it
    healed = GrammarRegistry(tmp_path)
    assert healed.verify()["clean"]
    assert healed.get_bytes("good") == grammar_data
    assert healed.tags() == {"good": digest}
