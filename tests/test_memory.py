"""Trap-path and edge-case coverage for :mod:`repro.interp.memory`.

The word-sized accessors inline their bounds checks for speed (the
``_check`` call only happens on the failing path), so every accessor's
trap behaviour needs explicit exercise: negative addresses, reads and
writes straddling the end of memory, and the exact boundary addresses
that must still succeed.
"""

import math

import pytest

from repro.interp.memory import (
    MASK32,
    Memory,
    MemoryError_,
    f32,
    to_signed,
    to_unsigned,
)

SIZE = 64


@pytest.fixture
def mem():
    return Memory(SIZE)


# -- integer accessors: trap on both sides, succeed at the boundary ---------

INT_ACCESSORS = [
    ("load_u8", 1), ("load_u16", 2), ("load_u32", 4),
    ("store_u8", 1), ("store_u16", 2), ("store_u32", 4),
]
FLOAT_ACCESSORS = [
    ("load_f32", 4), ("load_f64", 8),
    ("store_f32", 4), ("store_f64", 8),
]


def _call(mem, name, addr):
    fn = getattr(mem, name)
    if name.startswith("store"):
        return fn(addr, 0.0 if name.endswith(("f32", "f64")) else 0)
    return fn(addr)


@pytest.mark.parametrize("name,width", INT_ACCESSORS + FLOAT_ACCESSORS)
def test_negative_address_traps(mem, name, width):
    with pytest.raises(MemoryError_, match="out of range"):
        _call(mem, name, -1)


@pytest.mark.parametrize("name,width", INT_ACCESSORS + FLOAT_ACCESSORS)
def test_access_past_end_traps(mem, name, width):
    with pytest.raises(MemoryError_, match="out of range"):
        _call(mem, name, SIZE - width + 1)


@pytest.mark.parametrize("name,width", INT_ACCESSORS + FLOAT_ACCESSORS)
def test_access_at_boundary_succeeds(mem, name, width):
    _call(mem, name, SIZE - width)  # last valid address: must not raise


@pytest.mark.parametrize("name,width", INT_ACCESSORS)
def test_far_out_of_range_message_names_the_access(mem, name, width):
    with pytest.raises(MemoryError_) as err:
        _call(mem, name, 0x1000)
    assert f"{width} bytes" in str(err.value)
    assert "0x1000" in str(err.value)


def test_straddling_access_traps(mem):
    # addr itself is in range but the tail byte is not.
    with pytest.raises(MemoryError_):
        mem.load_u32(SIZE - 2)
    with pytest.raises(MemoryError_):
        mem.store_u16(SIZE - 1, 7)


# -- round-trips and masking ------------------------------------------------

def test_u8_u16_u32_roundtrip_little_endian(mem):
    mem.store_u32(0, 0x11223344)
    assert mem.load_u8(0) == 0x44
    assert mem.load_u16(0) == 0x3344
    assert mem.load_u16(2) == 0x1122
    assert mem.load_u32(0) == 0x11223344


def test_stores_mask_to_width(mem):
    mem.store_u8(0, 0x1FF)
    assert mem.load_u8(0) == 0xFF
    mem.store_u16(0, 0x12345)
    assert mem.load_u16(0) == 0x2345
    mem.store_u32(0, (1 << 40) | 5)
    assert mem.load_u32(0) == 5


def test_float_roundtrip(mem):
    mem.store_f64(8, 2.5)
    assert mem.load_f64(8) == 2.5
    mem.store_f32(0, 1.1)
    assert mem.load_f32(0) == f32(1.1)


# -- raw bytes / strings ----------------------------------------------------

def test_write_read_bytes(mem):
    mem.write_bytes(3, b"hello")
    assert mem.read_bytes(3, 5) == b"hello"


def test_write_bytes_past_end_traps(mem):
    with pytest.raises(MemoryError_, match="out of range"):
        mem.write_bytes(SIZE - 2, b"abc")


def test_read_bytes_negative_traps(mem):
    with pytest.raises(MemoryError_, match="out of range"):
        mem.read_bytes(-4, 4)


def test_read_cstring(mem):
    mem.write_bytes(5, b"abc\0def")
    assert mem.read_cstring(5) == b"abc"
    assert mem.read_cstring(8) == b""


def test_read_cstring_unterminated_traps(mem):
    mem.write_bytes(0, bytes([1]) * SIZE)  # no NUL anywhere
    with pytest.raises(MemoryError_, match="unterminated string"):
        mem.read_cstring(10)


# -- pattern helpers --------------------------------------------------------

def test_to_signed_edges():
    assert to_signed(0) == 0
    assert to_signed(0x7FFFFFFF) == 0x7FFFFFFF
    assert to_signed(0x80000000) == -0x80000000
    assert to_signed(MASK32) == -1
    # Reinterprets only the low 32 bits.
    assert to_signed(0x1_00000001) == 1


def test_to_unsigned_edges():
    assert to_unsigned(-1) == MASK32
    assert to_unsigned(-0x80000000) == 0x80000000
    assert to_unsigned(1 << 32) == 0
    assert to_signed(to_unsigned(-12345)) == -12345


def test_f32_rounds_through_single_precision():
    assert f32(0.1) != 0.1  # 0.1 is not representable in binary32
    assert f32(1.5) == 1.5
    assert f32(float("inf")) == float("inf")
    assert math.isnan(f32(float("nan")))
