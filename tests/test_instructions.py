"""Unit tests for instruction encode/decode."""

import pytest

from repro.bytecode.instructions import (
    Instruction,
    code_points,
    decode,
    encode,
    instr,
    iter_decode,
)
from repro.bytecode.opcodes import OP_BY_NAME


def test_roundtrip_simple():
    seq = [
        instr("ADDRFP", 0, 0),
        instr("INDIRU"),
        instr("LIT1", 0),
        instr("NEU"),
        instr("BrTrue", 0, 0),
        instr("RETV"),
    ]
    code = encode(seq)
    assert decode(code) == seq


def test_encoded_size_matches_instruction_sizes():
    seq = [instr("LIT4", 1, 2, 3, 4), instr("ARGU"), instr("RETV")]
    code = encode(seq)
    assert len(code) == sum(i.size for i in seq) == 5 + 1 + 1


def test_literal_is_little_endian():
    assert instr("ADDRFP", 0x34, 0x12).literal() == 0x1234
    assert instr("LIT4", 1, 0, 0, 0).literal() == 1
    assert instr("LIT4", 0, 0, 0, 0x80).literal() == 0x80000000


def test_wrong_operand_count_rejected():
    with pytest.raises(ValueError):
        Instruction(OP_BY_NAME["LIT2"], (1,))
    with pytest.raises(ValueError):
        Instruction(OP_BY_NAME["ADDU"], (1,))


def test_operand_byte_range_checked():
    with pytest.raises(ValueError):
        instr("LIT1", 256)
    with pytest.raises(ValueError):
        instr("LIT1", -1)


def test_decode_rejects_unknown_opcode():
    with pytest.raises(ValueError, match="unknown opcode"):
        decode(bytes([250]))


def test_decode_rejects_truncated_literal():
    code = bytes([OP_BY_NAME["LIT4"].code, 1, 2])
    with pytest.raises(ValueError, match="truncated"):
        decode(code)


def test_iter_decode_offsets():
    seq = [instr("LIT2", 5, 0), instr("ARGU"), instr("RETV")]
    offsets = [off for off, _ in iter_decode(encode(seq))]
    assert offsets == [0, 3, 4]


def test_code_points():
    seq = [instr("ADDRLP", 0, 0), instr("INDIRU"), instr("POPU")]
    assert code_points(encode(seq)) == [0, 3, 4]
