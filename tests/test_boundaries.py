"""Boundary tests: the 256-rules-per-nonterminal cap and edge tie-breaking.

The one-byte codeword design hinges on two boundaries: no nonterminal may
ever exceed 256 rules (a rule index must fit in a byte), and when two edges
are equally frequent the expander must pick a *deterministic* winner — the
lexicographically smallest ``(parent_rule_id, slot, child_rule_id)`` key —
identically across runs, across index implementations, and across parser
worker counts.
"""

import pytest

from repro.corpus.synth import generate_program
from repro.grammar.initial import initial_grammar
from repro.minic import compile_source
from repro.parsing.derivation import derivation_of_tree, encode_tree
from repro.parsing.forest import Forest, Node
from repro.parsing.stackparser import build_forest
from repro.pipeline import train_grammar
from repro.training import resolve_strategy
from repro.training.edges import EdgeIndex, NaiveEdgeIndex
from repro.training.expander import expand_grammar


def _module(size=8, seed=3):
    return compile_source(generate_program(size, seed=seed))


# -- 256-rule cap -------------------------------------------------------------

def test_byte_nonterminal_sits_exactly_at_the_cap():
    """<byte> has exactly 256 original rules — the cap boundary itself —
    and every index still fits the one-byte codeword."""
    g = initial_grammar()
    byte = g.nonterminal("byte")
    assert g.num_rules(byte) == 256
    assert not g.can_grow(byte)
    assert {g.rule_index(rid) for rid in g.by_lhs[byte]} == set(range(256))


def test_full_nonterminal_rejects_inlined_rules():
    g = initial_grammar()
    byte = g.nonterminal("byte")
    some_rule = g.rules_for(byte)[0]
    with pytest.raises(ValueError):
        g.add_rule(byte, some_rule.rhs, origin="inlined",
                   fragment=some_rule.fragment)


def test_cap_is_reached_but_never_exceeded():
    g = initial_grammar(max_rules_per_nt=16)
    initial_counts = {nt: g.num_rules(nt) for nt in g.nonterminals}
    forest = build_forest(g, [_module(size=10, seed=7)])
    expand_grammar(g, forest)
    for nt in g.nonterminals:
        n = g.num_rules(nt)
        assert n <= max(16, initial_counts[nt])
    # Training on a real corpus actually hits the boundary somewhere —
    # otherwise this test exercises nothing.
    assert any(
        g.num_rules(nt) == 16 and initial_counts[nt] < 16
        for nt in g.nonterminals
    )


def test_trained_rule_indexes_fit_one_byte():
    g, _ = train_grammar([_module()])
    for rule in g:
        assert g.rule_index(rule.id) <= 255
    # ... so every derivation byte-encodes without error.
    forest = build_forest(g, [_module()])
    for tree in forest:
        data = encode_tree(g, tree)
        assert len(data) == len(derivation_of_tree(tree))


def test_capacity_regained_after_subsumption_is_reusable():
    """A nonterminal at its cap that loses a subsumed rule can grow again
    (the repush_lhs path), and the naive oracle agrees on the result."""
    sigs = []
    for mode in ("incremental", "naive"):
        g = initial_grammar(max_rules_per_nt=12)
        forest = build_forest(g, [_module(size=10, seed=7)])
        report = expand_grammar(g, forest, index_mode=mode)
        sigs.append(([(r.lhs, r.rhs, r.origin) for r in g],
                     report.iterations, report.rules_removed))
    assert sigs[0] == sigs[1]
    assert sigs[0][2] > 0  # subsumption removal actually fired


# -- tie-breaking -------------------------------------------------------------

def _tied_forest():
    """Two distinct edges, each occurring exactly twice: a frequency tie."""
    forest = Forest()
    for _ in range(2):
        forest.add(Node(9, [Node(3)]))   # edge (9, 0, 3)
    for _ in range(2):
        forest.add(Node(4, [Node(7)]))   # edge (4, 0, 7)
    return forest


def test_tie_breaks_to_smallest_key_incremental_and_naive():
    g = initial_grammar()
    forest = _tied_forest()
    inc = EdgeIndex(g, forest)
    naive = NaiveEdgeIndex(g, forest)
    expected = ((4, 0, 7), 2)  # (4,0,7) < (9,0,3) lexicographically
    assert inc.best(lambda key: True) == expected
    assert naive.best(lambda key: True) == expected


def test_tie_break_independent_of_insertion_order():
    g = initial_grammar()
    forest = Forest()
    for _ in range(2):
        forest.add(Node(4, [Node(7)]))
    for _ in range(2):
        forest.add(Node(9, [Node(3)]))
    assert EdgeIndex(g, forest).best(lambda key: True) == ((4, 0, 7), 2)


def test_slot_and_child_participate_in_the_tie_break():
    g = initial_grammar()
    forest = Forest()
    # Same parent rule, ties broken by slot then child id.
    for _ in range(2):
        forest.add(Node(5, [Node(8), Node(2)]))  # edges (5,0,8) and (5,1,2)
    best = EdgeIndex(g, forest).best(lambda key: True)
    assert best == ((5, 0, 8), 2)  # slot 0 beats slot 1 regardless of child


def test_training_deterministic_across_runs():
    runs = []
    for _ in range(2):
        g, report = train_grammar([_module()], max_iterations=40)
        runs.append(([(r.lhs, r.rhs, r.origin) for r in g],
                     report.contractions))
    assert runs[0] == runs[1]


@pytest.mark.parametrize("workers", [2, 3, 4])
def test_training_deterministic_across_worker_counts(workers):
    corpus = [_module(size=6, seed=13), _module(size=4, seed=17)]
    g_serial, r_serial = train_grammar(corpus)
    g_par, r_par = train_grammar(corpus, parser_workers=workers)
    assert [(r.lhs, r.rhs, r.origin) for r in g_serial] == \
           [(r.lhs, r.rhs, r.origin) for r in g_par]
    assert (r_serial.iterations, r_serial.final_size) == \
           (r_par.iterations, r_par.final_size)


# -- seeding strategies at the boundaries (ISSUE 10) --------------------------

@pytest.mark.parametrize("strategy", ["repair", "hybrid"])
@pytest.mark.parametrize("cap", [12, 16])
def test_seeding_never_exceeds_the_cap(strategy, cap):
    """MR-RePair seeding plus greedy refinement must respect the same
    per-nonterminal budget as the pure greedy loop."""
    g = initial_grammar(max_rules_per_nt=cap)
    initial_counts = {nt: g.num_rules(nt) for nt in g.nonterminals}
    forest = build_forest(g, [_module(size=10, seed=7)])
    resolve_strategy(strategy).train(g, forest)
    g.check()
    for nt in g.nonterminals:
        assert g.num_rules(nt) <= max(cap, initial_counts[nt]), \
            f"{strategy}: cap {cap} exceeded for nt {nt}"
    for rule in g:
        assert g.rule_index(rule.id) < max(256, cap)


def test_seed_budget_frac_bounds_seeded_rules_per_nt():
    """budget_frac reserves headroom: a seed-only run may claim at most
    floor(frac * remaining-capacity) new rules per nonterminal."""
    frac, cap = 0.5, 16
    g = initial_grammar(max_rules_per_nt=cap)
    initial_counts = {nt: g.num_rules(nt) for nt in g.nonterminals}
    forest = build_forest(g, [_module(size=10, seed=7)])
    resolve_strategy("repair", budget_frac=frac).train(g, forest)
    for nt in g.nonterminals:
        grown = g.num_rules(nt) - initial_counts[nt]
        budget = int(max(0, cap - initial_counts[nt]) * frac)
        assert grown <= budget, \
            f"nt {nt}: seeded {grown} rules over budget {budget}"


@pytest.mark.parametrize("strategy", ["repair", "hybrid"])
def test_seeding_deterministic_across_runs(strategy):
    runs = []
    for _ in range(2):
        g, report = train_grammar([_module()], strategy=strategy)
        runs.append(([(r.lhs, r.rhs, r.origin, r.fragment) for r in g],
                     report.seed_rules, report.contractions))
    assert runs[0] == runs[1]


@pytest.mark.parametrize("strategy", ["repair", "hybrid"])
@pytest.mark.parametrize("workers", [2, 3, 4])
def test_seeding_deterministic_across_worker_counts(strategy, workers):
    """Shape-key ids are assigned in forest preorder, which the parallel
    parser reproduces exactly — so seeding (and everything downstream)
    is invariant under parser_workers."""
    corpus = [_module(size=6, seed=13), _module(size=4, seed=17)]
    g_serial, r_serial = train_grammar(corpus, strategy=strategy)
    g_par, r_par = train_grammar(corpus, strategy=strategy,
                                 parser_workers=workers)
    assert [(r.lhs, r.rhs, r.origin, r.fragment) for r in g_serial] == \
           [(r.lhs, r.rhs, r.origin, r.fragment) for r in g_par]
    assert (r_serial.seed_rules, r_serial.seed_rounds,
            r_serial.contractions, r_serial.final_size) == \
           (r_par.seed_rules, r_par.seed_rounds,
            r_par.contractions, r_par.final_size)


def test_parallel_forest_merges_in_corpus_order():
    g = initial_grammar()
    corpus = [_module(size=5, seed=19), _module(size=3, seed=23)]
    serial = build_forest(g, corpus)
    parallel = build_forest(g, corpus, workers=3)
    assert len(serial) == len(parallel)
    assert [derivation_of_tree(t) for t in serial] == \
           [derivation_of_tree(t) for t in parallel]
