"""Edge-case round-trips for the RCX1 compressed-module container.

The service hands arbitrary client artifacts to ``load_compressed``, so
the degenerate shapes — empty code vectors, zero-label tables, modules
that carry data/bss but no trampolines, no entry point — must survive
save/load byte-exactly rather than only the happy compiler output.
"""

import pytest

import repro
from repro.bytecode.module import GlobalEntry
from repro.compress.container import CompressedModule, CompressedProcedure
from repro.grammar.initial import initial_grammar
from repro.minic import compile_source
from repro.storage import load_compressed, save_compressed


def _roundtrip(cmod: CompressedModule) -> CompressedModule:
    data = save_compressed(cmod)
    back = load_compressed(data)
    # the container must also re-serialize identically (content-addressed
    # storage and the service's byte-identity guarantee depend on it)
    assert save_compressed(back) == data
    return back


def _assert_same_shape(a: CompressedModule, b: CompressedModule) -> None:
    assert [(p.name, p.code, tuple(p.labels), p.framesize, p.argsize,
             p.needs_trampoline, tuple(p.block_starts))
            for p in a.procedures] == \
           [(p.name, p.code, tuple(p.labels), p.framesize, p.argsize,
             p.needs_trampoline, tuple(p.block_starts))
            for p in b.procedures]
    assert [(g.kind, g.name, g.value) for g in a.globals] == \
           [(g.kind, g.name, g.value) for g in b.globals]
    assert a.data == b.data
    assert a.bss_size == b.bss_size
    assert a.entry == b.entry


def test_empty_code_vector_roundtrip():
    cmod = CompressedModule(
        grammar=initial_grammar(),
        procedures=[CompressedProcedure(
            name="empty", code=b"", labels=[], framesize=0,
            needs_trampoline=False, argsize=0, block_starts=[])],
        entry=None,
    )
    back = _roundtrip(cmod)
    _assert_same_shape(cmod, back)
    assert back.procedures[0].code == b""
    assert back.code_bytes == 0


def test_zero_label_tables_with_blocks():
    cmod = CompressedModule(
        grammar=initial_grammar(),
        procedures=[
            CompressedProcedure(
                name="a", code=b"\x01\x02\x03", labels=[],
                framesize=8, needs_trampoline=False, argsize=4,
                block_starts=[0, 2]),
            CompressedProcedure(
                name="b", code=b"", labels=[], framesize=0,
                needs_trampoline=False, argsize=0, block_starts=[]),
        ],
        entry=0,
    )
    back = _roundtrip(cmod)
    _assert_same_shape(cmod, back)
    assert back.label_table_bytes == 0
    assert back.procedures[0].block_starts == [0, 2]


def test_data_bss_no_trampolines():
    cmod = CompressedModule(
        grammar=initial_grammar(),
        procedures=[CompressedProcedure(
            name="main", code=b"\x05", labels=[], framesize=16,
            needs_trampoline=False, argsize=0, block_starts=[0])],
        globals=[GlobalEntry("data", "table", 0),
                 GlobalEntry("data", "heap", 64)],
        data=bytes(range(64)),
        bss_size=4096,
        entry=0,
    )
    back = _roundtrip(cmod)
    _assert_same_shape(cmod, back)
    assert back.trampoline_bytes == 0
    assert back.size_breakdown()["data"] == 64
    assert back.size_breakdown()["bss"] == 4096


def test_compiled_globals_module_roundtrip_and_runs():
    """A real compiled module with data and bss, through the whole
    train/compress/save/load/run path."""
    src = """
    int table[8];
    int main(void) {
        int i, s;
        for (i = 0; i < 8; i++) table[i] = i * i;
        s = 0;
        for (i = 0; i < 8; i++) s += table[i];
        putint(s);
        return 0;
    }
    """
    module = compile_source(src)
    assert module.bss_size > 0 or len(module.data) > 0
    grammar, _ = repro.train_grammar([module])
    cmod = repro.compress_module(grammar, module)
    back = _roundtrip(cmod)
    _assert_same_shape(cmod, back)
    assert repro.run_compressed(back) == repro.run(module)


def test_corrupt_compressed_rejected():
    cmod = CompressedModule(
        grammar=initial_grammar(),
        procedures=[CompressedProcedure(
            name="p", code=b"\x01\x02", labels=[], framesize=0,
            needs_trampoline=False, argsize=0, block_starts=[0])],
        entry=None,
    )
    data = bytearray(save_compressed(cmod))
    # flip a body byte the structural parse accepts (a block-start offset,
    # just before the trailer): only the CRC-32 can catch it
    data[-5] ^= 0xFF
    from repro.storage import StorageError
    with pytest.raises(StorageError, match="CRC-32"):
        load_compressed(bytes(data))
