"""Tests for the execution profiler."""

import pytest

from repro import compress_module, run, run_compressed, train_grammar
from repro.bytecode.opcodes import opcode
from repro.interp.profile import profile_run
from repro.minic import compile_source

SOURCE = """
int main(void) {
    int i, s;
    s = 0;
    for (i = 0; i < 20; i++) s += i * i;
    putint(s);
    return s & 127;
}
"""


@pytest.fixture(scope="module")
def programs():
    module = compile_source(SOURCE)
    grammar, _ = train_grammar([module])
    cmod = compress_module(grammar, module)
    return module, cmod, grammar


def test_profile_matches_plain_run(programs):
    module, cmod, _ = programs
    code, out, prof = profile_run(module)
    assert (code, out) == run(module)
    code2, out2, prof2 = profile_run(cmod)
    assert (code2, out2) == run_compressed(cmod)
    assert (code, out) == (code2, out2)


def test_operator_counts_identical_across_interpreters(programs):
    module, cmod, _ = programs
    _, _, p1 = profile_run(module)
    _, _, p2 = profile_run(cmod)
    assert p1.operators == p2.operators
    assert p1.total_operators == p2.total_operators


def test_operator_counts_plausible(programs):
    module, _, _ = programs
    _, _, prof = profile_run(module)
    # The loop multiplies 20 times and compares 21 times.
    assert prof.operators[opcode("MULI")] == 20
    assert prof.operators[opcode("LTI")] == 21
    assert prof.branches_taken >= 20
    assert prof.returns >= 1
    names = dict(prof.top_operators(50))
    assert "ASGNU" in names


def test_rule_dispatches_only_for_interp2(programs):
    module, cmod, _ = programs
    _, _, p1 = profile_run(module)
    _, _, p2 = profile_run(cmod)
    assert not p1.rules
    assert p2.rules
    assert p2.blocks_entered > 0
    # Every dispatched (nt, codeword) must exist in the grammar.
    grammar = cmod.grammar
    for (nt, codeword), _n in p2.rules.items():
        assert codeword < grammar.num_rules(nt)


def test_dynamic_vs_static_usage_relation(programs):
    """Hot loop rules are fetched more often at run time than their
    single static occurrence — the static/dynamic distinction the paper's
    design glosses over."""
    module, cmod, _ = programs
    _, _, prof = profile_run(cmod)
    hottest = prof.top_rules(1)[0][1]
    assert hottest > 10  # the loop body re-walks its rules per iteration
