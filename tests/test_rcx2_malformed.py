"""Malformed RCX2 containers must fail with structured errors.

The RCX2 loader feeds attacker-controllable bytes through three layers:
the container reader (lengths, magic, version), the embedded RuleModel
parser, and the range decoder driving the derivation walk.  Every way
the file can be broken must surface as a ``StorageError``,
``ContainerError``, or ``DerivationError`` — all ``ValueError``
subclasses — never as a hang, an unbounded allocation, or a silent
mis-decode (the decoded-payload CRC pins the last one).

Mirrors tests/test_decompress_malformed.py, one layer down the stack.
"""

import struct
import zlib

import pytest

from repro import compress_module, train_grammar
from repro.compress.container import ContainerError
from repro.corpus.synth import generate_program
from repro.minic import compile_source
from repro.storage import load_compressed, save_compressed, save_module
from repro.compress.decompress import decompress_module


@pytest.fixture(scope="module")
def rcx2_bytes():
    # size 8: larger corpora here can grow an inlined rule past the
    # compact encoding's 255-byte body limit, which no container format
    # can serialize (pre-existing, orthogonal to RCX2)
    corpus = [compile_source(generate_program(8, seed=s))
              for s in (321, 322, 323)]
    grammar, _ = train_grammar(corpus)
    module = compile_source(generate_program(6, seed=400))
    return save_compressed(compress_module(grammar, module),
                           format="rcx2")


def _reseal(data: bytes) -> bytes:
    """Recompute the file-trailer CRC so deeper corruption reaches the
    layer under test instead of being caught by the outer check."""
    body = data[:-4]
    return body + struct.pack("<I", zlib.crc32(body))


def test_baseline_roundtrips(rcx2_bytes):
    cmod = load_compressed(rcx2_bytes)
    assert cmod.procedures
    # and it decompresses identically to its rcx1 twin
    rcx1 = save_compressed(cmod, format="rcx1")
    assert save_module(decompress_module(load_compressed(rcx1))) == \
        save_module(decompress_module(cmod))


def test_every_truncation_is_structured(rcx2_bytes):
    """No truncation point may load successfully — the trailer CRC is
    gone — and every one must raise a structured ValueError."""
    for cut in list(range(0, len(rcx2_bytes), 17)) + \
            [len(rcx2_bytes) - 1, len(rcx2_bytes) - 4, 5, 4]:
        with pytest.raises(ValueError):
            load_compressed(rcx2_bytes[:cut])


def test_single_byte_flips_are_caught_by_the_trailer(rcx2_bytes):
    """Any un-resealed flip fails the file CRC (or a structural check
    that fires before it)."""
    import random
    rng = random.Random(4242)
    for pos in rng.sample(range(4, len(rcx2_bytes) - 4), 40):
        bad = (rcx2_bytes[:pos]
               + bytes([rcx2_bytes[pos] ^ 0x5A])
               + rcx2_bytes[pos + 1:])
        with pytest.raises(ValueError):
            load_compressed(bad)


def test_corrupt_coded_stream_is_structured_and_terminates(rcx2_bytes):
    """Flips inside the range-coded stream, with the trailer resealed so
    they reach the decoder: the derivation walk must terminate (the
    header's code_len bounds it) and raise DerivationError or fail the
    decoded-payload CRC — never hang or return wrong bytes.  A flip in
    the slack low bits of the coder's final flush bytes may decode
    identically; that is only tolerable when the result is *correct*,
    which the decoded-payload CRC already vouched for — assert it."""
    baseline = save_module(decompress_module(load_compressed(rcx2_bytes)))
    structured = 0
    for pos in range(len(rcx2_bytes) - 44, len(rcx2_bytes) - 4):
        bad = _reseal(rcx2_bytes[:pos]
                      + bytes([rcx2_bytes[pos] ^ 0xFF])
                      + rcx2_bytes[pos + 1:])
        try:
            cmod = load_compressed(bad)
        except ValueError:
            structured += 1
        else:
            assert save_module(decompress_module(cmod)) == baseline
    assert structured > 20  # most flips must be detected outright


def test_model_grammar_mismatch_is_structured(rcx2_bytes):
    """Damaging the embedded model's grammar binding (resealed) is the
    'model trained for a different grammar' failure."""
    at = rcx2_bytes.index(b"RMD1")
    pos = at + 5  # first byte of the 32-byte binding digest
    bad = _reseal(rcx2_bytes[:pos]
                  + bytes([rcx2_bytes[pos] ^ 0x01])
                  + rcx2_bytes[pos + 1:])
    with pytest.raises(ContainerError, match="mismatch"):
        load_compressed(bad)


def test_corrupt_model_blob_is_structured(rcx2_bytes):
    at = rcx2_bytes.index(b"RMD1")
    bad = _reseal(rcx2_bytes[:at] + b"XXXX" + rcx2_bytes[at + 4:])
    with pytest.raises(ContainerError, match="bad embedded model"):
        load_compressed(bad)


def test_version_skew_is_structured(rcx2_bytes):
    bad = _reseal(rcx2_bytes[:4] + b"\x09" + rcx2_bytes[5:])
    with pytest.raises(ContainerError, match="version"):
        load_compressed(bad)


def test_wrong_magic_is_structured(rcx2_bytes):
    from repro.storage import StorageError
    with pytest.raises(StorageError, match="RCX1/RCX2"):
        load_compressed(b"RCXX" + rcx2_bytes[4:])
