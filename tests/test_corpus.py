"""Corpus tests: the four benchmark programs compile, run, self-check, and
behave identically after compression — the system's end-to-end contract."""

import pytest

from repro import (
    compress_module,
    decompress_module,
    run,
    run_compressed,
    train_grammar,
)
from repro.corpus import corpus_sources, generate_program
from repro.minic import compile_source

SMALL_SCALE = 40  # keep test-time training fast; benchmarks use the full one


@pytest.fixture(scope="module")
def corpus():
    return {name: compile_source(src)
            for name, src in corpus_sources(SMALL_SCALE)}


@pytest.fixture(scope="module")
def grammar(corpus):
    g, _ = train_grammar([corpus["gcc"], corpus["lcc"]])
    return g


def test_eightq_solves(corpus):
    code, out = run(corpus["8q"])
    assert code == 0
    lines = out.split(b"\n")
    board, count = lines[:8], lines[8]
    assert count == b"92"
    assert sum(row.count(b"Q") for row in board) == 8
    assert all(len(row) == 8 for row in board)


def test_gz_roundtrip_reports_ok(corpus):
    code, out = run(corpus["gzip"])
    assert code == 0
    assert b"roundtrip ok" in out
    # LZSS actually compressed the test data
    packed = int(out.split(b"packed=")[1].split()[0])
    assert packed < 1500


def test_lcclike_computes(corpus):
    code, out = run(corpus["lcc"])
    assert code == 0
    assert out == b"14\n99\n1\n5050\n-21\n23\n"


def test_gcclike_selftest_passes(corpus):
    code, out = run(corpus["gcc"])
    assert code == 0
    assert b"fails=0" in out


def test_corpus_sizes_ordered(corpus):
    # gcc-like must dominate, 8q must be tiny (matches the paper's table).
    sizes = {name: m.code_bytes for name, m in corpus.items()}
    assert sizes["gcc"] > sizes["lcc"] > sizes["8q"]
    assert sizes["8q"] < 1000


def test_generated_program_runs():
    module = compile_source(generate_program(10, seed=3))
    code, out = run(module)
    assert out.endswith(b"\n")


def test_compression_preserves_behaviour(corpus, grammar):
    """The headline contract: every corpus program runs identically from
    its compressed form."""
    for name, module in corpus.items():
        cmod = compress_module(grammar, module)
        assert run_compressed(cmod) == run(module), name


def test_compression_roundtrips_bytes(corpus, grammar):
    for name, module in corpus.items():
        cmod = compress_module(grammar, module)
        back = decompress_module(cmod)
        for orig, rec in zip(module.procedures, back.procedures):
            assert rec.code == orig.code, f"{name}:{orig.name}"
            assert rec.labels == orig.labels, f"{name}:{orig.name}"


def test_compression_ratios_in_paper_band(corpus, grammar):
    """Trained on gcc+lcc, every input compresses to well under 60% —
    the paper's table reports 29-42%."""
    for name, module in corpus.items():
        cmod = compress_module(grammar, module)
        ratio = cmod.code_bytes / module.code_bytes
        assert ratio < 0.6, f"{name}: {ratio:.0%}"
        assert ratio > 0.05, f"{name}: implausibly small {ratio:.0%}"


def test_own_grammar_compresses_at_least_as_well(corpus):
    """Each corpus compresses at least as well under its own grammar as
    under the other's (the paper's own-vs-cross training observation)."""
    g_gcc, _ = train_grammar([corpus["gcc"]])
    g_lcc, _ = train_grammar([corpus["lcc"]])
    for name in ("gcc", "lcc"):
        own = g_gcc if name == "gcc" else g_lcc
        other = g_lcc if name == "gcc" else g_gcc
        module = corpus[name]
        own_size = compress_module(own, module).code_bytes
        other_size = compress_module(other, module).code_bytes
        assert own_size <= other_size, (
            f"{name}: own {own_size} vs cross {other_size}"
        )
