"""Unit tests for the entropy-coding subsystem (repro.coding).

Three layers, tested bottom-up: the carry-less range coder against
random frequency tables, the RuleModel (quantization, determinism,
serialization, the grammar binding), and the module stream codec
(round-trip, block starts, the no-hang bounds).
"""

import random

import pytest

from repro import train_grammar
from repro.coding.model import (
    CONTEXT_TOTAL,
    ModelMissingError,
    RuleModel,
    _quantize,
    model_for,
    parse_model,
)
from repro.coding.rangecoder import (
    BOTTOM,
    CoderError,
    RangeDecoder,
    RangeEncoder,
    cumulative,
)
from repro.coding.stream import decode_module_streams, encode_module_streams
from repro.compress.compressor import Compressor
from repro.core.program import program_for
from repro.corpus.synth import generate_program
from repro.minic import compile_source


# -- range coder ---------------------------------------------------------------

def _roundtrip(freqs, symbols):
    cums = cumulative(freqs)
    enc = RangeEncoder()
    for s in symbols:
        enc.encode(cums[s], freqs[s], cums[-1])
    data = enc.finish()
    dec = RangeDecoder(data)
    out = []
    for _ in symbols:
        target = dec.target(cums[-1])
        s = next(i for i in range(len(freqs))
                 if cums[i] <= target < cums[i + 1])
        dec.consume(cums[s], freqs[s])
        out.append(s)
    return data, dec, out


def test_rangecoder_roundtrip_random_tables():
    rng = random.Random(2026)
    for _ in range(120):
        n = rng.randrange(2, 40)
        freqs = [rng.randrange(1, 700) for _ in range(n)]
        while sum(freqs) > BOTTOM:
            freqs = [max(1, f // 2) for f in freqs]
        symbols = [rng.randrange(n) for _ in range(rng.randrange(0, 300))]
        data, dec, out = _roundtrip(freqs, symbols)
        assert out == symbols
        # a valid decode consumes exactly the encoder's output
        assert dec.consumed == len(data)


def test_rangecoder_skewed_table_beats_flat_cost():
    """A heavily skewed source must code well under 8 bits/symbol."""
    freqs = [1000] + [1] * 9
    symbols = [0] * 500 + [3, 7] * 5
    data, _, out = _roundtrip(freqs, symbols)
    assert out == symbols
    assert len(data) < len(symbols) // 4


def test_rangecoder_rejects_bad_intervals():
    enc = RangeEncoder()
    with pytest.raises(CoderError):
        enc.encode(0, 0, 10)          # zero frequency
    with pytest.raises(CoderError):
        enc.encode(8, 4, 10)          # interval past the total
    with pytest.raises(CoderError):
        enc.encode(0, 1, BOTTOM + 1)  # total over the coder budget


def test_rangecoder_exhausted_stream_is_structured():
    dec = RangeDecoder(b"\x00\x00\x00\x00")
    with pytest.raises(CoderError, match="exhausted"):
        for _ in range(10_000):
            t = dec.target(2)
            dec.consume(0 if t < 1 else 1, 1)


def test_rangecoder_empty_stream_raises_on_priming():
    with pytest.raises(CoderError):
        RangeDecoder(b"\x00\x00")


# -- quantization --------------------------------------------------------------

def test_quantize_sums_exactly_and_floors_at_one():
    rng = random.Random(7)
    for _ in range(60):
        n = rng.randrange(1, 300)
        counts = [rng.randrange(1, 10_000) for _ in range(n)]
        freqs = _quantize(counts, CONTEXT_TOTAL)
        assert sum(freqs) == CONTEXT_TOTAL
        assert min(freqs) >= 1
        assert len(freqs) == n


def test_quantize_preserves_order_and_is_deterministic():
    counts = [5000, 100, 100, 1]
    a = _quantize(counts, CONTEXT_TOTAL)
    assert a == _quantize(list(counts), CONTEXT_TOTAL)
    assert a[0] > a[1] >= a[3]


def test_quantize_rejects_impossible_tables():
    with pytest.raises(ValueError):
        _quantize([1] * (CONTEXT_TOTAL + 1), CONTEXT_TOTAL)
    with pytest.raises(ValueError):
        _quantize([0, 5], CONTEXT_TOTAL)


# -- RuleModel -----------------------------------------------------------------

@pytest.fixture(scope="module")
def trained():
    corpus = [compile_source(generate_program(8, seed=s))
              for s in (331, 332)]
    grammar, _ = train_grammar(corpus)
    return grammar, corpus


def test_training_attaches_counts(trained):
    grammar, corpus = trained
    counts = grammar.coding_counts
    assert counts["eos"] == sum(len(m.procedures) for m in corpus)
    program = program_for(grammar)
    for nt in grammar.nonterminals:
        assert len(counts["rules"][-nt - 1]) == len(program.rules_of[nt])


def test_model_for_is_memoized_and_deterministic(trained):
    grammar, _ = trained
    program = program_for(grammar)
    model = model_for(program)
    assert model_for(program) is model
    rebuilt = RuleModel(program, model.counts, model.eos_count)
    assert rebuilt.key == model.key
    assert rebuilt.to_bytes() == model.to_bytes()


def test_model_serialization_roundtrip(trained):
    grammar, _ = trained
    program = program_for(grammar)
    model = model_for(program)
    again = RuleModel.from_bytes(model.to_bytes(), program)
    assert again.counts == model.counts
    assert again.eos_count == model.eos_count
    assert again.binding == model.binding
    assert again.key == model.key


def test_model_binding_is_the_compact_grammar_digest(trained):
    grammar, _ = trained
    program = program_for(grammar)
    assert model_for(program).binding == bytes.fromhex(
        program.compact_key)


def test_parse_model_rejects_malformations(trained):
    grammar, _ = trained
    blob = model_for(program_for(grammar)).to_bytes()
    with pytest.raises(ValueError, match="magic"):
        parse_model(b"XXXX" + blob[4:])
    with pytest.raises(ValueError, match="version"):
        parse_model(blob[:4] + b"\x09" + blob[5:])
    with pytest.raises(ValueError):
        parse_model(blob[:-3])  # truncated counts
    with pytest.raises(ValueError, match="trailing"):
        parse_model(blob + b"\x00")


def test_model_shape_mismatch_is_rejected(trained):
    grammar, _ = trained
    program = program_for(grammar)
    counts = grammar.coding_counts
    with pytest.raises(ValueError, match="contexts"):
        RuleModel(program, counts["rules"][:-1], counts["eos"])
    bad_rows = [list(row) for row in counts["rules"]]
    bad_rows[0] = bad_rows[0] + [0]
    with pytest.raises(ValueError, match="rules"):
        RuleModel(program, bad_rows, counts["eos"])


def test_model_missing_raises_structured_error():
    module = compile_source(generate_program(4, seed=17))
    grammar, _ = train_grammar([module])
    delattr(grammar, "coding_counts")
    with pytest.raises(ModelMissingError, match="rcx1"):
        model_for(program_for(grammar))


# -- module stream codec -------------------------------------------------------

def test_stream_roundtrips_and_beats_flat_coding(trained):
    grammar, _ = trained
    program = program_for(grammar)
    model = model_for(program)
    module = compile_source(generate_program(6, seed=440))
    cmod = Compressor(grammar).compress_module(module)
    codes = [p.code for p in cmod.procedures]
    coded = encode_module_streams(program, model, codes)
    decoded = decode_module_streams(
        program, model, [len(c) for c in codes], coded)
    assert [c for c, _ in decoded] == codes
    assert [s for _, s in decoded] == \
        [tuple(p.block_starts) for p in cmod.procedures]
    # the whole point: the model codes the derivation below 8 bits/step
    assert len(coded) < sum(len(c) for c in codes)


def test_stream_decode_respects_declared_lengths(trained):
    grammar, _ = trained
    program = program_for(grammar)
    model = model_for(program)
    module = compile_source(generate_program(5, seed=441))
    cmod = Compressor(grammar).compress_module(module)
    codes = [p.code for p in cmod.procedures]
    coded = encode_module_streams(program, model, codes)
    from repro.parsing.derivation import DerivationError

    lens = [len(c) for c in codes]
    short = list(lens)
    short[0] = max(0, short[0] - 1)
    with pytest.raises(DerivationError):
        decode_module_streams(program, model, short, coded)
    long = list(lens)
    long[-1] += 1
    with pytest.raises(DerivationError):
        decode_module_streams(program, model, long, coded)


def test_stream_encode_rejects_garbage_codes(trained):
    grammar, _ = trained
    program = program_for(grammar)
    model = model_for(program)
    from repro.parsing.derivation import DerivationError

    with pytest.raises(DerivationError):
        encode_module_streams(program, model, [b"\xff" * 4])
