"""End-to-end tests for the async compression service.

The server runs on a real TCP socket inside a background event-loop
thread; tests talk to it through the blocking :class:`ServiceClient`
(and through plain sockets for protocol-level checks), exactly as an
external client would.
"""

import asyncio
import socket
import struct
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro
from repro.minic import compile_source
from repro.registry import GrammarRegistry
from repro.service import CompressionService, ServiceClient, ServiceError
from repro.service import protocol
from repro.storage import save_grammar, save_module

APP = """
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main(void) { putint(fib(10)); putchar('\\n'); return 0; }
"""

CORPUS = """
int main(void) {
    int i, s;
    s = 0;
    for (i = 0; i < 30; i++) s += i * i;
    putint(s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def artifacts():
    app = compile_source(APP)
    corpus = compile_source(CORPUS)
    grammar, report = repro.train_grammar([corpus, app])
    return {
        "app": app,
        "app_bytes": save_module(app),
        "grammar": grammar,
        "grammar_bytes": save_grammar(grammar),
        "report": report,
    }


class _Harness:
    """A service running in a background event-loop thread."""

    def __init__(self, tmp_path, **kwargs):
        self.service = CompressionService(
            GrammarRegistry(tmp_path / "registry"), **kwargs)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever,
                                       daemon=True)
        self.thread.start()
        self.run(self.service.start("127.0.0.1", 0))
        self.port = self.service.port

    def run(self, coro, timeout=30):
        return asyncio.run_coroutine_threadsafe(
            coro, self.loop).result(timeout)

    def client(self, **kw):
        return ServiceClient("127.0.0.1", self.port, **kw)

    def close(self):
        try:
            self.run(self.service.stop(grace=10))
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(5)
            self.loop.close()


@pytest.fixture()
def harness(tmp_path):
    h = _Harness(tmp_path, batch_window=0.01)
    yield h
    h.close()


# -- the acceptance path ------------------------------------------------------

def test_end_to_end_round_trip(harness, artifacts):
    """put -> compress -> decompress byte-identical -> run matches local."""
    with harness.client() as client:
        assert client.health()["status"] == "ok"

        digest = client.put_grammar(artifacts["grammar_bytes"],
                                    tags=["prod"])
        listing = client.list_grammars()
        assert [g["hash"] for g in listing["grammars"]] == [digest]
        assert listing["tags"] == {"prod": digest}

        rcx = client.compress(artifacts["app_bytes"], "prod")
        back = client.decompress(rcx)
        assert back == artifacts["app_bytes"]  # byte-identical RBC1

        code, output = client.run_compressed(rcx)
        assert (code, output) == repro.run(artifacts["app"])

        data, meta = client.get_grammar(digest[:10])
        assert data == artifacts["grammar_bytes"]
        assert meta["tags"] == ["prod"]

        stats = client.stats()
        requests = stats["counters"]["requests_total"]
        for method in ("grammar.put", "compress", "decompress",
                       "run_compressed", "grammar.list", "grammar.get"):
            assert requests[f"{method}|ok"] >= 1
        assert stats["counters"]["bytes_in_total"] > 0
        assert stats["counters"]["bytes_out_total"] > 0
        assert stats["histograms"]["batch_size"]["count"] >= 1
        latency = stats["histograms"]["request_seconds"]
        assert latency["compress"]["count"] == 1
        assert latency["compress"]["buckets"]["le_inf"] == 1
        grammar_stats = stats["grammars"][digest[:12]]
        assert grammar_stats["jobs"] == 1
        assert grammar_stats["derivation_cache"]["enabled"]


def test_concurrent_clients_batch(tmp_path, artifacts):
    """Near-simultaneous requests against one grammar coalesce into
    batches (>1 average batch size) and all succeed."""
    h = _Harness(tmp_path, batch_window=0.15, high_water=64)
    try:
        with h.client() as admin:
            admin.put_grammar(artifacts["grammar_bytes"], tags=["prod"])

        def one_request(_):
            with h.client() as c:
                return c.compress(artifacts["app_bytes"], "prod")

        n = 12
        with ThreadPoolExecutor(max_workers=n) as pool:
            results = list(pool.map(one_request, range(n)))
        assert len(set(results)) == 1  # deterministic output

        with h.client() as admin:
            stats = admin.stats()
        batch = stats["histograms"]["batch_size"]
        assert batch["sum"] == n  # every job accounted for
        assert batch["mean"] > 1.0, f"no batching: {batch}"
        # the shared derivation cache was hit by the repeats
        (grammar_stats,) = stats["grammars"].values()
        assert grammar_stats["derivation_cache"]["hits"] > 0
    finally:
        h.close()


def test_overload_sheds_past_high_water(tmp_path, artifacts):
    """Past the high-water mark the server rejects with a structured,
    retryable `overloaded` error instead of queueing unboundedly."""
    h = _Harness(tmp_path, batch_window=0.5, high_water=2,
                 max_inflight=1)
    try:
        with h.client() as admin:
            admin.put_grammar(artifacts["grammar_bytes"], tags=["prod"])

        outcomes = []
        lock = threading.Lock()

        def one_request(_):
            try:
                with h.client() as c:
                    c.compress(artifacts["app_bytes"], "prod")
                    result = "ok"
            except ServiceError as exc:
                assert exc.code == "overloaded"
                assert exc.retryable
                result = "overloaded"
            with lock:
                outcomes.append(result)

        n = 10
        with ThreadPoolExecutor(max_workers=n) as pool:
            list(pool.map(one_request, range(n)))
        assert outcomes.count("ok") == 2  # exactly the high-water mark
        assert outcomes.count("overloaded") == n - 2

        with h.client() as admin:
            stats = admin.stats()
        requests = stats["counters"]["requests_total"]
        assert requests["compress|ok"] == 2
        assert requests["compress|overloaded"] == n - 2
    finally:
        h.close()


def test_request_timeout_is_structured(tmp_path, artifacts):
    """A request that cannot finish in time gets a `timeout` error
    frame, not a hung socket."""
    h = _Harness(tmp_path, batch_window=0.5, request_timeout=0.1)
    try:
        with h.client() as client:
            client.put_grammar(artifacts["grammar_bytes"], tags=["prod"])
            with pytest.raises(ServiceError) as exc_info:
                # the batch window alone exceeds the request timeout
                client.compress(artifacts["app_bytes"], "prod")
            assert exc_info.value.code == "timeout"
            assert exc_info.value.retryable
            # the connection survives a timed-out request
            assert client.health()["status"] == "ok"
    finally:
        h.close()


def test_drain_completes_inflight_requests(tmp_path, artifacts):
    """stop() finishes accepted requests before tearing down."""
    h = _Harness(tmp_path, batch_window=0.3)
    with h.client() as client:
        client.put_grammar(artifacts["grammar_bytes"], tags=["prod"])
        result = {}

        def slow_compress():
            with h.client() as c:
                result["data"] = c.compress(artifacts["app_bytes"],
                                            "prod")

        worker = threading.Thread(target=slow_compress)
        worker.start()
        # let the request land in the batch window, then drain
        import time
        time.sleep(0.1)
        h.close()
        worker.join(10)
        assert result["data"]  # drained, not dropped
    # new connections are refused after drain
    with pytest.raises(OSError):
        socket.create_connection(("127.0.0.1", h.port), timeout=1)


# -- error paths --------------------------------------------------------------

def test_error_frames(harness, artifacts):
    with harness.client() as client:
        with pytest.raises(ServiceError) as e:
            client.call("no.such.method")
        assert e.value.code == "bad_request"

        with pytest.raises(ServiceError) as e:
            client.compress(artifacts["app_bytes"], "unknown-grammar")
        assert e.value.code == "not_found"

        client.put_grammar(artifacts["grammar_bytes"], tags=["prod"])
        with pytest.raises(ServiceError) as e:
            client.compress(b"RBC1" + b"\xff" * 20, "prod")
        assert e.value.code == "bad_request"

        with pytest.raises(ServiceError) as e:
            client.decompress(artifacts["app_bytes"])  # RBC1, not RCX1
        assert e.value.code == "bad_request"

        with pytest.raises(ServiceError) as e:
            client.run_compressed(artifacts["app_bytes"])
        assert e.value.code == "bad_request"

        with pytest.raises(ServiceError) as e:
            client.put_grammar(b"not a grammar at all")
        assert e.value.code == "bad_request"

        # errors are counted by outcome
        stats = client.stats()
        requests = stats["counters"]["requests_total"]
        assert requests["compress|not_found"] == 1
        assert requests["compress|bad_request"] == 1


def test_malformed_frames_drop_connection(harness):
    # not JSON at all: a structured error frame comes back, then EOF
    with socket.create_connection(("127.0.0.1", harness.port),
                                  timeout=5) as sock:
        sock.sendall(struct.pack(">I", 7) + b"garbage")
        msg, _ = protocol.recv_message_sync(sock)
        assert msg["ok"] is False
        assert msg["id"] is None
        assert msg["error"]["code"] == "bad_request"
        assert sock.recv(1) == b""  # server hung up
    # oversized length prefix: rejected without allocating, then EOF
    with socket.create_connection(("127.0.0.1", harness.port),
                                  timeout=5) as sock:
        sock.sendall(struct.pack(">I", protocol.MAX_FRAME + 1))
        msg, _ = protocol.recv_message_sync(sock)
        assert msg["ok"] is False
        assert msg["error"]["code"] == "bad_request"
        assert sock.recv(1) == b""


def test_protocol_frame_roundtrip():
    frame = protocol.encode_frame({"id": 1, "method": "health",
                                   "params": {}})
    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4
    assert protocol.decode_body(frame[4:])["method"] == "health"
    with pytest.raises(protocol.FrameError):
        protocol.decode_body(b"[1, 2]")  # not an object
    with pytest.raises(protocol.FrameError):
        protocol.b64d("@@@not base64@@@")


# -- binary framing -----------------------------------------------------------

def test_binary_frame_roundtrip_large_payload():
    """A multi-megabyte payload crosses the codec exactly once, raw —
    no base64 inflation anywhere in the frame."""
    payload = bytes(range(256)) * (4 << 12)  # 4 MiB, all byte values
    msg = {"id": 7, "method": "compress",
           "params": {"module": payload, "grammar": "prod"}}
    frame = protocol.encode_message(msg, binary=True)
    (word,) = struct.unpack(">I", frame[:4])
    assert word & protocol.BINARY_BIT
    assert len(frame) - 4 == word & ~protocol.BINARY_BIT
    # raw payload present verbatim: the frame is payload + small header
    assert len(frame) < len(payload) + 512
    back = protocol.decode_binary_body(frame[4:])
    assert back["params"]["module"] == payload
    assert back["params"]["grammar"] == "prod"
    assert back["id"] == 7
    assert "bin" not in back  # binding key is consumed, not leaked


def test_binary_frame_zero_length_payload():
    msg = {"id": 1, "ok": True, "result": {"data": b"", "n": 3}}
    frame = protocol.encode_message(msg, binary=True)
    back = protocol.decode_binary_body(frame[4:])
    assert back["result"]["data"] == b""
    assert back["result"]["n"] == 3


def test_binary_frame_no_bytes_at_all():
    """Envelopes without bulk fields still work in binary mode."""
    msg = {"id": 2, "method": "health", "params": {}}
    back = protocol.decode_binary_body(
        protocol.encode_message(msg, binary=True)[4:])
    assert back == msg


def test_binary_frame_picks_largest_field_as_payload():
    """Only the biggest bytes value rides raw; smaller ones fall back
    to base64 so the frame stays single-payload."""
    msg = {"id": 3, "method": "run_compressed",
           "params": {"module": b"M" * 1000, "input": b"tiny"}}
    back = protocol.decode_binary_body(
        protocol.encode_message(msg, binary=True)[4:])
    assert back["params"]["module"] == b"M" * 1000  # raw payload
    assert protocol.b64d(back["params"]["input"]) == b"tiny"


def test_json_mode_encode_message_matches_legacy_frames():
    """encode_message(binary=False) is byte-for-byte the legacy frame:
    bytes values become base64 strings in a plain JSON frame."""
    data = b"\x00\x01\xffpayload"
    new = protocol.encode_message(
        {"id": 4, "method": "decompress", "params": {"module": data}})
    old = protocol.encode_frame(
        {"id": 4, "method": "decompress",
         "params": {"module": protocol.b64e(data)}})
    assert new == old


def test_binary_frame_length_mismatch_is_frame_error():
    # header length word larger than the body that follows
    good = protocol.encode_message(
        {"id": 5, "params": {"data": b"xyz"}}, binary=True)[4:]
    (hlen,) = struct.unpack(">I", good[:4])
    bad = struct.pack(">I", hlen + 1000) + good[4:]
    with pytest.raises(protocol.FrameError):
        protocol.decode_binary_body(bad)
    # truncated below the header-length word itself
    with pytest.raises(protocol.FrameError):
        protocol.decode_binary_body(b"\x00")
    # payload bytes present but nothing binds them
    naked = protocol.encode_frame({"id": 6})[4:]
    with pytest.raises(protocol.FrameError):
        protocol.decode_binary_body(
            struct.pack(">I", len(naked)) + naked + b"orphan")


def test_binary_length_mismatch_gets_structured_error(harness):
    """A corrupt binary frame over a real socket comes back as a
    structured bad_request error frame, then the server hangs up."""
    good = protocol.encode_message(
        {"id": 9, "method": "health", "params": {"blob": b"abcdef"}},
        binary=True)
    # corrupt the inner header-length word, keep the outer length valid
    bad = bytearray(good)
    struct.pack_into(">I", bad, 4, 0x00FFFFFF)
    with socket.create_connection(("127.0.0.1", harness.port),
                                  timeout=5) as sock:
        sock.sendall(bytes(bad))
        msg, _ = protocol.recv_message_sync(sock)
        assert msg["ok"] is False and msg["id"] is None
        assert msg["error"]["code"] == "bad_request"
        assert sock.recv(1) == b""


def test_legacy_json_client_against_new_server(harness, artifacts):
    """binary=False speaks exactly the old wire format and still gets
    full service: compatibility mode for old clients."""
    with harness.client(binary=False) as legacy, \
            harness.client(binary=True) as modern:
        legacy.put_grammar(artifacts["grammar_bytes"], tags=["prod"])
        via_legacy = legacy.compress(artifacts["app_bytes"], "prod")
        via_modern = modern.compress(artifacts["app_bytes"], "prod")
        assert via_legacy == via_modern  # same answer on either framing
        assert legacy.decompress(via_modern) == artifacts["app_bytes"]
        assert modern.decompress(via_legacy) == artifacts["app_bytes"]


def test_server_replies_in_request_framing(harness, artifacts):
    """The server answers each request in the framing it arrived in —
    negotiation is per frame, not per connection."""
    with harness.client() as admin:
        admin.put_grammar(artifacts["grammar_bytes"], tags=["prod"])
    with socket.create_connection(("127.0.0.1", harness.port),
                                  timeout=10) as sock:
        # JSON request -> JSON reply
        protocol.send_message_sync(
            sock, {"id": 1, "method": "grammar.get",
                   "params": {"ref": "prod"}}, binary=False)
        msg, was_binary = protocol.recv_message_sync(sock)
        assert not was_binary
        assert protocol.b64d(msg["result"]["data"]) \
            == artifacts["grammar_bytes"]
        # binary request on the same connection -> binary reply
        protocol.send_message_sync(
            sock, {"id": 2, "method": "grammar.get",
                   "params": {"ref": "prod"}}, binary=True)
        msg, was_binary = protocol.recv_message_sync(sock)
        assert was_binary
        assert msg["result"]["data"] == artifacts["grammar_bytes"]


# -- entropy-coded containers over the wire -----------------------------------

def test_rcx2_format_round_trip_and_metrics(harness, artifacts):
    """`compress` honours the format param, decompress auto-detects the
    container, and the stats endpoint reports per-format counters plus
    coded-bytes histograms."""
    with harness.client() as client:
        client.put_grammar(artifacts["grammar_bytes"], tags=["prod"])
        rcx1 = client.compress(artifacts["app_bytes"], "prod")
        rcx2 = client.compress(artifacts["app_bytes"], "prod",
                               format="rcx2")
        assert rcx1[:4] == b"RCX1"
        assert rcx2[:4] == b"RCX2"
        assert client.decompress(rcx1) == artifacts["app_bytes"]
        assert client.decompress(rcx2) == artifacts["app_bytes"]

        stats = client.stats()
        assert stats["counters"]["compress_format_total"] == \
            {"rcx1": 1, "rcx2": 1}
        coded = stats["histograms"]["coded_bytes"]
        assert coded["rcx1"]["count"] == 1
        assert coded["rcx1"]["sum"] == len(rcx1)
        assert coded["rcx2"]["count"] == 1
        assert coded["rcx2"]["sum"] == len(rcx2)


def test_rcx2_unknown_format_is_bad_request(harness, artifacts):
    with harness.client() as client:
        client.put_grammar(artifacts["grammar_bytes"], tags=["prod"])
        with pytest.raises(ServiceError) as err:
            client.compress(artifacts["app_bytes"], "prod",
                            format="rcx9")
        assert err.value.code == protocol.E_BAD_REQUEST
        assert not err.value.retryable


def test_rcx2_model_missing_is_structured_and_retryable(harness,
                                                        artifacts):
    """A grammar stored without training counts (a legacy RGR1) still
    serves rcx1, but rcx2 requests fail with the retryable
    ``model_missing`` error — retraining under the same tag clears it
    without a client change."""
    from repro.coding.model import COUNTS_ATTR

    grammar = artifacts["grammar"]
    counts = getattr(grammar, COUNTS_ATTR)
    delattr(grammar, COUNTS_ATTR)
    try:
        legacy_bytes = save_grammar(grammar)
    finally:
        setattr(grammar, COUNTS_ATTR, counts)

    with harness.client() as client:
        client.put_grammar(artifacts["grammar_bytes"], tags=["prod"])
        client.put_grammar(legacy_bytes, tags=["legacy"])
        listing = {
            tuple(g["tags"]): g for g in client.list_grammars()["grammars"]
        }
        assert listing[("prod",)]["model"] is True
        assert listing[("legacy",)]["model"] is False

        assert client.compress(artifacts["app_bytes"],
                               "legacy")[:4] == b"RCX1"
        with pytest.raises(ServiceError) as err:
            client.compress(artifacts["app_bytes"], "legacy",
                            format="rcx2")
        assert err.value.code == protocol.E_MODEL_MISSING
        assert err.value.retryable
        # the same request against the trained grammar succeeds
        assert client.compress(artifacts["app_bytes"], "prod",
                               format="rcx2")[:4] == b"RCX2"
