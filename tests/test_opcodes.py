"""Unit tests for the instruction-set tables (Appendix 1/2)."""

import pytest

from repro.bytecode.opcodes import (
    CLASSES,
    LABELV,
    OPS,
    OP_BY_CODE,
    OP_BY_NAME,
    opcode,
    opname,
)


def test_all_codes_unique_and_dense():
    codes = [op.code for op in OPS]
    assert codes == list(range(len(OPS)))
    assert len(OP_BY_CODE) == len(OPS)
    assert len(OP_BY_NAME) == len(OPS)


def test_codes_fit_in_a_byte():
    assert all(0 <= op.code <= 255 for op in OPS)


def test_class_membership_counts():
    by_class = {}
    for op in OPS:
        by_class.setdefault(op.klass, []).append(op)
    # Appendix 2 alternative counts per class nonterminal.
    assert len(by_class["v2"]) == 45
    assert len(by_class["v1"]) == 22
    assert len(by_class["v0"]) == 10
    assert len(by_class["x2"]) == 6
    assert len(by_class["x1"]) == 12
    assert len(by_class["x0"]) == 3
    assert len(by_class["pseudo"]) == 1


def test_classes_cover_all_ops():
    assert {op.klass for op in OPS} <= set(CLASSES)


def test_prefix_operators_take_literal_bytes():
    # Section 3: LIT[1234], ADDR[FGL]P, LocalCALL, JUMP, BrTrue are prefix.
    assert OP_BY_NAME["LIT1"].nlit == 1
    assert OP_BY_NAME["LIT2"].nlit == 2
    assert OP_BY_NAME["LIT3"].nlit == 3
    assert OP_BY_NAME["LIT4"].nlit == 4
    for name in ("ADDRFP", "ADDRGP", "ADDRLP", "BrTrue", "JUMPV",
                 "LocalCALLD", "LocalCALLF", "LocalCALLU", "LocalCALLV"):
        assert OP_BY_NAME[name].nlit == 2, name


def test_postfix_operators_take_no_literal_bytes():
    for name in ("ADDU", "INDIRU", "ASGNU", "RETV", "CALLU", "NEU"):
        assert OP_BY_NAME[name].nlit == 0


def test_generic_suffix_split():
    assert OP_BY_NAME["ADDU"].generic == "ADD"
    assert OP_BY_NAME["ADDU"].suffix == "U"
    assert OP_BY_NAME["LocalCALLV"].generic == "LocalCALL"
    assert OP_BY_NAME["LocalCALLV"].suffix == "V"
    assert OP_BY_NAME["ADDRFP"].generic == "ADDRF"
    assert OP_BY_NAME["BrTrue"].generic == "BrTrue"
    assert OP_BY_NAME["CVI1I4"].generic == "CVI"
    assert OP_BY_NAME["LIT3"].generic == "LIT"


def test_opcode_opname_roundtrip():
    for op in OPS:
        assert opname(opcode(op.name)) == op.name


def test_labelv_is_pseudo():
    assert LABELV.klass == "pseudo"
    assert LABELV.nlit == 0


def test_appendix_operator_spotchecks():
    # Signed arithmetic exists only where signedness matters.
    assert "ADDI" not in OP_BY_NAME  # folded into ADDU
    assert "DIVI" in OP_BY_NAME
    assert "MODI" in OP_BY_NAME
    assert "EQI" not in OP_BY_NAME  # folded into EQU
    assert "GEI" in OP_BY_NAME
    assert "RSHI" in OP_BY_NAME  # arithmetic shift right
    # Conversions from Appendix 2.
    for name in ("CVDF", "CVDI", "CVFD", "CVFI", "CVID", "CVIF",
                 "CVI1I4", "CVI2I4", "CVU1U4", "CVU2U4"):
        assert name in OP_BY_NAME, name


def test_unknown_names_raise():
    with pytest.raises(KeyError):
        opcode("NOSUCH")
