"""Tests for the binary file formats and the command-line interface."""

import pytest

import repro
from repro.cli import main
from repro.compress.compressor import Compressor
from repro.minic import compile_source
from repro.storage import (
    StorageError,
    load_any,
    load_compressed,
    load_grammar,
    load_module,
    save_compressed,
    save_grammar,
    save_module,
)

APP = """
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main(void) { putint(fib(10)); putchar('\\n'); return 0; }
"""

CORPUS = """
int main(void) {
    int i, s;
    s = 0;
    for (i = 0; i < 30; i++) s += i * i;
    putint(s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def setup():
    app = compile_source(APP)
    corpus = compile_source(CORPUS)
    grammar, _ = repro.train_grammar([corpus, app])
    cmod = Compressor(grammar).compress_module(app)
    return app, corpus, grammar, cmod


# -- module format ------------------------------------------------------------

def test_module_roundtrip(setup):
    app, _, _, _ = setup
    back = load_module(save_module(app))
    assert [p.code for p in back.procedures] == \
        [p.code for p in app.procedures]
    assert [p.labels for p in back.procedures] == \
        [p.labels for p in app.procedures]
    assert [(g.kind, g.name, g.value) for g in back.globals] == \
        [(g.kind, g.name, g.value) for g in app.globals]
    assert back.data == app.data
    assert back.bss_size == app.bss_size
    assert back.entry == app.entry
    assert repro.run(back) == repro.run(app)


def test_module_rejects_bad_magic(setup):
    with pytest.raises(StorageError, match="RBC1"):
        load_module(b"XXXX" + b"\x00" * 16)


def test_module_rejects_truncation(setup):
    app, _, _, _ = setup
    data = save_module(app)
    with pytest.raises(StorageError):
        load_module(data[:-3])


def test_module_rejects_trailing_garbage(setup):
    app, _, _, _ = setup
    with pytest.raises(StorageError, match="trailing"):
        load_module(save_module(app) + b"\x00")


def test_module_load_validates_bytecode(setup):
    app, _, _, _ = setup
    data = bytearray(save_module(app))
    # Corrupt a code byte to an opcode that breaks stack discipline: the
    # validator must catch it at load time.  Find a code blob and stomp it.
    idx = data.find(app.procedures[0].code)
    assert idx > 0
    data[idx:idx + len(app.procedures[0].code)] = bytes(
        [repro.bytecode.opcode("ADDU") if False else 42]
    ) * len(app.procedures[0].code)
    with pytest.raises(Exception):
        load_module(bytes(data))


# -- CRC-32 trailer -----------------------------------------------------------

def test_crc_trailer_present_and_verified(setup):
    app, _, grammar, cmod = setup
    import struct
    import zlib
    from repro.storage import save_compressed as sc, save_grammar as sg
    for blob in (save_module(app), sc(cmod), sg(grammar)):
        (stored,) = struct.unpack("<I", blob[-4:])
        assert stored == zlib.crc32(blob[:-4])


def test_crc_mismatch_fails_loudly(setup):
    app, _, _, _ = setup
    data = bytearray(save_module(app))
    data[-1] ^= 0xFF  # corrupt the trailer itself
    with pytest.raises(StorageError, match="CRC-32"):
        load_module(bytes(data))


def test_crc_catches_silent_data_corruption(setup):
    app, _, _, _ = setup
    data = bytearray(save_module(app))
    # a single flipped bit mid-file: whatever the structural parse makes
    # of it, the load must fail rather than return a wrong module
    data[len(data) // 2] ^= 0x01
    with pytest.raises(Exception):
        load_module(bytes(data))


def test_legacy_files_without_trailer_still_load(setup):
    app, _, grammar, cmod = setup
    from repro.storage import load_compressed as lc, load_grammar as lg
    from repro.storage import save_compressed as sc, save_grammar as sg
    # what a pre-CRC writer produced: the same bytes minus the trailer
    old_module = save_module(app)[:-4]
    back = load_module(old_module)
    assert [p.code for p in back.procedures] == \
        [p.code for p in app.procedures]
    old_cmod = sc(cmod)[:-4]
    assert [p.code for p in lc(old_cmod).procedures] == \
        [p.code for p in cmod.procedures]
    old_grammar = sg(grammar)[:-4]
    assert lg(old_grammar).total_rules() == grammar.total_rules()


# -- grammar format -------------------------------------------------------------

def test_grammar_roundtrip_preserves_compression(setup):
    app, _, grammar, _ = setup
    loaded = load_grammar(save_grammar(grammar))
    a = Compressor(grammar).compress_module(app)
    b = Compressor(loaded).compress_module(app)
    assert a.code_bytes == b.code_bytes
    assert [p.code for p in a.procedures] == [p.code for p in b.procedures]


def test_grammar_roundtrip_preserves_provenance(setup):
    _, _, grammar, _ = setup
    loaded = load_grammar(save_grammar(grammar))
    assert loaded.nt_names == grammar.nt_names
    orig = [(r.lhs, r.rhs, r.origin) for r in grammar]
    back = [(r.lhs, r.rhs, r.origin) for r in loaded]
    assert orig == back
    from repro.grammar.analysis import check_language_preserved
    check_language_preserved(loaded)


def test_grammar_bad_magic():
    with pytest.raises(StorageError, match="RGR1"):
        load_grammar(b"NOPE")


# -- compressed format -----------------------------------------------------------

def test_compressed_roundtrip(setup):
    app, _, _, cmod = setup
    back = load_compressed(save_compressed(cmod))
    assert [p.code for p in back.procedures] == \
        [p.code for p in cmod.procedures]
    assert [p.labels for p in back.procedures] == \
        [p.labels for p in cmod.procedures]
    assert repro.run_compressed(back) == repro.run_compressed(cmod)
    rec = repro.decompress_module(back)
    assert [p.code for p in rec.procedures] == \
        [p.code for p in app.procedures]


def test_load_any_dispatch(setup):
    app, _, _, cmod = setup
    from repro.bytecode.module import Module
    from repro.compress.container import CompressedModule
    assert isinstance(load_any(save_module(app)), Module)
    assert isinstance(load_any(save_compressed(cmod)), CompressedModule)
    with pytest.raises(StorageError, match="magic"):
        load_any(b"????junk")


# -- CLI ---------------------------------------------------------------------------

@pytest.fixture()
def workspace(tmp_path):
    (tmp_path / "app.c").write_text(APP)
    (tmp_path / "corpus.c").write_text(CORPUS)
    return tmp_path


def test_cli_full_pipeline(workspace, capsys):
    ws = str(workspace)
    assert main(["compile", f"{ws}/app.c", "-o", f"{ws}/app.rbc"]) == 0
    assert main(["compile", f"{ws}/corpus.c", "-o",
                 f"{ws}/corpus.rbc"]) == 0
    assert main(["train", f"{ws}/corpus.rbc", f"{ws}/app.rbc",
                 "-o", f"{ws}/g.rgr"]) == 0
    assert main(["compress", f"{ws}/app.rbc", "-g", f"{ws}/g.rgr",
                 "-o", f"{ws}/app.rcx"]) == 0
    capsys.readouterr()

    code = main(["run", f"{ws}/app.rbc"])
    out1 = capsys.readouterr().out
    code2 = main(["run", f"{ws}/app.rcx"])
    out2 = capsys.readouterr().out
    assert code == code2 == 0
    assert out1 == out2 == "55\n"

    assert main(["decompress", f"{ws}/app.rcx", "-o",
                 f"{ws}/back.rbc"]) == 0
    capsys.readouterr()
    main(["disasm", f"{ws}/app.rbc"])
    d1 = capsys.readouterr().out
    main(["disasm", f"{ws}/back.rbc"])
    d2 = capsys.readouterr().out
    assert d1 == d2

    assert main(["stats", f"{ws}/app.rbc", f"{ws}/app.rcx"]) == 0
    stats_out = capsys.readouterr().out
    assert "bytecode" in stats_out and "grammar" in stats_out


def test_cli_compression_shrinks(workspace, capsys):
    # Multi-file compilation is whole-program (textual linkage), so the
    # helper file must not define its own main.
    (workspace / "lib.c").write_text(
        "int square(int x) { return x * x; }\n"
        "int cube(int x) { return x * square(x); }\n"
    )
    ws = str(workspace)
    main(["compile", f"{ws}/app.c", f"{ws}/lib.c",
          "-o", f"{ws}/all.rbc"])
    main(["train", f"{ws}/all.rbc", "-o", f"{ws}/g.rgr"])
    main(["compress", f"{ws}/all.rbc", "-g", f"{ws}/g.rgr",
          "-o", f"{ws}/all.rcx"])
    out = capsys.readouterr().out
    assert "->" in out
    from repro.storage import load_compressed as lc, load_module as lm
    orig = lm((workspace / "all.rbc").read_bytes())
    comp = lc((workspace / "all.rcx").read_bytes())
    assert comp.code_bytes < orig.code_bytes


def test_cli_run_exit_code(workspace, capsys):
    ws = str(workspace)
    (workspace / "ret7.c").write_text("int main(void) { return 7; }")
    main(["compile", f"{ws}/ret7.c", "-o", f"{ws}/ret7.rbc"])
    assert main(["run", f"{ws}/ret7.rbc"]) == 7


def test_cli_run_args(workspace, capsys):
    ws = str(workspace)
    (workspace / "add.c").write_text(
        "int main(int a) { return a + 1; }")
    main(["compile", f"{ws}/add.c", "-o", f"{ws}/add.rbc"])
    assert main(["run", f"{ws}/add.rbc", "41"]) == 42


def test_cli_decompress_rejects_plain_module(workspace, capsys):
    ws = str(workspace)
    main(["compile", f"{ws}/app.c", "-o", f"{ws}/app.rbc"])
    assert main(["decompress", f"{ws}/app.rbc", "-o",
                 f"{ws}/x.rbc"]) == 2


# -- CLI exit-code hygiene: operational errors are one stderr line, exit 2 ----

def _assert_clean_failure(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    assert code == 2, f"{argv}: expected exit 2, got {code}"
    assert captured.err.startswith("repro: ")
    assert captured.err.count("\n") == 1, f"not one line: {captured.err!r}"
    assert "Traceback" not in captured.err


def test_cli_missing_inputs_exit_2(workspace, capsys):
    ws = str(workspace)
    main(["compile", f"{ws}/app.c", "-o", f"{ws}/app.rbc"])
    main(["compile", f"{ws}/corpus.c", "-o", f"{ws}/corpus.rbc"])
    main(["train", f"{ws}/corpus.rbc", "-o", f"{ws}/g.rgr"])
    capsys.readouterr()
    _assert_clean_failure(capsys, ["decompress", f"{ws}/nope.rcx",
                                   "-o", f"{ws}/x.rbc"])
    _assert_clean_failure(capsys, ["run", f"{ws}/nope.rbc"])
    _assert_clean_failure(capsys, ["compress", f"{ws}/nope.rbc",
                                   "-g", f"{ws}/g.rgr",
                                   "-o", f"{ws}/x.rcx"])
    _assert_clean_failure(capsys, ["compress", f"{ws}/app.rbc",
                                   "-g", f"{ws}/nope.rgr",
                                   "-o", f"{ws}/x.rcx"])
    _assert_clean_failure(capsys, ["train", f"{ws}/nope.rbc",
                                   "-o", f"{ws}/g2.rgr"])
    _assert_clean_failure(capsys, ["compile", f"{ws}/nope.c",
                                   "-o", f"{ws}/x.rbc"])
    _assert_clean_failure(capsys, ["disasm", f"{ws}/nope.rbc"])
    _assert_clean_failure(capsys, ["stats", f"{ws}/nope.rbc"])


def test_cli_corrupt_inputs_exit_2(workspace, capsys):
    ws = str(workspace)
    main(["compile", f"{ws}/app.c", "-o", f"{ws}/app.rbc"])
    capsys.readouterr()
    (workspace / "junk.rbc").write_bytes(b"not a module at all")
    truncated = (workspace / "app.rbc").read_bytes()[:-9]
    (workspace / "trunc.rbc").write_bytes(truncated)
    corrupt = bytearray((workspace / "app.rbc").read_bytes())
    corrupt[-1] ^= 0xFF
    (workspace / "crc.rbc").write_bytes(bytes(corrupt))
    for bad in ("junk.rbc", "trunc.rbc", "crc.rbc"):
        _assert_clean_failure(capsys, ["run", f"{ws}/{bad}"])
        _assert_clean_failure(capsys, ["decompress", f"{ws}/{bad}",
                                       "-o", f"{ws}/x.rbc"])
    _assert_clean_failure(capsys, ["compress", f"{ws}/junk.rbc",
                                   "-g", f"{ws}/junk.rbc",
                                   "-o", f"{ws}/x.rcx"])


def test_cli_registry_unknown_ref_exit_2(workspace, capsys):
    ws = str(workspace)
    _assert_clean_failure(capsys, ["registry", "-d", f"{ws}/reg",
                                   "show", "nothere"])
    _assert_clean_failure(capsys, ["registry", "-d", f"{ws}/reg",
                                   "add", f"{ws}/missing.rgr"])


def test_cli_client_no_server_exit_2(workspace, capsys):
    # nothing listens on this port (bound but not accepting would be
    # flakier; a refused connect is the common operational failure)
    _assert_clean_failure(capsys, ["client", "--port", "1",
                                   "--timeout", "2", "health"])


def test_cli_grammar_stats(workspace, capsys):
    import json

    ws = str(workspace)
    main(["compile", f"{ws}/corpus.c", "-o", f"{ws}/corpus.rbc"])
    main(["train", f"{ws}/corpus.rbc", "-o", f"{ws}/g.rgr"])
    assert main(["registry", "-d", f"{ws}/reg", "add", f"{ws}/g.rgr",
                 "-t", "prod"]) == 0
    capsys.readouterr()
    assert main(["grammar", "-d", f"{ws}/reg", "stats", "prod"]) == 0
    out = capsys.readouterr().out
    assert "rules" in out and "prediction-set density" in out
    assert "flattened rule tables" in out
    # --json appends the full machine-readable stats block.
    assert main(["grammar", "-d", f"{ws}/reg", "stats", "prod",
                 "--json"]) == 0
    out = capsys.readouterr().out
    stats = json.loads(out[out.index("{"):])
    assert stats["rules"] > 0 and 0 < stats["prediction_set_density"] <= 1
    _assert_clean_failure(capsys, ["grammar", "-d", f"{ws}/reg",
                                   "stats", "nothere"])
