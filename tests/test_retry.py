"""Client retry semantics: backoff jitter, exhaustion, deadlines.

These tests run the clients against a *scripted* server — a thread that
speaks the real wire protocol but answers each request from a fixed list
of directives — so every failure mode is exact and every assertion about
attempt counts is deterministic.
"""

import asyncio
import random
import socket
import threading
import time

import pytest

from repro.service import protocol
from repro.service.client import AsyncServiceClient, ServiceClient
from repro.service.protocol import ServiceError
from repro.service.retry import TRANSPORT, RetryPolicy


class _ScriptServer:
    """One directive per request: ``"ok"`` answers a result frame, an
    error code answers an error frame, ``"drop"`` closes the connection
    without replying.  When the script runs out the listener closes, so
    further connects are refused (a transport failure)."""

    def __init__(self, script):
        self.script = list(script)
        self.requests = []
        self.connections = 0
        self._sock = socket.create_server(("127.0.0.1", 0))
        self._sock.settimeout(10)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        try:
            while self.script:
                conn, _ = self._sock.accept()
                self.connections += 1
                with conn:
                    conn.settimeout(10)
                    self._serve_conn(conn)
        except OSError:
            pass
        finally:
            self.close()

    def _serve_conn(self, conn):
        while self.script:
            try:
                msg = protocol.recv_frame_sync(conn)
            except (OSError, protocol.FrameError):
                return
            self.requests.append(msg)
            action = self.script.pop(0)
            if action == "drop":
                return
            if action == "ok":
                body = protocol.result_body(msg["id"], {"pong": True})
            else:
                body = protocol.error_body(msg["id"], action,
                                           f"scripted {action}")
            protocol.send_frame_sync(conn, body)

    def close(self):
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        self._thread.join(5)


FAST = dict(base=0.001, cap=0.004)  # real sleeps, negligible wall time


def _async(coro):
    return asyncio.run(coro)


# -- RetryPolicy unit --------------------------------------------------------

def test_backoff_is_full_jitter_within_bounds():
    policy = RetryPolicy(8, base=0.05, multiplier=2.0, cap=1.0,
                         rng=random.Random(7))
    for attempt in range(8):
        ceiling = min(1.0, 0.05 * 2.0 ** attempt)
        samples = [policy.backoff(attempt) for _ in range(200)]
        assert all(0.0 <= s <= ceiling for s in samples)
        # full jitter, not fixed: the samples actually spread
        assert max(samples) - min(samples) > ceiling * 0.5


def test_backoff_cap_bounds_late_attempts():
    policy = RetryPolicy(20, base=0.1, multiplier=2.0, cap=0.25,
                         rng=random.Random(1))
    assert all(policy.backoff(19) <= 0.25 for _ in range(100))


def test_retry_codes_default_and_custom():
    policy = RetryPolicy()
    for code in sorted(protocol.RETRYABLE) + [TRANSPORT]:
        assert policy.retries(code)
    assert not policy.retries("bad_request")
    assert not policy.retries("not_found")
    only = RetryPolicy(retry_codes={"overloaded"})
    assert only.retries("overloaded") and not only.retries(TRANSPORT)


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(0)
    with pytest.raises(ValueError):
        RetryPolicy(base=-1)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)


# -- sync client -------------------------------------------------------------

def test_retryable_error_is_retried_to_success():
    with _ScriptServer(["overloaded", "overloaded", "ok"]) as server:
        with ServiceClient("127.0.0.1", server.port,
                           retry=RetryPolicy(4, **FAST)) as client:
            assert client.call("ping") == {"pong": True}
        assert len(server.requests) == 3


def test_exhaustion_raises_last_structured_error():
    with _ScriptServer(["overloaded", "timeout", "shutting_down",
                        "ok"]) as server:
        with ServiceClient("127.0.0.1", server.port,
                           retry=RetryPolicy(3, **FAST)) as client:
            with pytest.raises(ServiceError) as exc:
                client.call("ping")
        # the *last* server answer surfaces, and nothing past the cap ran
        assert exc.value.code == "shutting_down"
        assert len(server.requests) == 3
        assert server.script == ["ok"]


def test_non_retryable_error_is_not_retried():
    with _ScriptServer(["bad_request", "ok"]) as server:
        with ServiceClient("127.0.0.1", server.port,
                           retry=RetryPolicy(5, **FAST)) as client:
            with pytest.raises(ServiceError) as exc:
                client.call("ping")
        assert exc.value.code == "bad_request"
        assert len(server.requests) == 1


def test_no_policy_means_single_shot():
    with _ScriptServer(["overloaded", "ok"]) as server:
        with ServiceClient("127.0.0.1", server.port) as client:
            with pytest.raises(ServiceError) as exc:
                client.call("ping")
        assert exc.value.code == "overloaded"
        assert len(server.requests) == 1


def test_dropped_connection_reconnects_transparently():
    with _ScriptServer(["drop", "ok"]) as server:
        with ServiceClient("127.0.0.1", server.port,
                           retry=RetryPolicy(3, **FAST)) as client:
            assert client.call("ping") == {"pong": True}
        assert server.connections == 2  # second attempt re-dialled
        assert len(server.requests) == 2


def test_transport_exhaustion_surfaces_transport_error():
    with _ScriptServer(["drop"]) as server:
        with ServiceClient("127.0.0.1", server.port,
                           retry=RetryPolicy(3, **FAST)) as client:
            with pytest.raises(ServiceError) as exc:
                client.call("ping")
        assert exc.value.code == TRANSPORT


def test_deadline_cuts_retries_short():
    script = ["overloaded"] * 50
    with _ScriptServer(script) as server:
        policy = RetryPolicy(50, base=0.1, multiplier=2.0, cap=0.5)
        with ServiceClient("127.0.0.1", server.port,
                           retry=policy) as client:
            start = time.monotonic()
            with pytest.raises(ServiceError) as exc:
                client.call("ping", deadline=0.3)
            elapsed = time.monotonic() - start
        assert exc.value.code == "overloaded"  # last error, not a new one
        assert elapsed < 2.0
        assert 1 <= len(server.requests) < 50


def test_deadline_travels_in_envelope_and_shrinks():
    with _ScriptServer(["overloaded", "overloaded", "ok"]) as server:
        with ServiceClient("127.0.0.1", server.port,
                           retry=RetryPolicy(4, base=0.01, cap=0.02)
                           ) as client:
            client.call("ping", deadline=30.0)
        budgets = [req["deadline"] for req in server.requests]
        assert len(budgets) == 3
        assert all(0 < b <= 30.0 for b in budgets)
        assert budgets[0] > budgets[1] > budgets[2]


def test_no_deadline_means_no_envelope_field():
    with _ScriptServer(["ok"]) as server:
        with ServiceClient("127.0.0.1", server.port) as client:
            client.call("ping")
        assert "deadline" not in server.requests[0]


def test_exhausted_deadline_fails_before_sending():
    with _ScriptServer(["ok"]) as server:
        with ServiceClient("127.0.0.1", server.port) as client:
            with pytest.raises(ServiceError) as exc:
                client.call("ping", deadline=-1.0)
        assert exc.value.code == "timeout"
        assert server.requests == []


# -- async client ------------------------------------------------------------

def test_async_retry_to_success():
    async def scenario(port):
        async with AsyncServiceClient(
                "127.0.0.1", port, retry=RetryPolicy(4, **FAST)) as c:
            return await c.call("ping")

    with _ScriptServer(["overloaded", "overloaded", "ok"]) as server:
        assert _async(scenario(server.port)) == {"pong": True}
        assert len(server.requests) == 3


def test_async_exhaustion_raises_last_error():
    async def scenario(port):
        async with AsyncServiceClient(
                "127.0.0.1", port, retry=RetryPolicy(2, **FAST)) as c:
            await c.call("ping")

    with _ScriptServer(["overloaded", "timeout", "ok"]) as server:
        with pytest.raises(ServiceError) as exc:
            _async(scenario(server.port))
        assert exc.value.code == "timeout"
        assert len(server.requests) == 2


def test_async_non_retryable_not_retried():
    async def scenario(port):
        async with AsyncServiceClient(
                "127.0.0.1", port, retry=RetryPolicy(5, **FAST)) as c:
            await c.call("ping")

    with _ScriptServer(["not_found", "ok"]) as server:
        with pytest.raises(ServiceError) as exc:
            _async(scenario(server.port))
        assert exc.value.code == "not_found"
        assert len(server.requests) == 1


def test_async_reconnects_after_drop():
    async def scenario(port):
        async with AsyncServiceClient(
                "127.0.0.1", port, retry=RetryPolicy(3, **FAST)) as c:
            return await c.call("ping")

    with _ScriptServer(["drop", "ok"]) as server:
        assert _async(scenario(server.port)) == {"pong": True}
        assert server.connections == 2


def test_async_deadline_cuts_retries_short():
    async def scenario(port):
        async with AsyncServiceClient(
                "127.0.0.1", port,
                retry=RetryPolicy(50, base=0.1, cap=0.5)) as c:
            await c.call("ping", deadline=0.3)

    with _ScriptServer(["overloaded"] * 50) as server:
        start = time.monotonic()
        with pytest.raises(ServiceError) as exc:
            _async(scenario(server.port))
        assert exc.value.code == "overloaded"
        assert time.monotonic() - start < 2.0
        assert len(server.requests) < 50


# -- worker_lost reconnect storms and poison verdicts -------------------------
#
# A fleet losing workers answers ``worker_lost`` repeatedly while the
# pool respawns; clients must ride the storm (each attempt re-sent, the
# deadline envelope shrinking monotonically) without retrying forever.
# A ``poison_input`` verdict is the opposite contract: the server has
# durably quarantined the request, so retrying it is pure waste — the
# client must surface it on the first answer, storm or no storm.

def test_worker_lost_storm_is_retried_to_success():
    with _ScriptServer(["worker_lost"] * 4 + ["ok"]) as server:
        with ServiceClient("127.0.0.1", server.port,
                           retry=RetryPolicy(6, **FAST)) as client:
            assert client.call("ping") == {"pong": True}
        assert len(server.requests) == 5


def test_worker_lost_storm_deadline_clamps_monotonically():
    """Every re-sent attempt carries a strictly smaller budget: the
    respawn storm cannot reset or stretch the caller's deadline."""
    with _ScriptServer(["worker_lost"] * 3 + ["ok"]) as server:
        with ServiceClient("127.0.0.1", server.port,
                           retry=RetryPolicy(6, base=0.01, cap=0.02)
                           ) as client:
            client.call("ping", deadline=30.0)
        budgets = [req["deadline"] for req in server.requests]
        assert len(budgets) == 4
        assert all(0 < b <= 30.0 for b in budgets)
        assert budgets == sorted(budgets, reverse=True)
        assert len(set(budgets)) == len(budgets)  # strictly shrinking


def test_worker_lost_storm_exhausts_within_deadline():
    with _ScriptServer(["worker_lost"] * 50) as server:
        policy = RetryPolicy(50, base=0.1, multiplier=2.0, cap=0.5)
        with ServiceClient("127.0.0.1", server.port,
                           retry=policy) as client:
            start = time.monotonic()
            with pytest.raises(ServiceError) as exc:
                client.call("ping", deadline=0.3)
            elapsed = time.monotonic() - start
        assert exc.value.code == "worker_lost"
        assert elapsed < 2.0
        assert 1 <= len(server.requests) < 50


def test_poison_input_is_not_retryable_by_contract():
    assert protocol.E_POISON_INPUT not in protocol.RETRYABLE
    assert not ServiceError(protocol.E_POISON_INPUT, "").retryable
    assert not RetryPolicy().retries(protocol.E_POISON_INPUT)


def test_poison_input_exhausts_immediately_sync():
    with _ScriptServer(["poison_input", "ok"]) as server:
        with ServiceClient("127.0.0.1", server.port,
                           retry=RetryPolicy(8, **FAST)) as client:
            with pytest.raises(ServiceError) as exc:
                client.call("ping")
        assert exc.value.code == "poison_input"
        assert len(server.requests) == 1  # no second attempt


def test_poison_after_worker_lost_storm_stops_retrying():
    """The storm is absorbed, but the first poison verdict ends the
    call: retryable and non-retryable answers compose correctly."""
    with _ScriptServer(["worker_lost", "worker_lost",
                        "poison_input", "ok"]) as server:
        with ServiceClient("127.0.0.1", server.port,
                           retry=RetryPolicy(8, **FAST)) as client:
            with pytest.raises(ServiceError) as exc:
                client.call("ping")
        assert exc.value.code == "poison_input"
        assert len(server.requests) == 3
        assert server.script == ["ok"]


def test_async_worker_lost_storm_retried_to_success():
    async def scenario(port):
        async with AsyncServiceClient(
                "127.0.0.1", port, retry=RetryPolicy(6, **FAST)) as c:
            return await c.call("ping")

    with _ScriptServer(["worker_lost"] * 3 + ["ok"]) as server:
        assert _async(scenario(server.port)) == {"pong": True}
        assert len(server.requests) == 4


def test_async_poison_input_exhausts_immediately():
    async def scenario(port):
        async with AsyncServiceClient(
                "127.0.0.1", port, retry=RetryPolicy(8, **FAST)) as c:
            await c.call("ping")

    with _ScriptServer(["poison_input", "ok"]) as server:
        with pytest.raises(ServiceError) as exc:
            _async(scenario(server.port))
        assert exc.value.code == "poison_input"
        assert len(server.requests) == 1
