"""Golden-equivalence sweep for the GrammarProgram refactor (ISSUE 5).

Every consumer moved onto the precompiled program under a bit-identical
contract: same compressed bytes, same decompressed modules, same
executed-operator counts as the seed implementation.  This sweep holds
the live paths to the frozen pre-refactor oracles
(:mod:`repro.compress.oracle`) across 50 fuzz seeds:

* tiling compression byte-identical per procedure (code, labels, block
  starts);
* decompression of the oracle's artifact round-trips to the original
  module;
* execution of the program-backed artifact matches the uncompressed
  module on exit code, output, and instret — through both engines;
* the Earley engine (on a subset: the unpruned oracle costs seconds per
  module) produces byte-identical output to its oracle, and to tiling.

Seeds 300-349: disjoint from test_differential (100-149) and
test_exec_equivalence (200-249).
"""

import pytest

from repro import compress_module, train_grammar
from repro.compress.decompress import decompress_module
from repro.compress.oracle import oracle_compress_module
from repro.corpus.synth import generate_program
from repro.interp.compiled import CompiledEngine
from repro.interp.interp1 import Interpreter1
from repro.interp.interp2 import Interpreter2
from repro.interp.runtime import Machine
from repro.minic import compile_source
from repro.storage import save_module

GOLDEN_SEEDS = list(range(300, 350))
EARLEY_SEEDS = GOLDEN_SEEDS[::13]  # the unpruned oracle is slow


@pytest.fixture(scope="module")
def golden_grammar():
    corpus = [compile_source(generate_program(10, seed=s))
              for s in (311, 312, 313)]
    grammar, _ = train_grammar(corpus)
    return grammar


def _artifact(cmod):
    """Everything the compressed container carries, comparably."""
    return [
        (p.name, p.code, tuple(p.labels), tuple(p.block_starts),
         p.framesize, p.argsize, p.needs_trampoline)
        for p in cmod.procedures
    ]


def _observe(program, executor):
    machine = Machine(program, executor)
    code = machine.run()
    return code, bytes(machine.output), machine.instret


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
def test_golden_equivalence(seed, golden_grammar):
    module = compile_source(generate_program(4, seed=seed))

    new = compress_module(golden_grammar, module)
    oracle = oracle_compress_module(golden_grammar, module)
    assert _artifact(new) == _artifact(oracle), \
        f"seed {seed}: compressed artifacts diverged"

    # Decompression (itself program-backed via the flattened tables)
    # round-trips the oracle's bytes to the original module.
    assert save_module(decompress_module(oracle)) == save_module(module), \
        f"seed {seed}: decompression round trip broke"

    # Execution: both compressed engines agree with the uncompressed
    # module on everything observable, instret included.
    baseline = _observe(module, Interpreter1(module))
    assert _observe(new, CompiledEngine(new)) == baseline, \
        f"seed {seed}: compiled engine diverged"
    assert _observe(new, Interpreter2(new)) == baseline, \
        f"seed {seed}: reference engine diverged"


@pytest.mark.parametrize("seed", EARLEY_SEEDS)
def test_golden_equivalence_earley_engine(seed, golden_grammar):
    module = compile_source(generate_program(4, seed=seed))
    new = compress_module(golden_grammar, module, engine="earley")
    oracle = oracle_compress_module(golden_grammar, module,
                                    engine="earley")
    assert _artifact(new) == _artifact(oracle), \
        f"seed {seed}: pruned Earley diverged from unpruned oracle"
    # Both live engines find equal-length (minimum) derivations; the
    # concrete bytes may differ where equal-cost derivations tie.
    tiled = compress_module(golden_grammar, module)
    assert [len(p.code) for p in new.procedures] == \
        [len(p.code) for p in tiled.procedures], \
        f"seed {seed}: earley vs tiling derivation lengths diverged"
