"""Tests for the textual assembler, module packaging, and the validator."""

import pytest

from repro.bytecode import (
    AssemblyError,
    ProcedureBuilder,
    ValidationError,
    assemble,
    disassemble,
    validate_module,
)
from repro.bytecode.instructions import iter_decode
from repro.bytecode.module import (
    DESCRIPTOR_BYTES,
    GLOBAL_ENTRY_BYTES,
    LABEL_ENTRY_BYTES,
    TRAMPOLINE_BYTES,
)

# The paper's running example (Section 4): void check(int flag) { if
# (flag == 0) exit(0); }  -- encoded as in the text.
CHECK_ASM = """
.entry check
.global exit lib
.proc check framesize=0 trampoline
    ADDRFP 0 0
    INDIRU
    LIT1 0
    NEU
    BrTrue @done
    LIT1 0
    ARGU
    ADDRGP $exit
    CALLU
    POPU
done:
    RETV
.endproc
"""


def test_assemble_paper_example():
    module = assemble(CHECK_ASM)
    validate_module(module)
    proc = module.proc_by_name("check")
    names = [ins.op.name for _, ins in iter_decode(proc.code)]
    assert names == [
        "ADDRFP", "INDIRU", "LIT1", "NEU", "BrTrue", "LIT1", "ARGU",
        "ADDRGP", "CALLU", "POPU", "LABELV", "RETV",
    ]
    # One label, pointing at the LABELV byte.
    assert len(proc.labels) == 1
    labelv_off = proc.labels[0]
    assert proc.code[labelv_off] == [
        ins.op.code for _, ins in iter_decode(proc.code)
        if ins.op.name == "LABELV"
    ][0]
    assert module.entry == 0
    assert proc.needs_trampoline


def test_disassemble_reassemble_roundtrip():
    module = assemble(CHECK_ASM)
    text = disassemble(module)
    module2 = assemble(text)
    assert [p.code for p in module2.procedures] == [
        p.code for p in module.procedures
    ]
    assert [p.labels for p in module2.procedures] == [
        p.labels for p in module.procedures
    ]


def test_forward_and_backward_branches():
    module = assemble("""
.proc loop framesize=4
top:
    ADDRLP 0 0
    INDIRU
    BrTrue @body
    RETV
body:
    JUMPV @top
.endproc
""")
    validate_module(module)
    proc = module.procedures[0]
    assert len(proc.labels) == 2
    assert proc.labels[0] == 0  # 'top' at the very start


def test_undefined_label_rejected():
    with pytest.raises(AssemblyError, match="undefined label"):
        assemble(".proc f\n    JUMPV @nowhere\n.endproc\n")


def test_duplicate_label_rejected():
    with pytest.raises(AssemblyError, match="defined twice"):
        assemble(".proc f\na:\na:\n    RETV\n.endproc\n")


def test_global_and_proc_operands():
    module = assemble("""
.global counter data 0
.bss 4
.proc inc framesize=0
    ADDRGP $counter
    ADDRGP $counter
    INDIRU
    LIT1 1
    ADDU
    ASGNU
    RETV
.endproc
.proc main framesize=0 trampoline
    LocalCALLV %inc
    RETV
.endproc
""")
    validate_module(module)
    inc = module.proc_by_name("inc")
    ins = next(i for _, i in iter_decode(inc.code) if i.op.name == "ADDRGP")
    assert ins.literal() == 0
    main = module.proc_by_name("main")
    call = next(i for _, i in iter_decode(main.code)
                if i.op.name == "LocalCALLV")
    assert call.literal() == module.proc_index("inc")


def test_builder_rejects_wrong_arity():
    b = ProcedureBuilder("f")
    with pytest.raises(AssemblyError):
        b.emit("LIT2", 1)
    with pytest.raises(AssemblyError):
        b.emit("ADDU", 1)


def test_size_accounting():
    module = assemble(CHECK_ASM)
    proc = module.procedures[0]
    breakdown = module.size_breakdown()
    assert breakdown["bytecode"] == len(proc.code)
    assert breakdown["label_tables"] == LABEL_ENTRY_BYTES
    assert breakdown["descriptors"] == DESCRIPTOR_BYTES
    assert breakdown["global_table"] == GLOBAL_ENTRY_BYTES
    assert breakdown["trampolines"] == TRAMPOLINE_BYTES


# -- validator ------------------------------------------------------------

def test_validator_catches_underflow():
    module = assemble(".proc f\n    ADDU\n    POPU\n    RETV\n.endproc\n")
    with pytest.raises(ValidationError, match="pops from empty stack"):
        validate_module(module)


def test_validator_catches_nonempty_stack_at_label():
    module = assemble("""
.proc f
    LIT1 1
l:
    POPU
    RETV
.endproc
""")
    with pytest.raises(ValidationError, match="at LABELV"):
        validate_module(module)


def test_validator_catches_nonempty_stack_at_end():
    module = assemble(".proc f\n    LIT1 1\n.endproc\n")
    with pytest.raises(ValidationError, match="at end of code"):
        validate_module(module)


def test_validator_catches_bad_label_index():
    module = assemble(".proc f\n    RETV\n.endproc\n")
    proc = module.procedures[0]
    from repro.bytecode.opcodes import opcode
    bad = bytes([opcode("JUMPV"), 5, 0]) + proc.code
    module.procedures[0] = type(proc)(
        proc.name, bad, proc.labels, proc.framesize, proc.needs_trampoline
    )
    with pytest.raises(ValidationError, match="label index"):
        validate_module(module)


def test_validator_catches_bad_global_index():
    module = assemble(
        ".proc f\n    ADDRGP 9 0\n    POPU\n    RETV\n.endproc\n"
    )
    with pytest.raises(ValidationError, match="global index"):
        validate_module(module)


def test_validator_accepts_empty_blocks():
    module = assemble(".proc f\na:\nb:\n    RETV\n.endproc\n")
    validate_module(module)
