"""Differential execution equivalence: three engines, one behaviour.

The direct-threaded engine (:class:`~repro.interp.compiled.CompiledEngine`)
claims to be a pure performance transformation of the paper's generated
``interpNT``.  This suite holds it to that claim across a 50-seed fuzz
corpus, running every program three ways:

(a) the compiled engine on the compressed form,
(b) the reference ``interp2`` on the same compressed form,
(c) ``interp1`` on the decompressed bytecode,

and asserting identical exit codes, output traces, executed-operator
counts, and complete end-of-run memory images.  Fault behaviour gets its
own section: divide-by-zero and out-of-bounds traps must carry the same
message from every engine, and a trap at any dispatch depth must unwind
the compiled engine's explicit return stack cleanly — the engine object
stays reusable afterwards.
"""

import pytest

from repro import compress_module, train_grammar
from repro.bytecode.assembler import assemble
from repro.compress.decompress import decompress_module
from repro.corpus.synth import generate_program
from repro.interp.compiled import CompiledEngine
from repro.interp.interp1 import Interpreter1
from repro.interp.interp2 import Interpreter2
from repro.interp.memory import MemoryError_
from repro.interp.runtime import Machine
from repro.interp.state import Trap
from repro.minic import compile_source

# Disjoint from test_differential's 100..149 sweep.
EQUIV_SEEDS = list(range(200, 250))
PROFILE_SEEDS = EQUIV_SEEDS[::11]


@pytest.fixture(scope="module")
def equiv_grammar():
    corpus = [compile_source(generate_program(10, seed=s))
              for s in (311, 312, 313)]
    grammar, _ = train_grammar(corpus)
    return grammar


def _observe(program, executor, *args, input_data=b""):
    """Run to completion, capturing everything observable."""
    machine = Machine(program, executor, input_data=input_data)
    code = machine.run(*args)
    return {
        "code": code,
        "output": bytes(machine.output),
        "instret": machine.instret,
        "memory": bytes(machine.memory._bytes),
    }


def _three_ways(cmod):
    module = decompress_module(cmod)
    return (
        _observe(cmod, CompiledEngine(cmod)),
        _observe(cmod, Interpreter2(cmod)),
        _observe(module, Interpreter1(module)),
    )


@pytest.mark.parametrize("seed", EQUIV_SEEDS)
def test_three_engines_agree(seed, equiv_grammar):
    module = compile_source(generate_program(4, seed=seed))
    cmod = compress_module(equiv_grammar, module)
    compiled, reference, uncompressed = _three_ways(cmod)
    assert compiled == reference, f"seed {seed}: engines diverged"
    assert compiled == uncompressed, \
        f"seed {seed}: compressed vs raw diverged"


@pytest.mark.parametrize("seed", PROFILE_SEEDS)
def test_profiled_compiled_engine_agrees(seed, equiv_grammar):
    """The instrumented walk over the flattened tables executes the
    identical operator stream, and its dispatch histogram accounts for
    every rule fetch."""
    from repro.interp.profile import profile_run

    module = compile_source(generate_program(4, seed=seed))
    cmod = compress_module(equiv_grammar, module)
    c1, o1, p1 = profile_run(module)
    c2, o2, p2 = profile_run(cmod, engine="compiled")
    assert (c1, o1) == (c2, o2), f"seed {seed}"
    assert p1.operators == p2.operators, f"seed {seed}"
    assert sum(p2.dispatch_depth.values()) == sum(p2.rules.values())
    assert p2.dispatch_depth  # the engine actually dispatched


# -- fault behaviour -----------------------------------------------------------

DIV_BY_ZERO = """
int main() {
    int a;
    a = 5;
    return a / (a - 5);
}
"""

# An out-of-bounds load from deep inside an expression — the trap fires
# with pending right-hand-side work on the compiled engine's return stack.
OOB_LOAD = """
.entry main
.proc main framesize=4
    ADDRLP 0 0
    LIT4 240 255 255 255
    INDIRU
    ASGNU
    ADDRLP 0 0
    INDIRU
    RETU
.endproc
"""

GOOD_AFTER = """
int main() { return 41 + 1; }
"""


def _trap_three_ways(cmod, exc_type):
    module = decompress_module(cmod)
    messages = []
    for program, executor in (
        (cmod, CompiledEngine(cmod)),
        (cmod, Interpreter2(cmod)),
        (module, Interpreter1(module)),
    ):
        machine = Machine(program, executor)
        with pytest.raises(exc_type) as trap:
            machine.run()
        messages.append(str(trap.value))
    return messages


def test_div_by_zero_faults_identically(equiv_grammar):
    cmod = compress_module(equiv_grammar, compile_source(DIV_BY_ZERO))
    messages = _trap_three_ways(cmod, Trap)
    assert len(set(messages)) == 1, messages
    assert "division by zero" in messages[0]


def test_oob_load_faults_identically(equiv_grammar):
    cmod = compress_module(equiv_grammar, assemble(OOB_LOAD))
    messages = _trap_three_ways(cmod, MemoryError_)
    assert len(set(messages)) == 1, messages
    assert "out of range" in messages[0]


def test_trap_unwinds_return_stack_and_engine_stays_usable(equiv_grammar):
    """A trap mid-derivation must not poison the engine: the return
    stack is per-activation, so the same engine (and its tables) must
    execute a clean program correctly right after the fault."""
    bad = compress_module(equiv_grammar, assemble(OOB_LOAD))
    engine = CompiledEngine(bad)
    for _ in range(2):  # fault twice: no state leaks between activations
        with pytest.raises(MemoryError_):
            Machine(bad, engine).run()
    good = compress_module(equiv_grammar, compile_source(GOOD_AFTER))
    # Same tables instance serves the new module's engine via the cache.
    again = CompiledEngine(good)
    assert again.tables is engine.tables
    assert Machine(good, again).run() == 42


def test_call_stack_overflow_unwinds_cleanly(equiv_grammar):
    """Deep bytecode recursion traps identically on every engine, with
    one explicit return stack per activation unwound at each level."""
    source = """
int loop(int n) { return loop(n + 1); }
int main() { return loop(0); }
"""
    cmod = compress_module(equiv_grammar, compile_source(source))
    messages = _trap_three_ways(cmod, Trap)
    assert len(set(messages)) == 1, messages
    assert "call stack overflow" in messages[0]
