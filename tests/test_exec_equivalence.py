"""Differential execution equivalence: four engines, one behaviour.

The direct-threaded engine (:class:`~repro.interp.compiled.CompiledEngine`)
claims to be a pure performance transformation of the paper's generated
``interpNT``, and the native engine (:mod:`repro.interp.native`) claims
the same for the C compiled from :func:`repro.interp.cgen.emit_native`.
This suite holds both to that claim across a 50-seed fuzz corpus,
running every program four ways:

(a) the compiled engine on the compressed form,
(b) the reference ``interp2`` on the same compressed form,
(c) ``interp1`` on the decompressed bytecode,
(d) the native machine-code engine on the compressed form
    (skipped with a reason when the host has no C compiler),

and asserting identical exit codes, output traces, executed-operator
counts, and complete end-of-run memory images.  Fault behaviour gets its
own section: divide-by-zero and out-of-bounds traps must carry the same
message from every engine — including every memory-trap shape from
``tests/test_memory.py`` replayed through the native engine as bytecode —
and a trap at any dispatch depth must unwind the compiled engine's
explicit return stack cleanly; the engine object stays reusable
afterwards.
"""

import pytest

from repro import compress_module, train_grammar
from repro.bytecode.assembler import assemble
from repro.compress.decompress import decompress_module
from repro.corpus.synth import generate_program
from repro.interp.compiled import CompiledEngine
from repro.interp.interp1 import Interpreter1
from repro.interp.interp2 import Interpreter2
from repro.interp.memory import MemoryError_
from repro.interp.native import NativeEngine, native_available
from repro.interp.nativebuild import NativeBuildCache
from repro.interp.runtime import Machine, MemoryLayout
from repro.interp.state import Trap
from repro.minic import compile_source

needs_cc = pytest.mark.skipif(
    not native_available(),
    reason="no C compiler on PATH: native engine unavailable")

# Disjoint from test_differential's 100..149 sweep.
EQUIV_SEEDS = list(range(200, 250))
PROFILE_SEEDS = EQUIV_SEEDS[::11]


@pytest.fixture(scope="module")
def equiv_grammar():
    corpus = [compile_source(generate_program(10, seed=s))
              for s in (311, 312, 313)]
    grammar, _ = train_grammar(corpus)
    return grammar


def _observe(program, executor, *args, input_data=b""):
    """Run to completion, capturing everything observable."""
    machine = Machine(program, executor, input_data=input_data)
    code = machine.run(*args)
    return {
        "code": code,
        "output": bytes(machine.output),
        "instret": machine.instret,
        "memory": bytes(machine.memory._bytes),
    }


def _three_ways(cmod):
    module = decompress_module(cmod)
    return (
        _observe(cmod, CompiledEngine(cmod)),
        _observe(cmod, Interpreter2(cmod)),
        _observe(module, Interpreter1(module)),
    )


@pytest.fixture(scope="module")
def native_cache(tmp_path_factory):
    """A private build cache so the suite measures its own compiles."""
    return NativeBuildCache(root=tmp_path_factory.mktemp("native-cache"))


def _observe_native(cmod, cache, *args, input_data=b""):
    run = NativeEngine(cmod, cache=cache).run(*args, input_data=input_data)
    return {
        "code": run.code,
        "output": run.output,
        "instret": run.instret,
        "memory": run.memory,
    }


@pytest.mark.parametrize("seed", EQUIV_SEEDS)
def test_three_engines_agree(seed, equiv_grammar):
    module = compile_source(generate_program(4, seed=seed))
    cmod = compress_module(equiv_grammar, module)
    compiled, reference, uncompressed = _three_ways(cmod)
    assert compiled == reference, f"seed {seed}: engines diverged"
    assert compiled == uncompressed, \
        f"seed {seed}: compressed vs raw diverged"


@pytest.mark.parametrize("seed", EQUIV_SEEDS)
def test_rcx2_roundtrip_matches_rcx1(seed, equiv_grammar):
    """The entropy-coded container is lossless: across the 50-seed
    sweep, ``decompress(rcx2(m))`` is byte-identical to
    ``decompress(rcx1(m))``, and the loaded RCX2 module executes with
    an identical observable trace (exit code, output, instret,
    memory)."""
    from repro.storage import load_compressed, save_compressed, save_module

    module = compile_source(generate_program(4, seed=seed))
    cmod = compress_module(equiv_grammar, module)
    via1 = load_compressed(save_compressed(cmod, format="rcx1"))
    via2 = load_compressed(save_compressed(cmod, format="rcx2"))
    assert save_module(decompress_module(via1)) == \
        save_module(decompress_module(via2)), f"seed {seed}"
    assert _observe(via1, CompiledEngine(via1)) == \
        _observe(via2, CompiledEngine(via2)), \
        f"seed {seed}: execution diverged across containers"


@pytest.mark.parametrize("seed", PROFILE_SEEDS)
def test_profiled_compiled_engine_agrees(seed, equiv_grammar):
    """The instrumented walk over the flattened tables executes the
    identical operator stream, and its dispatch histogram accounts for
    every rule fetch."""
    from repro.interp.profile import profile_run

    module = compile_source(generate_program(4, seed=seed))
    cmod = compress_module(equiv_grammar, module)
    c1, o1, p1 = profile_run(module)
    c2, o2, p2 = profile_run(cmod, engine="compiled")
    assert (c1, o1) == (c2, o2), f"seed {seed}"
    assert p1.operators == p2.operators, f"seed {seed}"
    assert sum(p2.dispatch_depth.values()) == sum(p2.rules.values())
    assert p2.dispatch_depth  # the engine actually dispatched


# -- fault behaviour -----------------------------------------------------------

DIV_BY_ZERO = """
int main() {
    int a;
    a = 5;
    return a / (a - 5);
}
"""

# An out-of-bounds load from deep inside an expression — the trap fires
# with pending right-hand-side work on the compiled engine's return stack.
OOB_LOAD = """
.entry main
.proc main framesize=4
    ADDRLP 0 0
    LIT4 240 255 255 255
    INDIRU
    ASGNU
    ADDRLP 0 0
    INDIRU
    RETU
.endproc
"""

GOOD_AFTER = """
int main() { return 41 + 1; }
"""


def _trap_three_ways(cmod, exc_type):
    module = decompress_module(cmod)
    messages = []
    for program, executor in (
        (cmod, CompiledEngine(cmod)),
        (cmod, Interpreter2(cmod)),
        (module, Interpreter1(module)),
    ):
        machine = Machine(program, executor)
        with pytest.raises(exc_type) as trap:
            machine.run()
        messages.append(str(trap.value))
    return messages


def test_div_by_zero_faults_identically(equiv_grammar):
    cmod = compress_module(equiv_grammar, compile_source(DIV_BY_ZERO))
    messages = _trap_three_ways(cmod, Trap)
    assert len(set(messages)) == 1, messages
    assert "division by zero" in messages[0]


def test_oob_load_faults_identically(equiv_grammar):
    cmod = compress_module(equiv_grammar, assemble(OOB_LOAD))
    messages = _trap_three_ways(cmod, MemoryError_)
    assert len(set(messages)) == 1, messages
    assert "out of range" in messages[0]


def test_trap_unwinds_return_stack_and_engine_stays_usable(equiv_grammar):
    """A trap mid-derivation must not poison the engine: the return
    stack is per-activation, so the same engine (and its tables) must
    execute a clean program correctly right after the fault."""
    bad = compress_module(equiv_grammar, assemble(OOB_LOAD))
    engine = CompiledEngine(bad)
    for _ in range(2):  # fault twice: no state leaks between activations
        with pytest.raises(MemoryError_):
            Machine(bad, engine).run()
    good = compress_module(equiv_grammar, compile_source(GOOD_AFTER))
    # Same tables instance serves the new module's engine via the cache.
    again = CompiledEngine(good)
    assert again.tables is engine.tables
    assert Machine(good, again).run() == 42


def test_call_stack_overflow_unwinds_cleanly(equiv_grammar):
    """Deep bytecode recursion traps identically on every engine, with
    one explicit return stack per activation unwound at each level."""
    source = """
int loop(int n) { return loop(n + 1); }
int main() { return loop(0); }
"""
    cmod = compress_module(equiv_grammar, compile_source(source))
    messages = _trap_three_ways(cmod, Trap)
    assert len(set(messages)) == 1, messages
    assert "call stack overflow" in messages[0]


# -- the fourth engine: native machine code -----------------------------------

CALL_OVERFLOW = """
int loop(int n) { return loop(n + 1); }
int main() { return loop(0); }
"""


@needs_cc
@pytest.mark.parametrize("seed", EQUIV_SEEDS)
def test_native_engine_agrees(seed, equiv_grammar, native_cache):
    """The four-engine differential sweep: the native run must be
    byte-identical (exit code, output, instret, complete final memory
    image) to the reference engine — which ``test_three_engines_agree``
    already holds identical to the other two Python engines."""
    module = compile_source(generate_program(4, seed=seed))
    cmod = compress_module(equiv_grammar, module)
    native = _observe_native(cmod, native_cache)
    reference = _observe(cmod, Interpreter2(cmod))
    assert native == reference, f"seed {seed}: native diverged"


@needs_cc
def test_native_dispatch_count_matches_compiled(equiv_grammar, native_cache):
    """instret is engine-invariant; dispatches (one per codeword byte)
    additionally match between the two table-walking engines."""
    module = compile_source(generate_program(4, seed=EQUIV_SEEDS[0]))
    cmod = compress_module(equiv_grammar, module)
    machine = Machine(cmod, CompiledEngine(cmod))
    machine.run()
    run = NativeEngine(cmod, cache=native_cache).run()
    assert run.instret == machine.instret
    assert run.dispatches == machine.dispatches


def _native_trap(cmod, cache, exc_type):
    with pytest.raises(exc_type) as trap:
        NativeEngine(cmod, cache=cache).run()
    return str(trap.value)


@needs_cc
@pytest.mark.parametrize("source, exc_type, fragment", [
    (DIV_BY_ZERO, Trap, "division by zero"),
    (CALL_OVERFLOW, Trap, "call stack overflow"),
], ids=["div_by_zero", "call_overflow"])
def test_native_trap_parity(equiv_grammar, native_cache,
                            source, exc_type, fragment):
    """Program faults unwind through the C engine into the same exception
    class with the same message the Python engines raise."""
    cmod = compress_module(equiv_grammar, compile_source(source))
    messages = _trap_three_ways(cmod, exc_type)
    native = _native_trap(cmod, native_cache, exc_type)
    assert set(messages) == {native}


@needs_cc
def test_native_oob_trap_parity(equiv_grammar, native_cache):
    cmod = compress_module(equiv_grammar, assemble(OOB_LOAD))
    messages = _trap_three_ways(cmod, MemoryError_)
    native = _native_trap(cmod, native_cache, MemoryError_)
    assert set(messages) == {native}


# Every memory-trap shape from tests/test_memory.py, replayed through the
# engines as bytecode.  (The negative-address unit case has no bytecode
# counterpart: addresses are 32-bit patterns, so "negative" pointers are
# just large ones — the far-OOB rows below.)  Loads and stores cover every
# access width; addresses probe both _check branches (addr past the end,
# and an in-range addr whose access straddles the end).
_LOAD_OPS = [("INDIRC", 1, "RETU"), ("INDIRS", 2, "RETU"),
             ("INDIRU", 4, "RETU"), ("INDIRF", 4, "RETF"),
             ("INDIRD", 8, "RETD")]
_STORE_OPS = [("ASGNC", 1, ""), ("ASGNS", 2, ""), ("ASGNU", 4, ""),
              ("ASGNF", 4, "CVIF"), ("ASGND", 8, "CVID")]


def _lit4(value):
    value &= 0xFFFFFFFF
    return (f"LIT4 {value & 0xFF} {(value >> 8) & 0xFF} "
            f"{(value >> 16) & 0xFF} {(value >> 24) & 0xFF}")


def _load_probe(op, addr, ret):
    return assemble(f"""
.entry main
.proc main framesize=0
    {_lit4(addr)}
    {op}
    {ret}
.endproc
""")


def _store_probe(op, addr, convert):
    return assemble(f"""
.entry main
.proc main framesize=0
    {_lit4(addr)}
    LIT1 7
    {convert}
    {op}
    RETV
.endproc
""")


def _memory_trap_cases():
    total = MemoryLayout.for_program(_load_probe("INDIRU", 0, "RETU")).total
    cases = []
    for op, width, ret in _LOAD_OPS:
        cases.append((f"{op}-far", _load_probe(op, 0xFFFFFFF0, ret)))
        cases.append(
            (f"{op}-straddle", _load_probe(op, total - width + 1, ret)))
    for op, width, convert in _STORE_OPS:
        cases.append((f"{op}-far", _store_probe(op, 0xFFFFFFF0, convert)))
        cases.append(
            (f"{op}-straddle", _store_probe(op, total - width + 1, convert)))
    return cases


@needs_cc
@pytest.mark.parametrize(
    "module", [c[1] for c in _memory_trap_cases()],
    ids=[c[0] for c in _memory_trap_cases()])
def test_native_memory_trap_parity(equiv_grammar, native_cache, module):
    cmod = compress_module(equiv_grammar, module)
    messages = _trap_three_ways(cmod, MemoryError_)
    native = _native_trap(cmod, native_cache, MemoryError_)
    assert set(messages) == {native}
    assert "out of range" in native


UNTERMINATED_STRING = """
.entry main
.global strlen lib
.proc main framesize=0
    LIT4 0 0 0 255
    ARGU
    ADDRGP $strlen
    CALLU
    RETU
.endproc
"""


@needs_cc
def test_native_unterminated_string_parity(equiv_grammar, native_cache):
    cmod = compress_module(equiv_grammar, assemble(UNTERMINATED_STRING))
    messages = _trap_three_ways(cmod, MemoryError_)
    native = _native_trap(cmod, native_cache, MemoryError_)
    assert set(messages) == {native}
    assert "unterminated string" in native


@needs_cc
def test_native_engine_reusable_after_trap(equiv_grammar, native_cache):
    """A trap longjmps clean out of the C engine: the same loaded object
    (and the same engine instance) executes correctly afterwards."""
    bad = compress_module(equiv_grammar, assemble(OOB_LOAD))
    engine = NativeEngine(bad, cache=native_cache)
    for _ in range(2):
        with pytest.raises(MemoryError_):
            engine.run()
    good = compress_module(equiv_grammar, compile_source(GOOD_AFTER))
    assert NativeEngine(good, cache=native_cache).run().code == 42


@needs_cc
def test_native_getchar_roundtrip(equiv_grammar, native_cache):
    """Input plumbing: getchar drains the request's input bytes and then
    reports EOF, identically to the Python machine."""
    source = """
int main() {
    int c;
    c = getchar();
    while (c + 1 != 0) {
        putchar(c);
        c = getchar();
    }
    return 0;
}
"""
    cmod = compress_module(equiv_grammar, compile_source(source))
    payload = b"grammar!"
    native = _observe_native(cmod, native_cache, input_data=payload)
    reference = _observe(cmod, Interpreter2(cmod), input_data=payload)
    assert native == reference
    assert native["output"] == payload


# -- execution budgets ---------------------------------------------------------
#
# The dispatch budget is part of the observable contract: the compiled
# engine, the reference interpreter, and the native engine all count
# *rule dispatches* and must trap at the identical dispatch with the
# identical message.  interp1 runs decompressed bytecode — it has no
# rule dispatches — so its budget counts instruction fetches instead;
# it still raises the same exception class, just not at a comparable
# point, which is why it sits outside the parity assertions below.

from repro.interp.state import BudgetExceeded  # noqa: E402


def _budget_total(cmod):
    """Total rule dispatches of a clean run on the compiled engine."""
    machine = Machine(cmod, CompiledEngine(cmod))
    machine.run()
    return machine.dispatches


def test_budget_trap_parity_compressed_engines(equiv_grammar):
    cmod = compress_module(equiv_grammar, compile_source(
        generate_program(4, seed=EQUIV_SEEDS[1])))
    total = _budget_total(cmod)
    assert total > 1
    budget = total - 1
    messages = []
    for executor in (CompiledEngine(cmod), Interpreter2(cmod)):
        machine = Machine(cmod, executor, budget=budget)
        with pytest.raises(BudgetExceeded) as trap:
            machine.run()
        messages.append(str(trap.value))
        # the trap fires on the first dispatch past the budget, exactly
        assert machine.dispatches == budget + 1
    assert len(set(messages)) == 1, messages
    assert messages[0] == BudgetExceeded.message(budget)


def test_budget_exact_boundary_is_not_a_trap(equiv_grammar):
    """A run whose dispatch count equals the budget completes: the
    budget bounds work, it does not shave the last dispatch."""
    cmod = compress_module(equiv_grammar, compile_source(
        generate_program(4, seed=EQUIV_SEEDS[2])))
    total = _budget_total(cmod)
    unlimited = _observe(cmod, CompiledEngine(cmod))
    machine = Machine(cmod, CompiledEngine(cmod), budget=total)
    code = machine.run()
    assert code == unlimited["code"]
    assert bytes(machine.output) == unlimited["output"]


def test_budget_zero_means_unlimited(equiv_grammar):
    cmod = compress_module(equiv_grammar, compile_source(GOOD_AFTER))
    assert Machine(cmod, CompiledEngine(cmod), budget=0).run() == 42


def test_budget_on_decompressed_bytecode(equiv_grammar):
    """interp1 honours the budget too (counting instruction fetches):
    a tiny budget traps, a generous one does not."""
    module = compile_source(GOOD_AFTER)
    with pytest.raises(BudgetExceeded):
        Machine(module, Interpreter1(module), budget=1).run()
    assert Machine(module, Interpreter1(module),
                   budget=10_000_000).run() == 42


@needs_cc
def test_native_budget_trap_parity(equiv_grammar, native_cache):
    """The C engine's compiled-in budget check trips at the identical
    dispatch with the identical message as the Python engines."""
    cmod = compress_module(equiv_grammar, compile_source(
        generate_program(4, seed=EQUIV_SEEDS[3])))
    total = _budget_total(cmod)
    budget = total - 1
    machine = Machine(cmod, CompiledEngine(cmod), budget=budget)
    with pytest.raises(BudgetExceeded) as py_trap:
        machine.run()
    engine = NativeEngine(cmod, cache=native_cache)
    with pytest.raises(BudgetExceeded) as c_trap:
        engine.run(budget=budget)
    assert str(c_trap.value) == str(py_trap.value)
    # exact boundary completes natively, byte-identical to unlimited
    assert engine.run(budget=total) == engine.run()
