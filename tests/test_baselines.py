"""Unit tests for the baseline compressors."""

import pytest

from repro.baselines.gzipref import (
    gzip_ratio,
    gzip_size,
    gzip_size_per_block,
    split_blocks,
)
from repro.baselines.huffman import build_code, compressed_size
from repro.baselines.superop import train_superoperators
from repro.baselines.tunstall import build_code as build_tunstall
from repro.baselines.tunstall import compressed_size_blocks
from repro.bytecode import assemble
from repro.grammar.cfg import is_nonterminal
from repro.minic import compile_source


# -- Huffman -----------------------------------------------------------------

def test_huffman_roundtrip():
    data = b"abracadabra" * 20 + bytes(range(30))
    code = build_code(data)
    encoded = code.encode(data)
    assert code.decode(encoded, len(data)) == data


def test_huffman_beats_raw_on_skewed_data():
    data = b"\x00" * 900 + bytes(range(100))
    assert compressed_size(data, include_table=False) < len(data)


def test_huffman_kraft_inequality():
    data = bytes(range(256)) * 3 + b"aaa" * 100
    code = build_code(data)
    assert sum(2.0 ** -length for length in code.lengths.values()) <= 1.0


def test_huffman_frequent_symbols_get_short_codes():
    data = b"a" * 1000 + b"bcdefgh"
    code = build_code(data)
    assert code.lengths[ord("a")] <= min(
        code.lengths[ord(c)] for c in "bcdefgh"
    )


def test_huffman_single_symbol():
    code = build_code(b"xxxx")
    assert code.decode(code.encode(b"xxxx"), 4) == b"xxxx"


def test_huffman_empty():
    assert compressed_size(b"", include_table=False) == 0


# -- Tunstall ----------------------------------------------------------------

def test_tunstall_dictionary_size():
    code = build_tunstall([b"ababab" * 50], codeword_bits=8)
    assert len(code.entries) <= 256
    # With two symbols, the tree grows deep entries.
    assert code.max_len > 1


def test_tunstall_skewed_source_compresses():
    blocks = [b"a" * 64] * 8
    code = build_tunstall(blocks, codeword_bits=8)
    total = sum(len(b) for b in blocks)
    assert compressed_size_blocks(code, blocks,
                                  include_table=False) < total


def test_tunstall_block_restart_costs():
    data = b"ab" * 256
    code = build_tunstall([data], codeword_bits=8)
    one = compressed_size_blocks(code, [data], include_table=False)
    # Same bytes chopped into 64 blocks: restarts can only cost codewords.
    many = compressed_size_blocks(
        code, [data[i:i + 8] for i in range(0, len(data), 8)],
        include_table=False,
    )
    assert many >= one


def test_tunstall_unique_parse_covers_all_bytes():
    blocks = [bytes(range(16)) * 4]
    code = build_tunstall(blocks, codeword_bits=8)
    used, _ = code.encode_block(blocks[0])
    assert used >= 1


# -- gzip reference -------------------------------------------------------------

@pytest.fixture(scope="module")
def module():
    return compile_source("""
int a[64];
int main(void) {
    int i, s;
    s = 0;
    for (i = 0; i < 64; i++) a[i] = i;
    for (i = 0; i < 64; i++) s += a[i];
    return s & 127;
}
""")


def test_gzip_compresses(module):
    assert gzip_size(module) < module.code_bytes
    assert 0 < gzip_ratio(module) < 1


def test_gzip_per_block_worse(module):
    assert gzip_size_per_block(module) > gzip_size(module)


def test_split_blocks_reconstructs(module):
    from repro.bytecode.opcodes import opcode
    labelv = bytes([opcode("LABELV")])
    for proc in module.procedures:
        blocks = split_blocks(proc.code)
        assert labelv.join(blocks) == proc.code


def test_split_blocks_ignores_labelv_valued_literals():
    """A literal byte equal to the LABELV opcode must not split a block."""
    from repro.bytecode.opcodes import opcode
    lv = opcode("LABELV")
    module = assemble(f"""
.proc f framesize=0
    LIT1 {lv}
    ARGU
    RETV
.endproc
""")
    blocks = split_blocks(module.procedures[0].code)
    assert len(blocks) == 1


# -- superoperators ---------------------------------------------------------------

def test_superoperators_never_span_statements(module):
    grammar, report = train_superoperators([module])
    start = grammar.nonterminal("start")
    assert report.rules_added > 0
    for rule in grammar:
        if rule.origin == "inlined":
            assert rule.lhs != start


def test_superoperators_nolit_have_no_burned_bytes(module):
    from repro.grammar.cfg import is_byte_terminal
    grammar, _ = train_superoperators([module], allow_literals=False)
    for rule in grammar:
        if rule.origin == "inlined":
            assert not any(is_byte_terminal(s) for s in rule.rhs)


def test_superoperator_grammar_compresses_correctly(module):
    from repro.compress.compressor import Compressor
    from repro.compress.decompress import decompress_module

    grammar, _ = train_superoperators([module])
    cmod = Compressor(grammar).compress_module(module)
    assert cmod.code_bytes < module.code_bytes
    back = decompress_module(cmod)
    assert back.procedures[0].code == module.procedures[0].code
