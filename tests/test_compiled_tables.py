"""Structural invariants of the flattened rule tables.

:class:`~repro.interp.tables.CompiledTables` is the load-time compile
pass everything downstream trusts: the direct-threaded engine dispatches
on its rows without bounds checks, the decompressor replays its emit
specs, and the profiler walks its symbolic plans.  These tests pin the
invariants that make that sharing safe — row padding, emit/plan
agreement, call-site resolution, step-kind selection, and the
:class:`~repro.interp.tables.TableError` diagnostics for malformed
grammars.
"""

import pytest

from repro import train_grammar
from repro.bytecode.opcodes import OP_BY_CODE, opcode
from repro.corpus.synth import generate_program
from repro.grammar.cfg import (
    Grammar,
    byte_terminal,
    is_nonterminal,
)
from repro.grammar.initial import initial_grammar
from repro.interp.tables import (
    STEP_BAD,
    STEP_CALL,
    STEP_OP1,
    STEP_RUN,
    CompiledTables,
    TableError,
    compiled_tables,
)
from repro.minic import compile_source


@pytest.fixture(scope="module")
def trained():
    corpus = [compile_source(generate_program(10, seed=s))
              for s in (331, 332, 333)]
    grammar, _ = train_grammar(corpus)
    return grammar, compiled_tables(grammar)


def test_compiled_tables_is_cached_per_grammar(trained):
    grammar, tables = trained
    assert compiled_tables(grammar) is tables
    assert compiled_tables(initial_grammar()) is not tables


def test_byte_nonterminal_owns_no_row(trained):
    grammar, tables = trained
    assert tables.byte_nt not in tables.row_of
    assert len(tables.rows) == len(grammar.nonterminals) - 1
    assert tables.nt_of_row[tables.start_row] == grammar.start


def test_rows_padded_to_256_with_bad_sentinels(trained):
    grammar, tables = trained
    for row, programs in enumerate(tables.rows):
        assert len(programs) == CompiledTables.ROW_SIZE
        nrules = tables.nrules[row]
        name = grammar.nt_name(tables.nt_of_row[row])
        for cw in range(nrules, CompiledTables.ROW_SIZE):
            steps = programs[cw]
            assert len(steps) == 1 and steps[0][0] == STEP_BAD
            assert f"codeword {cw}" in steps[0][1]
            assert f"<{name}>" in steps[0][1]


def test_program_rejects_out_of_range_codeword(trained):
    grammar, tables = trained
    with pytest.raises(TableError, match="out of range"):
        tables.program(grammar.start, tables.nrules[tables.start_row])


def test_rule_ids_mirror_grammar_order(trained):
    grammar, tables = trained
    for row, nt in enumerate(tables.nt_of_row):
        rules = grammar.rules_for(nt)
        assert tables.rule_ids[row] == [r.id for r in rules]
        assert tables.nrules[row] == len(rules)


def _live_programs(grammar, tables):
    for row, nt in enumerate(tables.nt_of_row):
        for cw, rule in enumerate(grammar.rules_for(nt)):
            yield rule, tables.rows[row][cw]


def test_call_steps_resolve_to_rhs_nonterminals_in_order(trained):
    grammar, tables = trained
    for rule, steps in _live_programs(grammar, tables):
        call_rows = [s[2] for s in steps if s[0] == STEP_CALL]
        rhs_nts = [sym for sym in rule.rhs
                   if is_nonterminal(sym) and sym != tables.byte_nt]
        assert [tables.nt_of_row[r] for r in call_rows] == rhs_nts
        for step in steps:
            if step[0] == STEP_CALL:
                # Resolved to the row's program list itself, not a copy.
                assert step[1] is tables.rows[step[2]]


def _emit_tokens(emit):
    """Normalize an emit spec to (burned bytes..., "S" per stream byte)."""
    out = []
    for item in emit:
        if isinstance(item, int):
            out.extend("S" * item)
        else:
            out.extend(item)
    return out


def test_emit_specs_agree_with_plans(trained):
    """What a RUN step emits is exactly its opcode bytes interleaved
    with burned operands, with one stream copy per ``None`` plan slot —
    the decompressor's view and the engine's view are the same table."""
    grammar, tables = trained
    checked = 0
    for rule, steps in _live_programs(grammar, tables):
        for step in steps:
            if step[0] == STEP_RUN:
                _, _fused, nops, opcodes, plans, emit = step
                assert nops == len(opcodes) == len(plans)
                expected = []
                for op, plan in zip(opcodes, plans):
                    expected.append(op)
                    for b in plan:
                        expected.append("S" if b is None else b)
                assert _emit_tokens(emit) == expected
                checked += 1
            elif step[0] == STEP_OP1:
                _, _handler, operands, op, emit = step
                assert None not in operands
                assert emit == bytes((op,) + operands)
                assert OP_BY_CODE[op].nlit == len(operands)
                checked += 1
    assert checked > 50


def test_step_kind_selection(trained):
    """Lone burned operators use the direct-handler step only when no
    inline template exists; everything else is a fused run."""
    grammar, tables = trained
    kinds = {}
    for rule, steps in _live_programs(grammar, tables):
        if len(rule.rhs) == 1 and not is_nonterminal(rule.rhs[0]):
            kinds[OP_BY_CODE[rule.rhs[0]].name] = steps[0][0]
    # ADDU has an inline template -> fused; DIVU guards division by zero
    # in its handler and must stay on the handler path.
    assert kinds["ADDU"] == STEP_RUN
    assert kinds["DIVU"] == STEP_OP1


def test_identical_runs_are_generated_once(trained):
    """The fused-function memo dedups identical runs across rules."""
    grammar, tables = trained
    seen = {}
    shared = 0
    for _rule, steps in _live_programs(grammar, tables):
        for step in steps:
            if step[0] != STEP_RUN:
                continue
            key = tuple(zip(step[3], step[4]))
            if key in seen:
                assert seen[key] is step  # same tuple, same fused fn
                shared += 1
            else:
                seen[key] = step
    assert shared > 0  # epilogues and common idioms do recur


# -- malformed grammars -----------------------------------------------------

def _grammar_with(rhs):
    g = Grammar()
    g.add_nonterminal("byte")
    s = g.add_nonterminal("start")
    g.start = s
    g.add_rule(s, rhs)
    return g


def test_too_many_rules_rejected():
    g = Grammar()
    g.add_nonterminal("byte")
    s = g.add_nonterminal("start")
    g.start = s
    for _ in range(257):
        g.add_rule(s, [opcode("POPU")])
    with pytest.raises(TableError, match="single byte"):
        CompiledTables(g)


def test_unattached_byte_nonterminal_rejected():
    g = _grammar_with([])
    g.add_rule(g.start, [g.nonterminal("byte")])
    with pytest.raises(TableError, match="not attached"):
        CompiledTables(g)


def test_unattached_burned_byte_rejected():
    with pytest.raises(TableError, match="not attached"):
        CompiledTables(_grammar_with([byte_terminal(7)]))


def test_missing_literal_bytes_rejected():
    with pytest.raises(TableError, match="missing literal bytes"):
        CompiledTables(_grammar_with([opcode("LIT1")]))


def test_bad_operand_symbol_rejected():
    g = Grammar()
    g.add_nonterminal("byte")
    s = g.add_nonterminal("start")
    other = g.add_nonterminal("other")
    g.start = s
    g.add_rule(s, [opcode("LIT1"), other])
    with pytest.raises(TableError, match="operand"):
        CompiledTables(g)
