"""The precompiled GrammarProgram core: correctness of every table it
precomputes, cache identity/staleness semantics, the once-per-hash
construction guarantee, the storage numbering regression, and the
structured EarleyError (ISSUE 5 satellites)."""

import re

import pytest

from repro.compress.tiling import Tiler
from repro.core.program import (
    GrammarProgram,
    match_fragment,
    non_byte_rows,
    original_ordinals,
    program_for,
)
from repro.corpus.synth import generate_program
from repro.grammar.cfg import Grammar
from repro.grammar.initial import initial_grammar
from repro.minic import compile_source
from repro.parsing.earley import EarleyError, shortest_derivation_tree
from repro.pipeline import train_grammar
from repro.registry import GrammarRegistry
from repro.storage import load_grammar, save_grammar


@pytest.fixture(scope="module")
def trained_grammar():
    corpus = [compile_source(generate_program(8, seed=s))
              for s in (411, 412, 413)]
    grammar, _ = train_grammar(corpus)
    return grammar


# -- codewords and rows -------------------------------------------------------

def _assert_tables_match_grammar(grammar):
    program = program_for(grammar)
    for nt in grammar.nonterminals:
        rules = grammar.rules_for(nt)
        assert tuple(rules) == program.rules_of[nt]
        for rule in rules:
            assert program.codeword_of[rule.id] == \
                grammar.rule_index(rule.id)
    byte = (grammar.nonterminal("byte")
            if "byte" in grammar.nt_names else None)
    assert [nt for nt, _ in program.rows] == \
        [nt for nt in grammar.nonterminals if nt != byte]


def test_codewords_match_rule_index_trained(trained_grammar):
    _assert_tables_match_grammar(trained_grammar)


def test_codewords_match_rule_index_loaded(trained_grammar):
    # A serialize/deserialize round trip renumbers rule ids; the loaded
    # instance's program must agree with the loaded instance, not the
    # trained one.
    loaded = load_grammar(save_grammar(trained_grammar))
    _assert_tables_match_grammar(loaded)


def test_programs_are_instance_specific(trained_grammar):
    loaded = load_grammar(save_grammar(trained_grammar))
    p1, p2 = program_for(trained_grammar), program_for(loaded)
    assert p1 is not p2
    # ... but structurally identical content hashes to the same key.
    assert p1.content_key == p2.content_key


# -- storage numbering regression (satellite: the three ordinal loops) --------

def _legacy_rule_ordinals(grammar):
    """Verbatim copy of the pre-refactor storage._rule_ordinals."""
    to_ordinal = {}
    from_ordinal = {}
    for nt_index, nt in enumerate(grammar.nonterminals):
        for position, rule in enumerate(grammar.rules_for(nt)):
            if rule.origin == "original":
                to_ordinal[rule.id] = (nt_index, position)
                from_ordinal[(nt_index, position)] = rule.id
    return to_ordinal, from_ordinal


def test_serialized_rule_numbering_unchanged(trained_grammar):
    """The shared GrammarProgram index reproduces the exact ordinals the
    three storage loops used to compute, and the RGR1 bytes are stable
    across a save/load/save round trip."""
    to_o, from_o = _legacy_rule_ordinals(trained_grammar)
    program = program_for(trained_grammar)
    assert program.original_to_ordinal == to_o
    assert program.original_from_ordinal == from_o
    pure_to, pure_from = original_ordinals(trained_grammar)
    assert (pure_to, pure_from) == (to_o, from_o)

    data = save_grammar(trained_grammar)
    loaded = load_grammar(data)
    assert save_grammar(loaded) == data
    # The loader's pure-helper path agrees with its own legacy ordinals.
    assert original_ordinals(loaded) == _legacy_rule_ordinals(loaded)


def test_non_byte_rows_excludes_byte(trained_grammar):
    byte = trained_grammar.nonterminal("byte")
    rows = non_byte_rows(trained_grammar)
    assert byte not in [nt for nt, _ in rows]
    for nt, rules in rows:
        assert tuple(trained_grammar.rules_for(nt)) == rules


# -- prediction and cost tables ----------------------------------------------

def test_prediction_tables_toy():
    # S -> a S b | eps  over terminals a=1, b=2.
    g = Grammar()
    s = g.add_nonterminal("S")
    g.start = s
    r_eps = g.add_rule(s, [])
    r_ab = g.add_rule(s, [1, s, 2])
    p = program_for(g)
    assert p.nt_first[s] == frozenset({1})
    assert s in p.nullable
    assert p.rule_nullable[r_eps.id] and not p.rule_nullable[r_ab.id]
    assert p.rule_first[r_ab.id] == frozenset({1})
    assert p.nt_min_cost[s] == 1       # the epsilon rule
    assert p.rule_min_cost[r_ab.id] == 2


def test_min_cost_unproductive_is_infinite():
    g = Grammar()
    s = g.add_nonterminal("S")
    u = g.add_nonterminal("U")
    g.start = s
    g.add_rule(s, [1])
    g.add_rule(u, [u])  # derives nothing
    p = program_for(g)
    assert p.nt_min_cost[u] == float("inf")
    assert s in p.productive and u not in p.productive


def test_fragment_matchers_equal_recursive_match(trained_grammar):
    """The flat matcher programs bind exactly the holes the recursive
    matcher did, on real parse trees."""
    from repro.compress.oracle import OracleTiler
    from repro.parsing.forest import preorder
    from repro.parsing.stackparser import parse_blocks

    module = compile_source(generate_program(6, seed=990))
    program = program_for(trained_grammar)
    oracle = OracleTiler(trained_grammar)
    checked = 0
    for proc in module.procedures:
        for block in parse_blocks(trained_grammar, proc.code):
            for node in preorder(block.tree):
                for rule, _size, _trivial, matcher in \
                        program.fragments_by_root.get(node.rule_id, ()):
                    new = match_fragment(matcher, node)
                    old = oracle._match_collect(rule.fragment, node)
                    assert new == old
                    checked += 1
    assert checked > 100


# -- cache identity, staleness, once-per-hash ---------------------------------

def test_program_for_is_identity_cached(trained_grammar):
    assert program_for(trained_grammar) is program_for(trained_grammar)


def test_program_for_rebuilds_after_mutation():
    g = initial_grammar()
    before = program_for(g)
    v = g.nonterminal("v")
    rule = g.rules_for(v)[0]
    # Any rule addition changes the fingerprint.
    g.add_rule(v, list(rule.rhs), origin="inlined", fragment=rule.fragment)
    after = program_for(g)
    assert after is not before
    assert after.fingerprint != before.fingerprint


def test_construction_happens_once_per_hash(trained_grammar, tmp_path):
    """Through the registry, one GrammarProgram construction per grammar
    hash per process: put + repeated get/program calls share one build."""
    registry = GrammarRegistry(tmp_path / "reg")
    digest = registry.put(trained_grammar)
    key = program_for(trained_grammar).content_key
    baseline = GrammarProgram.constructions[key]
    programs = {registry.program(digest) for _ in range(5)}
    grammars = {id(registry.get(digest)) for _ in range(5)}
    assert len(programs) == 1
    assert len(grammars) == 1
    assert next(iter(programs)).grammar is trained_grammar
    assert GrammarProgram.constructions[key] == baseline
    info = registry.cache_info()
    assert info["hits"] >= 10


def test_derived_memo_builds_once(trained_grammar):
    program = program_for(trained_grammar)
    calls = []

    def build():
        calls.append(1)
        return object()

    a = program.derived("test.artifact", build)
    b = program.derived("test.artifact", build)
    assert a is b and len(calls) == 1

    def failing():
        raise RuntimeError("transient")

    with pytest.raises(RuntimeError):
        program.derived("test.failing", failing)
    # A failed build caches nothing; the next builder runs.
    assert program.derived("test.failing", lambda: "ok") == "ok"


def test_tiler_shares_the_program(trained_grammar):
    tiler = Tiler(trained_grammar)
    assert tiler.program is program_for(trained_grammar)
    assert tiler._by_root is tiler.program.fragments_by_root


# -- statistics ---------------------------------------------------------------

def test_stats_shape(trained_grammar):
    stats = program_for(trained_grammar).stats()
    assert stats["rules"] == trained_grammar.total_rules()
    assert stats["nonterminals"] == len(trained_grammar.nt_names)
    assert 0.0 < stats["prediction_set_density"] <= 1.0
    assert set(stats["rules_per_nt"]) == set(trained_grammar.nt_names)
    assert stats["reachable_nonterminals"] > 0
    assert stats["min_expansion_cost"]["start"] is not None
    assert re.fullmatch(r"[0-9a-f]{64}", stats["content_key"])


# -- structured EarleyError (satellite) ---------------------------------------

def test_earley_error_structured_context():
    # S -> a S b | eps: "aab" stalls after consuming "aa" ... the parse
    # reaches position 3 (the final b scans) but nothing completes at
    # the top; the furthest nonempty set carries the context.
    g = Grammar()
    s = g.add_nonterminal("S")
    g.start = s
    g.add_rule(s, [])
    g.add_rule(s, [1, s, 2])
    with pytest.raises(EarleyError) as err:
        shortest_derivation_tree(g, [1, 1, 2])
    exc = err.value
    assert exc.nonterminal == "S"
    assert isinstance(exc.position, int) and 0 <= exc.position <= 3
    assert exc.candidates and len(exc.candidates) <= 3
    assert all(isinstance(c, str) for c in exc.candidates)
    # Message shape mirrors DerivationError: leading <nonterminal>, the
    # classic "does not derive" phrase, and the stall position.
    message = str(exc)
    assert re.match(
        r"^<S>: input of length 3 does not derive from <S> "
        r"\(stalled at symbol \d+/3", message)


def test_earley_error_expected_terminals():
    g = Grammar()
    s = g.add_nonterminal("S")
    g.start = s
    g.add_rule(s, [1, 2])  # S -> a b only
    with pytest.raises(EarleyError) as err:
        shortest_derivation_tree(g, [1, 1])
    exc = err.value
    assert exc.expected  # the b that could have continued the parse
    assert "expecting" in str(exc)


def test_earley_pruning_preserves_toy_results():
    # The pruned parser still finds the same shortest derivations the
    # doc examples promise (cross-checked at scale by the golden sweep).
    from repro.parsing.earley import recognize, shortest_derivation

    g = Grammar()
    s = g.add_nonterminal("S")
    g.start = s
    g.add_rule(s, [])
    g.add_rule(s, [1, s, 2])
    assert recognize(g, [1, 1, 2, 2])
    assert not recognize(g, [1, 2, 2])
    assert len(shortest_derivation(g, [1, 1, 2, 2])) == 3
