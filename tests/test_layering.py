"""The import-layering lint (tools/check_layering.py) as a test: the
real tree must be clean, and the lint must actually catch violations —
a lint that silently passes everything would make the CI gate
decorative."""

import shutil
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from check_layering import SRC, check  # noqa: E402


def test_tree_is_clean():
    assert check() == [], "\n".join(check())


def test_lint_catches_module_level_up_import(tmp_path):
    # parsing (layer 3) importing interp (layer 4) at module level.
    bad = tmp_path / "repro"
    shutil.copytree(SRC, bad)
    (bad / "parsing" / "bad.py").write_text(
        "from ..interp import tables\n")
    violations = check(bad)
    assert any("parsing/bad.py" in v and "interp" in v
               for v in violations)


def test_lint_catches_cli_import_even_lazily(tmp_path):
    bad = tmp_path / "repro"
    shutil.copytree(SRC, bad)
    (bad / "grammar" / "worse.py").write_text(
        "def late():\n    import repro.cli\n")
    violations = check(bad)
    assert any("grammar/worse.py" in v and "cli" in v
               for v in violations)


def test_lint_catches_training_sublayer_up_import(tmp_path):
    # The trainer-strategy seam is sub-ranked: a primitive (edges,
    # sub-layer 0) importing a strategy module (repair, sub-layer 4) at
    # module level must be flagged even though both are "training".
    bad = tmp_path / "repro"
    shutil.copytree(SRC, bad)
    edges = bad / "training" / "edges.py"
    edges.write_text(edges.read_text()
                     + "\nfrom .repair import RepairStrategy\n")
    violations = check(bad)
    assert any("training/edges.py" in v and "repair" in v
               for v in violations)


def test_lint_allows_function_local_training_sibling_import(tmp_path):
    # strategy's lazy `from . import greedy, repair` (registration on
    # resolve) is function-local and must stay exempt.
    assert check() == []  # the real tree, which contains exactly that


def test_lint_allows_function_local_down_skip(tmp_path):
    # A function-local import of a same-or-higher layer (other than cli)
    # is a deliberate late binding and must NOT be flagged.
    ok = tmp_path / "repro"
    shutil.copytree(SRC, ok)
    (ok / "parsing" / "lazy.py").write_text(
        "def late():\n    from ..interp import tables\n    return tables\n")
    assert check(ok) == check(SRC) == []
