"""Smoke tests: the shipped examples run to completion and make their
claims (each example asserts its own invariants internally)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart_example(capsys):
    out = _run_example("quickstart.py", capsys)
    assert "round-trip OK" in out
    assert "longest Collatz chain" in out


def test_inspect_isa_example(capsys):
    out = _run_example("inspect_isa.py", capsys)
    assert "top learned instructions" in out
    assert "specialized literals" in out
    assert "spanning several statements" in out
    assert "dynamic profile" in out


@pytest.mark.slow
def test_cross_training_example(capsys):
    out = _run_example("cross_training.py", capsys)
    assert "own grammar" in out


@pytest.mark.slow
def test_embedded_rom_example(capsys):
    out = _run_example("embedded_rom.py", capsys)
    assert "features fit" in out
