"""Property-based tests (hypothesis) for the core machinery.

The generators build *valid* random bytecode from the grammar's own
structure (random expression trees linearized to postfix, split into random
blocks), so every pipeline property — parse/yield, derivation codec,
training invariants, compression round-trip — is exercised over the whole
language, not just the corpus.
"""

from hypothesis import given, settings, strategies as st

from repro.bytecode.instructions import decode, encode, instr
from repro.bytecode.module import Module, Procedure
from repro.bytecode.opcodes import OPS, opcode
from repro.bytecode.validate import validate_procedure
from repro.grammar.cfg import fragment_graft, fragment_hole_count
from repro.grammar.initial import initial_grammar
from repro.interp.memory import MASK32, Memory, to_signed, to_unsigned
from repro.interp.base import _idiv, _imod
from repro.parsing.derivation import (
    decode_tree,
    derivation_of_tree,
    encode_tree,
    tree_of_derivation,
)
from repro.parsing.forest import Forest, terminal_yield, tree_size
from repro.parsing.stackparser import parse_blocks
from repro.training.expander import expand_grammar

_V0 = [op for op in OPS if op.klass == "v0"]
_V1 = [op for op in OPS if op.klass == "v1"
       and not op.name.startswith("CALL")]
_V2 = [op for op in OPS if op.klass == "v2"]
_X1 = [op for op in OPS if op.klass == "x1"
       and op.name not in ("CALLV", "BrTrue")
       and not op.name.startswith("RET")]
_X2 = [op for op in OPS if op.klass == "x2"]

_LABELV = opcode("LABELV")


@st.composite
def value_tree(draw, depth=3):
    """A random expression, linearized to postfix instructions."""
    if depth == 0 or draw(st.booleans()):
        op = draw(st.sampled_from(_V0))
        return [instr(op.name, *(draw(st.integers(0, 255))
                                 for _ in range(op.nlit)))]
    if draw(st.booleans()):
        sub = draw(value_tree(depth=depth - 1))
        op = draw(st.sampled_from(_V1))
        return sub + [instr(op.name)]
    left = draw(value_tree(depth=depth - 1))
    right = draw(value_tree(depth=depth - 1))
    op = draw(st.sampled_from(_V2))
    return left + right + [instr(op.name)]


@st.composite
def statement(draw):
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return [instr("RETV")]
    if kind == 1:
        ops = draw(value_tree())
        op = draw(st.sampled_from(_X1))
        return ops + [instr(op.name)]
    left = draw(value_tree())
    right = draw(value_tree())
    op = draw(st.sampled_from(_X2))
    return left + right + [instr(op.name)]


@st.composite
def random_code(draw):
    """A full code stream: statements with LABELV marks between some."""
    parts = []
    labels = []
    for _ in range(draw(st.integers(1, 6))):
        if parts and draw(st.booleans()):
            labels.append(sum(len(p) for p in parts))
            parts.append(bytes([_LABELV]))
        stmt_code = encode(draw(statement()))
        parts.append(stmt_code)
    offsets = []
    pos = 0
    for part in parts:
        if len(part) == 1 and part[0] == _LABELV:
            offsets.append(pos)
        pos += len(part)
    return b"".join(parts), offsets


# -- instruction codec ---------------------------------------------------------

@given(random_code())
def test_encode_decode_roundtrip(code_labels):
    code, _ = code_labels
    assert encode(decode(code)) == code


@given(random_code())
def test_random_code_validates(code_labels):
    code, labels = code_labels
    proc = Procedure("p", code, labels, 0)
    validate_procedure(proc)


# -- parsing --------------------------------------------------------------------

@given(random_code())
@settings(max_examples=60)
def test_parse_yield_is_identity(code_labels):
    code, _ = code_labels
    g = initial_grammar()
    blocks = parse_blocks(g, code)
    rebuilt = bytes([_LABELV]).join(
        bytes(
            s - 256 if s >= 256 else s
            for s in terminal_yield(b.tree, g)
        )
        for b in blocks
    )
    assert rebuilt == code


@given(random_code())
@settings(max_examples=40)
def test_derivation_codec_roundtrip(code_labels):
    code, _ = code_labels
    g = initial_grammar()
    for block in parse_blocks(g, code):
        rules = derivation_of_tree(block.tree)
        rebuilt = tree_of_derivation(g, rules)
        assert derivation_of_tree(rebuilt) == rules
        data = encode_tree(g, block.tree)
        assert len(data) == tree_size(block.tree)
        decoded, end = decode_tree(g, data)
        assert end == len(data)
        assert derivation_of_tree(decoded) == rules


# -- training invariants -----------------------------------------------------------

@given(st.lists(random_code(), min_size=1, max_size=3))
@settings(max_examples=25, deadline=None)
def test_training_preserves_yields_and_counts(corpus_codes):
    g = initial_grammar()
    forest = Forest()
    for code, _ in corpus_codes:
        for block in parse_blocks(g, code):
            forest.add(block.tree)
    yields = [terminal_yield(b, g) for b in forest.blocks]
    expand_grammar(g, forest, verify_every=3)  # verifies counts internally
    assert [terminal_yield(b, g) for b in forest.blocks] == yields
    g.check()


@given(st.lists(random_code(), min_size=1, max_size=2))
@settings(max_examples=20, deadline=None)
def test_compression_roundtrip_random_programs(corpus_codes):
    from repro.compress.compressor import Compressor
    from repro.compress.decompress import decompress_procedure
    from repro.parsing.forest import Forest

    g = initial_grammar()
    forest = Forest()
    procs = []
    for i, (code, labels) in enumerate(corpus_codes):
        procs.append(Procedure(f"p{i}", code, labels, 0))
        for block in parse_blocks(g, code):
            forest.add(block.tree)
    expand_grammar(g, forest)
    comp = Compressor(g)
    for proc in procs:
        cproc = comp.compress_procedure(proc)
        back = decompress_procedure(g, cproc)
        assert back.code == proc.code
        assert back.labels == proc.labels


# -- fragments -------------------------------------------------------------------

@st.composite
def fragments(draw, depth=3):
    rid = draw(st.integers(0, 50))
    if depth == 0:
        n = draw(st.integers(0, 2))
        return (rid, tuple(None for _ in range(n)))
    children = []
    for _ in range(draw(st.integers(0, 3))):
        if draw(st.booleans()):
            children.append(None)
        else:
            children.append(draw(fragments(depth=depth - 1)))
    return (rid, tuple(children))


@given(fragments(), fragments())
def test_graft_hole_arithmetic(frag, sub):
    holes = fragment_hole_count(frag)
    if holes == 0:
        return
    grafted = fragment_graft(frag, 0, sub)
    assert fragment_hole_count(grafted) == \
        holes - 1 + fragment_hole_count(sub)


@given(fragments())
def test_graft_out_of_range_raises(frag):
    import pytest
    with pytest.raises(IndexError):
        fragment_graft(frag, fragment_hole_count(frag), (9, ()))


# -- arithmetic semantics -------------------------------------------------------

@given(st.integers(0, MASK32))
def test_signed_unsigned_roundtrip(pattern):
    assert to_unsigned(to_signed(pattern)) == pattern


@given(st.integers(-(2 ** 31), 2 ** 31 - 1),
       st.integers(-(2 ** 31), 2 ** 31 - 1))
def test_c_division_identity(a, b):
    if b == 0:
        return
    q, r = _idiv(a, b), _imod(a, b)
    assert q * b + r == a
    # C: remainder has the dividend's sign (or is zero).
    assert r == 0 or (r > 0) == (a > 0)
    assert abs(r) < abs(b)


@given(st.integers(0, MASK32), st.integers(0, 4096 - 4))
def test_memory_u32_roundtrip(value, addr):
    mem = Memory(4096)
    mem.store_u32(addr, value)
    assert mem.load_u32(addr) == value


@given(st.floats(allow_nan=False, allow_infinity=False,
                 width=64), st.integers(0, 4096 - 8))
def test_memory_f64_roundtrip(value, addr):
    mem = Memory(4096)
    mem.store_f64(addr, value)
    assert mem.load_f64(addr) == value


@given(st.binary(min_size=0, max_size=300))
def test_huffman_roundtrip_random(data):
    from repro.baselines.huffman import build_code
    if not data:
        return
    code = build_code(data)
    assert code.decode(code.encode(data), len(data)) == data


@given(st.binary(min_size=1, max_size=200))
@settings(max_examples=30)
def test_gzip_blocks_never_beat_whole(data):
    import zlib
    whole = len(zlib.compress(data, 9))
    halves = (len(zlib.compress(data[: len(data) // 2], 9))
              + len(zlib.compress(data[len(data) // 2:], 9)))
    assert halves >= whole - 16  # modulo tiny header effects


# -- whole-pipeline properties over randomized mini-C programs -----------------
#
# The grammar-derived generators above cover the bytecode language; these
# cover the *system*: for random mini-C programs (seeded — each run of the
# suite checks the same programs, so failures reproduce), a program and its
# compressed form behave identically, and decompression inverts compression
# exactly.  One grammar is trained per seed, on the program itself — the
# self-training configuration, which exercises the expander hardest.

import pytest  # noqa: E402  (grouped with the seeded-property section)

from repro.corpus.synth import generate_program  # noqa: E402
from repro.minic import compile_source  # noqa: E402
from repro.pipeline import (  # noqa: E402
    compress_module,
    run,
    run_compressed,
    train_grammar,
)

MINIC_SEEDS = [211, 223, 227, 229, 233, 239, 241, 251]


@pytest.mark.parametrize("seed", MINIC_SEEDS)
def test_property_run_equals_run_compressed(seed):
    program = compile_source(generate_program(5, seed=seed))
    grammar, _ = train_grammar([program])
    assert run(program) == \
        run_compressed(compress_module(grammar, program))


@pytest.mark.parametrize("seed", MINIC_SEEDS)
def test_property_decompress_inverts_compress(seed):
    from repro.compress.decompress import decompress_module

    program = compile_source(generate_program(5, seed=seed))
    grammar, _ = train_grammar([program])
    back = decompress_module(compress_module(grammar, program))
    assert [p.code for p in back.procedures] == \
        [p.code for p in program.procedures]
    assert [p.labels for p in back.procedures] == \
        [p.labels for p in program.procedures]
    assert [(p.name, p.framesize, p.argsize) for p in back.procedures] == \
        [(p.name, p.framesize, p.argsize) for p in program.procedures]


@pytest.mark.parametrize("seed", MINIC_SEEDS)
def test_property_rcx2_container_is_lossless(seed):
    """Saving a compressed module through the entropy-coded container
    and loading it back inverts exactly — same decompressed bytes and
    labels as the byte-per-step container, for self-trained grammars
    over random mini-C programs."""
    from repro.compress.decompress import decompress_module
    from repro.storage import load_compressed, save_compressed, save_module

    program = compile_source(generate_program(5, seed=seed))
    grammar, _ = train_grammar([program])
    cmod = compress_module(grammar, program)
    via1 = load_compressed(save_compressed(cmod, format="rcx1"))
    via2 = load_compressed(save_compressed(cmod, format="rcx2"))
    assert save_module(decompress_module(via1)) == \
        save_module(decompress_module(via2))
    assert [p.block_starts for p in via1.procedures] == \
        [p.block_starts for p in via2.procedures]


@given(st.lists(st.integers(1, 500), min_size=2, max_size=32),
       st.binary(max_size=120))
@settings(max_examples=50)
def test_property_rangecoder_roundtrip(freqs, picks):
    """The carry-less range coder inverts exactly for arbitrary static
    tables and symbol sequences, and a full decode consumes exactly the
    encoder's output."""
    from repro.coding.rangecoder import (
        RangeDecoder, RangeEncoder, cumulative,
    )

    symbols = [b % len(freqs) for b in picks]
    cums = cumulative(freqs)
    enc = RangeEncoder()
    for s in symbols:
        enc.encode(cums[s], freqs[s], cums[-1])
    data = enc.finish()
    dec = RangeDecoder(data)
    for s in symbols:
        target = dec.target(cums[-1])
        assert cums[s] <= target < cums[s + 1]
        dec.consume(cums[s], freqs[s])
    assert dec.consumed == len(data)


@given(st.lists(random_code(), min_size=1, max_size=2))
@settings(max_examples=15, deadline=None)
def test_property_derivation_cache_is_transparent(corpus_codes):
    """Compressing with the shortest-derivation cache yields byte-identical
    output to compressing without it, over random programs."""
    from repro.compress.compressor import Compressor

    g = initial_grammar()
    forest = Forest()
    procs = []
    for i, (code, labels) in enumerate(corpus_codes):
        procs.append(Procedure(f"p{i}", code, labels, 0))
        for block in parse_blocks(g, code):
            forest.add(block.tree)
    expand_grammar(g, forest)
    cached = Compressor(g)
    uncached = Compressor(g, cache_size=0)
    for proc in procs:
        assert cached.compress_procedure(proc).code == \
            uncached.compress_procedure(proc).code
    assert uncached.cache_info() == "disabled"


@given(st.lists(random_code(), min_size=2, max_size=3))
@settings(max_examples=15, deadline=None)
def test_property_parallel_parse_equals_serial(corpus_codes):
    """build_forest with a worker pool produces the same forest, in the
    same order, as the serial loop — over random modules."""
    from repro.bytecode.module import Module as Mod
    from repro.parsing.derivation import derivation_of_tree
    from repro.parsing.stackparser import build_forest

    g = initial_grammar()
    modules = [
        Mod(procedures=[Procedure(f"p{i}", code, labels, 0)])
        for i, (code, labels) in enumerate(corpus_codes)
    ]
    serial = build_forest(g, modules)
    parallel = build_forest(g, modules, workers=3)
    assert [derivation_of_tree(t) for t in serial] == \
        [derivation_of_tree(t) for t in parallel]
