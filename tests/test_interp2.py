"""Tests for the generated (compressed-bytecode) interpreter.

The central property: for any program, running the compressed form on
interpreter 2 is observationally identical to running the original on
interpreter 1 — same return/exit code, same output, same executed-operator
count (compression is a re-coding, not a re-optimization).
"""

import pytest

from repro.bytecode import assemble, validate_module
from repro.compress.compressor import compress_module
from repro.grammar.initial import initial_grammar, typed_grammar
from repro.interp.interp1 import Interpreter1
from repro.interp.interp2 import Interpreter2
from repro.interp.runtime import Machine
from repro.interp.tables import InterpTables, TableError
from repro.parsing.stackparser import build_forest
from repro.training.expander import expand_grammar

SUM_LOOP = """
.entry main
.global putint lib
.global putchar lib
.proc main framesize=8 trampoline
    ADDRLP 0 0
    LIT1 0
    ASGNU
    ADDRLP 4 0
    LIT1 1
    ASGNU
top:
    ADDRLP 4 0
    INDIRU
    LIT1 100
    LEU
    BrTrue @body
    ADDRLP 0 0
    INDIRU
    ARGU
    ADDRGP $putint
    CALLU
    POPU
    LIT1 10
    ARGU
    ADDRGP $putchar
    CALLU
    POPU
    ADDRLP 0 0
    INDIRU
    RETU
body:
    ADDRLP 0 0
    ADDRLP 0 0
    INDIRU
    ADDRLP 4 0
    INDIRU
    ADDU
    ASGNU
    ADDRLP 4 0
    ADDRLP 4 0
    INDIRU
    LIT1 1
    ADDU
    ASGNU
    JUMPV @top
.endproc
"""

FACT = """
.entry main
.proc fact framesize=0 argsize=4
    ADDRFP 0 0
    INDIRU
    LIT1 1
    GTU
    BrTrue @rec
    LIT1 1
    RETU
rec:
    ADDRFP 0 0
    INDIRU
    LIT1 1
    SUBU
    ARGU
    LocalCALLU %fact
    ADDRFP 0 0
    INDIRU
    MULU
    RETU
.endproc
.proc main framesize=0 trampoline
    LIT1 9
    ARGU
    LocalCALLU %fact
    RETU
.endproc
"""


def _train_on(*texts, grammar=None):
    g = grammar if grammar is not None else initial_grammar()
    modules = [assemble(t) for t in texts]
    for m in modules:
        validate_module(m)
    forest = build_forest(g, modules)
    expand_grammar(g, forest)
    return g


def _run_both(text, grammar, *args):
    module = assemble(text)
    m1 = Machine(module, Interpreter1(module))
    code1 = m1.run(*args)
    cmod = compress_module(grammar, module)
    m2 = Machine(cmod, Interpreter2(cmod))
    code2 = m2.run(*args)
    return (code1, bytes(m1.output), m1.instret), \
           (code2, bytes(m2.output), m2.instret), cmod, module


def test_loop_program_same_behaviour():
    g = _train_on(SUM_LOOP)
    r1, r2, cmod, module = _run_both(SUM_LOOP, g)
    assert r1 == r2
    assert r1[0] == 5050
    assert r1[1] == b"5050\n"
    assert cmod.code_bytes < module.code_bytes


def test_recursive_program_same_behaviour():
    g = _train_on(FACT)
    r1, r2, _, _ = _run_both(FACT, g)
    assert r1 == r2
    assert r1[0] == 362880


def test_cross_trained_grammar_still_correct():
    """A grammar trained on one program correctly runs another."""
    g = _train_on(SUM_LOOP)
    r1, r2, _, _ = _run_both(FACT, g)
    assert r1 == r2


def test_untrained_grammar_interp2():
    """interp2 over the *initial* grammar is just a slower encoding of the
    same program."""
    g = initial_grammar()
    r1, r2, _, _ = _run_both(FACT, g)
    assert r1 == r2


def test_instret_identical():
    """Compression must not change the executed instruction sequence."""
    g = _train_on(SUM_LOOP, FACT)
    for text in (SUM_LOOP, FACT):
        r1, r2, _, _ = _run_both(text, g)
        assert r1[2] == r2[2]


def test_burned_literals_execute():
    """Force literal inlining and check the burned/streamed split works."""
    g = initial_grammar()
    # Train on a program where ADDRLP 0 0 dominates, so <byte>=0 gets
    # burned into v0 rules.
    text = SUM_LOOP
    module = assemble(text)
    forest = build_forest(g, [module])
    expand_grammar(g, forest, min_count=2)
    # At least one inlined rule must contain a burned byte terminal.
    from repro.grammar.cfg import is_byte_terminal
    burned = [r for r in g if r.origin == "inlined"
              and any(is_byte_terminal(s) for s in r.rhs)]
    assert burned, "training never burned a literal byte into a rule"
    r1, r2, _, _ = _run_both(text, g)
    assert r1 == r2


def test_typed_grammar_end_to_end():
    tg = typed_grammar()
    g = _train_on(SUM_LOOP, grammar=tg)
    r1, r2, _, _ = _run_both(SUM_LOOP, g)
    assert r1 == r2


def test_tables_reject_detached_byte():
    from repro.grammar.cfg import Grammar, byte_terminal
    g = Grammar()
    start = g.add_nonterminal("start")
    byte = g.add_nonterminal("byte")
    g.start = start
    g.add_rule(start, [byte])  # <byte> with no operator attached
    for v in range(256):
        g.add_rule(byte, [byte_terminal(v)])
    with pytest.raises(TableError):
        InterpTables(g)


def test_interp_tables_cover_trained_grammar():
    g = _train_on(SUM_LOOP, FACT)
    tables = InterpTables(g)
    for nt in g.nonterminals:
        if g.nt_name(nt) == "byte":
            continue
        assert len(tables.by_nt[nt]) == g.num_rules(nt)
    assert tables.encoded_bytes() > 0
