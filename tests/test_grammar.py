"""Unit tests for the CFG machinery and the initial grammars."""

import pytest

from repro.bytecode.opcodes import OPS, opcode
from repro.grammar.cfg import (
    Grammar,
    byte_terminal,
    byte_value,
    fragment_graft,
    fragment_hole_count,
    fragment_rules,
    fragment_size,
    is_byte_terminal,
    is_nonterminal,
    is_terminal,
)
from repro.grammar.initial import initial_grammar, typed_grammar


def test_symbol_encoding():
    assert is_nonterminal(-1)
    assert is_terminal(0)
    assert is_byte_terminal(byte_terminal(0))
    assert not is_byte_terminal(5)
    assert byte_value(byte_terminal(200)) == 200
    with pytest.raises(ValueError):
        byte_terminal(256)
    with pytest.raises(ValueError):
        byte_value(10)


def test_grammar_basics():
    g = Grammar()
    a = g.add_nonterminal("a")
    b = g.add_nonterminal("b")
    r1 = g.add_rule(a, [b, 5])
    r2 = g.add_rule(b, [7])
    assert g.nonterminal("a") == a
    assert g.nt_name(b) == "b"
    assert g.rule_index(r1.id) == 0
    assert g.rules_for(a) == [r1]
    assert r1.arity == 1
    assert r1.nts() == (b,)
    assert r2.arity == 0
    g.check()


def test_rule_cap_enforced():
    g = Grammar(max_rules_per_nt=2)
    a = g.add_nonterminal("a")
    g.add_rule(a, [1])
    g.add_rule(a, [2])
    assert not g.can_grow(a)
    with pytest.raises(ValueError, match="already has"):
        g.add_rule(a, [3], origin="inlined")
    # original rules are admitted regardless of the growth cap
    g.add_rule(a, [3])


def test_original_rules_cannot_be_removed():
    g = Grammar()
    a = g.add_nonterminal("a")
    r = g.add_rule(a, [1])
    with pytest.raises(ValueError, match="original"):
        g.remove_rule(r.id)
    r2 = g.add_rule(a, [2], origin="inlined")
    g.remove_rule(r2.id)
    assert g.num_rules(a) == 1


def test_initial_grammar_shape():
    g = initial_grammar()
    assert g.nt_names == ["start", "x", "v", "v0", "v1", "v2",
                          "x0", "x1", "x2", "byte"]
    # Appendix-2 alternative counts.
    assert g.num_rules(g.nonterminal("start")) == 2
    assert g.num_rules(g.nonterminal("v")) == 3
    assert g.num_rules(g.nonterminal("x")) == 3
    assert g.num_rules(g.nonterminal("v2")) == 45
    assert g.num_rules(g.nonterminal("v1")) == 22
    assert g.num_rules(g.nonterminal("v0")) == 10
    assert g.num_rules(g.nonterminal("x0")) == 3
    assert g.num_rules(g.nonterminal("x1")) == 12
    assert g.num_rules(g.nonterminal("x2")) == 6
    assert g.num_rules(g.nonterminal("byte")) == 256


def test_initial_grammar_covers_every_operator_once():
    g = initial_grammar()
    seen = {}
    for rule in g:
        for sym in rule.rhs:
            if is_terminal(sym) and not is_byte_terminal(sym):
                seen[sym] = seen.get(sym, 0) + 1
    for op in OPS:
        if op.klass == "pseudo":
            continue
        assert seen.get(op.code) == 1, op.name
    assert opcode("LABELV") not in seen


def test_initial_grammar_literal_bytes_match_oplits():
    g = initial_grammar()
    byte = g.nonterminal("byte")
    for rule in g:
        if rule.lhs in (g.nonterminal("v0"), g.nonterminal("x0"),
                        g.nonterminal("x1")):
            if rule.rhs and is_terminal(rule.rhs[0]):
                from repro.bytecode.opcodes import OP_BY_CODE
                op = OP_BY_CODE[rule.rhs[0]]
                nbytes = sum(1 for s in rule.rhs if s == byte)
                assert nbytes == op.nlit, op.name


def test_typed_grammar_builds_and_checks():
    g = typed_grammar()
    assert set(g.nt_names) == {"start", "x", "vw", "vf", "vd", "byte"}
    g.check()
    # Every operator has exactly one rule.
    op_rules = [r for r in g if any(
        is_terminal(s) and not is_byte_terminal(s) for s in r.rhs)]
    assert len(op_rules) == len([op for op in OPS if op.klass != "pseudo"])


def test_typed_grammar_typing_spotchecks():
    g = typed_grammar()
    vd, vf, vw = (g.nonterminal(n) for n in ("vd", "vf", "vw"))

    def rule_for(name):
        code = opcode(name)
        return next(r for r in g if code in r.rhs)

    # ADDD: double + double -> double
    r = rule_for("ADDD")
    assert r.lhs == vd and r.nts() == (vd, vd)
    # CVFD: float -> double
    r = rule_for("CVFD")
    assert r.lhs == vd and r.nts() == (vf,)
    # CVDI: double -> word
    r = rule_for("CVDI")
    assert r.lhs == vw and r.nts() == (vd,)
    # EQD compares doubles but pushes a word flag
    r = rule_for("EQD")
    assert r.lhs == vw and r.nts() == (vd, vd)
    # ASGND: address (word), value (double)
    r = rule_for("ASGND")
    assert r.lhs == g.nonterminal("x") and r.nts() == (vw, vd)
    # LSHD does not exist; LSHI shifts words
    r = rule_for("LSHI")
    assert r.lhs == vw and r.nts() == (vw, vw)


# -- fragments -------------------------------------------------------------

def test_fresh_rule_fragment_is_all_holes():
    g = Grammar()
    a = g.add_nonterminal("a")
    b = g.add_nonterminal("b")
    r = g.add_rule(a, [b, 3, b])
    assert r.fragment == (r.id, (None, None))
    assert fragment_hole_count(r.fragment) == 2


def test_fragment_graft_first_hole():
    frag = (0, (None, None))
    sub = (1, ())
    assert fragment_graft(frag, 0, sub) == (0, ((1, ()), None))
    assert fragment_graft(frag, 1, sub) == (0, (None, (1, ())))


def test_fragment_graft_nested_hole_order():
    # f = r0( r1(hole, hole), hole )  -- holes in frontier order:
    #   0: first hole of r1, 1: second hole of r1, 2: hole of r0
    frag = (0, ((1, (None, None)), None))
    sub = (9, ())
    assert fragment_graft(frag, 0, sub) == (0, ((1, ((9, ()), None)), None))
    assert fragment_graft(frag, 1, sub) == (0, ((1, (None, (9, ()))), None))
    assert fragment_graft(frag, 2, sub) == (0, ((1, (None, None)), (9, ())))
    with pytest.raises(IndexError):
        fragment_graft(frag, 3, sub)


def test_fragment_rules_and_size():
    frag = (0, ((1, (None,)), (2, ())))
    assert fragment_rules(frag) == [0, 1, 2]
    assert fragment_size(frag) == 3
    assert fragment_hole_count(frag) == 1
