"""Tests for the high-level pipeline API and the experiments harness."""

import pytest

import repro
from repro.experiments import (
    ablation_cap_rows,
    baseline_rows,
    gzip_rows,
    overhead_rows,
    render_table,
    table1_rows,
    table2_rows,
)

SRC_TRAIN = """
int main(void) {
    int i, s;
    s = 0;
    for (i = 0; i < 50; i++) {
        if (i % 3 == 0) s += i;
        else s -= i;
    }
    putint(s);
    return s & 255;
}
"""

SRC_APP = """
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main(void) { putint(fib(12)); return 0; }
"""

SMOKE_SCALE = 10  # tiny corpus: harness smoke tests only


def test_quickstart_flow():
    """The README's five-line flow, verbatim.  The training corpus must
    "represent statistically the population of the programs to be coded"
    (Section 2), so it includes a program like the one being shipped."""
    training = [repro.compile_source(SRC_TRAIN),
                repro.compile_source(SRC_APP)]
    grammar, report = repro.train_grammar(training)
    program = repro.compile_source(SRC_APP)
    compressed = repro.compress_module(grammar, program)
    assert compressed.code_bytes < program.code_bytes
    assert repro.run(program) == repro.run_compressed(compressed)


def test_tiny_unrepresentative_corpus_can_expand():
    """The flip side of Section 2's corpus assumption: a grammar trained
    on a tiny, unrelated program may *expand* an unseen input (derivations
    under the nearly-initial grammar cost ~2-3 steps per instruction).
    The result still round-trips and runs; it is just not smaller."""
    training = [repro.compile_source(SRC_TRAIN)]
    grammar, _ = repro.train_grammar(training)
    program = repro.compile_source(SRC_APP)
    compressed = repro.compress_module(grammar, program)
    assert repro.run(program) == repro.run_compressed(compressed)


def test_train_grammar_options():
    training = [repro.compile_source(SRC_TRAIN)]
    g64, r64 = repro.train_grammar(training, max_rules_per_nt=64)
    assert r64.rules_added >= 0
    for nt in g64.nonterminals:
        pass
    g_cap, _ = repro.train_grammar(training, max_iterations=2)
    assert sum(1 for r in g_cap if r.origin == "inlined") <= 2


def test_compression_ratio_helper():
    training = [repro.compile_source(SRC_TRAIN)]
    grammar, _ = repro.train_grammar(training)
    ratio = repro.compression_ratio(grammar, training[0])
    assert 0 < ratio < 1


def test_decompress_module_roundtrip():
    training = [repro.compile_source(SRC_TRAIN)]
    grammar, _ = repro.train_grammar(training)
    program = repro.compile_source(SRC_APP)
    compressed = repro.compress_module(grammar, program)
    back = repro.decompress_module(compressed)
    assert [p.code for p in back.procedures] == \
        [p.code for p in program.procedures]


def test_earley_engine_through_pipeline():
    training = [repro.compile_source(SRC_TRAIN)]
    grammar, _ = repro.train_grammar(training)
    program = repro.compile_source("int main(void) { return 5; }")
    t = repro.compress_module(grammar, program, engine="tiling")
    e = repro.compress_module(grammar, program, engine="earley")
    assert t.code_bytes == e.code_bytes


# -- experiments harness (smoke scale) ------------------------------------------

def test_table1_harness_smoke():
    rows = table1_rows(SMOKE_SCALE)
    assert [r.input for r in rows] == ["gcc", "lcc", "gzip", "8q"]
    for r in rows:
        assert 0 < r.gcc_ratio < 1
        assert 0 < r.lcc_ratio < 1


def test_table2_harness_smoke():
    rows = table2_rows("lcc", SMOKE_SCALE)
    assert len(rows) == 3
    assert rows[1].breakdown["bytecode"] < rows[0].breakdown["bytecode"]


def test_gzip_rows_smoke():
    rows = gzip_rows(SMOKE_SCALE)
    for r in rows:
        assert r.gzip_bytes > 0


def test_baseline_rows_smoke():
    rows = baseline_rows(SMOKE_SCALE)
    for r in rows:
        assert r.grammar_m <= r.superop <= r.superop_nolit


def test_overhead_rows_smoke():
    rows = overhead_rows("lcc", SMOKE_SCALE)
    names = [r.component for r in rows]
    assert "label tables" in names
    assert "grammar (recoded)" in names


def test_ablation_rows_smoke():
    rows = ablation_cap_rows("8q", SMOKE_SCALE, caps=(32, 256))
    assert rows[1].compressed <= rows[0].compressed


def test_render_table_alignment():
    text = render_table("T", ["a", "bb"], [("x", 1), ("longer", 22)])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert all(len(line) == len(lines[1]) for line in lines[1:])
