"""Execution tests for compiled mini-C: compile with the front end, run on
the uncompressed interpreter, check C semantics end to end."""

import pytest

from repro.minic import CodegenError, compile_and_run, compile_source


def run(source, *args, input_data=b""):
    return compile_and_run(source, *args, input_data=input_data)


def test_return_constant():
    assert run("int main(void) { return 42; }")[0] == 42


def test_arithmetic_and_precedence():
    assert run("int main(void) { return 2 + 3 * 4 - 6 / 2; }")[0] == 11


def test_negative_division():
    assert run("int main(void) { return -7 / 2; }")[0] == -3
    assert run("int main(void) { return -7 % 2; }")[0] == -1


def test_unsigned_arithmetic():
    code, _ = run("int main(void) { unsigned x; x = 0; x = x - 1; "
                  "return x > 1000 ? 1 : 0; }")
    assert code == 1


def test_while_loop_sum():
    code, out = run("""
int main(void) {
    int i, sum;
    i = 1; sum = 0;
    while (i <= 10) { sum += i; i++; }
    putint(sum);
    return sum;
}
""")
    assert code == 55
    assert out == b"55"


def test_for_break_continue():
    code, _ = run("""
int main(void) {
    int i, n;
    n = 0;
    for (i = 0; i < 100; i++) {
        if (i == 7) continue;
        if (i == 10) break;
        n += i;
    }
    return n;   /* 0+..+9 minus 7 = 45 - 7 = 38 */
}
""")
    assert code == 38


def test_do_while():
    assert run("int main(void) { int i; i = 0; do i++; while (i < 5); "
               "return i; }")[0] == 5


def test_short_circuit_and_or():
    code, out = run("""
int hit;
int bump(int v) { hit += 1; return v; }
int main(void) {
    int r;
    hit = 0;
    r = bump(0) && bump(1);
    if (r != 0) return 1;
    if (hit != 1) return 2;
    hit = 0;
    r = bump(3) || bump(4);
    if (r != 1) return 3;
    if (hit != 1) return 4;
    return 0;
}
""")
    assert code == 0


def test_conditional_expression():
    assert run("int main(void) { int a; a = 5; "
               "return a > 3 ? 10 : 20; }")[0] == 10
    assert run("int main(void) { int a; a = 1; "
               "return (a ? 2 : 3) + (a ? 0 : 100); }")[0] == 2


def test_nested_logical_in_expression():
    code, _ = run("""
int main(void) {
    int a, b;
    a = 1; b = 0;
    return 10 + ((a && !b) ? 1 : 0) * 5;
}
""")
    assert code == 15


def test_recursion_fib():
    code, _ = run("""
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main(void) { return fib(15); }
""")
    assert code == 610


def test_mutual_recursion():
    code, _ = run("""
int is_odd(int n);
int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
int main(void) { return is_even(10) * 10 + is_odd(7); }
""")
    assert code == 11


def test_pointers_and_addresses():
    code, _ = run("""
void set(int *p, int v) { *p = v; }
int main(void) {
    int x;
    set(&x, 99);
    return x;
}
""")
    assert code == 99


def test_arrays_and_indexing():
    code, _ = run("""
int a[10];
int main(void) {
    int i;
    for (i = 0; i < 10; i++) a[i] = i * i;
    return a[7];
}
""")
    assert code == 49


def test_local_arrays():
    code, _ = run("""
int main(void) {
    int a[8];
    int i, s;
    for (i = 0; i < 8; i++) a[i] = i;
    s = 0;
    for (i = 0; i < 8; i++) s += a[i];
    return s;
}
""")
    assert code == 28


def test_pointer_arithmetic():
    code, _ = run("""
int sum(int *p, int n) {
    int s;
    s = 0;
    while (n--) s += *p++;
    return s;
}
int data[5] = {1, 2, 3, 4, 5};
int main(void) { return sum(data, 5); }
""")
    assert code == 15


def test_pointer_difference():
    code, _ = run("""
int a[10];
int main(void) {
    int *p, *q;
    p = a + 2;
    q = a + 9;
    return q - p;
}
""")
    assert code == 7


def test_char_semantics():
    code, _ = run("""
int main(void) {
    char c;
    c = 200;           /* wraps to -56 as signed char */
    if (c >= 0) return 1;
    return c + 256;    /* -56 + 256 = 200 */
}
""")
    assert code == 200


def test_unsigned_char():
    assert run("int main(void) { unsigned char c; c = 200; "
               "return c; }")[0] == 200


def test_short_truncation():
    assert run("int main(void) { short s; s = 70000; return s; }"
               )[0] == 70000 - 65536


def test_string_literals_and_puts():
    code, out = run("""
int main(void) {
    puts("hello, world");
    putstr("no newline");
    return 0;
}
""")
    assert out == b"hello, world\nno newline"


def test_string_indexing():
    assert run('int main(void) { char *s; s = "abc"; return s[1]; }'
               )[0] == ord("b")


def test_global_initializers():
    code, _ = run("""
int scalar = 7;
int arr[4] = {10, 20, 30};
char msg[8] = "hi";
int main(void) { return scalar + arr[1] + arr[3] + msg[1]; }
""")
    assert code == 7 + 20 + 0 + ord("i")


def test_double_arithmetic():
    code, out = run("""
int main(void) {
    double x, y;
    x = 1.5; y = 2.25;
    putfloat(x * y + 0.375);
    return (x * y) > 3.0 ? 1 : 0;
}
""")
    assert code == 1
    assert out == b"3.75"


def test_float_vs_double_precision():
    code, _ = run("""
int main(void) {
    float f;
    double d;
    f = 1.0f / 3.0f;
    d = 1.0 / 3.0;
    return f == d ? 1 : 0;   /* float32 1/3 != float64 1/3 */
}
""")
    assert code == 0


def test_int_double_conversions():
    assert run("int main(void) { double d; d = 7.9; return (int)d; }"
               )[0] == 7
    assert run("int main(void) { int i; i = 3; "
               "return (3.5 + i) > 6.4 ? 1 : 0; }")[0] == 1


def test_casts_between_int_widths():
    assert run("int main(void) { int x; x = 0x1234; "
               "return (char)x; }")[0] == 0x34
    assert run("int main(void) { int x; x = 0x12FF; "
               "return (unsigned char)x; }")[0] == 0xFF


def test_bitwise_and_shifts():
    assert run("int main(void) { return (0xF0 | 0x0F) ^ 0xFF; }")[0] == 0
    assert run("int main(void) { return 1 << 10; }")[0] == 1024
    assert run("int main(void) { return -16 >> 2; }")[0] == -4
    assert run("int main(void) { unsigned u; u = 0 - 16; "
               "return (u >> 28) == 15; }")[0] == 1


def test_incdec_semantics():
    code, _ = run("""
int main(void) {
    int i, a, b;
    i = 5;
    a = i++;
    b = ++i;
    return a * 100 + b * 10 + i;  /* 5, 7, 7 -> 577 */
}
""")
    assert code == 577


def test_comma_operator():
    assert run("int main(void) { int a, b; a = (b = 3, b + 1); "
               "return a; }")[0] == 4


def test_taking_function_address_compiles_and_runs():
    # Function-pointer *types* are not in the mini-C declarator subset, but
    # taking a function's address works and forces a trampoline.
    code, _ = run("""
int add(int a, int b) { return a + b; }
int main(void) {
    unsigned f;
    f = (unsigned)&add;
    return f != 0 ? 7 : 0;
}
""")
    assert code == 7
    module = compile_source("""
int add(int a, int b) { return a + b; }
int main(void) { return (unsigned)&add != 0; }
""")
    assert module.proc_by_name("add").needs_trampoline


def test_malloc_memset_strlen():
    code, _ = run("""
int main(void) {
    char *p;
    p = malloc(16);
    memset(p, 'x', 5);
    p[5] = 0;
    return strlen(p);
}
""")
    assert code == 5


def test_getchar_loop():
    code, out = run("""
int main(void) {
    int c, n;
    n = 0;
    while ((c = getchar()) != -1) { putchar(c); n++; }
    return n;
}
""", input_data=b"abc")
    assert code == 3
    assert out == b"abc"


def test_exit_from_nested_call():
    code, _ = run("""
void die(int code) { exit(code); }
int main(void) { die(3); return 9; }
""")
    assert code == 3


def test_args_to_main():
    assert run("int main(int n) { return n * 2; }", 21)[0] == 42


def test_incdec_on_double_rejected():
    with pytest.raises(CodegenError, match="floating"):
        compile_source("int main(void) { double d; d = 0.0; d++; "
                       "return 0; }")


def test_deep_expression_stress():
    # 50 chained additions with nested parens: exercises the eval stack.
    expr = "+".join(f"({i} * 2)" for i in range(50))
    assert run(f"int main(void) {{ return ({expr}) % 251; }}"
               )[0] == (sum(i * 2 for i in range(50)) % 251)


def test_assignment_as_value():
    assert run("int main(void) { int a, b, c; a = b = c = 13; "
               "return a + b + c; }")[0] == 39


def test_assignment_value_is_converted_value():
    # The value of (c = 300) is 300 truncated to char = 44.
    assert run("int main(void) { char c; int x; x = (c = 300); "
               "return x; }")[0] == 44


def test_compound_assign_with_impure_target_single_eval():
    code, _ = run("""
int a[10];
int main(void) {
    int i;
    i = 3;
    a[3] = 40;
    a[i++] += 2;        /* must evaluate i++ exactly once */
    return a[3] * 10 + i;   /* 42, 4 -> 424 */
}
""")
    assert code == 424


def test_call_in_nested_expression():
    code, _ = run("""
int f(int x) { return x * 2; }
int main(void) { return 1 + f(3) * f(4); }   /* 1 + 6*8 = 49 */
""")
    assert code == 49


def test_call_under_pending_address():
    # The original bug: a call's ARGs executing under a pending address.
    code, _ = run("""
int f(int x) { return x + 1; }
int g;
int main(void) { g = f(41) - 1; return g; }
""")
    assert code == 41


def test_calls_in_both_operands():
    code, out = run("""
int n;
int next(void) { n += 1; return n; }
int f(int x) { return x * 10; }
int main(void) {
    n = 0;
    return f(next()) + f(next());   /* 10 + 20 */
}
""")
    assert code == 30


def test_nested_call_args():
    code, _ = run("""
int add(int a, int b) { return a + b; }
int main(void) { return add(add(1, 2), add(3, add(4, 5))); }
""")
    assert code == 15


def test_call_as_condition():
    code, _ = run("""
int truthy(int x) { return x; }
int main(void) {
    if (truthy(0)) return 1;
    if (!truthy(5)) return 2;
    while (truthy(0)) return 3;
    return truthy(4) && truthy(2) ? 42 : 9;
}
""")
    assert code == 42


def test_incdec_as_value_in_call():
    code, _ = run("""
int id(int x) { return x; }
int main(void) {
    int i;
    i = 7;
    return id(i++) * 100 + i;   /* 700 + 8 */
}
""")
    assert code == 708


def test_switch_dispatch_and_fallthrough():
    code, out = run("""
int classify(int c) {
    switch (c) {
    case 'a': case 'e': case 'i': case 'o': case 'u': return 1;
    case '0': case '1': case '2': case '3': case '4':
    case '5': case '6': case '7': case '8': case '9': return 2;
    case ' ': case 10: return 3;
    default: return 0;
    }
}
int main(void) {
    int total;
    char *s;
    s = "hello 42\\n";
    total = 0;
    while (*s) total = total * 4 + classify(*s++);
    putint(total);
    return 0;
}
""")
    assert out == b"16875"


def test_switch_fallthrough_and_break():
    code, _ = run("""
int main(void) {
    int t;
    t = 0;
    switch (2) {
    case 1: return 90;
    case 2:
    case 3: t += 1;      /* falls through */
    case 4: t += 10; break;
    case 5: return 91;
    }
    return t;            /* 11 */
}
""")
    assert code == 11


def test_switch_no_match_without_default():
    assert run("int main(void) { switch (9) { case 1: return 1; } "
               "return 42; }")[0] == 42


def test_switch_negative_cases_signed():
    code, _ = run("""
int pick(int v) {
    switch (v) {
    case -5: return 1;
    case -1: return 2;
    case 0:  return 3;
    case 7:  return 4;
    default: return 9;
    }
}
int main(void) {
    return pick(-5) * 1000 + pick(-1) * 100 + pick(0) * 10 + pick(7);
}
""")
    assert code == 1234


def test_switch_many_cases_decision_tree():
    # 16 cases forces nested binary-search splits.
    cases = "\n".join(f"case {i}: return {i * 2};" for i in range(16))
    code, _ = run(f"""
int f(int v) {{
    switch (v) {{
    {cases}
    default: return -1;
    }}
}}
int main(void) {{
    int i, bad;
    bad = 0;
    for (i = 0; i < 16; i++)
        if (f(i) != i * 2) bad++;
    if (f(99) != -1) bad++;
    return bad;
}}
""")
    assert code == 0


def test_switch_in_loop_break_binding():
    code, _ = run("""
int main(void) {
    int i, n;
    n = 0;
    for (i = 0; i < 10; i++) {
        switch (i % 3) {
        case 0: n += 1; break;   /* breaks the switch, not the loop */
        case 1: continue;        /* continues the loop */
        default: n += 100; break;
        }
        n += 1000;
    }
    return n > 0 ? n & 32767 : -1;
}
""")
    # i%3==0 (4 times): n+=1+1000; i%3==1 (3): skip; i%3==2 (3): n+=100+1000
    assert code == (4 * 1001 + 3 * 1100) & 32767


def test_switch_errors():
    from repro.minic.parser import ParseError, parse
    from repro.minic.sema import SemaError, analyze

    with pytest.raises(SemaError, match="duplicate case"):
        analyze(parse(
            "void f(int v) { switch (v) { case 1: case 1: break; } }"
        ))
    with pytest.raises(SemaError, match="multiple default"):
        analyze(parse(
            "void f(int v) { switch (v) { default: default: break; } }"
        ))
    with pytest.raises(SemaError, match="non-integer"):
        analyze(parse(
            "void f(double v) { switch (v) { case 1: break; } }"
        ))
    with pytest.raises(SemaError, match="no case"):
        analyze(parse("void f(int v) { switch (v) { v = 1; } }"))
    with pytest.raises(ParseError, match="outside a switch"):
        parse("void f(void) { case 3: ; }")
