"""Tests for the Earley parser, shortest derivations, and derivation
encode/decode."""

import pytest

from repro.bytecode import assemble
from repro.bytecode.instructions import encode, instr
from repro.grammar.cfg import Grammar
from repro.grammar.initial import initial_grammar
from repro.parsing.derivation import (
    DerivationError,
    decode_tree,
    derivation_of_tree,
    encode_tree,
    tree_of_derivation,
)
from repro.parsing.earley import (
    EarleyError,
    recognize,
    shortest_derivation,
    shortest_derivation_tree,
)
from repro.parsing.forest import terminal_yield, tree_size
from repro.parsing.stackparser import parse_blocks


def _toy_grammar():
    """S -> a S b | eps  over terminals a=1, b=2."""
    g = Grammar()
    s = g.add_nonterminal("S")
    g.start = s
    g.add_rule(s, [])
    g.add_rule(s, [1, s, 2])
    return g


def test_recognize_toy():
    g = _toy_grammar()
    assert recognize(g, [])
    assert recognize(g, [1, 2])
    assert recognize(g, [1, 1, 2, 2])
    assert not recognize(g, [1, 2, 2])
    assert not recognize(g, [2, 1])


def test_shortest_derivation_toy():
    g = _toy_grammar()
    d = shortest_derivation(g, [1, 1, 2, 2])
    assert len(d) == 3  # a S b / a S b / eps


def test_shortest_picks_cheaper_ambiguous_parse():
    # S -> A A | c ; A -> c ... string "c" has a 1-rule derivation (S->c)
    # and "cc" must use S -> A A (3 rules).
    g = Grammar()
    s = g.add_nonterminal("S")
    a = g.add_nonterminal("A")
    g.start = s
    g.add_rule(s, [a, a])
    g.add_rule(s, [3])
    g.add_rule(a, [3])
    assert len(shortest_derivation(g, [3])) == 1
    assert len(shortest_derivation(g, [3, 3])) == 3


def test_shortest_prefers_inlined_rule():
    # S -> A B; A -> a; B -> b; and an "inlined" S -> a B.
    g = Grammar()
    s = g.add_nonterminal("S")
    a = g.add_nonterminal("A")
    b = g.add_nonterminal("B")
    g.start = s
    r_s = g.add_rule(s, [a, b])
    r_a = g.add_rule(a, [10])
    r_b = g.add_rule(b, [11])
    from repro.grammar.cfg import fragment_graft
    frag = fragment_graft(r_s.fragment, 0, r_a.fragment)
    inlined = g.add_rule(s, [10, b], origin="inlined", fragment=frag)
    d = shortest_derivation(g, [10, 11])
    assert len(d) == 2
    assert d[0] == inlined.id


def test_build_tree_iterative_on_deep_nesting():
    """Tree reconstruction must not recurse per tree level.

    ``S -> a S b`` nests one level per symbol pair; with the recursion
    limit clamped far below the nesting depth, only an iterative
    ``_build_tree`` survives.
    """
    import sys

    g = _toy_grammar()
    depth = 2000
    symbols = [1] * depth + [2] * depth
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(100)
    try:
        tree = shortest_derivation_tree(g, symbols)
    finally:
        sys.setrecursionlimit(limit)
    assert tree_size(tree) == depth + 1
    assert terminal_yield(tree, g) == symbols


def test_earley_on_pathologically_deep_block():
    """A block is a left-recursive ``<start>`` spine — one level per
    statement — so a long basic block used to blow Python's recursion
    limit during backpointer reconstruction."""
    import sys

    g = initial_grammar()
    code = encode([instr("LIT1", 7), instr("ARGU")] * 300)
    blocks = parse_blocks(g, code)
    assert len(blocks) == 1
    symbols = terminal_yield(blocks[0].tree, g)
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(150)
    try:
        tree = shortest_derivation_tree(g, symbols)
    finally:
        sys.setrecursionlimit(limit)
    assert derivation_of_tree(tree) == derivation_of_tree(blocks[0].tree)


def test_earley_error_on_unparseable():
    g = _toy_grammar()
    with pytest.raises(EarleyError):
        shortest_derivation(g, [2])


def test_earley_agrees_with_stackparser_on_bytecode():
    g = initial_grammar()
    code = encode([
        instr("ADDRFP", 0, 0), instr("INDIRU"), instr("LIT1", 0),
        instr("NEU"), instr("BrTrue", 0, 0), instr("LIT1", 0),
        instr("ARGU"), instr("ADDRGP", 0, 0), instr("CALLU"),
        instr("POPU"),
    ])
    blocks = parse_blocks(g, code)
    assert len(blocks) == 1
    symbols = terminal_yield(blocks[0].tree, g)
    tree = shortest_derivation_tree(g, symbols)
    # The initial grammar is unambiguous on valid bytecode: both parsers
    # must produce the identical derivation.
    assert derivation_of_tree(tree) == derivation_of_tree(blocks[0].tree)


def test_earley_on_empty_block():
    g = initial_grammar()
    tree = shortest_derivation_tree(g, [])
    assert tree_size(tree) == 1


# -- derivation encode/decode ----------------------------------------------

@pytest.fixture(scope="module")
def parsed_block():
    g = initial_grammar()
    module = assemble("""
.proc f framesize=8
    ADDRLP 0 0
    LIT2 57 4
    ASGNU
    ADDRLP 4 0
    ADDRLP 0 0
    INDIRU
    LIT1 3
    MULU
    ASGNU
    RETV
.endproc
""")
    return g, parse_blocks(g, module.procedures[0].code)[0].tree


def test_derivation_tree_roundtrip(parsed_block):
    g, tree = parsed_block
    rules = derivation_of_tree(tree)
    rebuilt = tree_of_derivation(g, rules)
    assert derivation_of_tree(rebuilt) == rules
    assert terminal_yield(rebuilt, g) == terminal_yield(tree, g)


def test_encode_decode_roundtrip(parsed_block):
    g, tree = parsed_block
    data = encode_tree(g, tree)
    assert len(data) == tree_size(tree)  # one byte per derivation step
    rebuilt, end = decode_tree(g, data)
    assert end == len(data)
    assert derivation_of_tree(rebuilt) == derivation_of_tree(tree)


def test_byte_rule_index_equals_byte_value():
    # The codeword for <byte> -> v must be v itself, so literals pass
    # through the encoding unchanged.
    g = initial_grammar()
    byte = g.nonterminal("byte")
    for v in (0, 1, 57, 255):
        rule = g.rules_for(byte)[v]
        assert rule.rhs == (256 + v,)
        assert g.rule_index(rule.id) == v


def test_decode_rejects_bad_index():
    g = initial_grammar()
    with pytest.raises(DerivationError):
        decode_tree(g, bytes([200]))  # <start> has only 2 rules


def test_decode_rejects_truncated():
    g = initial_grammar()
    start = g.nonterminal("start")
    chain_idx = 1  # start -> start x
    with pytest.raises(DerivationError):
        decode_tree(g, bytes([chain_idx]))


def test_tree_of_derivation_rejects_extra_rules(parsed_block):
    g, tree = parsed_block
    rules = derivation_of_tree(tree)
    with pytest.raises(DerivationError, match="extra"):
        tree_of_derivation(g, rules + [rules[0]])
