"""Service resilience: drain hardening, engine fallback, circuit breaker.

The engine-fault tests are differential: a request answered in fallback
or degraded mode must produce *exactly* what the reference interpreter
produces for the same compressed module — the oracle borrowed from
``tests/test_exec_equivalence.py``.  An injected compiled-engine fault
may cost performance, never correctness.
"""

import threading
import time

import pytest

from repro import compress_module, train_grammar
from repro import faults
from repro.corpus.synth import generate_program
from repro.interp.interp2 import Interpreter2
from repro.minic import compile_source
from repro.service import ServiceError
from repro.service.protocol import b64d
from repro.storage import save_compressed, save_grammar

from tests.test_exec_equivalence import DIV_BY_ZERO, _observe
from tests.test_service import _Harness

FALLBACK_SEEDS = [200, 213, 226, 239]  # a slice of the equivalence sweep


@pytest.fixture(scope="module")
def artifacts():
    corpus = [compile_source(generate_program(10, seed=s))
              for s in (311, 312, 313)]
    grammar, _ = train_grammar(corpus)
    programs = {
        seed: compress_module(
            grammar, compile_source(generate_program(4, seed=seed)))
        for seed in FALLBACK_SEEDS
    }
    return {
        "grammar": grammar,
        "grammar_bytes": save_grammar(grammar),
        "programs": programs,
        "trap": compress_module(grammar, compile_source(DIV_BY_ZERO)),
    }


@pytest.fixture(autouse=True)
def _no_leaked_plane():
    yield
    assert faults.ACTIVE is None, "a test leaked an active fault plane"
    faults.deactivate()


def _run_raw(client, cmod, engine="compiled"):
    """run_compressed via the raw call surface, so the response's
    ``engine`` discriminator is visible."""
    result = client.call("run_compressed",
                         {"module": save_compressed(cmod),
                          "args": [], "engine": engine})
    output = result["output"]  # raw under binary framing, b64 legacy
    if isinstance(output, str):
        output = b64d(output)
    return result["engine"], result["code"], output


# -- drain hardening ---------------------------------------------------------

def test_connect_during_drain_gets_structured_error(tmp_path):
    """A client connecting while the server drains gets a retryable
    ``shutting_down`` error frame — never a connection reset — and the
    in-flight work still completes."""
    source = compile_source(generate_program(6, seed=400))
    grammar, _ = train_grammar([source])
    h = _Harness(tmp_path, batch_window=0.5)
    try:
        with h.client() as client:
            client.put_grammar(save_grammar(grammar), tags=["prod"])
        from repro.storage import save_module
        result = {}

        def slow_compress():
            with h.client() as c:
                result["data"] = c.compress(save_module(source), "prod")

        worker = threading.Thread(target=slow_compress)
        worker.start()
        time.sleep(0.1)  # request lands in the 0.5 s batch window
        stopper = threading.Thread(target=h.close)
        stopper.start()
        time.sleep(0.1)  # drain has begun; listener must still accept
        with h.client() as mid:  # a reset here would raise OSError
            with pytest.raises(ServiceError) as exc:
                mid.compress(save_module(source), "prod")
        assert exc.value.code == "shutting_down"
        assert exc.value.retryable
        worker.join(15)
        stopper.join(20)
        assert result["data"]  # the drained request was not dropped
    finally:
        if h.thread.is_alive():
            h.close()


# -- engine fallback (differential against the reference oracle) -------------

@pytest.mark.parametrize("seed", FALLBACK_SEEDS)
def test_dispatch_fault_falls_back_to_reference(tmp_path, artifacts,
                                                seed):
    cmod = artifacts["programs"][seed]
    expected = _observe(cmod, Interpreter2(cmod))
    h = _Harness(tmp_path)
    try:
        with h.client() as client:
            with faults.injected(
                    {"seed": 1,
                     "sites": {"engine.dispatch": {"p": 1.0}}}):
                used, code, output = _run_raw(client, cmod)
            assert used == "reference_fallback"
            assert code == expected["code"]
            assert output == expected["output"]
            stats = h.run(h.service._m_stats({}))
            assert stats["counters"]["engine_events_total"][
                "fallback"] == 1
    finally:
        h.close()


def test_tables_fault_falls_back_to_reference(tmp_path, artifacts):
    cmod = artifacts["programs"][FALLBACK_SEEDS[0]]
    expected = _observe(cmod, Interpreter2(cmod))
    h = _Harness(tmp_path)
    try:
        with h.client() as client:
            with faults.injected(
                    {"seed": 1,
                     "sites": {"engine.tables": {"at": [1]}}}):
                used, code, output = _run_raw(client, cmod)
                assert used == "reference_fallback"
                assert (code, output) == (expected["code"],
                                          expected["output"])
                # the next request's table build is fault-free again
                used, code, output = _run_raw(client, cmod)
            assert used == "compiled"
            assert (code, output) == (expected["code"],
                                      expected["output"])
    finally:
        h.close()


def test_reference_engine_is_outside_the_blast_radius(tmp_path,
                                                      artifacts):
    """engine=reference requests never touch the compiled engine, so a
    dispatch fault cannot reach them."""
    cmod = artifacts["programs"][FALLBACK_SEEDS[0]]
    expected = _observe(cmod, Interpreter2(cmod))
    h = _Harness(tmp_path)
    try:
        with h.client() as client:
            with faults.injected(
                    {"seed": 1,
                     "sites": {"engine.dispatch": {"p": 1.0}}}):
                used, code, output = _run_raw(client, cmod,
                                              engine="reference")
            assert used == "reference"
            assert (code, output) == (expected["code"],
                                      expected["output"])
    finally:
        h.close()


def test_program_trap_is_not_an_engine_fault(tmp_path, artifacts):
    """A Trap is the program's fault (identical on every engine): it
    must surface as the structured ``trap`` error, not trip the breaker
    or count as a fallback."""
    h = _Harness(tmp_path)
    try:
        with h.client() as client:
            with pytest.raises(ServiceError) as exc:
                _run_raw(client, artifacts["trap"])
            assert exc.value.code == "trap"
            stats = h.run(h.service._m_stats({}))
            assert stats["counters"]["engine_events_total"] == {}
            assert stats["engine"]["breakers"] == {}
    finally:
        h.close()


# -- circuit breaker: quarantine and recovery --------------------------------

def test_breaker_opens_after_threshold_and_degrades(tmp_path, artifacts):
    cmod = artifacts["programs"][FALLBACK_SEEDS[0]]
    expected = _observe(cmod, Interpreter2(cmod))
    h = _Harness(tmp_path, breaker_threshold=2, breaker_cooldown=60.0)
    try:
        with h.client() as client:
            with faults.injected(
                    {"seed": 1,
                     "sites": {"engine.dispatch": {"p": 1.0}}}):
                for _ in range(2):
                    used, code, output = _run_raw(client, cmod)
                    assert used == "reference_fallback"
                    assert (code, output) == (expected["code"],
                                              expected["output"])
            # plane gone, but the breaker is open: the compiled engine
            # stays quarantined for this grammar
            used, code, output = _run_raw(client, cmod)
            assert used == "reference_degraded"
            assert (code, output) == (expected["code"],
                                      expected["output"])
            stats = h.run(h.service._m_stats({}))
            events = stats["counters"]["engine_events_total"]
            assert events["fallback"] == 2
            assert events["degraded"] == 1
            assert stats["engine"]["quarantined"]  # shows up in stats
            (state,) = set(
                v["state"] for v in stats["engine"]["breakers"].values())
            assert state == "open"
    finally:
        h.close()


def test_breaker_half_open_probe_recovers(tmp_path, artifacts):
    cmod = artifacts["programs"][FALLBACK_SEEDS[2]]
    expected = _observe(cmod, Interpreter2(cmod))
    h = _Harness(tmp_path, breaker_threshold=1, breaker_cooldown=0.2)
    try:
        with h.client() as client:
            with faults.injected(
                    {"seed": 1,
                     "sites": {"engine.dispatch": {"p": 1.0}}}):
                used, _, _ = _run_raw(client, cmod)
                assert used == "reference_fallback"
            used, _, _ = _run_raw(client, cmod)
            assert used == "reference_degraded"  # open: straight to ref
            time.sleep(0.25)  # past the cooldown: half-open
            used, code, output = _run_raw(client, cmod)
            assert used == "compiled"  # probe succeeded, breaker closed
            assert (code, output) == (expected["code"],
                                      expected["output"])
            stats = h.run(h.service._m_stats({}))
            assert stats["engine"]["breakers"] == {}
            assert stats["engine"]["quarantined"] == []
    finally:
        h.close()


def test_stats_reports_startup_scan(tmp_path, artifacts):
    h = _Harness(tmp_path)
    try:
        with h.client() as client:
            stats = client.stats()
        scan = stats["registry"]["startup_scan"]
        assert scan["clean"] is True
        assert scan["checked"] == 0
    finally:
        h.close()


# -- native engine routing (fallback matrix) ----------------------------------

from repro.interp import nativebuild
from repro.interp.native import native_available
from repro.interp.nativebuild import NativeBuildCache

needs_cc = pytest.mark.skipif(
    not native_available(),
    reason="no C compiler on PATH: native engine unavailable")


@pytest.fixture()
def private_native_cache(tmp_path, monkeypatch):
    """Point the process-wide build cache at a throwaway root so the
    fault-injection tests see real builds, not warm disk hits."""
    cache = NativeBuildCache(root=tmp_path / "native-cache")
    monkeypatch.setattr(nativebuild, "_DEFAULT", cache)
    return cache


@needs_cc
def test_native_engine_serves_natively(tmp_path, artifacts,
                                       private_native_cache):
    """The happy path: engine=native answers from the shared object and
    says so — differentially identical to the reference oracle."""
    cmod = artifacts["programs"][FALLBACK_SEEDS[0]]
    expected = _observe(cmod, Interpreter2(cmod))
    h = _Harness(tmp_path)
    try:
        with h.client() as client:
            used, code, output = _run_raw(client, cmod, engine="native")
            assert used == "native"
            assert (code, output) == (expected["code"],
                                      expected["output"])
    finally:
        h.close()


def test_native_unavailable_falls_back_to_compiled(tmp_path, artifacts,
                                                   monkeypatch):
    """No compiler on the host: the request still succeeds, served by
    the compiled Python engine, and the switch is visible both in the
    response discriminator and the fallback metric."""
    monkeypatch.setenv("REPRO_NATIVE_CC", "none")
    cmod = artifacts["programs"][FALLBACK_SEEDS[1]]
    expected = _observe(cmod, Interpreter2(cmod))
    h = _Harness(tmp_path)
    try:
        with h.client() as client:
            used, code, output = _run_raw(client, cmod, engine="native")
            assert used == "compiled_fallback"
            assert (code, output) == (expected["code"],
                                      expected["output"])
            stats = h.run(h.service._m_stats({}))
            assert stats["counters"]["engine_events_total"][
                "fallback"] == 1
    finally:
        h.close()


@needs_cc
def test_native_build_fault_opens_breaker_to_degraded(
        tmp_path, artifacts, private_native_cache):
    """Injected build failures trip the native breaker slot: requests
    fall back while failing, then skip the doomed build entirely
    (``compiled_degraded``) once the breaker opens — even after the
    fault plane is gone."""
    cmod = artifacts["programs"][FALLBACK_SEEDS[2]]
    expected = _observe(cmod, Interpreter2(cmod))
    h = _Harness(tmp_path, breaker_threshold=2, breaker_cooldown=60.0)
    try:
        with h.client() as client:
            with faults.injected(
                    {"seed": 1,
                     "sites": {"native.build": {"p": 1.0}}}):
                for _ in range(2):
                    used, code, output = _run_raw(client, cmod,
                                                  engine="native")
                    assert used == "compiled_fallback"
                    assert (code, output) == (expected["code"],
                                              expected["output"])
            used, code, output = _run_raw(client, cmod, engine="native")
            assert used == "compiled_degraded"
            assert (code, output) == (expected["code"],
                                      expected["output"])
            stats = h.run(h.service._m_stats({}))
            assert stats["counters"]["engine_events_total"] == {
                "fallback": 2, "degraded": 1}
            assert any(key.startswith("native:")
                       for key in stats["engine"]["breakers"])
            assert stats["engine"]["quarantined"]
    finally:
        h.close()


@needs_cc
def test_native_program_trap_is_not_an_engine_fault(tmp_path, artifacts,
                                                    private_native_cache):
    """A Trap through the native engine is the program's fault: the
    structured ``trap`` error comes back and the breaker stays closed."""
    h = _Harness(tmp_path)
    try:
        with h.client() as client:
            with pytest.raises(ServiceError) as exc:
                _run_raw(client, artifacts["trap"], engine="native")
            assert exc.value.code == "trap"
            assert "division by zero" in exc.value.message
            stats = h.run(h.service._m_stats({}))
            assert stats["counters"]["engine_events_total"] == {}
            assert stats["engine"]["breakers"] == {}
    finally:
        h.close()
