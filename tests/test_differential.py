"""Differential testing: generated programs through the whole system.

For a sweep of deterministic generated programs: compile, run on
interpreter 1, train a grammar, compress, run on interpreter 2, decompress
— everything must agree.  This is the system-level analogue of the
per-module property tests, using realistic compiler output rather than
grammar-derived random streams.
"""

import pytest

from repro import (
    compress_module,
    decompress_module,
    run,
    run_compressed,
    train_grammar,
)
from repro.corpus.synth import generate_program
from repro.interp.profile import profile_run
from repro.minic import compile_source
from repro.opt import optimize_module

SEEDS = [1, 2, 3, 5, 8, 13, 21]


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_program_differential(seed):
    module = compile_source(generate_program(8, seed=seed))
    grammar, _ = train_grammar([module])
    cmod = compress_module(grammar, module)

    r1 = run(module)
    r2 = run_compressed(cmod)
    assert r1 == r2, f"seed {seed}: behaviour diverged"

    back = decompress_module(cmod)
    assert [p.code for p in back.procedures] == \
        [p.code for p in module.procedures], f"seed {seed}"


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_generated_program_optimizer_differential(seed):
    module = compile_source(generate_program(8, seed=seed))
    optimized, _ = optimize_module(module)
    assert run(optimized) == run(module), f"seed {seed}"


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_generated_program_profile_differential(seed):
    module = compile_source(generate_program(6, seed=seed))
    grammar, _ = train_grammar([module])
    cmod = compress_module(grammar, module)
    c1, o1, p1 = profile_run(module)
    c2, o2, p2 = profile_run(cmod)
    assert (c1, o1) == (c2, o2)
    assert p1.operators == p2.operators


def test_cross_seed_compression():
    """A grammar trained on several generated programs compresses an
    unseen one correctly (and usually smaller)."""
    corpus = [compile_source(generate_program(8, seed=s))
              for s in (31, 37, 41)]
    unseen = compile_source(generate_program(8, seed=97))
    grammar, _ = train_grammar(corpus)
    cmod = compress_module(grammar, unseen)
    assert run_compressed(cmod) == run(unseen)
    back = decompress_module(cmod)
    assert [p.code for p in back.procedures] == \
        [p.code for p in unseen.procedures]


# -- 50-seed fuzz sweep --------------------------------------------------------
#
# Interpreter 1 on raw bytecode vs interpreter 2 on the compressed form,
# over 50 seeded random programs compressed against one shared grammar
# (trained once on a disjoint corpus — the realistic deployment shape, and
# what keeps 50 end-to-end runs affordable).  Results must agree for all
# seeds; execution traces (operator counters, block entries, branches) are
# spot-checked on a sample; decompression must invert compression exactly.

FUZZ_SEEDS = list(range(100, 150))
TRACE_SEEDS = FUZZ_SEEDS[::7]


@pytest.fixture(scope="module")
def fuzz_grammar():
    corpus = [compile_source(generate_program(10, seed=s))
              for s in (301, 302, 303)]
    grammar, _ = train_grammar(corpus)
    return grammar


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzz_result_and_roundtrip(seed, fuzz_grammar):
    module = compile_source(generate_program(4, seed=seed))
    cmod = compress_module(fuzz_grammar, module)
    assert run(module) == run_compressed(cmod), f"seed {seed} diverged"
    back = decompress_module(cmod)
    assert [p.code for p in back.procedures] == \
        [p.code for p in module.procedures], f"seed {seed}"
    assert [p.labels for p in back.procedures] == \
        [p.labels for p in module.procedures], f"seed {seed}"


@pytest.mark.parametrize("seed", TRACE_SEEDS)
def test_fuzz_traces_agree(seed, fuzz_grammar):
    """Same executed-operator multiset, block entries, and branch counts:
    compression re-codes the program, it never re-schedules it."""
    module = compile_source(generate_program(4, seed=seed))
    cmod = compress_module(fuzz_grammar, module)
    c1, o1, p1 = profile_run(module)
    c2, o2, p2 = profile_run(cmod)
    assert (c1, o1) == (c2, o2), f"seed {seed}"
    assert p1.operators == p2.operators, f"seed {seed}"
    # blocks_entered counts derivation restarts — interpreter 2 only —
    # so only the control-flow counters both machines share are compared.
    assert p1.branches_taken == p2.branches_taken, f"seed {seed}"
    assert p1.returns == p2.returns, f"seed {seed}"


# -- fault behaviour ----------------------------------------------------------

FAULTING_SOURCES = {
    "division by zero": """
int main() {
    int a;
    a = 5;
    return a / (a - 5);
}
""",
    "call stack overflow": """
int loop(int n) { return loop(n + 1); }
int main() { return loop(0); }
""",
}


@pytest.mark.parametrize("kind", sorted(FAULTING_SOURCES))
def test_fuzz_fault_behaviour_matches(kind, fuzz_grammar):
    """A faulting program faults identically — same trap, same message —
    raw on interpreter 1 and compressed on interpreter 2."""
    from repro.interp.state import Trap

    module = compile_source(FAULTING_SOURCES[kind])
    cmod = compress_module(fuzz_grammar, module)
    with pytest.raises(Trap) as raw_trap:
        run(module)
    with pytest.raises(Trap) as compressed_trap:
        run_compressed(cmod)
    assert str(raw_trap.value) == str(compressed_trap.value)
