"""Differential testing: generated programs through the whole system.

For a sweep of deterministic generated programs: compile, run on
interpreter 1, train a grammar, compress, run on interpreter 2, decompress
— everything must agree.  This is the system-level analogue of the
per-module property tests, using realistic compiler output rather than
grammar-derived random streams.
"""

import pytest

from repro import (
    compress_module,
    decompress_module,
    run,
    run_compressed,
    train_grammar,
)
from repro.corpus.synth import generate_program
from repro.interp.profile import profile_run
from repro.minic import compile_source
from repro.opt import optimize_module

SEEDS = [1, 2, 3, 5, 8, 13, 21]


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_program_differential(seed):
    module = compile_source(generate_program(8, seed=seed))
    grammar, _ = train_grammar([module])
    cmod = compress_module(grammar, module)

    r1 = run(module)
    r2 = run_compressed(cmod)
    assert r1 == r2, f"seed {seed}: behaviour diverged"

    back = decompress_module(cmod)
    assert [p.code for p in back.procedures] == \
        [p.code for p in module.procedures], f"seed {seed}"


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_generated_program_optimizer_differential(seed):
    module = compile_source(generate_program(8, seed=seed))
    optimized, _ = optimize_module(module)
    assert run(optimized) == run(module), f"seed {seed}"


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_generated_program_profile_differential(seed):
    module = compile_source(generate_program(6, seed=seed))
    grammar, _ = train_grammar([module])
    cmod = compress_module(grammar, module)
    c1, o1, p1 = profile_run(module)
    c2, o2, p2 = profile_run(cmod)
    assert (c1, o1) == (c2, o2)
    assert p1.operators == p2.operators


def test_cross_seed_compression():
    """A grammar trained on several generated programs compresses an
    unseen one correctly (and usually smaller)."""
    corpus = [compile_source(generate_program(8, seed=s))
              for s in (31, 37, 41)]
    unseen = compile_source(generate_program(8, seed=97))
    grammar, _ = train_grammar(corpus)
    cmod = compress_module(grammar, unseen)
    assert run_compressed(cmod) == run(unseen)
    back = decompress_module(cmod)
    assert [p.code for p in back.procedures] == \
        [p.code for p in unseen.procedures]
