"""The native engine's build cache and failure taxonomy.

The shared object is a *derived artifact*: everything here pins the
properties that make it safe to cache — a second load compiles nothing,
a different grammar can never be served a stale object (the key folds in
the grammar's content hash), a corrupted object on disk is rebuilt
rather than crashing, and a failed build surfaces as a structured
:class:`NativeBuildError` (deliberately not a ``RuntimeError``) so the
service falls back instead of reporting a program trap.  The fault-plane
site ``native.build`` drives the same path without breaking the
toolchain.
"""

import pytest

from repro import compress_module, faults, train_grammar
from repro.corpus.synth import generate_program
from repro.interp.native import NativeEngine, native_available
from repro.interp.nativebuild import (
    NativeBuildCache,
    NativeBuildError,
    NativeUnavailableError,
    find_compiler,
)
from repro.minic import compile_source

needs_cc = pytest.mark.skipif(
    not native_available(),
    reason="no C compiler on PATH: native engine unavailable")


@pytest.fixture(scope="module")
def grammar():
    corpus = [compile_source(generate_program(6, seed=s))
              for s in (421, 422)]
    g, _ = train_grammar(corpus)
    return g


@pytest.fixture(scope="module")
def other_grammar():
    corpus = [compile_source(generate_program(6, seed=s))
              for s in (431, 432)]
    g, _ = train_grammar(corpus)
    return g


@pytest.fixture(scope="module")
def cmod(grammar):
    return compress_module(
        grammar, compile_source("int main() { return 42; }"))


# -- cache hit / miss ---------------------------------------------------------

@needs_cc
def test_first_load_compiles_second_load_hits(tmp_path, grammar, cmod):
    cache = NativeBuildCache(root=tmp_path)
    assert NativeEngine(cmod, cache=cache).run().code == 42
    assert cache.compilations == 1
    assert NativeEngine(cmod, cache=cache).run().code == 42
    assert cache.compilations == 1  # the whole point of the cache
    assert cache.cache_hits == 1


@needs_cc
def test_fresh_cache_instance_hits_the_disk(tmp_path, grammar, cmod):
    """The cache is on-disk content addressing, not in-process memo: a
    new instance over the same root compiles zero times."""
    first = NativeBuildCache(root=tmp_path)
    NativeEngine(cmod, cache=first)
    second = NativeBuildCache(root=tmp_path)
    assert NativeEngine(cmod, cache=second).run().code == 42
    assert second.compilations == 0
    assert second.cache_hits == 1


@needs_cc
def test_grammar_change_invalidates(tmp_path, grammar, other_grammar):
    """Two grammars never share a slot: the key folds in content_key, so
    a retrained grammar compiles fresh instead of reusing stale code."""
    cache = NativeBuildCache(root=tmp_path)
    assert cache.object_path(grammar) != cache.object_path(other_grammar)
    module = compile_source("int main() { return 7; }")
    for g in (grammar, other_grammar):
        assert NativeEngine(compress_module(g, module),
                            cache=cache).run().code == 7
    assert cache.compilations == 2


@needs_cc
def test_corrupted_object_is_rebuilt_not_crashed(tmp_path, grammar, cmod):
    """Garbage found on disk at load time rebuilds transparently.

    The valid object is produced without dlopen'ing it (dlopen caches
    handles by pathname, so a prior in-process load would mask the
    corruption) — this is the cold-process-finds-garbage scenario."""
    cache = NativeBuildCache(root=tmp_path)
    target = cache.object_path(grammar)
    cache._compile(grammar, target)
    assert target.exists()
    target.unlink()  # never clobber in place: a mapped library SIGBUSes
    target.write_bytes(b"\x7fELF not really a shared object")
    fresh = NativeBuildCache(root=tmp_path)
    assert NativeEngine(cmod, cache=fresh).run().code == 42
    assert fresh.compilations == 1  # rebuilt once, transparently


@needs_cc
def test_wrong_grammar_object_is_rejected_and_rebuilt(
        tmp_path, grammar, other_grammar, cmod):
    """A valid shared object in the *wrong* slot (burned-in grammar key
    mismatch) is treated exactly like corruption."""
    cache = NativeBuildCache(root=tmp_path)
    NativeEngine(cmod, cache=cache)
    import shutil
    shutil.copy(cache.object_path(grammar),
                cache.object_path(other_grammar))
    fresh = NativeBuildCache(root=tmp_path)
    other_cmod = compress_module(
        other_grammar, compile_source("int main() { return 42; }"))
    assert NativeEngine(other_cmod, cache=fresh).run().code == 42
    assert fresh.compilations == 1


# -- failure taxonomy ---------------------------------------------------------

@needs_cc
def test_compile_error_is_a_structured_build_error(tmp_path, grammar):
    """A cgen regression (or toolchain breakage) must surface as
    NativeBuildError with the compiler's diagnostics attached — and must
    NOT be a RuntimeError, which the service treats as a program trap."""
    cache = NativeBuildCache(root=tmp_path)
    with pytest.raises(NativeBuildError) as err:
        cache.load(grammar, source_text="int rxn_abi(void) { syntax !! }")
    assert not isinstance(err.value, RuntimeError)
    assert "exit" in str(err.value)
    assert cache.compilations == 0  # a failed build caches nothing
    assert not cache.object_path(grammar).exists()


def test_no_compiler_is_unavailable_not_a_crash(tmp_path, grammar,
                                                monkeypatch):
    """REPRO_NATIVE_CC=none is the compiler-less CI hook: detection says
    unavailable, and a build attempt raises the structured subclass."""
    monkeypatch.setenv("REPRO_NATIVE_CC", "none")
    assert find_compiler() is None
    assert not native_available()
    cache = NativeBuildCache(root=tmp_path)
    with pytest.raises(NativeUnavailableError):
        cache.load(grammar)


def test_compiler_override_env(monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE_CC", "definitely-not-a-compiler-xyz")
    assert find_compiler() is None
    monkeypatch.delenv("REPRO_NATIVE_CC")
    monkeypatch.setenv("CC", "")
    assert find_compiler() is None


# -- fault plane --------------------------------------------------------------

@needs_cc
def test_native_build_fault_site_fires(tmp_path, grammar):
    """The chaos plane can fail a build without touching the toolchain;
    the injected failure wears the same NativeBuildError the service's
    fallback path handles."""
    cache = NativeBuildCache(root=tmp_path)
    with faults.injected(
            {"seed": 0, "sites": {"native.build": {"at": [1]}}}):
        with pytest.raises(NativeBuildError, match="injected"):
            cache.load(grammar)
        # second evaluation: the rule is exhausted, the build succeeds
        assert cache.load(grammar) is not None
    assert cache.compilations == 1


@needs_cc
def test_native_build_fault_does_not_hit_cached_objects(tmp_path, grammar,
                                                        cmod):
    """The site guards the *build*, not the load: once the object is on
    disk, an active fault plan cannot fail run_compressed."""
    cache = NativeBuildCache(root=tmp_path)
    NativeEngine(cmod, cache=cache)
    fresh = NativeBuildCache(root=tmp_path)
    with faults.injected(
            {"seed": 0, "sites": {"native.build": {"p": 1.0}}}):
        assert NativeEngine(cmod, cache=fresh).run().code == 42
