"""Tests for the bytecode optimizer (constant folding & friends)."""

import pytest

from repro import run
from repro.bytecode import assemble, validate_module
from repro.bytecode.instructions import iter_decode
from repro.minic import compile_source
from repro.opt import optimize_module


def _names(proc):
    return [ins.op.name for _, ins in iter_decode(proc.code)]


def _opt_asm(text):
    module = assemble(text)
    validate_module(module)
    new, stats = optimize_module(module)
    validate_module(new)
    return module, new, stats


def test_folds_constant_arithmetic():
    _, new, stats = _opt_asm("""
.proc f framesize=0
    LIT1 6
    LIT1 7
    MULU
    ARGU
    RETV
.endproc
""")
    assert stats.folded == 1
    names = _names(new.procedures[0])
    assert names == ["LIT1", "ARGU", "RETV"]
    ins = next(i for _, i in iter_decode(new.procedures[0].code)
               if i.op.name == "LIT1")
    assert ins.operands == (42,)


def test_folds_nested_constants():
    _, new, stats = _opt_asm("""
.proc f framesize=0
    LIT1 2
    LIT1 3
    ADDU
    LIT1 4
    MULU
    ARGU
    RETV
.endproc
""")
    assert stats.folded == 2
    ins = next(i for _, i in iter_decode(new.procedures[0].code)
               if i.op.generic == "LIT")
    assert ins.literal() == 20


def test_folding_uses_c_semantics():
    # -7 / 2 must fold to -3, not Python's floor.
    _, new, stats = _opt_asm("""
.proc f framesize=0
    LIT1 7
    NEGI
    LIT1 2
    DIVI
    ARGU
    RETV
.endproc
""")
    assert stats.folded >= 1
    ins = next(i for _, i in iter_decode(new.procedures[0].code)
               if i.op.name == "LIT4")
    assert ins.literal() == (-3) & 0xFFFFFFFF


def test_division_by_zero_not_folded():
    old, new, stats = _opt_asm("""
.proc f framesize=0
    LIT1 1
    LIT1 0
    DIVU
    ARGU
    RETV
.endproc
""")
    assert stats.folded == 0
    assert "DIVU" in _names(new.procedures[0])


def test_identities():
    _, new, stats = _opt_asm("""
.proc f framesize=8
    ADDRLP 0 0
    INDIRU
    LIT1 0
    ADDU
    ARGU
    ADDRLP 0 0
    INDIRU
    LIT1 1
    MULU
    ARGU
    RETV
.endproc
""")
    assert stats.identities == 2
    names = _names(new.procedures[0])
    assert "ADDU" not in names and "MULU" not in names


def test_times_zero_requires_pure_operand():
    # f()*0 must NOT fold away the call.
    old, new, stats = _opt_asm("""
.proc g framesize=0
    LIT1 9
    RETU
.endproc
.proc f framesize=0
    LocalCALLU %g
    LIT1 0
    MULU
    ARGU
    RETV
.endproc
""")
    assert "LocalCALLU" in _names(new.proc_by_name("f"))
    # ...but a pure operand does fold.
    _, new2, stats2 = _opt_asm("""
.proc f framesize=8
    ADDRLP 0 0
    LIT1 0
    MULU
    ARGU
    RETV
.endproc
""")
    assert stats2.identities == 1


def test_branch_folding_taken_and_not_taken():
    old, new, stats = _opt_asm("""
.proc f framesize=0
    LIT1 1
    BrTrue @yes
    RETV
yes:
    LIT1 0
    BrTrue @yes
    RETV
.endproc
""")
    assert stats.branches_folded == 2
    names = _names(new.procedures[0])
    assert "BrTrue" not in names
    assert names.count("JUMPV") == 1  # taken one became a jump
    # Labels still resolve to LABELV positions.
    validate_module(new)


def test_pure_pop_statement_removed():
    _, new, stats = _opt_asm("""
.proc f framesize=8
    ADDRLP 0 0
    POPU
    RETV
.endproc
""")
    assert stats.statements_removed == 1
    assert _names(new.procedures[0]) == ["RETV"]


def test_impure_pop_statement_kept():
    _, new, stats = _opt_asm("""
.proc g framesize=0
    LIT1 9
    RETU
.endproc
.proc f framesize=0
    LocalCALLU %g
    POPU
    RETV
.endproc
""")
    assert stats.statements_removed == 0
    assert "LocalCALLU" in _names(new.proc_by_name("f"))


def test_label_tables_recomputed():
    module = assemble("""
.proc f framesize=0
    LIT1 2
    LIT1 2
    ADDU
    ARGU
top:
    LIT1 1
    BrTrue @top
.endproc
""")
    new, _ = optimize_module(module)
    proc = new.procedures[0]
    from repro.bytecode.opcodes import opcode
    assert proc.code[proc.labels[0]] == opcode("LABELV")


def test_behaviour_preserved_on_programs():
    source = """
int main(void) {
    int x;
    x = (3 * 4 + 2) << 1;          /* folds to 28 */
    x += 5 * 0;                    /* identity */
    if (1 == 1) x += 2;            /* comparisons stay (vars absent) */
    putint(x);
    return x & 127;
}
"""
    module = compile_source(source)
    new, stats = optimize_module(module)
    assert stats.folded > 0
    assert new.code_bytes < module.code_bytes
    assert run(new) == run(module)


def test_optimizer_idempotent():
    module = compile_source("""
int main(void) { return (2 + 3) * (4 + 5) - 1; }
""")
    once, _ = optimize_module(module)
    twice, stats2 = optimize_module(once)
    assert [p.code for p in twice.procedures] == \
        [p.code for p in once.procedures]


def test_optimized_code_still_compresses_and_runs():
    from repro import compress_module, run_compressed, train_grammar
    from repro.corpus import LCCLIKE

    module = compile_source(LCCLIKE)
    optimized, _ = optimize_module(module)
    grammar, _ = train_grammar([optimized])
    cmod = compress_module(grammar, optimized)
    assert run_compressed(cmod) == run(optimized) == run(module)
