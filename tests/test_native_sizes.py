"""Tests for the native code-size model and the interpreter size
measurement."""

import pytest

from repro.bytecode import assemble
from repro.grammar.initial import initial_grammar
from repro.interp.cgen import emit_interp1, emit_interp2
from repro.interp.sizes import compiler_available, measure_sizes
from repro.minic import compile_source
from repro.native.x86 import (
    STARTUP_BYTES,
    module_native_size,
    procedure_native_size,
)
from repro.parsing.stackparser import build_forest
from repro.training.expander import expand_grammar


def _module(src):
    return compile_source(src)


def test_native_size_positive_and_scales():
    small = _module("int main(void) { return 1; }")
    big = _module("""
int a[32];
int main(void) {
    int i, s;
    s = 0;
    for (i = 0; i < 32; i++) a[i] = i * i;
    for (i = 0; i < 32; i++) s += a[i];
    return s & 127;
}
""")
    ns, nb = module_native_size(small), module_native_size(big)
    assert 0 < ns.code < nb.code
    assert ns.code > STARTUP_BYTES


def test_native_size_in_realistic_band():
    """Native x86 output of a naive selector lands between 1x and 3x the
    stack bytecode for ordinary code."""
    module = _module("""
int work[64];
int f(int n) {
    int i, acc;
    acc = 0;
    for (i = 0; i < n; i++) {
        work[i] = work[i] * 3 + 1;
        acc += work[i] >> 2;
    }
    return acc;
}
int main(void) { return f(64) & 63; }
""")
    ratio = module_native_size(module).code / module.code_bytes
    assert 1.0 < ratio < 3.0


def test_native_fusion_reduces_size():
    """ADDR+INDIR pairs must be charged as one fused instruction: code
    dominated by loads should cost closer to 1 byte-ratio than code built
    from unfusible operator soup."""
    loads = _module("""
int g1;
int main(void) { int x; x = g1; x = g1; x = g1; x = g1; return x; }
""")
    # same op count, but division (never fused, 6 bytes) everywhere
    math = _module("""
int main(void) { int x; x = 9; x = x / (x - 2) / (x + 1) / 3 / 2;
                 return x; }
""")
    r_loads = module_native_size(loads).code / loads.code_bytes
    r_math = module_native_size(math).code / math.code_bytes
    assert r_loads < r_math


def test_native_data_and_bss_counted():
    module = _module("""
int blob[100];
char msg[8] = "hihi";
int main(void) { return blob[0] + msg[0]; }
""")
    n = module_native_size(module)
    assert n.bss >= 400
    assert n.data >= 8
    assert n.total == n.code + n.data + n.bss


def test_procedure_size_covers_all_operators():
    """The model must price every operator the compiler can emit."""
    module = _module("""
double d;
float fl;
int main(void) {
    int i;
    unsigned u;
    char c;
    short s;
    i = -5; u = 3u;
    c = (char)i; s = (short)i;
    d = i + 0.5; fl = (float)d;
    d = d * 2.0 - 1.0 / (d + 3.0);
    i = (int)d << 2 >> 1;
    u = (u | 5) & 6 ^ 3;
    u = u % 7;
    i = i / -2;
    i = ~i;
    return (i < 0) + (u > 2) + (d >= 0.0) + (fl != 0.0f);
}
""")
    for proc in module.procedures:
        assert procedure_native_size(proc) > 0


# -- interpreter sizes ---------------------------------------------------------

@pytest.fixture(scope="module")
def trained_grammar():
    g = initial_grammar()
    module = compile_source("""
int main(void) {
    int i, s;
    s = 0;
    for (i = 0; i < 9; i++) s += i * i;
    return s;
}
""")
    expand_grammar(g, build_forest(g, [module]))
    return g


def test_emitted_c_mentions_every_operator(trained_grammar):
    from repro.bytecode.opcodes import OPS
    src1 = emit_interp1()
    src2 = emit_interp2(trained_grammar)
    for op in OPS:
        assert f"/* {op.name} */" in src1
        assert f"/* {op.name} */" in src2


@pytest.mark.skipif(compiler_available() is None,
                    reason="no C compiler on this host")
def test_emitted_c_compiles(trained_grammar, tmp_path):
    import subprocess
    for name, src in (("i1", emit_interp1()),
                      ("i2", emit_interp2(trained_grammar))):
        path = tmp_path / f"{name}.c"
        path.write_text(src)
        subprocess.run(
            [compiler_available(), "-Os", "-w", "-c", str(path),
             "-o", str(tmp_path / f"{name}.o")],
            check=True, capture_output=True,
        )


def test_measure_sizes_shapes(trained_grammar):
    sizes = measure_sizes(trained_grammar)
    assert sizes.interp1 > 0
    assert sizes.interp2 > sizes.interp1
    assert sizes.grammar > 0
    assert sizes.growth == sizes.interp2 - sizes.interp1


def test_interp2_grows_with_grammar(trained_grammar):
    """A bigger grammar yields a bigger generated interpreter."""
    small = initial_grammar()
    s_small = measure_sizes(small)
    s_big = measure_sizes(trained_grammar)
    assert s_big.interp2 >= s_small.interp2
    assert s_big.grammar > s_small.grammar
