"""Tests for the content-addressed grammar registry."""

import hashlib
import threading

import pytest

import repro
from repro.minic import compile_source
from repro.registry import GrammarRegistry, RegistryError, corpus_fingerprint
from repro.storage import StorageError, save_grammar

APP = """
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main(void) { putint(fib(10)); putchar('\\n'); return 0; }
"""

CORPUS = """
int main(void) {
    int i, s;
    s = 0;
    for (i = 0; i < 30; i++) s += i * i;
    putint(s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def trained():
    app = compile_source(APP)
    corpus = compile_source(CORPUS)
    grammar, report = repro.train_grammar([corpus, app])
    return app, corpus, grammar, report


@pytest.fixture()
def registry(tmp_path):
    return GrammarRegistry(tmp_path / "reg", cache_size=2)


def test_put_is_content_addressed(registry, trained):
    app, corpus, grammar, report = trained
    digest = registry.put(grammar, report=report, corpus=[corpus, app])
    assert digest == hashlib.sha256(save_grammar(grammar)).hexdigest()
    # idempotent: same grammar, same hash, still one entry
    assert registry.put(grammar) == digest
    assert len(registry) == 1


def test_metadata_provenance(registry, trained):
    app, corpus, grammar, report = trained
    digest = registry.put(grammar, report=report, corpus=[corpus, app],
                          tags=["prod"], extra={"note": "pr2"})
    meta = registry.meta(digest)
    assert meta["hash"] == digest
    assert meta["rules"] == grammar.total_rules()
    assert meta["training"]["iterations"] == report.iterations
    assert meta["training"]["wall_seconds"] == report.wall_seconds
    assert meta["corpus"]["modules"] == 2
    assert meta["corpus"]["fingerprint"] == \
        corpus_fingerprint([app, corpus])  # order-insensitive
    assert meta["note"] == "pr2"
    assert meta["tags"] == ["prod"]


def test_metadata_records_trainer_identity(registry, trained):
    """The trainer's id and knobs travel with the grammar (ISSUE 10):
    a stored artifact can always answer *which* strategy produced it."""
    app, corpus, grammar, report = trained
    digest = registry.put(grammar, report=report, corpus=[corpus, app])
    training = registry.meta(digest)["training"]
    assert training["trainer"] == "greedy"
    assert training["trainer_params"] == {}
    assert training["seed_rules"] == 0
    assert training["refine_seconds"] >= 0.0


def test_metadata_records_seeding_trainer(registry):
    corpus = [compile_source(CORPUS)]
    grammar, report = repro.train_grammar(
        corpus, strategy="hybrid", strategy_params={"max_rounds": 4})
    digest = registry.put(grammar, report=report, corpus=corpus)
    training = registry.meta(digest)["training"]
    assert training["trainer"] == "hybrid"
    assert training["trainer_params"]["max_rounds"] == 4
    assert training["trainer_params"]["budget_frac"] == 0.1
    assert training["seed_rules"] == report.seed_rules > 0
    assert training["seed_rounds"] == report.seed_rounds
    assert training["seed_seconds"] >= 0.0


def test_resolve_tag_prefix_and_errors(registry, trained):
    _, _, grammar, _ = trained
    digest = registry.put(grammar, tags=["prod", "v1"])
    assert registry.resolve("prod") == digest
    assert registry.resolve(digest) == digest
    assert registry.resolve(digest[:8]) == digest
    assert "prod" in registry and digest[:8] in registry
    with pytest.raises(RegistryError):
        registry.resolve("no-such-tag")
    with pytest.raises(RegistryError):
        registry.resolve("deadbeef" * 8)  # well-formed, absent
    with pytest.raises(RegistryError):
        registry.tag(digest, "bad tag name!")


def test_tag_repoint(registry, trained):
    _, _, grammar, _ = trained
    digest = registry.put(grammar, tags=["prod"])
    # retag to the same artifact via a prefix reference
    assert registry.tag(digest[:10], "prod") == digest
    assert registry.tags() == {"prod": digest}


def test_get_serves_from_lru(registry, trained):
    app, _, grammar, _ = trained
    digest = registry.put(grammar)
    first = registry.get(digest)
    assert registry.get(digest) is first
    info = registry.cache_info()
    assert info["hits"] >= 1 and info["entries"] == 1
    # and a loaded grammar still compresses identically
    a = repro.Compressor(grammar).compress_module(app)
    b = repro.Compressor(first).compress_module(app)
    assert [p.code for p in a.procedures] == [p.code for p in b.procedures]


def test_lru_eviction_reloads(tmp_path, trained):
    _, _, grammar, _ = trained
    registry = GrammarRegistry(tmp_path / "reg", cache_size=1)
    digest = registry.put(grammar)
    first = registry.get(digest)
    # a second registry handle over the same root sees the same objects
    other = GrammarRegistry(tmp_path / "reg", cache_size=1)
    assert other.resolve(digest[:8]) == digest
    reloaded = other.get(digest)
    assert reloaded is not first
    assert reloaded.nt_names == grammar.nt_names


def test_put_bytes_rejects_junk(registry):
    with pytest.raises(StorageError):
        registry.put_bytes(b"RGR1" + b"\x00" * 32)
    assert len(registry) == 0


def test_concurrent_get_same_object(registry, trained):
    _, _, grammar, _ = trained
    digest = registry.put(grammar)
    seen = []

    def reader():
        for _ in range(20):
            seen.append(registry.get(digest))

    threads = [threading.Thread(target=reader) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(set(map(id, seen))) == 1  # one deserialization served all
