"""Unit tests for the mini-C lexer and parser."""

import pytest

from repro.minic import ast
from repro.minic.lexer import LexError, tokenize
from repro.minic.parser import ParseError, parse
from repro.minic.types import (
    Array, CHAR, DOUBLE, FLOAT, INT, Pointer, SHORT, UCHAR, UINT, VOID,
)


def kinds(source):
    return [t.kind for t in tokenize(source)]


def test_tokenize_basics():
    toks = tokenize("int x = 42;")
    assert [(t.kind, t.text) for t in toks[:-1]] == [
        ("kw", "int"), ("id", "x"), ("punct", "="), ("int", "42"),
        ("punct", ";"),
    ]
    assert toks[-1].kind == "eof"


def test_tokenize_numbers():
    toks = tokenize("0x1F 10 3.5 1e3 2.5e-2 7f 1.0f 42u")
    values = [t.value for t in toks[:-1]]
    assert values[0] == 31
    assert values[1] == 10
    assert values[2] == (3.5, False)
    assert values[3] == (1000.0, False)
    assert values[4] == (0.025, False)
    # "7f" lexes as int 7 then identifier f; only float literals take 'f'
    assert values[5] == 7
    assert values[7] == (1.0, True)
    assert values[8] == 42


def test_tokenize_char_and_string():
    toks = tokenize(r"'a' '\n' '\0' "
                    '"hi\\n"')
    assert toks[0].value == 97
    assert toks[1].value == 10
    assert toks[2].value == 0
    assert toks[3].value == b"hi\n"


def test_tokenize_comments():
    toks = tokenize("a // comment\n b /* multi\nline */ c")
    assert [t.text for t in toks[:-1]] == ["a", "b", "c"]


def test_tokenize_multichar_punct():
    toks = tokenize("a <<= b >> c == d && e ++")
    texts = [t.text for t in toks[:-1]]
    assert "<<=" in texts and ">>" in texts and "==" in texts
    assert "&&" in texts and "++" in texts


def test_lex_errors():
    with pytest.raises(LexError):
        tokenize('"unterminated')
    with pytest.raises(LexError):
        tokenize("'x")
    with pytest.raises(LexError):
        tokenize("/* never closed")
    with pytest.raises(LexError):
        tokenize("@")


def test_parse_function_and_params():
    unit = parse("int add(int a, int b) { return a + b; }")
    (f,) = unit.items
    assert isinstance(f, ast.FuncDef)
    assert f.name == "add"
    assert f.ret == INT
    assert [p.ctype for p in f.params] == [INT, INT]
    (ret,) = f.body.body
    assert isinstance(ret, ast.Return)
    assert isinstance(ret.value, ast.Binary)


def test_parse_void_params():
    unit = parse("void f(void) { }")
    (f,) = unit.items
    assert f.params == []
    assert f.ret == VOID


def test_parse_pointers_and_arrays():
    unit = parse("int *p; char buf[64]; double **q;")
    p, buf, q = unit.items
    assert p.ctype == Pointer(INT)
    assert isinstance(buf.ctype, Array) and buf.ctype.count == 64
    assert q.ctype == Pointer(Pointer(DOUBLE))


def test_parse_global_initializers():
    unit = parse('int x = 5; int a[3] = {1, 2, 3}; char s[6] = "hello"; '
                 'int neg = -4;')
    x, a, s, neg = unit.items
    assert x.init == 5
    assert a.init == [1, 2, 3]
    assert s.init == b"hello"
    assert neg.init == -4


def test_parse_comma_declarators():
    unit = parse("int a, b, *c;")
    a, b, c = unit.items
    assert a.ctype == INT and b.ctype == INT
    assert c.ctype == Pointer(INT)


def test_parse_precedence():
    unit = parse("int f(void) { return 1 + 2 * 3; }")
    ret = unit.items[0].body.body[0]
    assert ret.value.op == "+"
    assert ret.value.right.op == "*"


def test_parse_assoc_assignment():
    unit = parse("void f(int a, int b) { a = b = 1; }")
    stmt = unit.items[0].body.body[0]
    assert isinstance(stmt.expr, ast.Assign)
    assert isinstance(stmt.expr.value, ast.Assign)


def test_parse_conditional():
    unit = parse("int f(int a) { return a ? 1 : 2; }")
    ret = unit.items[0].body.body[0]
    assert isinstance(ret.value, ast.Cond)


def test_parse_cast_vs_parens():
    unit = parse("int f(double d, int x) { return (int)d + (x); }")
    ret = unit.items[0].body.body[0]
    assert isinstance(ret.value.left, ast.Cast)
    assert isinstance(ret.value.right, ast.Name)


def test_parse_sizeof():
    unit = parse("int f(void) { return sizeof(double) + sizeof(int[4]); }")
    ret = unit.items[0].body.body[0]
    assert isinstance(ret.value.left, ast.SizeOf)
    assert ret.value.right.target_type.size == 16


def test_parse_statements():
    unit = parse("""
void f(int n) {
    int i;
    if (n) { n = 1; } else n = 2;
    while (n) n--;
    do n++; while (n < 3);
    for (i = 0; i < 4; i++) { if (i == 2) break; else continue; }
    ;
    return;
}
""")
    body = unit.items[0].body.body
    assert isinstance(body[1], ast.If)
    assert isinstance(body[2], ast.While)
    assert isinstance(body[3], ast.DoWhile)
    assert isinstance(body[4], ast.For)


def test_parse_postfix_chain():
    unit = parse("int g(int *a) { return a[1]++; }")
    ret = unit.items[0].body.body[0]
    assert isinstance(ret.value, ast.IncDec)
    assert ret.value.postfix
    assert isinstance(ret.value.operand, ast.Index)


def test_parse_errors():
    with pytest.raises(ParseError):
        parse("int f( { }")
    with pytest.raises(ParseError):
        parse("int f(void) { return 1 }")
    with pytest.raises(ParseError):
        parse("int a[x];")
    with pytest.raises(ParseError):
        parse("= 3;")
