"""Chaos suite: randomized fault schedules against the real server.

Fifty-plus seeded :class:`~repro.faults.FaultPlan` schedules run
end-to-end against a live :class:`CompressionService` on a real TCP
socket.  Each schedule arms a random subset of injection sites (framing
faults, torn registry writes, bit rot, engine faults) at random
intensities — all derived from the schedule's seed, so any failure
replays exactly.

The invariants, per the acceptance criteria:

* **no hung connections** — every client call is bounded by a socket
  timeout and a deadline; the suite completing at all proves it;
* **byte-identical round-trips on success** — a call that reports
  success must have produced exactly the fault-free result (structured
  errors are acceptable under chaos; silent corruption never is);
* **no corrupt registry object survives outside quarantine** — after
  each schedule the registry heals to a verified-clean state;
* **the server outlives every schedule** — a fault-free round-trip must
  succeed after each schedule with no restart.
"""

import hashlib
import random

import pytest

import repro
from repro import faults
from repro.compress.decompress import decompress_module
from repro.corpus.synth import generate_program
from repro.interp.interp2 import Interpreter2
from repro.interp.runtime import run_program
from repro.minic import compile_source
from repro.service import RetryPolicy, ServiceError
from repro.storage import load_any, load_grammar, load_module, \
    save_compressed, save_grammar, save_module

from tests.test_service import _Harness

SCHEDULES = list(range(50))

# (site, max probability, modes to choose from)
CHAOS_SITES = [
    ("service.frame.read", 0.15,
     ["garbage", "disconnect", "delay"]),
    ("service.frame.write", 0.15,
     ["garbage", "truncate", "disconnect", "delay"]),
    ("registry.atomic.corrupt", 0.3, [None]),
    ("registry.atomic.torn", 0.3, [None]),
    ("registry.atomic.pre_rename", 0.3, [None]),
    ("registry.atomic.post_rename", 0.3, [None]),
    ("registry.read.missing", 0.2, [None]),
    ("registry.read.corrupt", 0.2, [None]),
    ("engine.dispatch", 0.5, [None]),
    ("engine.tables", 0.5, [None]),
]


def make_plan(seed: int) -> faults.FaultPlan:
    """A random-but-reproducible schedule: 2-5 armed sites."""
    rng = random.Random(seed)
    armed = rng.sample(CHAOS_SITES, rng.randint(2, 5))
    sites = {}
    for name, max_p, modes in armed:
        rule = {"p": round(rng.uniform(0.02, max_p), 3)}
        mode = rng.choice(modes)
        if mode is not None:
            rule["mode"] = mode
            if mode == "delay":
                rule["arg"] = 0.01
        sites[name] = rule
    return faults.FaultPlan(seed=seed, sites=sites)


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    app = compile_source(generate_program(3, seed=777))
    grammar, _ = repro.train_grammar(
        [compile_source(generate_program(8, seed=s))
         for s in (501, 502)] + [app])
    grammar_bytes = save_grammar(grammar)
    cmod = repro.compress_module(grammar, app)
    h = _Harness(tmp_path_factory.mktemp("chaos"), batch_window=0.005)
    yield {
        "h": h,
        "app_bytes": save_module(app),
        "grammar_bytes": grammar_bytes,
        "digest": hashlib.sha256(grammar_bytes).hexdigest(),
        "rcx": save_compressed(cmod),
        "expected_run": run_program(cmod, Interpreter2(cmod)),
    }
    h.close()


def chaos_client(world):
    return world["h"].client(
        timeout=5.0,
        retry=RetryPolicy(6, base=0.005, cap=0.05),
        deadline=15.0)


def run_ops(world, outcomes):
    """One pass of the canonical workflow; success must be exact."""
    with chaos_client(world) as client:
        try:
            digest = client.put_grammar(world["grammar_bytes"],
                                        tags=["prod"])
            assert digest == world["digest"]  # content address survives
            outcomes["put"] += 1
        except ServiceError:
            pass
        try:
            rcx = client.compress(world["app_bytes"], world["digest"])
            # byte-identical round trip, verified *locally* so a frame
            # fault cannot mask a payload fault (the oracle itself runs
            # with the plane lifted — it must be fault-free to judge)
            with faults.suspended():
                back = save_module(decompress_module(load_any(rcx)))
            assert back == world["app_bytes"]
            outcomes["compress"] += 1
        except ServiceError:
            pass
        try:
            code, output = client.run_compressed(world["rcx"])
            assert (code, output) == world["expected_run"]
            outcomes["run"] += 1
        except ServiceError:
            pass


@pytest.mark.parametrize("seed", SCHEDULES)
def test_chaos_schedule(world, seed):
    outcomes = {"put": 0, "compress": 0, "run": 0}
    plan = make_plan(seed)
    with faults.injected(plan) as plane:
        run_ops(world, outcomes)
        fired = sum(s["fires"] for s in plane.snapshot().values())
    assert faults.ACTIVE is None

    # self-heal: whatever the schedule tore must quarantine or repair —
    # no corrupt object may survive in the store proper
    registry = world["h"].service.registry
    registry.startup_scan()
    report = registry.verify()
    assert report["clean"], (seed, report)
    for record in registry.list():
        data = registry.get_bytes(record["hash"])
        assert hashlib.sha256(data).hexdigest() == record["hash"]

    # the server survived: a fault-free round trip works, exactly
    with world["h"].client(timeout=10.0) as client:
        digest = client.put_grammar(world["grammar_bytes"])
        assert digest == world["digest"]
        rcx = client.compress(world["app_bytes"], world["digest"])
        assert client.decompress(rcx) == world["app_bytes"]
        code, output = client.run_compressed(world["rcx"])
        assert (code, output) == world["expected_run"]


def test_chaos_plans_are_reproducible():
    for seed in SCHEDULES[:10]:
        assert make_plan(seed).to_dict() == make_plan(seed).to_dict()


def test_chaos_actually_injects(world):
    """Guard against a silently inert suite: across a handful of
    schedules the plane must really fire."""
    total = 0
    for seed in SCHEDULES[:5]:
        with faults.injected(make_plan(seed)) as plane:
            run_ops(world, {"put": 0, "compress": 0, "run": 0})
            total += sum(s["fires"] for s in plane.snapshot().values())
    world["h"].service.registry.startup_scan()
    assert total > 0


# -- fleet chaos: seeded worker kills against a live multi-process fleet ------
#
# Twenty-five seeded schedules against a real ``--workers 3`` fleet.
# Each schedule consults a deterministic ``fleet.worker.kill`` plane
# between operations; when it fires, a seeded RNG picks a worker and
# SIGKILLs it — exactly what a crash or OOM-kill looks like.  Clients
# carry a RetryPolicy, so every operation must still *succeed* and its
# payload must be byte-identical to the single-process oracle; after
# each schedule the fleet must be back at full strength and the shared
# registry verified clean.

from tests.test_fleet import FleetHarness  # noqa: E402

FLEET_SCHEDULES = list(range(25))
_KILL_STATS = {"kills": 0, "lost_seen": 0}


@pytest.fixture(scope="module")
def fleet_world(tmp_path_factory, world):
    h = FleetHarness(tmp_path_factory.mktemp("fleet-chaos"), workers=3)
    try:
        grammar = load_grammar(world["grammar_bytes"])
        app = load_module(world["app_bytes"])
        cmod = repro.compress_module(grammar, app)
        with h.client() as client:
            client.put_grammar(world["grammar_bytes"], tags=["prod"])
    except BaseException:
        # a leaked fleet holds the test runner's pipes open forever —
        # tear it down before surfacing the setup failure
        h.close()
        raise
    yield {
        "h": h,
        "app_bytes": world["app_bytes"],
        "grammar_bytes": world["grammar_bytes"],
        "digest": world["digest"],
        "oracle_rcx1": save_compressed(cmod, format="rcx1"),
        "oracle_rcx2": save_compressed(cmod, format="rcx2"),
        "expected_run": world["expected_run"],
    }
    h.close()


def fleet_chaos_client(fw):
    return fw["h"].client(
        timeout=10.0,
        retry=RetryPolicy(10, base=0.05, cap=0.4),
        deadline=30.0)


@pytest.mark.parametrize("seed", FLEET_SCHEDULES)
def test_fleet_chaos_schedule(fleet_world, seed):
    fw = fleet_world
    pool = fw["h"].pool
    plane = faults.FaultPlane(faults.FaultPlan(
        seed=1000 + seed,
        sites={"fleet.worker.kill": {"p": 0.4}}))
    rng = random.Random(9000 + seed)
    base_restarts = pool.restarts_total
    kills = 0

    def maybe_kill():
        nonlocal kills
        if plane.decide("fleet.worker.kill") is not None:
            if pool.kill(rng.randrange(pool.size)) is not None:
                kills += 1

    with fleet_chaos_client(fw) as client:
        maybe_kill()
        assert client.put_grammar(fw["grammar_bytes"]) == fw["digest"]
        maybe_kill()
        assert client.compress(fw["app_bytes"],
                               fw["digest"]) == fw["oracle_rcx1"]
        maybe_kill()
        assert client.compress(fw["app_bytes"], fw["digest"],
                               format="rcx2") == fw["oracle_rcx2"]
        maybe_kill()
        assert client.decompress(fw["oracle_rcx1"]) == fw["app_bytes"]
        maybe_kill()
        assert client.run_compressed(
            fw["oracle_rcx1"]) == fw["expected_run"]

    _KILL_STATS["kills"] += kills
    # the fleet heals to full strength, counting every kill
    deadline = 30.0
    fw["h"].wait_restarted(base_restarts + kills, timeout=deadline)

    # the shared registry survived every kill verified-clean
    registry = fw["h"].dispatcher.registry
    registry.startup_scan()
    report = registry.verify()
    assert report["clean"], (seed, report)

    # dispatcher-level accounting: lost requests were counted, not
    # silently swallowed (summed at module end by the guard test)
    _KILL_STATS["lost_seen"] = \
        fw["h"].dispatcher._worker_lost_total


def test_fleet_chaos_actually_killed(fleet_world):
    """The schedules must have really fired: across 25 seeds at p=0.4
    per op a kill-free run means the plane is inert."""
    assert _KILL_STATS["kills"] >= 10, _KILL_STATS
    # and the fleet is still at full strength afterwards
    assert fleet_world["h"].pool.alive() == 3


# -- native-engine chaos: sandboxed crashes against a live fleet --------------
#
# Twenty-five seeded schedules drive ``engine=native`` traffic at a
# fleet whose *workers* carry an armed fault plan (shipped through
# ``worker_config`` and activated inside each worker process before the
# service starts).  When ``native.crash`` fires, the sandbox helper
# really dies on SIGSEGV; when ``native.hang`` fires, it really sleeps
# past the watchdog.  The containment invariants:
#
# * **zero worker respawns** — the blast radius is the helper, never
#   the worker (the sandbox is the whole point);
# * every response is either an exact success or a structured,
#   non-retryable ``poison_input`` — and a poisoned request repeated
#   verbatim fails fast from the durable verdict;
# * healthy requests keep answering byte-identically to the
#   compiled-path oracle throughout;
# * the shared registry stays verified-clean, poison sidecars and all.
#
# Deliberately not gated on a C compiler: the chaos directives fire in
# the helper *before* any engine builds, so containment is exercised
# end to end even where the success path falls back to compiled.

NATIVE_SCHEDULES = list(range(25))
_NATIVE_STATS = {"poisoned": 0, "succeeded": 0}

_NATIVE_PLAN = faults.FaultPlan(seed=424242, sites={
    "native.crash": {"p": 0.25, "mode": "segv"},
    "native.hang": {"p": 0.12, "arg": 30.0},
})


@pytest.fixture(scope="module")
def native_fleet(tmp_path_factory, world):
    h = FleetHarness(
        tmp_path_factory.mktemp("native-chaos"), workers=2,
        worker_config={
            "batch_window": 0.005,
            "native_isolation": "sandbox",
            "native_watchdog": 2.0,
            "fault_plan": _NATIVE_PLAN.to_dict(),
        })
    try:
        with h.client() as client:
            client.put_grammar(world["grammar_bytes"], tags=["prod"])
    except BaseException:
        h.close()
        raise
    yield {
        "h": h,
        "rcx": world["rcx"],
        "expected_run": world["expected_run"],
    }
    h.close()


def _native_params(fw, args):
    return {"module": fw["rcx"], "args": list(args), "engine": "native"}


@pytest.mark.parametrize("seed", NATIVE_SCHEDULES)
def test_native_chaos_schedule(native_fleet, seed):
    fw = native_fleet
    pool = fw["h"].pool
    base_restarts = pool.restarts_total
    rng = random.Random(7000 + seed)
    with fw["h"].client(timeout=30.0) as client:
        for i in range(4):
            # per-schedule unique args: a fresh request digest, so one
            # schedule's quarantine never shadows another's traffic
            args = [seed, rng.randrange(1 << 16)]
            try:
                result = client.call("run_compressed",
                                     _native_params(fw, args))
            except ServiceError as exc:
                # the plane fired on this request: a structured,
                # non-retryable verdict — never a reset or a timeout
                assert exc.code == "poison_input", exc.code
                assert not exc.retryable
                _NATIVE_STATS["poisoned"] += 1
                # the verdict is durable: the identical request fails
                # fast (and consumes no further chaos evaluations)
                with pytest.raises(ServiceError) as again:
                    client.call("run_compressed",
                                _native_params(fw, args))
                assert again.value.code == "poison_input"
            else:
                # success must be exact: same answer as the compiled
                # path (which no native site can touch)
                oracle = client.call(
                    "run_compressed",
                    {"module": fw["rcx"], "args": args})
                assert result["code"] == oracle["code"]
                assert result.get("output") == oracle.get("output")
                _NATIVE_STATS["succeeded"] += 1
        # healthy traffic rides through it all, byte-identical
        code, output = client.run_compressed(fw["rcx"])
        assert (code, output) == fw["expected_run"]
    # containment: not one worker death across the schedule — every
    # crash and hang stayed inside a disposable helper
    assert pool.restarts_total == base_restarts, seed
    assert pool.alive() == pool.size


def test_native_chaos_actually_fired(native_fleet):
    """Inert-plane guard: across 25 schedules x 4 requests at a ~35%
    combined fire rate, a quarantine-free run means the worker-side
    plan never activated."""
    assert _NATIVE_STATS["poisoned"] >= 8, _NATIVE_STATS
    assert _NATIVE_STATS["succeeded"] >= 8, _NATIVE_STATS
    # the shared registry holds the verdicts and still verifies clean
    registry = native_fleet["h"].dispatcher.registry
    report = registry.verify()
    assert report["clean"], report
    assert report["poison"] == _NATIVE_STATS["poisoned"]
    assert len(registry.poison_list()) == _NATIVE_STATS["poisoned"]
    # and the fleet never lost a worker to a native fault
    assert native_fleet["h"].pool.restarts_total == 0


# -- in-process isolation: the intent journal under a real worker death ------

def test_inproc_crash_converts_to_poison_within_two_respawns(
        tmp_path_factory, world):
    """Without the sandbox, a native crash *does* kill the worker — the
    containment story is the intent journal: the respawned worker's
    startup scan converts the orphaned intent to a poison verdict, so
    a retrying client gets ``poison_input`` after at most one
    worker_lost per worker, and the poisonous request can never
    crash-loop the fleet."""
    h = FleetHarness(
        tmp_path_factory.mktemp("inproc-chaos"), workers=2,
        worker_config={
            "batch_window": 0.005,
            "native_isolation": "inproc",
            # every worker's first native run dies; repeats are guarded
            # by the quarantine, not by the plan running dry
            "fault_plan": {"seed": 11,
                           "sites": {"native.crash": {"p": 1.0}}},
        })
    try:
        with h.client() as client:
            client.put_grammar(world["grammar_bytes"], tags=["prod"])
        base_restarts = h.pool.restarts_total
        with h.client(timeout=15.0,
                      retry=RetryPolicy(15, base=0.2, cap=1.0),
                      deadline=90.0) as client:
            with pytest.raises(ServiceError) as exc:
                client.call("run_compressed",
                            {"module": world["rcx"], "args": [3, 14],
                             "engine": "native"})
        # the retry storm ended on the non-retryable verdict
        assert exc.value.code == "poison_input"
        # quarantined within <= 2 respawns (one crash per worker at
        # most: after that the verdict fails everything fast)
        h.wait_restarted(h.pool.restarts_total, timeout=30.0)
        respawns = h.pool.restarts_total - base_restarts
        assert 1 <= respawns <= 2, respawns
        # the verdict is durable and names a dead-worker conversion
        verdicts = h.dispatcher.registry.poison_list()
        assert len(verdicts) == 1
        assert verdicts[0]["verdict"] == "crash"
        # healthy traffic still answers exactly on the healed fleet
        with h.client(timeout=15.0,
                      retry=RetryPolicy(10, base=0.1, cap=0.5),
                      deadline=60.0) as client:
            assert client.run_compressed(
                world["rcx"]) == world["expected_run"]
    finally:
        h.close()
