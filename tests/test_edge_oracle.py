"""Oracle tests: the incremental edge index against the naive recount.

The expander's correctness rests on one claim: the incrementally-updated
:class:`EdgeIndex` always agrees with a from-scratch recount of the forest
(:func:`count_edges_naive`), and therefore training with either index picks
the same edge — same count, same tie-break — at every iteration.  These
tests hold both halves of that claim down:

* step-level: after *every* expander iteration on a small corpus, counts
  and occurrence sets equal the naive recount;
* run-level: full training with ``index_mode="naive"`` vs
  ``index_mode="incremental"`` produces byte-identical grammars (same
  rules, same order) and identical iteration histories — with 1 and with
  several parser workers.
"""

import pytest

from repro.corpus.synth import generate_program
from repro.grammar.initial import initial_grammar
from repro.minic import compile_source
from repro.parsing.stackparser import build_forest
from repro.pipeline import train_grammar
from repro.training.edges import (
    EdgeIndex,
    NaiveEdgeIndex,
    count_edges,
    count_edges_naive,
)
from repro.training.expander import TrainingStats, expand_grammar
from repro.training.inline import contract_occurrence, inline_rule


def _corpus_module(size=6, seed=5):
    return compile_source(generate_program(size, seed=seed))


def _grammar_signature(grammar):
    """Everything observable about the trained grammar, in order."""
    return [(r.id, r.lhs, r.rhs, r.origin, r.fragment) for r in grammar]


def test_count_edges_naive_is_the_exposed_oracle():
    # the old name stays importable and is the same function
    assert count_edges is count_edges_naive


def test_incremental_counts_equal_naive_recount_after_every_iteration():
    g = initial_grammar()
    forest = build_forest(g, [_corpus_module()])
    # verify_every=1 recounts with count_edges_naive after each iteration
    # and asserts equality inside EdgeIndex.verify_against.
    report = expand_grammar(g, forest, verify_every=1)
    assert report.iterations > 10  # the check actually ran many times


def test_manual_stepping_matches_naive_recount():
    """Drive the index by hand — select, inline, contract — and recount
    from scratch after every single contraction, not just per iteration."""
    g = initial_grammar()
    forest = build_forest(g, [_corpus_module(size=3, seed=9)])
    index = EdgeIndex(g, forest)
    for _ in range(5):
        found = index.best(lambda key: g.can_grow(g.rules[key[0]].lhs))
        if found is None:
            break
        (pid, slot, cid), count = found
        assert count_edges_naive(forest)[(pid, slot, cid)] == count
        new_rule = inline_rule(g, g.rules[pid], slot, g.rules[cid])
        occ = index.occurrences((pid, slot, cid))
        while occ:
            contract_occurrence(next(iter(occ)), slot, new_rule.id, index)
            expected = count_edges_naive(forest)
            assert index.counts == expected
            for key, sites in index.occs.items():
                assert len(sites) == expected[key]
            occ = index.occurrences((pid, slot, cid))


def test_naive_index_selects_identically_per_query():
    g = initial_grammar()
    forest_a = build_forest(g, [_corpus_module()])
    inc = EdgeIndex(g, forest_a)
    naive = NaiveEdgeIndex(g, forest_a)
    select_all = lambda key: True
    for min_count in (2, 3, 5, 50):
        assert inc.best(select_all, min_count=min_count) == \
            naive.best(select_all, min_count=min_count)


@pytest.mark.parametrize("workers", [1, 4])
def test_trained_grammar_identical_naive_vs_incremental(workers):
    corpus = [_corpus_module(size=8, seed=3), _corpus_module(size=5, seed=11)]
    g_inc, r_inc = train_grammar(
        corpus, parser_workers=workers, index_mode="incremental",
        collect_stats=True)
    g_naive, r_naive = train_grammar(
        corpus, parser_workers=workers, index_mode="naive",
        collect_stats=True)
    assert _grammar_signature(g_inc) == _grammar_signature(g_naive)
    assert (r_inc.iterations, r_inc.rules_added, r_inc.rules_removed,
            r_inc.contractions, r_inc.final_size) == \
           (r_naive.iterations, r_naive.rules_added, r_naive.rules_removed,
            r_naive.contractions, r_naive.final_size)
    assert r_naive.recounts == r_naive.iterations + 1  # one per query
    assert r_inc.recounts == 0


@pytest.mark.parametrize("workers", [1, 3])
def test_seed_corpus_grammar_identical_across_index_and_workers(workers):
    """The acceptance check, on the repo's own benchmark corpus: the
    trained grammar (rules *and* rule order, hence every codeword) is
    identical with the incremental index and the naive oracle, serial and
    parallel."""
    from repro.corpus import compiled_corpus

    modules = [compiled_corpus(6)["lcc"], compiled_corpus(6)["8q"]]
    g_inc, _ = train_grammar(modules, parser_workers=workers)
    g_naive, _ = train_grammar(modules, parser_workers=workers,
                               index_mode="naive")
    assert _grammar_signature(g_inc) == _grammar_signature(g_naive)


def test_histories_match_between_index_modes():
    g1 = initial_grammar()
    f1 = build_forest(g1, [_corpus_module()])
    r1 = expand_grammar(g1, f1, keep_history=True)
    g2 = initial_grammar()
    f2 = build_forest(g2, [_corpus_module()])
    r2 = expand_grammar(g2, f2, keep_history=True, index_mode="naive")
    assert r1.history == r2.history


def test_training_stats_are_collected():
    g = initial_grammar()
    forest = build_forest(g, [_corpus_module()])
    report = expand_grammar(g, forest, collect_stats=True)
    assert isinstance(report, TrainingStats)
    assert len(report.iter_seconds) == report.iterations
    assert len(report.heap_sizes) == report.iterations
    assert report.heap_peak > 0
    assert report.heap_pushes > 0
    assert 0.0 <= report.heap_hit_rate <= 1.0
    assert report.expand_seconds > 0
    assert report.summary_lines()  # renders without error


def test_stats_do_not_change_the_result():
    g1 = initial_grammar()
    r1 = expand_grammar(g1, build_forest(g1, [_corpus_module()]))
    g2 = initial_grammar()
    r2 = expand_grammar(g2, build_forest(g2, [_corpus_module()]),
                        collect_stats=True)
    assert _grammar_signature(g1) == _grammar_signature(g2)
    assert r1.final_size == r2.final_size


def test_unknown_index_mode_rejected():
    g = initial_grammar()
    forest = build_forest(g, [_corpus_module(size=2, seed=1)])
    with pytest.raises(ValueError):
        expand_grammar(g, forest, index_mode="quantum")
