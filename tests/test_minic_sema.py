"""Unit tests for mini-C semantic analysis."""

import pytest

from repro.minic import ast
from repro.minic.parser import parse
from repro.minic.sema import SemaError, analyze
from repro.minic.types import DOUBLE, INT, Pointer, UINT


def check(source):
    unit = parse(source)
    return unit, analyze(unit)


def test_undeclared_name():
    with pytest.raises(SemaError, match="undeclared"):
        check("int f(void) { return x; }")


def test_redeclaration_rejected():
    with pytest.raises(SemaError, match="redeclared"):
        check("int x; int x;")
    with pytest.raises(SemaError, match="defined twice"):
        check("int f(void) { return 1; } int f(void) { return 2; }")


def test_conflicting_prototypes():
    with pytest.raises(SemaError, match="conflicting"):
        check("int f(int a); double f(int a) { return 1.0; }")


def test_call_arity_checked():
    with pytest.raises(SemaError, match="arguments"):
        check("int f(int a) { return a; } int g(void) { return f(); }")


def test_call_arg_conversion_inserted():
    unit, funcs = check(
        "double f(double d) { return d; }"
        "double g(void) { return f(3); }"
    )
    ret = unit.items[1].body.body[0]
    arg = ret.value.args[0]
    assert isinstance(arg, ast.Cast)
    assert arg.ctype == DOUBLE


def test_usual_arith_conversions():
    unit, _ = check("double f(int i, double d) { return i + d; }")
    ret = unit.items[0].body.body[0]
    assert ret.value.ctype == DOUBLE
    assert isinstance(ret.value.left, ast.Cast)


def test_unsigned_wins_over_int():
    unit, _ = check("unsigned f(int i, unsigned u) { return i + u; }")
    ret = unit.items[0].body.body[0]
    assert ret.value.ctype == UINT


def test_comparison_type_is_int():
    unit, _ = check("int f(double a, double b) { return a < b; }")
    ret = unit.items[0].body.body[0]
    assert ret.value.ctype == INT


def test_pointer_arith_types():
    unit, _ = check("""
int f(int *p, int *q) { return q - p; }
int *g(int *p, int n) { return p + n; }
""")
    sub = unit.items[0].body.body[0].value
    assert sub.ctype == INT
    add = unit.items[1].body.body[0].value
    assert isinstance(add.ctype, Pointer)


def test_array_decays_in_expressions():
    unit, _ = check("int a[10]; int f(void) { return *(a + 1); }")
    deref = unit.items[1].body.body[0].value
    operand = deref.operand
    assert isinstance(operand.ctype, Pointer)


def test_lvalue_required():
    with pytest.raises(SemaError, match="lvalue"):
        check("void f(void) { 1 = 2; }")
    with pytest.raises(SemaError, match="lvalue"):
        check("void f(int a, int b) { (a + b) = 2; }")
    with pytest.raises(SemaError, match="lvalue"):
        check("void f(int a) { &(a + 1); }")


def test_assign_to_array_rejected():
    with pytest.raises(SemaError, match="array"):
        check("int a[4]; int b[4]; void f(void) { a = b; }")


def test_void_variable_rejected():
    with pytest.raises(SemaError, match="void"):
        check("void x;")
    with pytest.raises(SemaError, match="void"):
        check("void f(void) { void y; }")


def test_break_outside_loop():
    with pytest.raises(SemaError, match="outside"):
        check("void f(void) { break; }")


def test_return_type_checked():
    with pytest.raises(SemaError, match="without a value"):
        check("int f(void) { return; }")
    with pytest.raises(SemaError, match="void function"):
        check("void f(void) { return 3; }")


def test_compound_assign_with_side_effecting_target_accepted():
    # The code generator hoists side effects out of the target, so these
    # are legal (exec tests verify single evaluation).
    check("void f(int *a, int i) { a[i++] += 1; }")
    check("int g(void); void f(int *a) { a[g()]--; }")


def test_frame_layout():
    _, funcs = check("""
int f(int a, double d, int b) {
    int x;
    double y;
    char c;
    return a + b;
}
""")
    info = funcs["f"]
    assert [p.offset for p in info.params] == [0, 4, 12]
    assert info.argsize == 16
    x, y, c = info.locals
    assert x.offset == 0
    assert y.offset == 8  # aligned for double
    assert c.offset == 16
    assert info.framesize >= 17


def test_address_taken_marks_trampoline():
    _, funcs = check("""
int h(int x) { return x; }
unsigned main(void) { return (unsigned)&h; }
""")
    assert funcs["h"].address_taken
    assert not funcs["main"].address_taken


def test_direct_call_does_not_take_address():
    _, funcs = check("int h(int x) { return x; } int main(void) "
                     "{ return h(3); }")
    assert not funcs["h"].address_taken


def test_scopes_shadow():
    unit, funcs = check("""
int x;
int f(void) {
    int x;
    x = 1;
    { int x; x = 2; }
    return x;
}
""")
    assert len(funcs["f"].locals) == 2


def test_sizeof_folds_to_uint_literal():
    unit, _ = check("unsigned f(void) { return sizeof(double); }")
    ret = unit.items[0].body.body[0]
    assert isinstance(ret.value, ast.IntLit)
    assert ret.value.value == 8
