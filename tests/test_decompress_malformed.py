"""Malformed compressed streams must fail with structured errors.

The decompressor walks attacker-controllable derivation bytes over the
flattened grammar tables, so every way a stream can be broken —
truncated mid-derivation, truncated inside burned-in literal operand
bytes, codewords out of range for their nonterminal — must surface as a
:class:`~repro.parsing.derivation.DerivationError` (or a ``ValueError``
for label-table inconsistencies), never as a bare ``IndexError`` or
``KeyError`` escaping the table walk.

These tests only *decompress* the malformed input; nothing here is
executed.
"""

import dataclasses
import random

import pytest

from repro import compress_module, train_grammar
from repro.compress.decompress import decompress_module, decompress_procedure
from repro.corpus.synth import generate_program
from repro.minic import compile_source
from repro.parsing.derivation import DerivationError


@pytest.fixture(scope="module")
def compressed():
    corpus = [compile_source(generate_program(10, seed=s))
              for s in (321, 322, 323)]
    grammar, _ = train_grammar(corpus)
    module = compile_source(generate_program(6, seed=400))
    return compress_module(grammar, module)


def _biggest_proc(cmod):
    return max(cmod.procedures, key=lambda p: len(p.code))


def _with_code(cproc, code):
    # Drop the label table too when the stream shrinks: offsets into the
    # removed tail are a *label* error, which is tested separately.
    labels = [off for off in cproc.labels if 0 < off < len(code)]
    return dataclasses.replace(cproc, code=code, labels=labels)


def test_baseline_roundtrips(compressed):
    # Sanity: the untampered module decompresses fine.
    module = decompress_module(compressed)
    assert module.procedures


def test_empty_stream_is_empty_procedure(compressed):
    cproc = _with_code(_biggest_proc(cmod=compressed), b"")
    proc = decompress_procedure(compressed.grammar, cproc)
    assert proc.code == b""


def test_every_truncation_point_is_structured(compressed):
    grammar = compressed.grammar
    cproc = _biggest_proc(compressed)
    survived = 0
    for cut in range(len(cproc.code)):
        bad = _with_code(cproc, cproc.code[:cut])
        try:
            decompress_procedure(grammar, bad)
            survived += 1  # cut fell on a block boundary: legal stream
        except DerivationError as err:
            assert "compressed stream ends" in str(err)
    # Most cuts land mid-derivation; a prefix of whole blocks is legal.
    assert survived < len(cproc.code) // 2


def test_truncation_errors_report_offset(compressed):
    cproc = _biggest_proc(compressed)
    bad = _with_code(cproc, cproc.code[:1])
    with pytest.raises(DerivationError, match="at offset"):
        decompress_procedure(compressed.grammar, bad)


def test_garbage_single_byte_flips_are_structured(compressed):
    """Flip each byte of the stream to adversarial values: decoding
    either still succeeds (the byte was a valid codeword for its
    nonterminal) or raises a structured ValueError — nothing else.  A
    flip can shift block boundaries out from under the label table,
    which is the one malformation reported as plain ValueError."""
    grammar = compressed.grammar
    cproc = _biggest_proc(compressed)
    code = cproc.code
    rng = random.Random(1234)
    positions = rng.sample(range(len(code)), min(40, len(code)))
    for pos in positions:
        for value in (0xFF, 0xFE, (code[pos] + 1) & 0xFF):
            bad = _with_code(
                cproc, code[:pos] + bytes([value]) + code[pos + 1:]
            )
            try:
                decompress_procedure(grammar, bad)
            except ValueError:
                pass  # DerivationError or a label-table mismatch


def test_random_garbage_streams_are_structured(compressed):
    grammar = compressed.grammar
    cproc = _biggest_proc(compressed)
    rng = random.Random(99)
    for trial in range(50):
        code = bytes(rng.randrange(256)
                     for _ in range(rng.randrange(1, 60)))
        bad = _with_code(cproc, code)
        try:
            decompress_procedure(grammar, bad)
        except ValueError:
            pass  # DerivationError or a label-table mismatch


def test_out_of_range_codeword_names_the_nonterminal(compressed):
    grammar = compressed.grammar
    cproc = _biggest_proc(compressed)
    # <start> never has anywhere near 256 rules, so 0xFF up front is an
    # invalid codeword and must name the offending nonterminal.
    bad = _with_code(cproc, b"\xff" + cproc.code[1:])
    with pytest.raises(DerivationError, match="out of range for <"):
        decompress_procedure(grammar, bad)


def test_label_offset_inside_block_is_rejected(compressed):
    cproc = _biggest_proc(compressed)
    mid = next(
        (off for off in range(1, len(cproc.code))
         if off not in cproc.block_starts),
        None,
    )
    assert mid is not None
    bad = dataclasses.replace(cproc, labels=list(cproc.labels) + [mid])
    with pytest.raises(ValueError, match="block"):
        decompress_procedure(compressed.grammar, bad)
