"""Unit tests for the fault-injection plane (``repro.faults``).

These test the *plane itself* — determinism, rule semantics, manifest
round-trips, activation scoping.  The sites it drives are exercised by
``test_crash_consistency.py``, ``test_resilience.py`` and
``test_chaos.py``.
"""

import json

import pytest

from repro import faults
from repro.faults import (
    SITES,
    FaultPlan,
    FaultPlane,
    FaultRule,
    InjectedFault,
)

SITE = "engine.dispatch"
OTHER = "service.frame.write"


def _decisions(plane, site, n):
    return [plane.decide(site) is not None for _ in range(n)]


# -- rule semantics ----------------------------------------------------------

def test_at_fires_exactly_those_evaluations():
    plane = FaultPlane(FaultPlan(0, {SITE: FaultRule(at=[2, 5])}))
    assert _decisions(plane, SITE, 6) == [
        False, True, False, False, True, False]
    assert plane.fired(SITE) == 2


def test_at_accepts_single_int():
    plane = FaultPlane(FaultPlan(0, {SITE: FaultRule(at=3)}))
    assert _decisions(plane, SITE, 4) == [False, False, True, False]


def test_times_caps_total_fires():
    plane = FaultPlane(FaultPlan(0, {SITE: FaultRule(p=1.0, times=2)}))
    assert _decisions(plane, SITE, 5) == [True, True, False, False, False]
    assert plane.fired(SITE) == 2
    assert plane.snapshot()[SITE] == {"evals": 5, "fires": 2}


def test_probability_zero_never_fires():
    plane = FaultPlane(FaultPlan(7, {SITE: FaultRule(p=0.0)}))
    assert not any(_decisions(plane, SITE, 100))


def test_probability_one_always_fires():
    plane = FaultPlane(FaultPlan(7, {SITE: FaultRule(p=1.0)}))
    assert all(_decisions(plane, SITE, 100))


def test_probability_is_roughly_honoured():
    plane = FaultPlane(FaultPlan(13, {SITE: FaultRule(p=0.25)}))
    fires = sum(_decisions(plane, SITE, 2000))
    assert 380 <= fires <= 620  # ~6 sigma around 500


def test_unconfigured_site_never_fires_and_counts_nothing():
    plane = FaultPlane(FaultPlan(0, {SITE: FaultRule(p=1.0)}))
    assert plane.decide(OTHER) is None
    assert plane.fired(OTHER) == 0


# -- determinism -------------------------------------------------------------

def test_same_seed_same_schedule():
    plan = {"seed": 42, "sites": {SITE: {"p": 0.3}}}
    a = FaultPlane(FaultPlan.from_dict(plan))
    b = FaultPlane(FaultPlan.from_dict(plan))
    assert _decisions(a, SITE, 200) == _decisions(b, SITE, 200)


def test_different_seeds_differ():
    a = FaultPlane(FaultPlan(1, {SITE: FaultRule(p=0.3)}))
    b = FaultPlane(FaultPlan(2, {SITE: FaultRule(p=0.3)}))
    assert _decisions(a, SITE, 200) != _decisions(b, SITE, 200)


def test_schedule_is_independent_of_other_sites():
    """Interleaving evaluations of another site must not perturb a
    site's own schedule (per-site RNGs)."""
    plan = FaultPlan(99, {SITE: FaultRule(p=0.3),
                          OTHER: FaultRule(p=0.5)})
    alone = _decisions(FaultPlane(plan), SITE, 100)
    interleaved = FaultPlane(plan)
    got = []
    for _ in range(100):
        interleaved.decide(OTHER)
        got.append(interleaved.decide(SITE) is not None)
    assert got == alone


# -- manifest (JSON) round-trip ----------------------------------------------

def test_plan_round_trips_through_json():
    plan = FaultPlan(42, {
        OTHER: FaultRule(p=0.1, mode="truncate"),
        SITE: FaultRule(at=[3, 9], times=1),
        "registry.atomic.torn": FaultRule(p=0.5, arg=0.01),
    })
    blob = json.dumps(plan.to_dict())
    back = FaultPlan.from_dict(json.loads(blob))
    assert back.to_dict() == plan.to_dict()
    assert back.sites[SITE].at == frozenset([3, 9])
    assert back.sites[OTHER].mode == "truncate"


def test_unknown_site_rejected():
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultPlan(0, {"registry.atomic.typo": FaultRule(p=1.0)})


def test_unknown_rule_key_rejected():
    with pytest.raises(ValueError, match="unknown fault-rule keys"):
        FaultRule.from_dict({"p": 0.5, "probability": 0.5})


def test_bad_probability_rejected():
    with pytest.raises(ValueError, match="out of"):
        FaultRule(p=1.5)


def test_all_declared_sites_are_valid_plan_keys():
    plan = FaultPlan(0, {site: FaultRule(p=0.0) for site in SITES})
    assert set(plan.sites) == SITES


# -- fire / mutate -----------------------------------------------------------

def test_fire_raises_injected_fault_with_site():
    plane = FaultPlane(FaultPlan(0, {SITE: FaultRule(at=1)}))
    with pytest.raises(InjectedFault) as exc:
        plane.fire(SITE, message="boom")
    assert exc.value.site == SITE
    assert "boom" in str(exc.value)
    plane.fire(SITE)  # second evaluation: no fire, no raise


def test_fire_with_custom_exception_type():
    plane = FaultPlane(FaultPlan(0, {SITE: FaultRule(at=1)}))
    with pytest.raises(ValueError, match=SITE):
        plane.fire(SITE, exc=ValueError)


def test_native_build_site_is_declared_and_wears_build_error():
    """``native.build`` is the chaos hook for the native engine: it must
    be a registered site, and firing it with NativeBuildError (as
    nativebuild does) must not masquerade as a program trap."""
    from repro.interp.nativebuild import NativeBuildError

    assert "native.build" in SITES
    plane = FaultPlane(FaultPlan(0, {"native.build": FaultRule(at=1)}))
    with pytest.raises(NativeBuildError):
        plane.fire("native.build", exc=NativeBuildError,
                   message="injected native build failure")
    assert not issubclass(NativeBuildError, RuntimeError)


def test_injected_fault_is_not_a_domain_error():
    from repro.interp.state import Trap
    from repro.service.protocol import FrameError
    from repro.storage import StorageError

    fault = InjectedFault(SITE)
    assert not isinstance(fault, (Trap, FrameError, StorageError))


def test_mutate_flips_exactly_one_bit():
    site = "registry.read.corrupt"
    plane = FaultPlane(FaultPlan(3, {site: FaultRule(at=1)}))
    data = bytes(range(64))
    out = plane.mutate(site, data)
    diff = [i for i in range(64) if out[i] != data[i]]
    assert len(diff) == 1
    assert bin(out[diff[0]] ^ data[diff[0]]).count("1") == 1


def test_mutate_honours_window():
    site = "registry.read.corrupt"
    for seed in range(10):
        plane = FaultPlane(FaultPlan(seed, {site: FaultRule(p=1.0)}))
        data = bytes(64)
        out = plane.mutate(site, data, window=(8, 16))
        diff = [i for i in range(64) if out[i] != data[i]]
        assert len(diff) == 1 and 8 <= diff[0] < 16


def test_mutate_without_fire_returns_data_verbatim():
    site = "registry.read.corrupt"
    plane = FaultPlane(FaultPlan(0, {site: FaultRule(p=0.0)}))
    data = b"payload"
    assert plane.mutate(site, data) is data


# -- activation --------------------------------------------------------------

def test_inactive_by_default():
    assert faults.ACTIVE is None


def test_injected_context_manager_scopes_activation():
    plan = {"seed": 1, "sites": {SITE: {"p": 1.0}}}
    with faults.injected(plan) as plane:
        assert faults.ACTIVE is plane
        assert plane.decide(SITE) is not None
    assert faults.ACTIVE is None


def test_injected_deactivates_on_error():
    with pytest.raises(RuntimeError):
        with faults.injected({"seed": 1, "sites": {}}):
            raise RuntimeError("boom")
    assert faults.ACTIVE is None


def test_activate_accepts_plain_dict_manifest():
    plane = faults.activate({"seed": 5, "sites": {SITE: {"at": [1]}}})
    try:
        assert plane.plan.seed == 5
        assert plane.decide(SITE) is not None
    finally:
        faults.deactivate()


# -- coding sites ------------------------------------------------------------

def test_coding_sites_are_declared():
    assert "coding.model" in SITES
    assert "coding.decode" in SITES


def test_coding_model_site_fires_during_model_build():
    """The model build is a chaos point: a fired ``coding.model`` raises
    out of ``model_for``, and — because a raising builder caches nothing
    in the derived-value memo — the next call builds cleanly."""
    from repro.coding.model import model_for
    from repro.core.program import program_for
    from repro.corpus.synth import generate_program
    from repro.minic import compile_source
    from repro.pipeline import train_grammar

    grammar, _ = train_grammar(
        [compile_source(generate_program(4, seed=61))])
    program = program_for(grammar)
    with faults.injected(
            {"seed": 0, "sites": {"coding.model": {"at": 1}}}) as plane:
        with pytest.raises(InjectedFault) as exc:
            model_for(program)
        assert exc.value.site == "coding.model"
        assert plane.fired("coding.model") == 1
        assert model_for(program) is model_for(program)


def test_coding_decode_site_fires_per_rcx2_load():
    """``coding.decode`` fires once per RCX2 stream decode, so a plan
    can fault the Nth load; the fault is an InjectedFault, not a
    (retryable-looking) storage or derivation error."""
    from repro.corpus.synth import generate_program
    from repro.minic import compile_source
    from repro.pipeline import compress_module, train_grammar
    from repro.storage import load_compressed, save_compressed

    module = compile_source(generate_program(4, seed=62))
    grammar, _ = train_grammar([module])
    data = save_compressed(compress_module(grammar, module),
                           format="rcx2")
    with faults.injected(
            {"seed": 0, "sites": {"coding.decode": {"at": 1}}}) as plane:
        with pytest.raises(InjectedFault):
            load_compressed(data)
        assert plane.fired("coding.decode") == 1
        load_compressed(data)  # second evaluation: decodes clean
    load_compressed(data)  # and inert once deactivated
