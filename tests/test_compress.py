"""End-to-end compression tests: train, compress, decompress, verify."""

import pytest

from repro.bytecode import assemble, validate_module
from repro.compress.compressor import Compressor, compress_module
from repro.compress.decompress import decompress_module, decompress_procedure
from repro.compress.tiling import Tiler
from repro.grammar.initial import initial_grammar
from repro.parsing.derivation import derivation_of_tree
from repro.parsing.earley import shortest_derivation_tree
from repro.parsing.forest import terminal_yield, tree_size
from repro.parsing.stackparser import build_forest, parse_blocks
from repro.training.expander import expand_grammar

TRAIN_ASM = """
.global buf data 0
.global exit lib
.bss 64
.proc fill framesize=8
    ADDRLP 0 0
    LIT1 0
    ASGNU
top:
    ADDRLP 0 0
    INDIRU
    LIT1 16
    LTU
    BrTrue @body
    RETV
body:
    ADDRGP $buf
    ADDRLP 0 0
    INDIRU
    ADDU
    LIT1 7
    ASGNC
    ADDRLP 0 0
    ADDRLP 0 0
    INDIRU
    LIT1 1
    ADDU
    ASGNU
    JUMPV @top
.endproc
.proc check framesize=0 trampoline
    ADDRFP 0 0
    INDIRU
    LIT1 0
    NEU
    BrTrue @done
    LIT1 0
    ARGU
    ADDRGP $exit
    CALLU
    POPU
done:
    RETV
.endproc
"""

TEST_ASM = """
.global buf data 0
.bss 64
.proc g framesize=8
    ADDRLP 4 0
    LIT1 3
    ASGNU
loop:
    ADDRLP 4 0
    INDIRU
    LIT1 0
    NEU
    BrTrue @more
    RETV
more:
    ADDRLP 4 0
    ADDRLP 4 0
    INDIRU
    LIT1 1
    SUBU
    ASGNU
    JUMPV @loop
.endproc
"""


@pytest.fixture(scope="module")
def trained():
    g = initial_grammar()
    module = assemble(TRAIN_ASM)
    validate_module(module)
    forest = build_forest(g, [module])
    expand_grammar(g, forest)
    return g, module


def test_compression_shrinks_code(trained):
    g, module = trained
    cmod = compress_module(g, module)
    assert cmod.code_bytes < module.code_bytes


def test_roundtrip_training_module(trained):
    g, module = trained
    cmod = compress_module(g, module)
    back = decompress_module(cmod)
    for orig, rec in zip(module.procedures, back.procedures):
        assert rec.code == orig.code
        assert rec.labels == orig.labels
        assert rec.framesize == orig.framesize
        assert rec.needs_trampoline == orig.needs_trampoline


def test_roundtrip_unseen_module(trained):
    """A program outside the training set still compresses and round-trips:
    the expanded grammar keeps the original rules, so the language is
    unchanged."""
    g, _ = trained
    module = assemble(TEST_ASM)
    validate_module(module)
    cmod = compress_module(g, module)
    back = decompress_module(cmod)
    assert back.procedures[0].code == module.procedures[0].code
    assert back.procedures[0].labels == module.procedures[0].labels


def test_label_table_rewritten_to_block_starts(trained):
    g, module = trained
    cmod = compress_module(g, module)
    fill = cmod.proc_by_name("fill")
    for off in fill.labels:
        assert off in fill.block_starts
    # Labels are decodable positions: decoding from each must succeed.
    from repro.parsing.derivation import decode_tree
    for off in fill.labels:
        decode_tree(g, fill.code, off)


def test_tiling_matches_earley_shortest(trained):
    """The production tiling DP and the paper's modified-Earley search must
    find equally short derivations."""
    g, module = trained
    tiler = Tiler(g)
    for proc in module.procedures:
        for block in parse_blocks(g, proc.code):
            symbols = terminal_yield(block.tree, g)
            earley_tree = shortest_derivation_tree(g, symbols)
            assert tiler.tile_cost(block.tree) == tree_size(earley_tree)


def test_tiling_never_longer_than_original_derivation(trained):
    g, module = trained
    tiler = Tiler(g)
    for proc in module.procedures:
        for block in parse_blocks(g, proc.code):
            assert tiler.tile_cost(block.tree) <= tree_size(block.tree)


def test_compressed_is_one_byte_per_step(trained):
    g, module = trained
    comp = Compressor(g)
    for proc in module.procedures:
        total_steps = sum(
            tree_size(comp._tiler.tile(b.tree))
            for b in parse_blocks(g, proc.code)
        )
        assert len(comp.compress_procedure(proc).code) == total_steps


def test_earley_engine_produces_equal_sizes(trained):
    g, module = trained
    t = Compressor(g, engine="tiling")
    e = Compressor(g, engine="earley")
    proc = module.proc_by_name("check")
    assert len(t.compress_procedure(proc).code) == \
        len(e.compress_procedure(proc).code)


def test_untrained_grammar_is_identity_cost():
    """With no training, the shortest derivation is the original parse, so
    'compression' under the initial grammar equals the derivation length."""
    g = initial_grammar()
    module = assemble(TEST_ASM)
    comp = Compressor(g)
    blocks = parse_blocks(g, module.procedures[0].code)
    expect = sum(tree_size(b.tree) for b in blocks)
    assert len(comp.compress_procedure(module.procedures[0]).code) == expect


def test_compressor_rejects_bad_engine(trained):
    g, _ = trained
    with pytest.raises(ValueError):
        Compressor(g, engine="magic")


def test_compressed_module_size_breakdown(trained):
    g, module = trained
    cmod = compress_module(g, module)
    b = cmod.size_breakdown()
    assert b["bytecode"] == cmod.code_bytes
    assert b["data"] == len(module.data)
    assert b["trampolines"] == module.trampoline_bytes
