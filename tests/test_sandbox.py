"""The crash-isolated native sandbox: supervisor + helper end to end.

Real helper subprocesses, real signals, real pipes.  The contract under
test, in order of importance:

* **transparency** — a healthy request through the sandbox is
  byte-identical (exit code, output, instret, dispatches, memory) to
  the same request on an in-process :class:`NativeEngine`, and the
  engine's own exceptions (traps, budget exhaustion) ride the pipe back
  as the same class with the same message;
* **containment** — a helper death (SIGSEGV/SIGBUS/SIGABRT) becomes a
  structured :class:`NativeCrashError` naming the signal, and a wedged
  helper is SIGKILLed by the watchdog into :class:`NativeHangError`;
  the supervisor process survives both and serves the next request;
* **fuzz hardening** — malformed RCX payloads (truncations, bit flips)
  fed to the sandboxed engine produce structured decode/trap errors,
  never a crash verdict: corrupt *data* must not be mistaken for a
  poisonous *request*.
"""

import random
import time

import pytest

from repro import compress_module, faults, train_grammar
from repro.corpus.synth import generate_program
from repro.interp.native import NativeEngine, native_available
from repro.interp.nativebuild import NativeBuildCache
from repro.interp.sandbox import (
    CRASH_SIGNALS,
    NativeCrashError,
    NativeHangError,
    NativeSandbox,
    SandboxError,
    request_digest,
)
from repro.interp.state import BudgetExceeded, Trap
from repro.minic import compile_source
from repro.storage import save_compressed, save_module

needs_cc = pytest.mark.skipif(
    not native_available(),
    reason="no C compiler on PATH: native engine unavailable")

pytestmark = needs_cc


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    corpus = [compile_source(generate_program(10, seed=s))
              for s in (611, 612, 613)]
    grammar, _ = train_grammar(corpus)
    module = compile_source(generate_program(5, seed=620))
    cmod = compress_module(grammar, module)
    cache_dir = tmp_path_factory.mktemp("sandbox-native-cache")
    return {
        "grammar": grammar,
        "cmod": cmod,
        "container": save_compressed(cmod),
        "cache_dir": cache_dir,
        "cache": NativeBuildCache(root=cache_dir),
    }


@pytest.fixture(scope="module")
def sandbox(world):
    """One pooled helper shared by the whole module (the production
    shape: a long-lived sandbox serving many requests)."""
    with NativeSandbox(timeout=60.0, cache_dir=world["cache_dir"]) as sb:
        yield sb


# -- transparency -------------------------------------------------------------

def test_happy_path_matches_inprocess_engine(world, sandbox):
    local = NativeEngine(world["cmod"], cache=world["cache"]).run()
    remote = sandbox.run(world["container"], want_memory=True)
    assert remote == local


def test_helper_is_pooled_across_requests(world, sandbox):
    spawns = sandbox.stats["spawns"]
    for _ in range(3):
        sandbox.run(world["container"])
    assert sandbox.stats["spawns"] == spawns  # no respawn on reuse
    assert sandbox.alive


def test_input_and_args_round_trip(world, sandbox):
    src = """
int main() {
    int c;
    c = getchar();
    while (c + 1 != 0) {
        putchar(c);
        c = getchar();
    }
    return 7;
}
"""
    cmod = compress_module(world["grammar"], compile_source(src))
    container = save_compressed(cmod)
    run = sandbox.run(container, input_data=b"isolated!")
    assert run.output == b"isolated!"
    assert run.code == 7


def test_engine_trap_rides_back_identically(world, sandbox):
    src = "int main() { int a; a = 5; return a / (a - 5); }"
    cmod = compress_module(world["grammar"], compile_source(src))
    container = save_compressed(cmod)
    with pytest.raises(Trap) as remote:
        sandbox.run(container)
    with pytest.raises(Trap) as local:
        NativeEngine(cmod, cache=world["cache"]).run()
    assert str(remote.value) == str(local.value)
    assert "division by zero" in str(remote.value)
    # a trap is an engine answer, not a helper death
    assert sandbox.alive


def test_budget_trap_rides_back_identically(world, sandbox):
    local_engine = NativeEngine(world["cmod"], cache=world["cache"])
    total = local_engine.run().dispatches
    budget = total - 1
    with pytest.raises(BudgetExceeded) as local:
        local_engine.run(budget=budget)
    with pytest.raises(BudgetExceeded) as remote:
        sandbox.run(world["container"], budget=budget)
    assert str(remote.value) == str(local.value)
    # exact boundary completes through the sandbox too
    assert sandbox.run(world["container"], budget=total).dispatches == total


def test_uncompressed_module_is_rejected_structurally(world, sandbox):
    module = compile_source("int main() { return 1; }")
    with pytest.raises(ValueError, match="compressed containers only"):
        sandbox.run(save_module(module))
    assert sandbox.alive


# -- containment --------------------------------------------------------------

@pytest.mark.parametrize("mode", sorted(CRASH_SIGNALS))
def test_injected_crash_becomes_structured_error(world, mode):
    with NativeSandbox(timeout=30.0, cache_dir=world["cache_dir"]) as sb:
        plan = faults.FaultPlan(
            seed=1, sites={"native.crash": {"p": 1.0, "times": 1,
                                            "mode": mode}})
        with faults.injected(plan):
            with pytest.raises(NativeCrashError) as err:
                sb.run(world["container"],
                       content_key="cafe" * 16)
        exc = err.value
        assert exc.signum == int(CRASH_SIGNALS[mode])
        assert exc.signame in str(exc)
        assert exc.content_key == "cafe" * 16
        assert exc.request_digest == request_digest(
            world["container"], (), b"")
        assert sb.stats["crashes"] == 1
        # containment: the *supervisor* recovered — next request runs
        assert sb.run(world["container"]).dispatches > 0


def test_watchdog_kills_hung_helper(world):
    with NativeSandbox(timeout=30.0, cache_dir=world["cache_dir"]) as sb:
        sb.run(world["container"])  # warm helper: hang is not a compile
        plan = faults.FaultPlan(
            seed=2, sites={"native.hang": {"p": 1.0, "times": 1,
                                           "arg": 30.0}})
        started = time.monotonic()
        with faults.injected(plan):
            with pytest.raises(NativeHangError) as err:
                sb.run(world["container"], timeout=1.0)
        elapsed = time.monotonic() - started
        assert elapsed < 10.0  # the watchdog fired, not the sleep
        assert err.value.timeout == 1.0
        assert sb.stats["hangs"] == 1
        assert sb.run(world["container"]).dispatches > 0  # recovered


def test_crash_and_hang_are_not_traps(world):
    """The service's poison routing depends on these classes staying
    outside the Trap/RuntimeError hierarchy."""
    for exc_type in (NativeCrashError, NativeHangError):
        assert issubclass(exc_type, SandboxError)
        assert not issubclass(exc_type, RuntimeError)


def test_close_is_idempotent_and_run_respawns(world):
    sb = NativeSandbox(timeout=30.0, cache_dir=world["cache_dir"])
    assert sb.run(world["container"]).dispatches > 0
    sb.close()
    sb.close()
    assert not sb.alive
    # a closed sandbox is not dead: the next run spawns a fresh helper
    assert sb.run(world["container"]).dispatches > 0
    sb.close()


def test_request_digest_is_stable_and_sensitive():
    d = request_digest(b"abc", (1, 2), b"in")
    assert d == request_digest(b"abc", (1, 2), b"in")
    assert d != request_digest(b"abd", (1, 2), b"in")
    assert d != request_digest(b"abc", (1, 3), b"in")
    assert d != request_digest(b"abc", (1, 2), b"IN")
    # args/input cannot be confused for each other or for payload bytes
    assert request_digest(b"", (), b"x") != request_digest(b"x", (), b"")


# -- fuzz hardening: malformed payloads are decode errors, not crashes --------
#
# The helper deserializes attacker-controllable container bytes before
# anything native runs, so every malformation must surface as the
# loader/decompressor's structured ValueError (which rides the pipe
# back), or at worst a Trap from a stream that still parsed — never a
# dead helper.  A crash verdict here would poison-quarantine innocent
# (merely corrupt) requests.

def _expect_structured(sandbox, payload):
    """Feed one malformed payload; only structured outcomes allowed."""
    try:
        sandbox.run(payload, budget=200_000, timeout=30.0)
    except (NativeCrashError, NativeHangError) as exc:
        raise AssertionError(
            f"malformed payload produced a crash verdict: {exc}")
    except (ValueError, Trap):
        pass  # storage/derivation error, or a parsed-but-faulty program


def test_truncated_containers_are_structured(world, sandbox):
    container = world["container"]
    for cut in range(0, len(container), max(1, len(container) // 64)):
        _expect_structured(sandbox, container[:cut])
    assert sandbox.alive


def test_bit_flipped_containers_are_structured(world, sandbox):
    container = world["container"]
    rng = random.Random(4321)
    positions = rng.sample(range(len(container)),
                           min(48, len(container)))
    for pos in positions:
        flipped = (container[:pos]
                   + bytes([container[pos] ^ (1 << rng.randrange(8))])
                   + container[pos + 1:])
        _expect_structured(sandbox, flipped)
    assert sandbox.alive


def test_random_garbage_containers_are_structured(world, sandbox):
    rng = random.Random(77)
    for _ in range(25):
        payload = bytes(rng.randrange(256)
                        for _ in range(rng.randrange(0, 200)))
        _expect_structured(sandbox, payload)
    assert sandbox.alive
