"""Execution and semantic tests for mini-C struct support."""

import pytest

from repro.minic import compile_and_run, compile_source
from repro.minic.parser import ParseError, parse
from repro.minic.sema import SemaError, analyze


def run(source, *args):
    return compile_and_run(source, *args)


def test_struct_layout_and_sizeof():
    code, _ = run("""
struct mixed { char c; int i; char d; double x; short s; };
int main(void) {
    /* c@0, i@4, d@8, x@16, s@24 -> size 32 (8-aligned) */
    return sizeof(struct mixed);
}
""")
    assert code == 32


def test_member_read_write_global():
    code, _ = run("""
struct point { int x; int y; };
struct point p;
int main(void) {
    p.x = 3;
    p.y = p.x * 10 + 9;
    return p.y;
}
""")
    assert code == 39


def test_member_read_write_local():
    code, _ = run("""
struct point { int x; int y; };
int main(void) {
    struct point p;
    p.x = 7;
    p.y = 2;
    return p.x * p.y;
}
""")
    assert code == 14


def test_arrow_through_pointer():
    code, _ = run("""
struct counter { int n; };
void bump(struct counter *c) { c->n += 1; }
int main(void) {
    struct counter c;
    int i;
    c.n = 0;
    for (i = 0; i < 5; i++) bump(&c);
    return c.n;
}
""")
    assert code == 5


def test_nested_structs():
    code, _ = run("""
struct point { int x; int y; };
struct rect { struct point lo; struct point hi; };
int main(void) {
    struct rect r;
    r.lo.x = 1; r.lo.y = 2; r.hi.x = 4; r.hi.y = 6;
    return (r.hi.x - r.lo.x) * (r.hi.y - r.lo.y);
}
""")
    assert code == 12


def test_array_of_structs():
    code, _ = run("""
struct item { int key; int value; };
struct item table[8];
int main(void) {
    int i, s;
    for (i = 0; i < 8; i++) { table[i].key = i; table[i].value = i * 3; }
    s = 0;
    for (i = 0; i < 8; i++)
        if (table[i].key % 2 == 0) s += table[i].value;
    return s;  /* (0+2+4+6)*3 = 36 */
}
""")
    assert code == 36


def test_struct_array_member():
    code, _ = run("""
struct buf { int len; char data[12]; };
struct buf b;
int main(void) {
    b.len = 3;
    b.data[0] = 'a'; b.data[1] = 'b'; b.data[2] = 'c';
    putstr("len="); putint(b.len); putchar(' ');
    putchar(b.data[1]); putchar('\\n');
    return b.data[2];
}
""")
    assert code == ord("c")


def test_pointer_member_linked_list():
    code, _ = run("""
struct node { int value; struct node *next; };
struct node nodes[5];
int main(void) {
    int i, s;
    struct node *p;
    for (i = 0; i < 5; i++) {
        nodes[i].value = i + 1;
        nodes[i].next = i < 4 ? &nodes[i + 1] : (struct node *)0;
    }
    s = 0;
    for (p = &nodes[0]; p != (struct node *)0; p = p->next)
        s += p->value;
    return s;  /* 15 */
}
""")
    assert code == 15


def test_mixed_field_types():
    code, out = run("""
struct rec { char tag; short count; double weight; };
struct rec r;
int main(void) {
    r.tag = 'x';
    r.count = 1000;
    r.weight = 2.5;
    putfloat(r.weight * r.count);
    return r.tag;
}
""")
    assert out == b"2500"
    assert code == ord("x")


def test_member_of_call_result_rejected():
    # foo().x would need struct returns; both are rejected.
    with pytest.raises(SemaError, match="structs by value"):
        analyze(parse("struct s { int a; }; struct s f(void) { }"))


def test_struct_params_rejected():
    with pytest.raises(SemaError, match="pointers"):
        analyze(parse(
            "struct s { int a; }; int f(struct s v) { return v.a; }"
        ))


def test_whole_struct_assignment_rejected():
    with pytest.raises(SemaError, match="whole-struct"):
        analyze(parse("""
struct s { int a; };
struct s x, y;
void f(void) { x = y; }
"""))


def test_unknown_member_rejected():
    with pytest.raises(SemaError, match="no member"):
        analyze(parse("""
struct s { int a; };
struct s x;
int f(void) { return x.b; }
"""))


def test_dot_on_non_struct_rejected():
    with pytest.raises(SemaError, match="non-struct"):
        analyze(parse("int f(int v) { return v.a; }"))


def test_arrow_on_non_pointer_rejected():
    with pytest.raises(SemaError, match="non-struct-pointer"):
        analyze(parse("""
struct s { int a; };
struct s x;
int f(void) { return x->a; }
"""))


def test_unknown_struct_tag_rejected():
    with pytest.raises(ParseError, match="unknown struct"):
        parse("struct nope *p;")


def test_duplicate_member_rejected():
    with pytest.raises(ParseError, match="duplicate member"):
        parse("struct s { int a; int a; };")


def test_struct_compresses_and_runs():
    from repro import compress_module, run as run_m, run_compressed, \
        train_grammar

    source = """
struct acc { int lo; int hi; };
struct acc totals[4];
int main(void) {
    int i;
    for (i = 0; i < 16; i++) {
        totals[i % 4].lo += i;
        totals[i % 4].hi += i * i;
    }
    return totals[1].lo + totals[2].hi;
}
"""
    module = compile_source(source)
    grammar, _ = train_grammar([module])
    cmod = compress_module(grammar, module)
    assert run_compressed(cmod) == run_m(module)
