"""Tests for the uncompressed interpreter: operator semantics, control
flow, calls, intrinsics."""

import pytest

from repro.bytecode import assemble
from repro.interp.interp1 import Interpreter1
from repro.interp.memory import to_signed
from repro.interp.runtime import Machine, run_program
from repro.interp.state import Trap


def run_asm(text, *args, input_data=b""):
    module = assemble(text)
    return run_program(module, Interpreter1(module), *args,
                       input_data=input_data)


def run_expr_proc(body, *args, argsize=0):
    """Run a 'main' whose body is given; returns machine for inspection."""
    module = assemble(f"""
.entry main
.proc main framesize=64 argsize={argsize} trampoline
{body}
.endproc
""")
    machine = Machine(module, Interpreter1(module))
    code = machine.run(*args)
    return code, machine


def test_return_value():
    code, _ = run_expr_proc("    LIT1 42\n    RETU")
    assert code == 42


def test_arithmetic_unsigned():
    code, _ = run_expr_proc("""
    LIT1 10
    LIT1 3
    MULU
    LIT1 4
    SUBU
    RETU
""")
    assert code == 26


def test_signed_division_truncates_toward_zero():
    # -7 / 2 == -3 in C (not Python's floor -4)
    code, _ = run_expr_proc("""
    LIT1 7
    NEGI
    LIT1 2
    DIVI
    RETU
""")
    assert code == -3


def test_signed_modulo_c_semantics():
    # -7 % 2 == -1 in C
    code, _ = run_expr_proc("""
    LIT1 7
    NEGI
    LIT1 2
    MODI
    RETU
""")
    assert code == -1


def test_division_by_zero_traps():
    with pytest.raises(Trap, match="division by zero"):
        run_expr_proc("    LIT1 1\n    LIT1 0\n    DIVU\n    RETU")


def test_unsigned_vs_signed_compare():
    # 0xFFFFFFFF: as unsigned it is > 1; as signed it is -1 < 1.
    code, _ = run_expr_proc("""
    LIT4 255 255 255 255
    LIT1 1
    GTU
    RETU
""")
    assert code == 1
    code, _ = run_expr_proc("""
    LIT4 255 255 255 255
    LIT1 1
    GTI
    RETU
""")
    assert code == 0


def test_shifts():
    code, _ = run_expr_proc("    LIT1 1\n    LIT1 5\n    LSHU\n    RETU")
    assert code == 32
    # Arithmetic right shift of a negative value keeps the sign.
    code, _ = run_expr_proc("""
    LIT1 8
    NEGI
    LIT1 2
    RSHI
    RETU
""")
    assert code == -2
    # Logical right shift of the same pattern does not.
    code, _ = run_expr_proc("""
    LIT1 8
    NEGI
    LIT1 2
    RSHU
    RETU
""")
    assert code == to_signed((0xFFFFFFF8 >> 2))


def test_bitwise():
    code, _ = run_expr_proc(
        "    LIT1 12\n    LIT1 10\n    BXORU\n    RETU")
    assert code == 6
    code, _ = run_expr_proc("    LIT1 0\n    BCOMU\n    RETU")
    assert code == -1


def test_sign_extension_ops():
    code, _ = run_expr_proc("    LIT1 255\n    CVI1I4\n    RETU")
    assert code == -1
    code, _ = run_expr_proc("    LIT1 255\n    CVU1U4\n    RETU")
    assert code == 255
    code, _ = run_expr_proc("    LIT2 255 255\n    CVI2I4\n    RETU")
    assert code == -1


def test_locals_store_load():
    code, _ = run_expr_proc("""
    ADDRLP 0 0
    LIT1 17
    ASGNU
    ADDRLP 0 0
    INDIRU
    RETU
""")
    assert code == 17


def test_char_and_short_stores():
    code, _ = run_expr_proc("""
    ADDRLP 0 0
    LIT4 120 86 52 18
    ASGNU
    ADDRLP 0 0
    LIT1 255
    ASGNC
    ADDRLP 0 0
    INDIRU
    RETU
""")
    assert code == 0x123456FF


def test_float_arithmetic():
    code, machine = run_expr_proc("""
    ADDRLP 0 0
    LIT1 3
    CVID
    LIT1 2
    CVID
    DIVD
    ASGND
    ADDRLP 0 0
    INDIRD
    LIT1 1
    CVID
    GTD
    RETU
""")
    assert code == 1  # 1.5 > 1.0


def test_float_single_precision_rounding():
    # 1/3 in float32 differs from 1/3 in float64.
    code, _ = run_expr_proc("""
    LIT1 1
    CVIF
    LIT1 3
    CVIF
    DIVF
    CVFD
    LIT1 1
    CVID
    LIT1 3
    CVID
    DIVD
    EQD
    RETU
""")
    assert code == 0


def test_branch_loop():
    # sum 1..5 via a loop
    code, _ = run_expr_proc("""
    ADDRLP 0 0
    LIT1 0
    ASGNU
    ADDRLP 4 0
    LIT1 1
    ASGNU
top:
    ADDRLP 4 0
    INDIRU
    LIT1 5
    LEU
    BrTrue @body
    ADDRLP 0 0
    INDIRU
    RETU
body:
    ADDRLP 0 0
    ADDRLP 0 0
    INDIRU
    ADDRLP 4 0
    INDIRU
    ADDU
    ASGNU
    ADDRLP 4 0
    ADDRLP 4 0
    INDIRU
    LIT1 1
    ADDU
    ASGNU
    JUMPV @top
""")
    assert code == 15


def test_local_call_and_args():
    module_text = """
.entry main
.proc add framesize=0 argsize=8
    ADDRFP 0 0
    INDIRU
    ADDRFP 4 0
    INDIRU
    ADDU
    RETU
.endproc
.proc main framesize=0 trampoline
    LIT1 30
    ARGU
    LIT1 12
    ARGU
    LocalCALLU %add
    RETU
.endproc
"""
    code, _ = run_asm(module_text)
    assert code == 42


def test_indirect_call_through_trampoline():
    module_text = """
.entry main
.global twice proc 0
.proc twice framesize=0 argsize=4 trampoline
    ADDRFP 0 0
    INDIRU
    LIT1 2
    MULU
    RETU
.endproc
.proc main framesize=0 trampoline
    LIT1 21
    ARGU
    ADDRGP $twice
    CALLU
    RETU
.endproc
"""
    code, _ = run_asm(module_text)
    assert code == 42


def test_indirect_call_without_trampoline_traps():
    module_text = """
.entry main
.global f proc 0
.proc f framesize=0
    RETV
.endproc
.proc main framesize=0 trampoline
    ADDRGP $f
    CALLV
    RETV
.endproc
"""
    with pytest.raises(Trap, match="no trampoline"):
        run_asm(module_text)


def test_recursion():
    # factorial(10) via recursion
    module_text = """
.entry main
.proc fact framesize=0 argsize=4
    ADDRFP 0 0
    INDIRU
    LIT1 1
    GTU
    BrTrue @rec
    LIT1 1
    RETU
rec:
    ADDRFP 0 0
    INDIRU
    LIT1 1
    SUBU
    ARGU
    LocalCALLU %fact
    ADDRFP 0 0
    INDIRU
    MULU
    RETU
.endproc
.proc main framesize=0 trampoline
    LIT1 10
    ARGU
    LocalCALLU %fact
    RETU
.endproc
"""
    code, _ = run_asm(module_text)
    assert code == 3628800


def test_exit_intrinsic():
    module_text = """
.entry main
.global exit lib
.proc main framesize=0 trampoline
    LIT1 7
    ARGU
    ADDRGP $exit
    CALLU
    POPU
    RETV
.endproc
"""
    code, _ = run_asm(module_text)
    assert code == 7


def test_putchar_and_output():
    module_text = """
.entry main
.global putchar lib
.proc main framesize=0 trampoline
    LIT1 72
    ARGU
    ADDRGP $putchar
    CALLU
    POPU
    LIT1 105
    ARGU
    ADDRGP $putchar
    CALLU
    POPU
    RETV
.endproc
"""
    code, out = run_asm(module_text)
    assert out == b"Hi"


def test_getchar_reads_input():
    module_text = """
.entry main
.global getchar lib
.proc main framesize=0 trampoline
    ADDRGP $getchar
    CALLU
    RETU
.endproc
"""
    code, _ = run_asm(module_text, input_data=b"A")
    assert code == ord("A")
    code, _ = run_asm(module_text, input_data=b"")
    assert code == -1


def test_globals_and_data():
    module_text = """
.entry main
.global msg data 0
.data 48 65 79 00
.proc main framesize=0 trampoline
    ADDRGP $msg
    INDIRC
    RETU
.endproc
"""
    code, _ = run_asm(module_text)
    assert code == 0x48


def test_malloc_returns_distinct_blocks():
    module_text = """
.entry main
.global malloc lib
.proc main framesize=8 trampoline
    LIT1 16
    ARGU
    ADDRGP $malloc
    CALLU
    ARGU
    LIT1 16
    ARGU
    ADDRGP $malloc
    CALLU
    RETU
.endproc
"""
    # second malloc returns a different address than the first (which was
    # consumed as an arg; just check it is nonzero and aligned)
    code, _ = run_asm(module_text)
    assert code > 0
    assert code % 8 == 0


def test_entry_args():
    module_text = """
.entry main
.proc main framesize=0 argsize=4 trampoline
    ADDRFP 0 0
    INDIRU
    LIT1 1
    ADDU
    RETU
.endproc
"""
    code, _ = run_asm(module_text, 41)
    assert code == 42


def test_fall_off_end_traps():
    module_text = """
.entry main
.proc main framesize=0 trampoline
    LIT1 1
    POPU
.endproc
"""
    with pytest.raises(Trap, match="fell off"):
        run_asm(module_text)


def test_asgnb_unsupported():
    module_text = """
.entry main
.proc main framesize=8 trampoline
    ADDRLP 0 0
    ADDRLP 4 0
    ASGNB
    RETV
.endproc
"""
    from repro.interp.base import UnsupportedOpcode
    with pytest.raises(UnsupportedOpcode):
        run_asm(module_text)
