"""Tests for grammar serialization and grammar analyses."""

import pytest

from repro.bytecode import assemble
from repro.grammar.analysis import (
    check_language_preserved,
    derives_under_originals,
    productive_nonterminals,
    reachable_nonterminals,
)
from repro.grammar.initial import initial_grammar, typed_grammar
from repro.grammar.serialize import (
    decode_grammar,
    encode_grammar_compact,
    encode_grammar_plain,
    grammar_bytes,
)
from repro.parsing.stackparser import build_forest
from repro.training.expander import expand_grammar

TRAIN = """
.global buf data 0
.bss 64
.proc f framesize=8
    ADDRLP 0 0
    LIT1 0
    ASGNU
top:
    ADDRLP 0 0
    INDIRU
    LIT1 16
    LTU
    BrTrue @body
    RETV
body:
    ADDRGP $buf
    ADDRLP 0 0
    INDIRU
    ADDU
    LIT1 7
    ASGNC
    ADDRLP 0 0
    ADDRLP 0 0
    INDIRU
    LIT1 1
    ADDU
    ASGNU
    JUMPV @top
.endproc
"""


@pytest.fixture(scope="module")
def expanded():
    g = initial_grammar()
    expand_grammar(g, build_forest(g, [assemble(TRAIN)]))
    return g


def _shapes(grammar):
    return [(r.lhs, r.rhs) for r in grammar]


def test_plain_roundtrip(expanded):
    data = encode_grammar_plain(expanded)
    back = decode_grammar(data)
    assert _shapes(back) == _shapes(expanded)


def test_compact_roundtrip(expanded):
    data = encode_grammar_compact(expanded)
    back = decode_grammar(data)
    assert _shapes(back) == _shapes(expanded)


def test_compact_smaller_than_plain(expanded):
    plain = grammar_bytes(expanded, compact=False)
    compact = grammar_bytes(expanded, compact=True)
    assert compact < plain


def test_initial_grammar_roundtrips():
    g = initial_grammar()
    assert _shapes(decode_grammar(encode_grammar_plain(g))) == _shapes(g)
    assert _shapes(decode_grammar(encode_grammar_compact(g))) == _shapes(g)


def test_decode_rejects_garbage():
    with pytest.raises(ValueError, match="magic"):
        decode_grammar(b"XXXX\x00")


def test_decoded_grammar_decompresses(expanded):
    """The decoded grammar (as shipped in an embedded interpreter) must
    decode derivations identically: rule order is the codeword space."""
    from repro.compress.compressor import Compressor
    from repro.compress.decompress import decompress_procedure

    module = assemble(TRAIN)
    cproc = Compressor(expanded).compress_procedure(module.procedures[0])
    back = decode_grammar(encode_grammar_compact(expanded))
    rec = decompress_procedure(back, cproc)
    assert rec.code == module.procedures[0].code


def test_decoded_grammar_runs_interp2(expanded):
    """interp2 over the decoded grammar executes correctly."""
    from repro.compress.compressor import Compressor
    from repro.interp.interp1 import Interpreter1
    from repro.interp.interp2 import Interpreter2
    from repro.interp.runtime import run_program

    source = """
.entry main
.proc main framesize=8 trampoline
    ADDRLP 0 0
    LIT1 6
    ASGNU
    ADDRLP 0 0
    INDIRU
    LIT1 7
    MULU
    RETU
.endproc
"""
    module = assemble(source)
    r1 = run_program(module, Interpreter1(module))
    cmod = Compressor(expanded).compress_module(module)
    cmod.grammar = decode_grammar(encode_grammar_compact(expanded))
    r2 = run_program(cmod, Interpreter2(cmod))
    assert r1 == r2 == (42, b"")


# -- analyses ---------------------------------------------------------------

def test_reachable_and_productive_initial():
    g = initial_grammar()
    assert set(reachable_nonterminals(g)) == set(g.nonterminals)
    assert set(productive_nonterminals(g)) == set(g.nonterminals)


def test_language_preserved_after_training(expanded):
    check_language_preserved(expanded)


def test_language_preserved_typed():
    g = typed_grammar()
    expand_grammar(g, build_forest(g, [assemble(TRAIN)]))
    check_language_preserved(g)


def test_derives_under_originals_rejects_fake(expanded):
    # Construct a rule whose fragment does not match its RHS.
    inlined = next(r for r in expanded if r.origin == "inlined")
    from repro.grammar.cfg import Rule
    fake = Rule(99999, inlined.lhs, inlined.rhs + (5,), "inlined",
                inlined.fragment)
    assert not derives_under_originals(expanded, fake)
