"""Multi-process fleet tests: dispatcher + worker pool end to end.

A real :class:`FleetDispatcher` runs in a background event-loop thread
with real spawned worker processes; tests talk to it over TCP exactly
as production clients would.  The invariants mirror the single-process
suite — byte-identical results against a local oracle — plus the
fleet-only ones: a SIGKILLed worker is respawned and its in-flight
requests surface as retryable ``worker_lost`` errors; every mid-drain
connect gets the same retryable ``shutting_down`` answer regardless of
routing; stats aggregate across workers.
"""

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro
from repro.minic import compile_source
from repro.service import (
    FleetDispatcher,
    RetryPolicy,
    ServiceClient,
    ServiceError,
)
from repro.service.metrics import merge_stats
from repro.storage import save_grammar, save_module

from tests.test_service import APP, CORPUS


@pytest.fixture(scope="module")
def artifacts():
    app = compile_source(APP)
    corpus = compile_source(CORPUS)
    grammar, _ = repro.train_grammar([corpus, app])
    return {
        "app": app,
        "app_bytes": save_module(app),
        "grammar": grammar,
        "grammar_bytes": save_grammar(grammar),
    }


class FleetHarness:
    """A fleet dispatcher + real worker processes in a background
    event-loop thread."""

    def __init__(self, tmp_path, workers=3, **kwargs):
        kwargs.setdefault("worker_config", {"batch_window": 0.005})
        self.dispatcher = FleetDispatcher(
            str(tmp_path / "registry"), workers=workers, **kwargs)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever,
                                       daemon=True)
        self.thread.start()
        self.run(self.dispatcher.start("127.0.0.1", 0), timeout=60)
        self.port = self.dispatcher.port

    @property
    def pool(self):
        return self.dispatcher.pool

    def run(self, coro, timeout=30):
        return asyncio.run_coroutine_threadsafe(
            coro, self.loop).result(timeout)

    def client(self, **kw):
        return ServiceClient("127.0.0.1", self.port, **kw)

    def retry_client(self, **kw):
        kw.setdefault("timeout", 10.0)
        kw.setdefault("retry", RetryPolicy(8, base=0.02, cap=0.2))
        kw.setdefault("deadline", 30.0)
        return self.client(**kw)

    def wait_restarted(self, min_restarts, timeout=20.0):
        """Block until the pool has recovered from >= min_restarts kills
        and every slot is up again."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.pool.restarts_total >= min_restarts \
                    and self.pool.alive() == self.pool.size:
                return
            time.sleep(0.02)
        raise AssertionError(
            f"fleet did not recover: restarts="
            f"{self.pool.restarts_total} alive={self.pool.alive()}")

    def close(self):
        try:
            self.run(self.dispatcher.stop(grace=10), timeout=30)
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(5)
            self.loop.close()


@pytest.fixture(scope="module")
def fleet(tmp_path_factory, artifacts):
    h = FleetHarness(tmp_path_factory.mktemp("fleet"), workers=3)
    with h.client() as client:
        client.put_grammar(artifacts["grammar_bytes"], tags=["prod"])
    yield h
    h.close()


# -- plain multi-process correctness ------------------------------------------

def test_fleet_end_to_end_matches_oracle(fleet, artifacts):
    """The fleet's answers are byte-identical to the local
    single-process pipeline, for both container formats."""
    oracle_rcx1 = save_compressed_local(artifacts, "rcx1")
    oracle_rcx2 = save_compressed_local(artifacts, "rcx2")
    with fleet.client() as client:
        assert client.health()["status"] == "ok"
        rcx1 = client.compress(artifacts["app_bytes"], "prod")
        rcx2 = client.compress(artifacts["app_bytes"], "prod",
                               format="rcx2")
        assert rcx1 == oracle_rcx1
        assert rcx2 == oracle_rcx2
        assert client.decompress(rcx1) == artifacts["app_bytes"]
        assert client.decompress(rcx2) == artifacts["app_bytes"]
        code, output = client.run_compressed(rcx1)
        assert (code, output) == repro.run(artifacts["app"])


def save_compressed_local(artifacts, format):
    from repro.storage import save_compressed
    cmod = repro.compress_module(artifacts["grammar"], artifacts["app"])
    return save_compressed(cmod, format=format)


def test_fleet_health_and_stats_aggregate(fleet, artifacts):
    with fleet.client() as client:
        health = client.health()
        assert health["workers"]["count"] == 3
        assert health["workers"]["alive"] == 3

        # drive some traffic so every counter is warm
        for _ in range(3):
            client.compress(artifacts["app_bytes"], "prod")
        stats = client.stats()
        assert stats["fleet"]["workers"] == 3
        assert stats["fleet"]["alive"] == 3
        assert len(stats["fleet"]["per_worker"]) == 3
        assert stats["counters"]["requests_total"]["compress|ok"] >= 3
        # merged histograms keep sum/count consistency
        batch = stats["histograms"]["batch_size"]
        assert batch["count"] >= 3
        assert batch["buckets"]["le_inf"] == batch["count"]


def test_fleet_affinity_pins_grammar_traffic(fleet, artifacts):
    """All compress traffic for one grammar lands on one worker (its
    caches stay hot); the pinned worker's job count grows while the
    others' stay flat."""
    with fleet.client() as client:
        def compress_jobs_by_worker():
            per = client.stats()["fleet"]["per_worker"]
            return {k: v["requests_total"] for k, v in per.items()}

        before = compress_jobs_by_worker()
        for _ in range(4):
            client.compress(artifacts["app_bytes"], "prod")
        after = compress_jobs_by_worker()
        grew = [k for k in after
                if after[k] - before.get(k, 0) >= 4]
        assert len(grew) == 1, (before, after)


# -- kill / restart -----------------------------------------------------------

def test_killed_worker_respawns_and_answers_identically(fleet,
                                                        artifacts):
    oracle = save_compressed_local(artifacts, "rcx1")
    base = fleet.pool.restarts_total
    killed = fleet.pool.kill(0)
    assert killed is not None
    fleet.wait_restarted(base + 1)
    handle = fleet.pool.workers[0]
    assert handle.up and handle.pid != killed
    assert handle.generation >= 1
    with fleet.retry_client() as client:
        assert client.compress(artifacts["app_bytes"], "prod") == oracle


def test_worker_lost_surfaces_as_retryable(fleet, artifacts):
    """With every worker down, an un-retried call gets a structured,
    retryable worker_lost — and a retrying client rides through the
    respawn."""
    oracle = save_compressed_local(artifacts, "rcx1")
    base = fleet.pool.restarts_total
    killed = [fleet.pool.kill(i) for i in range(fleet.pool.size)]
    assert all(pid is not None for pid in killed)
    # immediately: either worker_lost (slot observed down / conn died)
    # or a success if the kill raced a respawn — both must be clean
    try:
        with fleet.client(timeout=5.0) as client:
            result = client.compress(artifacts["app_bytes"], "prod")
            assert result == oracle
    except ServiceError as exc:
        assert exc.retryable, exc.code
    fleet.wait_restarted(base + fleet.pool.size)
    with fleet.retry_client() as client:
        assert client.compress(artifacts["app_bytes"], "prod") == oracle


def test_retry_policy_rides_rolling_restart(fleet, artifacts):
    """Clients with RetryPolicy keep getting exact answers while every
    worker is gracefully restarted, one at a time."""
    oracle = save_compressed_local(artifacts, "rcx1")
    stop = threading.Event()
    failures = []

    def hammer():
        with fleet.retry_client() as client:
            while not stop.is_set():
                try:
                    if client.compress(artifacts["app_bytes"],
                                       "prod") != oracle:
                        failures.append("payload mismatch")
                except ServiceError as exc:
                    failures.append(f"unabsorbed error: {exc.code}")

    threads = [threading.Thread(target=hammer) for _ in range(2)]
    for t in threads:
        t.start()
    try:
        for index in range(fleet.pool.size):
            fleet.run(fleet.dispatcher.pool.restart(index), timeout=30)
    finally:
        stop.set()
        for t in threads:
            t.join(15)
    assert not failures, failures[:5]
    assert fleet.pool.alive() == fleet.pool.size


# -- drain semantics ----------------------------------------------------------

def test_fleet_drain_rejects_uniformly(tmp_path_factory, artifacts):
    """Regression for the mid-drain race: every connect during a fleet
    drain gets the *same* retryable shutting_down error, no matter
    which worker the request would have routed to — never a reset, and
    never a mix of errors across workers."""
    h = FleetHarness(tmp_path_factory.mktemp("drain"), workers=3)
    try:
        with h.client() as client:
            client.put_grammar(artifacts["grammar_bytes"], tags=["prod"])
        h.dispatcher._draining = True  # freeze the drain window open
        codes = []

        def attempt(_):
            try:
                with h.client(timeout=5.0) as client:
                    client.compress(artifacts["app_bytes"], "prod")
                    return "ok"
            except ServiceError as exc:
                codes.append(exc.code)
                return exc.code

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(attempt, range(16)))
        assert results == ["shutting_down"] * 16, results
        assert all(code == "shutting_down" for code in codes)
        # and the error is retryable by contract, so RetryPolicy would
        # ride a real (finite) drain + restart
        assert ServiceError("shutting_down", "").retryable
        h.dispatcher._draining = False
        with h.client() as client:  # un-drained fleet still serves
            assert client.health()["status"] == "ok"
    finally:
        h.close()


# -- stats merging (pure unit) ------------------------------------------------

def test_merge_stats_sums_counters_and_recomputes_means():
    a = {
        "uptime_seconds": 10.0,
        "counters": {"requests_total": {"compress|ok": 2},
                     "bytes_in_total": 100},
        "histograms": {"batch_size": {
            "buckets": {"le_1": 1, "le_inf": 2},
            "sum": 3.0, "count": 2, "mean": 1.5}},
        "registry": {"startup_scan": {"clean": True}},
    }
    b = {
        "uptime_seconds": 4.0,
        "counters": {"requests_total": {"compress|ok": 3,
                                        "decompress|ok": 1},
                     "bytes_in_total": 50},
        "histograms": {"batch_size": {
            "buckets": {"le_1": 4, "le_inf": 4},
            "sum": 4.0, "count": 4, "mean": 1.0}},
        "registry": {"startup_scan": {"clean": False}},
    }
    merged = merge_stats([a, b])
    assert merged["uptime_seconds"] == 10.0  # max, not sum
    requests = merged["counters"]["requests_total"]
    assert requests == {"compress|ok": 5, "decompress|ok": 1}
    assert merged["counters"]["bytes_in_total"] == 150
    batch = merged["histograms"]["batch_size"]
    assert batch["buckets"] == {"le_1": 5, "le_inf": 6}
    assert batch["count"] == 6
    assert batch["mean"] == pytest.approx(7.0 / 6)  # recomputed
    # one dirty worker dirties the fleet
    assert merged["registry"]["startup_scan"]["clean"] is False
    assert merge_stats([]) == {}


def test_merge_stats_breaker_state_is_worst_wins():
    """Regression: a zero-request worker polled *first* reports every
    breaker ``closed``; merging by first-worker-wins used to let it mask
    a tripped breaker elsewhere in the fleet."""
    idle = {"engine": {"breakers": {"abc123": "closed"},
                       "fallback": 0}}
    tripped = {"engine": {"breakers": {"abc123": "open"},
                          "fallback": 4}}
    merged = merge_stats([idle, tripped])
    assert merged["engine"]["breakers"]["abc123"] == "open"
    # and order-independent: the severity merge is symmetric
    flipped = merge_stats([tripped, idle])
    assert flipped["engine"]["breakers"]["abc123"] == "open"
    # half_open outranks closed but not open
    probing = {"engine": {"breakers": {"abc123": "half_open"}}}
    assert merge_stats([idle, probing])[
        "engine"]["breakers"]["abc123"] == "half_open"
    assert merge_stats([probing, tripped])[
        "engine"]["breakers"]["abc123"] == "open"


def test_merge_stats_single_worker_is_identity():
    """A one-worker fleet's merged stats equal that worker's snapshot
    (means recomputed to the same values)."""
    snap = {
        "uptime_seconds": 5.0,
        "engine": {"breakers": {"abc123": "half_open"},
                   "isolation": "sandbox", "exec_budget": 100},
        "histograms": {"batch_size": {
            "buckets": {"le_1": 2, "le_inf": 3},
            "sum": 4.0, "count": 3, "mean": 4.0 / 3}},
    }
    assert merge_stats([snap]) == snap


def test_merge_stats_config_values_are_not_summed():
    """Per-worker config mirrors (``exec_budget``) merge by max — a
    3-worker fleet with budget 100 reports 100, not 300."""
    workers = [{"engine": {"exec_budget": 100}} for _ in range(3)]
    assert merge_stats(workers)["engine"]["exec_budget"] == 100
