"""Poison-request quarantine: registry verdicts, intent journal, and
the service's native-crash containment end to end.

The quarantine is keyed by ``poison_key(grammar content key, request
digest)``: a request that crashed or hung the native engine is recorded
durably (a JSON sidecar in the registry's quarantine directory), fails
fast with a non-retryable ``poison_input`` on every later attempt, and
never dirties the registry's integrity verdict — poison records are
deliberate bookkeeping, not corruption.  In-process native runs are
journaled with an *intent* sidecar first, so a worker death mid-run
converts to a poison verdict at the next startup scan.
"""

import hashlib
import json
import subprocess
import sys

import pytest

import repro
from repro import faults
from repro.grammar.serialize import encode_grammar_compact
from repro.interp.native import native_available
from repro.interp.sandbox import request_digest
from repro.minic import compile_source
from repro.registry import GrammarRegistry
from repro.registry.registry import poison_key
from repro.service import RetryPolicy, ServiceError
from repro.storage import load_compressed, save_compressed

from tests.test_service import _Harness, artifacts  # noqa: F401

needs_cc = pytest.mark.skipif(
    not native_available(),
    reason="no C compiler on PATH: native engine unavailable")

KEY_A = "a" * 64
KEY_B = "b" * 64


# -- poison_key ---------------------------------------------------------------

def test_poison_key_is_stable_and_sensitive():
    k = poison_key("g1", "r1")
    assert k == poison_key("g1", "r1")
    assert len(k) == 64 and int(k, 16) >= 0
    assert k != poison_key("g2", "r1")
    assert k != poison_key("g1", "r2")


# -- verdict records ----------------------------------------------------------

def test_record_check_and_list(tmp_path):
    registry = GrammarRegistry(tmp_path / "reg")
    assert registry.check_poison(KEY_A) is None
    rec = registry.record_poison(KEY_A, "crash", content_key="g" * 64,
                                 request_digest="r" * 64,
                                 detail="SIGSEGV in helper")
    assert rec["verdict"] == "crash"
    got = registry.check_poison(KEY_A)
    assert got["key"] == KEY_A
    assert got["detail"] == "SIGSEGV in helper"
    registry.record_poison(KEY_B, "hang")
    listed = registry.poison_list()
    assert [r["key"] for r in listed] == [KEY_A, KEY_B]  # oldest first


def test_record_poison_is_idempotent(tmp_path):
    registry = GrammarRegistry(tmp_path / "reg")
    first = registry.record_poison(KEY_A, "crash", detail="original")
    again = registry.record_poison(KEY_A, "hang", detail="rewritten")
    assert again == first  # the first verdict wins, durably
    assert registry.check_poison(KEY_A)["verdict"] == "crash"


def test_malformed_poison_key_is_rejected(tmp_path):
    from repro.registry import RegistryError
    registry = GrammarRegistry(tmp_path / "reg")
    for bad in ("", "short", "../escape", "Z" * 64):
        with pytest.raises(RegistryError):
            registry.record_poison(bad, "crash")


def test_poison_records_do_not_dirty_verify(tmp_path):
    """Verdicts are deliberate records: ``verify`` reports them but a
    quarantined request never makes the registry 'corrupt'."""
    registry = GrammarRegistry(tmp_path / "reg")
    registry.record_poison(KEY_A, "crash")
    report = registry.verify()
    assert report["clean"]
    assert report["poison"] == 1


# -- the intent journal -------------------------------------------------------

def _dead_pid():
    """A real, certainly-dead pid (a subprocess we already reaped)."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def test_intent_cleared_on_survival(tmp_path):
    registry = GrammarRegistry(tmp_path / "reg")
    registry.record_native_intent(KEY_A, content_key="g" * 64,
                                  request_digest="r" * 64)
    registry.clear_native_intent(KEY_A)
    assert registry.scan_native_intents() == []
    assert registry.check_poison(KEY_A) is None


def test_live_owner_intent_is_left_alone(tmp_path):
    """An intent whose pid is alive is a run in progress, not a death:
    the scan must not convert it."""
    registry = GrammarRegistry(tmp_path / "reg")
    registry.record_native_intent(KEY_A)  # recorded under *our* pid
    assert registry.scan_native_intents() == []
    assert registry.check_poison(KEY_A) is None
    assert registry._intent_path(KEY_A).exists()
    registry.clear_native_intent(KEY_A)


def test_dead_owner_intent_converts_to_poison(tmp_path):
    registry = GrammarRegistry(tmp_path / "reg")
    registry.record_native_intent(KEY_A, content_key="g" * 64,
                                  request_digest="r" * 64)
    path = registry._intent_path(KEY_A)
    intent = json.loads(path.read_text())
    intent["pid"] = _dead_pid()
    path.write_text(json.dumps(intent))
    converted = registry.scan_native_intents()
    assert [r["key"] for r in converted] == [KEY_A]
    verdict = registry.check_poison(KEY_A)
    assert verdict["verdict"] == "crash"
    assert verdict["content_key"] == "g" * 64
    assert "died mid-run" in verdict["detail"] \
        or "never returned" in verdict["detail"]
    assert not path.exists()
    # idempotent: a second scan finds nothing left to convert
    assert registry.scan_native_intents() == []


def test_startup_scan_reports_conversions(tmp_path):
    registry = GrammarRegistry(tmp_path / "reg")
    registry.record_native_intent(KEY_A)
    path = registry._intent_path(KEY_A)
    intent = json.loads(path.read_text())
    intent["pid"] = _dead_pid()
    path.write_text(json.dumps(intent))
    report = registry.startup_scan()
    assert report["poison_converted"] == 1
    assert report["clean"]


def test_malformed_intent_is_swept_not_fatal(tmp_path):
    registry = GrammarRegistry(tmp_path / "reg")
    path = registry.quarantine_dir / (KEY_A + ".intent.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{not json")
    assert registry.scan_native_intents() == []
    assert not path.exists()


# -- the service: quarantine end to end ---------------------------------------

def _native_keys(harness, rcx, args=(), input_data=b""):
    program = load_compressed(rcx)
    gkey = hashlib.sha256(
        encode_grammar_compact(program.grammar)).hexdigest()
    rdigest = request_digest(rcx, list(args), input_data)
    return gkey, rdigest, poison_key(gkey, rdigest)


def _run_native_params(rcx, budget=None):
    params = {"module": rcx, "args": [], "engine": "native"}
    if budget is not None:
        params["budget"] = budget
    return params


@pytest.fixture()
def served(tmp_path, artifacts):  # noqa: F811
    h = _Harness(tmp_path, batch_window=0.01)
    try:
        with h.client() as client:
            client.put_grammar(artifacts["grammar_bytes"], tags=["prod"])
            rcx = client.compress(artifacts["app_bytes"], "prod")
        yield h, rcx
    finally:
        h.close()


def test_known_poison_fails_fast_before_any_engine(served):
    """The fast-fail path needs no compiler: a recorded verdict answers
    before the native engine (or its build) is ever consulted."""
    h, rcx = served
    _, rdigest, pkey = _native_keys(h, rcx)
    h.service.registry.record_poison(pkey, "crash",
                                     detail="seeded by test")
    with h.client() as client:
        with pytest.raises(ServiceError) as exc:
            client.call("run_compressed", _run_native_params(rcx))
    assert exc.value.code == "poison_input"
    assert not exc.value.retryable
    assert rdigest[:12] in str(exc.value)
    stats = h.service.metrics.engine_events
    assert stats.value("poison_fastfail") == 1


def test_poison_is_per_request_not_per_grammar(served):
    """Quarantining one request must not take out the grammar: the same
    container with different args is a different digest and still runs
    (or degrades) normally."""
    h, rcx = served
    _, _, pkey = _native_keys(h, rcx)
    h.service.registry.record_poison(pkey, "crash")
    with h.client() as client:
        # different args -> different request digest -> not quarantined
        result = client.call("run_compressed",
                             {"module": rcx, "args": [1],
                              "engine": "compiled"})
        assert "code" in result


def test_budget_param_validation(served):
    h, rcx = served
    with h.client() as client:
        for bad in (-1, "10", 1.5, True):
            with pytest.raises(ServiceError) as exc:
                client.call("run_compressed",
                            {"module": rcx, "args": [],
                             "budget": bad})
            assert exc.value.code == "bad_request"


def test_tiny_budget_traps_structurally(served):
    h, rcx = served
    with h.client() as client:
        with pytest.raises(ServiceError) as exc:
            client.call("run_compressed",
                        {"module": rcx, "args": [], "budget": 1})
        assert exc.value.code == "trap"
        assert "execution budget exceeded: 1 dispatches" in str(exc.value)
        # generous budget: same answer as unlimited
        ok = client.call("run_compressed",
                         {"module": rcx, "args": [],
                          "budget": 50_000_000})
        free = client.call("run_compressed",
                           {"module": rcx, "args": []})
        assert ok == free


def test_server_budget_caps_and_request_tightens(tmp_path, artifacts):  # noqa: F811
    h = _Harness(tmp_path, batch_window=0.01, exec_budget=2)
    try:
        with h.client() as client:
            client.put_grammar(artifacts["grammar_bytes"], tags=["prod"])
            rcx = client.compress(artifacts["app_bytes"], "prod")
            # the server-wide cap applies with no request param
            with pytest.raises(ServiceError) as exc:
                client.call("run_compressed", {"module": rcx, "args": []})
            assert "budget exceeded: 2 dispatches" in str(exc.value)
            # a request can tighten the cap...
            with pytest.raises(ServiceError) as exc:
                client.call("run_compressed",
                            {"module": rcx, "args": [], "budget": 1})
            assert "budget exceeded: 1 dispatches" in str(exc.value)
            # ...but never loosen it
            with pytest.raises(ServiceError) as exc:
                client.call("run_compressed",
                            {"module": rcx, "args": [],
                             "budget": 50_000_000})
            assert "budget exceeded: 2 dispatches" in str(exc.value)
            assert h.service.exec_budget == 2
            assert client.stats()["engine"]["exec_budget"] == 2
    finally:
        h.close()


@needs_cc
def test_native_crash_quarantines_and_server_survives(served):
    """The tentpole, single-process: an injected SIGSEGV inside the
    sandbox helper becomes ``poison_input`` (not a dead server), the
    verdict is durable, the repeat fails fast, and healthy requests on
    the same grammar still answer byte-identically."""
    h, rcx = served
    gkey, rdigest, pkey = _native_keys(h, rcx)
    plan = faults.FaultPlan(
        seed=5, sites={"native.crash": {"p": 1.0, "times": 1}})
    with h.client() as client:
        oracle = client.call("run_compressed",
                             {"module": rcx, "args": []})
        with faults.injected(plan):
            with pytest.raises(ServiceError) as exc:
                client.call("run_compressed", _run_native_params(rcx))
        assert exc.value.code == "poison_input"
        assert "SIGSEGV" in str(exc.value)
        # durable verdict, carrying the full identity
        verdict = h.service.registry.check_poison(pkey)
        assert verdict["verdict"] == "crash"
        assert verdict["content_key"] == gkey
        assert verdict["request_digest"] == rdigest
        # the repeat fails fast (no second crash: the plane is gone)
        with pytest.raises(ServiceError) as exc:
            client.call("run_compressed", _run_native_params(rcx))
        assert exc.value.code == "poison_input"
        # the server survived; healthy traffic is exact
        assert client.call("run_compressed",
                           {"module": rcx, "args": []}) == oracle
        engine = client.stats()["engine"]
        assert engine["native_crash"] == 1
        assert engine["poison_fastfail"] == 1
        assert engine["isolation"] == "sandbox"
        assert pkey[:12] in engine["poisoned"]
        assert engine["sandbox"]["crashes"] == 1
    # and the registry still verifies clean
    report = h.service.registry.verify()
    assert report["clean"]
    assert report["poison"] == 1


@needs_cc
def test_native_hang_quarantines_via_watchdog(tmp_path, artifacts):  # noqa: F811
    h = _Harness(tmp_path, batch_window=0.01, native_watchdog=1.5,
                 request_timeout=60.0)
    try:
        with h.client(timeout=60.0) as client:
            client.put_grammar(artifacts["grammar_bytes"], tags=["prod"])
            rcx = client.compress(artifacts["app_bytes"], "prod")
            # warm the sandbox so the hang is not a compile in progress
            client.call("run_compressed", _run_native_params(rcx))
            plan = faults.FaultPlan(
                seed=6, sites={"native.hang": {"p": 1.0, "times": 1,
                                               "arg": 30.0}})
            with faults.injected(plan):
                with pytest.raises(ServiceError) as exc:
                    client.call("run_compressed",
                                _run_native_params(rcx))
            assert exc.value.code == "poison_input"
            assert "watchdog" in str(exc.value)
            engine = client.stats()["engine"]
            assert engine["native_hang"] == 1
            assert engine["sandbox"]["hangs"] == 1
            # recovered: the same grammar still runs natively
            result = client.call("run_compressed",
                                 {"module": rcx, "args": [2],
                                  "engine": "native"})
            assert "code" in result
    finally:
        h.close()


@needs_cc
def test_inproc_isolation_happy_path_leaves_no_intents(tmp_path, artifacts):  # noqa: F811
    h = _Harness(tmp_path, batch_window=0.01, native_isolation="inproc")
    try:
        with h.client() as client:
            client.put_grammar(artifacts["grammar_bytes"], tags=["prod"])
            rcx = client.compress(artifacts["app_bytes"], "prod")
            native = client.call("run_compressed",
                                 _run_native_params(rcx))
            compiled = client.call("run_compressed",
                                   {"module": rcx, "args": []})
            assert native["code"] == compiled["code"]
            assert native.get("output") == compiled.get("output")
            assert client.stats()["engine"]["isolation"] == "inproc"
        registry = h.service.registry
        assert list(registry.quarantine_dir.glob("*.intent.json")) == []
        assert registry.poison_list() == []
    finally:
        h.close()


def test_bad_isolation_value_is_rejected(tmp_path):
    from repro.service import CompressionService
    with pytest.raises(ValueError):
        CompressionService(GrammarRegistry(tmp_path / "reg"),
                           native_isolation="yolo")
