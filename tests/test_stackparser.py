"""Tests for the deterministic stack parser (training-phase parse)."""

import pytest

from repro.bytecode import assemble
from repro.bytecode.instructions import encode, instr
from repro.bytecode.opcodes import opcode
from repro.grammar.initial import initial_grammar, typed_grammar
from repro.parsing.forest import preorder, terminal_yield, tree_size
from repro.parsing.stackparser import (
    ParseError,
    build_forest,
    parse_blocks,
    parse_module,
)

CHECK_ASM = """
.global exit lib
.proc check framesize=0 trampoline
    ADDRFP 0 0
    INDIRU
    LIT1 0
    NEU
    BrTrue @done
    LIT1 0
    ARGU
    ADDRGP $exit
    CALLU
    POPU
done:
    RETV
.endproc
"""


@pytest.fixture(scope="module")
def grammar():
    return initial_grammar()


def _code(*instrs):
    return encode([instr(*i) for i in instrs])


def test_single_statement(grammar):
    code = _code(("LIT1", 7), ("ARGU",))
    blocks = parse_blocks(grammar, code)
    assert len(blocks) == 1
    tree = blocks[0].tree
    # start -> start x; start -> eps; x -> v x1; v -> v0; v0 -> LIT1 b;
    # x1 -> ARGU; byte -> 7  ==> 7 rules
    assert tree_size(tree) == 7


def test_yield_reconstructs_code(grammar):
    code = _code(
        ("ADDRLP", 0, 0), ("ADDRLP", 4, 0), ("INDIRU",), ("LIT1", 1),
        ("ADDU",), ("ASGNU",), ("RETV",),
    )
    blocks = parse_blocks(grammar, code)
    symbols = terminal_yield(blocks[0].tree, grammar)
    # Terminal symbols: opcodes as codes, literal bytes as 256+value.
    expected = [
        opcode("ADDRLP"), 256 + 0, 256 + 0,
        opcode("ADDRLP"), 256 + 4, 256 + 0,
        opcode("INDIRU"), opcode("LIT1"), 256 + 1,
        opcode("ADDU"), opcode("ASGNU"), opcode("RETV"),
    ]
    assert symbols == expected


def test_paper_example_splits_into_two_blocks(grammar):
    module = assemble(CHECK_ASM)
    blocks = parse_blocks(grammar, module.procedures[0].code)
    # Section 4.1: "the sequence is actually parsed into two separate
    # derivations, one for the code prior to the LABELV and one after".
    assert len(blocks) == 2
    # The paper's derivation lengths: 26 rules for the first block,
    # 2 for { RETV }... first: count our rules.
    assert tree_size(blocks[1].tree) == 4  # start->start x, start->eps,
    #                                        x->x0, x0->RETV


def test_block_start_offsets(grammar):
    module = assemble(CHECK_ASM)
    proc = module.procedures[0]
    blocks = parse_blocks(grammar, proc.code)
    assert blocks[0].start == 0
    # Second block starts just past the LABELV byte.
    assert blocks[1].start == proc.labels[0] + 1


def test_empty_blocks(grammar):
    labelv = bytes([opcode("LABELV")])
    code = labelv + labelv + _code(("RETV",))
    blocks = parse_blocks(grammar, code)
    assert len(blocks) == 3
    assert tree_size(blocks[0].tree) == 1  # just start -> eps
    assert tree_size(blocks[1].tree) == 1


def test_parse_error_on_underflow(grammar):
    with pytest.raises(ParseError, match="needs"):
        parse_blocks(grammar, _code(("ADDU",), ("POPU",)))


def test_parse_error_on_unconsumed_value(grammar):
    with pytest.raises(ParseError, match="unconsumed"):
        parse_blocks(grammar, _code(("LIT1", 3)))


def test_parent_links_consistent(grammar):
    module = assemble(CHECK_ASM)
    blocks = parse_blocks(grammar, module.procedures[0].code)
    for block in blocks:
        for node in preorder(block.tree):
            for i, child in enumerate(node.children):
                assert child.parent is node
                assert child.pindex == i


def test_children_match_rule_arity(grammar):
    module = assemble(CHECK_ASM)
    for block in parse_blocks(grammar, module.procedures[0].code):
        for node in preorder(block.tree):
            rule = grammar.rules[node.rule_id]
            assert len(node.children) == rule.arity


def test_build_forest_counts(grammar):
    module = assemble(CHECK_ASM)
    forest = build_forest(grammar, [module])
    assert len(forest) == 2
    assert forest.size() == sum(tree_size(b) for b in forest.blocks)


def test_parse_module_parallel_to_procedures(grammar):
    module = assemble(CHECK_ASM)
    per_proc = parse_module(grammar, module)
    assert len(per_proc) == len(module.procedures)


def test_typed_grammar_parses_same_code():
    tg = typed_grammar()
    module = assemble(CHECK_ASM)
    blocks = parse_blocks(tg, module.procedures[0].code)
    assert len(blocks) == 2
    symbols = terminal_yield(blocks[0].tree, tg)
    assert symbols[0] == opcode("ADDRFP")


def test_typed_grammar_float_statement():
    tg = typed_grammar()
    # push addr; push addr; INDIRF; NEGF; ASGNF
    code = _code(("ADDRLP", 0, 0), ("ADDRLP", 4, 0), ("INDIRF",),
                 ("NEGF",), ("ASGNF",))
    blocks = parse_blocks(tg, code)
    assert len(blocks) == 1
    assert terminal_yield(blocks[0].tree, tg)[-1] == opcode("ASGNF")


def test_height_grammar_parses_and_preserves_yield():
    from repro.grammar.initial import height_grammar

    hg = height_grammar(max_depth=2)
    module = assemble(CHECK_ASM)
    blocks = parse_blocks(hg, module.procedures[0].code)
    assert len(blocks) == 2
    code = module.procedures[0].code
    rebuilt = bytes([opcode("LABELV")]).join(
        bytes(s - 256 if s >= 256 else s
              for s in terminal_yield(b.tree, hg))
        for b in blocks
    )
    assert rebuilt == code


def test_height_grammar_depth_collapse():
    """Expressions deeper than max_depth still parse (collapse to hK)."""
    from repro.grammar.initial import height_grammar

    hg = height_grammar(max_depth=1)
    # ((((1+2)+3)+4)+5) nests values 5 deep on the stack.
    code = _code(
        ("LIT1", 1), ("LIT1", 2), ("LIT1", 3), ("LIT1", 4), ("LIT1", 5),
        ("ADDU",), ("ADDU",), ("ADDU",), ("ADDU",), ("ARGU",),
    )
    blocks = parse_blocks(hg, code)
    assert len(blocks) == 1
    symbols = terminal_yield(blocks[0].tree, hg)
    assert symbols[0] == opcode("LIT1")


def test_height_grammar_end_to_end_compression():
    from repro.grammar.initial import height_grammar
    from repro import compress_module, decompress_module, train_grammar

    module = assemble(CHECK_ASM)
    grammar, _ = train_grammar([module], grammar=height_grammar())
    cmod = compress_module(grammar, module)
    back = decompress_module(cmod)
    assert back.procedures[0].code == module.procedures[0].code
