"""The trainer-strategy seam (ISSUE 10).

The greedy edge-contraction loop moved behind
:class:`repro.training.TrainerStrategy` under a bit-identical contract,
gated here by a frozen oracle (:mod:`repro.training.oracle`) across a
50-seed golden sweep: same rules (ids, bodies, origins, fragments) and
same report numbers as the pre-refactor loop.  The new MR-RePair seeding
strategies (``repair``, ``hybrid``) are held to the same differential
bar as every other trainer: grammars that ``check()``, byte-identical
compress/decompress round trips, engine agreement (compiled, reference,
and — where a C compiler exists — native), and incremental-vs-naive
edge-index equality through the refine phase.

Seeds 400-449: disjoint from test_differential (100-149),
test_exec_equivalence (200-249), and test_program_equivalence (300-349).
"""

import pytest

from repro import compress_module, train_grammar
from repro.compress.decompress import decompress_module
from repro.corpus.synth import generate_program
from repro.grammar.initial import initial_grammar
from repro.interp.compiled import CompiledEngine
from repro.interp.interp1 import Interpreter1
from repro.interp.interp2 import Interpreter2
from repro.interp.runtime import Machine
from repro.minic import compile_source
from repro.parsing.stackparser import build_forest
from repro.storage import save_module
from repro.training import (
    STRATEGIES,
    GreedyStrategy,
    HybridStrategy,
    RepairStrategy,
    TrainerStrategy,
    resolve_strategy,
)
from repro.training.edges import EdgeIndex
from repro.training.oracle import oracle_expand_grammar

GOLDEN_SEEDS = list(range(400, 450))
STRATEGY_NAMES = ("greedy", "repair", "hybrid")


def _signature(grammar):
    """Everything observable about a trained grammar: rule identity,
    order (= codewords), bodies, provenance fragments."""
    return [
        (nt, [(r.id, r.rhs, r.origin, r.fragment)
              for r in grammar.rules_for(nt)])
        for nt in grammar.nonterminals
    ]


def _corpus(seed, size=4, n=2):
    return [compile_source(generate_program(size, seed=seed + 1000 * k))
            for k in range(n)]


# -- tentpole gate: the greedy port is bit-identical to the frozen oracle


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
def test_greedy_strategy_matches_oracle(seed):
    corpus = _corpus(seed, size=3, n=1)

    live = initial_grammar()
    live_forest = build_forest(live, corpus)
    report = GreedyStrategy().train(live, live_forest)

    frozen = initial_grammar()
    frozen_forest = build_forest(frozen, corpus)
    oracle = oracle_expand_grammar(frozen, frozen_forest)

    assert _signature(live) == _signature(frozen), \
        f"seed {seed}: greedy refactor diverged from frozen oracle"
    assert (report.iterations, report.rules_added, report.contractions,
            report.rules_removed, report.initial_size,
            report.final_size) == \
        (oracle.iterations, oracle.rules_added, oracle.contractions,
         oracle.rules_removed, oracle.initial_size, oracle.final_size), \
        f"seed {seed}: report numbers diverged from frozen oracle"
    assert report.strategy == "greedy"


def test_greedy_strategy_matches_oracle_under_knobs():
    """The knob surface (min_count, caps, no-subsumption, iteration
    limits) must pass through the seam unchanged."""
    corpus = _corpus(405)
    for kwargs in (
        {"min_count": 3},
        {"remove_subsumed": False},
        {"max_iterations": 7},
    ):
        live = initial_grammar(max_rules_per_nt=32)
        lf = build_forest(live, corpus)
        GreedyStrategy().train(live, lf, **kwargs)
        frozen = initial_grammar(max_rules_per_nt=32)
        ff = build_forest(frozen, corpus)
        oracle_expand_grammar(frozen, ff, **kwargs)
        assert _signature(live) == _signature(frozen), kwargs


# -- differential sweep: every strategy's grammar behaves ---------------------


@pytest.fixture(scope="module", params=STRATEGY_NAMES)
def strategy_grammar(request):
    corpus = [compile_source(generate_program(8, seed=s))
              for s in (411, 412)]
    grammar, report = train_grammar(corpus, strategy=request.param)
    grammar.check()
    return request.param, grammar, report


def _observe(program, executor):
    machine = Machine(program, executor)
    code = machine.run()
    return code, bytes(machine.output), machine.instret


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
def test_strategy_round_trip_and_engines(seed, strategy_grammar):
    name, grammar, _ = strategy_grammar
    module = compile_source(generate_program(4, seed=seed))

    cmod = compress_module(grammar, module)
    assert save_module(decompress_module(cmod)) == save_module(module), \
        f"{name}, seed {seed}: decompression round trip broke"

    baseline = _observe(module, Interpreter1(module))
    assert _observe(cmod, CompiledEngine(cmod)) == baseline, \
        f"{name}, seed {seed}: compiled engine diverged"
    assert _observe(cmod, Interpreter2(cmod)) == baseline, \
        f"{name}, seed {seed}: reference engine diverged"


def test_strategy_report_provenance(strategy_grammar):
    name, _, report = strategy_grammar
    assert report.strategy == name
    assert report.final_size == report.initial_size - report.contractions
    if name == "greedy":
        assert report.strategy_params == {}
        assert report.seed_rules == 0 and report.seed_rounds == 0
    else:
        assert report.strategy_params["max_rounds"] == 8
        assert report.strategy_params["max_rule_symbols"] == 64
        assert report.seed_rules > 0 and report.seed_rounds > 0
        assert report.seed_contractions > 0
        assert report.seed_seconds >= 0.0
    if name == "repair":
        assert report.iterations == 0  # no refine phase
    if name == "hybrid":
        assert report.iterations > 0  # refine ran after seeding


@pytest.mark.parametrize("seed", GOLDEN_SEEDS[::10])
def test_strategy_native_engine(seed, strategy_grammar):
    from repro.interp.native import native_available, run_native
    if not native_available():
        pytest.skip("no C compiler on PATH: native engine unavailable")
    name, grammar, _ = strategy_grammar
    module = compile_source(generate_program(4, seed=seed))
    cmod = compress_module(grammar, module)
    machine = Machine(module, Interpreter1(module))
    code = machine.run()
    assert run_native(cmod) == (code, bytes(machine.output)), \
        f"{name}, seed {seed}: native engine diverged"


# -- the naive-oracle differential (count_edges_naive harness) ----------------


def test_seeded_forest_keeps_edge_index_consistent():
    """After MR-RePair contracts the forest, a fresh incremental index
    must agree with the full naive recount — seeding can't corrupt the
    structure the refine phase counts over."""
    corpus = _corpus(421)
    grammar = initial_grammar()
    forest = build_forest(grammar, corpus)
    seeded = RepairStrategy().seed(grammar, forest)
    assert seeded.rules_added > 0
    EdgeIndex(grammar, forest).verify_against(forest)


@pytest.mark.parametrize("name", ("greedy", "hybrid"))
def test_refine_identical_under_naive_index(name):
    """index_mode="naive" (full recount every iteration) must train the
    exact same grammar through the strategy seam."""
    corpus = _corpus(423)
    fast, fast_report = train_grammar(corpus, strategy=name)
    slow, slow_report = train_grammar(corpus, strategy=name,
                                      index_mode="naive")
    assert _signature(fast) == _signature(slow), \
        f"{name}: naive index diverged from incremental"
    assert fast_report.iterations == slow_report.iterations


# -- resolve_strategy / registration ------------------------------------------


def test_registry_knows_all_strategies():
    assert set(STRATEGY_NAMES) <= set(STRATEGIES)
    for name in STRATEGY_NAMES:
        strat = resolve_strategy(name)
        assert strat.id == name


def test_resolve_strategy_accepts_class_and_instance():
    strat = resolve_strategy(HybridStrategy)
    assert strat.id == "hybrid"
    inst = RepairStrategy(max_rounds=3)
    assert resolve_strategy(inst) is inst


def test_resolve_strategy_params_reach_constructor():
    strat = resolve_strategy("repair", max_rounds=2, budget_frac=0.25)
    assert strat.params() == {"max_rounds": 2, "max_rule_symbols": 64,
                              "budget_frac": 0.25}


def test_resolve_strategy_rejects_unknown_name():
    with pytest.raises(ValueError, match="greedy"):
        resolve_strategy("bogus-trainer")


def test_resolve_strategy_rejects_params_on_instance():
    with pytest.raises(ValueError):
        resolve_strategy(RepairStrategy(), max_rounds=2)


def test_register_strategy_rejects_duplicate_id():
    from repro.training import register_strategy
    with pytest.raises(ValueError):
        @register_strategy
        class Imposter(TrainerStrategy):  # noqa: F811
            id = "greedy"


# -- satellite: per-phase stats surface ---------------------------------------


@pytest.mark.parametrize("name", STRATEGY_NAMES)
def test_stats_summary_reports_phases(name):
    corpus = _corpus(431, size=3, n=1)
    _, stats = train_grammar(corpus, strategy=name, collect_stats=True)
    lines = stats.summary_lines()
    text = "\n".join(lines)
    assert f"trainer: {name}" in lines[0]
    assert "parse" in lines[0]
    if name in ("repair", "hybrid"):
        assert "seed:" in text, text
        assert f"{stats.seed_rounds} round(s)" in text
        assert stats.seed_round_seconds  # per-round timings captured
        assert len(stats.seed_round_seconds) == stats.seed_rounds
    else:
        assert "seed:" not in text
    if name in ("greedy", "hybrid"):
        assert "refine:" in text, text
        assert stats.refine_seconds > 0.0
    assert stats.seed_seconds >= 0.0
