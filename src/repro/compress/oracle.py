"""Frozen pre-refactor compression paths (the golden oracle).

When every grammar consumer moved onto the precompiled
:class:`~repro.core.program.GrammarProgram`, the claim was *bit-identical
behaviour*: same compressed bytes, same decompressed modules, same
executed-operator counts.  This module freezes the replaced
implementations verbatim — the allocation-heavy recursive fragment
matcher, the ``list.index``-per-step tree encoder, and the unpruned
cost-annotated Earley parser — so that claim stays checkable forever:

* ``tests/test_program_equivalence.py`` sweeps 50 fuzz seeds asserting
  byte equality against :func:`oracle_compress_module`;
* ``benchmarks/test_compress_speed.py`` gates the refactor's speedup
  against these same paths.

Nothing here is reachable from production code; do not "optimize" it —
its value is that it never changes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..bytecode.module import Module, Procedure
from ..bytecode.opcodes import opcode
from ..grammar.cfg import Grammar, Rule, is_nonterminal
from ..parsing.derivation import DerivationError
from ..parsing.earley import EarleyError
from ..parsing.forest import Node, preorder, terminal_yield
from ..parsing.stackparser import parse_blocks
from .container import CompressedModule, CompressedProcedure

__all__ = [
    "OracleTiler",
    "oracle_encode_tree",
    "oracle_shortest_derivation_tree",
    "oracle_compress_module",
]

_LABELV = opcode("LABELV")
_INF = float("inf")


# -- the pre-refactor tiler (verbatim) ---------------------------------------

class OracleTiler:
    """The tiling compressor exactly as it stood before the
    GrammarProgram refactor: per-construction root index, recursive
    fragment matching with per-node ``zip``/``list`` allocation, no
    subtree-size pruning."""

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self._by_root: Dict[int, List[Rule]] = {}
        for rule in grammar:
            root_rid = rule.fragment[0]
            self._by_root.setdefault(root_rid, []).append(rule)

    @staticmethod
    def _match_collect(fragment, node: Node) -> Optional[List[Node]]:
        holes: List[Node] = []
        stack = [(fragment, node)]
        while stack:
            frag, n = stack.pop()
            if frag is None:
                holes.append(n)
                continue
            rid, children = frag
            if n.rule_id != rid:
                return None
            if len(children) != len(n.children):
                return None
            for pair in reversed(list(zip(children, n.children))):
                stack.append(pair)
        return holes

    def tile(self, tree: Node) -> Node:
        cost, choice = self._solve(tree)
        return self._rebuild(tree, choice)

    def _solve(self, tree: Node):
        nodes = list(preorder(tree))
        best_cost: Dict[int, int] = {}
        choice: Dict[int, Tuple[Rule, List[Node]]] = {}
        for node in reversed(nodes):
            candidates = self._by_root.get(node.rule_id)
            if not candidates:
                raise ValueError(
                    f"no rule of the expanded grammar covers original rule "
                    f"{node.rule_id}"
                )
            node_best = None
            node_rule = None
            node_holes = None
            for rule in candidates:
                holes = self._match_collect(rule.fragment, node)
                if holes is None:
                    continue
                cost = 1
                for sub in holes:
                    cost += best_cost[id(sub)]
                if node_best is None or cost < node_best:
                    node_best = cost
                    node_rule = rule
                    node_holes = holes
            if node_best is None:
                raise ValueError(
                    f"no fragment matches at rule {node.rule_id}"
                )
            best_cost[id(node)] = node_best
            choice[id(node)] = (node_rule, node_holes)
        return best_cost[id(tree)], choice

    @staticmethod
    def _rebuild(tree: Node, choice) -> Node:
        rule, holes = choice[id(tree)]
        root = Node(rule.id)
        work: List[Tuple[Node, List[Node], int]] = [(root, holes, 0)]
        while work:
            parent, bindings, i = work[-1]
            if i == len(bindings):
                work.pop()
                continue
            work[-1] = (parent, bindings, i + 1)
            sub_rule, sub_holes = choice[id(bindings[i])]
            child = Node(sub_rule.id)
            parent.children.append(child)
            child.parent = parent
            child.pindex = i
            work.append((child, sub_holes, 0))
        return root


# -- the pre-refactor encoder (verbatim) -------------------------------------

def oracle_encode_tree(grammar: Grammar, root: Node) -> bytes:
    """One byte per derivation step via the linear
    ``Grammar.rule_index`` list scan, as before the codeword table."""
    out = bytearray()
    for node in preorder(root):
        idx = grammar.rule_index(node.rule_id)
        if idx > 255:
            raise DerivationError(
                f"rule index {idx} does not fit in a byte"
            )
        out.append(idx)
    return bytes(out)


# -- the pre-refactor Earley search (verbatim, unpruned) ---------------------

def _oracle_parse_chart(grammar: Grammar, symbols: Sequence[int],
                        start: Optional[int] = None):
    if start is None:
        start = grammar.start
    n = len(symbols)
    rules = grammar.rules
    by_lhs = grammar.by_lhs

    sets: List[Dict] = [{} for _ in range(n + 1)]

    def add(j, key, cost, back, worklist) -> None:
        cur = sets[j].get(key)
        if cur is None or cost < cur[0]:
            sets[j][key] = (cost, back)
            worklist.append(key)

    worklist: List = []
    for rid in by_lhs[start]:
        add(0, (rid, 0, 0), 0, None, worklist)

    for j in range(n + 1):
        if j > 0:
            worklist = list(sets[j].keys())
        while worklist:
            key = worklist.pop()
            entry = sets[j].get(key)
            if entry is None:
                continue
            cost, _ = entry
            rid, dot, origin = key
            rhs = rules[rid].rhs
            if dot < len(rhs):
                sym = rhs[dot]
                if is_nonterminal(sym):
                    for rid2 in by_lhs[sym]:
                        add(j, (rid2, 0, j), 0, None, worklist)
                    for ckey, (ccost, _cb) in list(sets[j].items()):
                        crid, cdot, corigin = ckey
                        if corigin == j and cdot == len(rules[crid].rhs) \
                                and rules[crid].lhs == sym:
                            add(j, (rid, dot + 1, origin),
                                cost + ccost + 1,
                                ("complete", key, ckey, j), worklist)
            else:
                lhs = rules[rid].lhs
                for pkey, (pcost, _pb) in list(sets[origin].items()):
                    prid, pdot, porigin = pkey
                    prhs = rules[prid].rhs
                    if pdot < len(prhs) and prhs[pdot] == lhs:
                        add(j, (prid, pdot + 1, porigin),
                            pcost + cost + 1,
                            ("complete", pkey, key, j), worklist)
        if j < n:
            sym = symbols[j]
            for key, (cost, _) in sets[j].items():
                rid, dot, origin = key
                rhs = rules[rid].rhs
                if dot < len(rhs) and rhs[dot] == sym:
                    nkey = (rid, dot + 1, origin)
                    cur = sets[j + 1].get(nkey)
                    if cur is None or cost < cur[0]:
                        sets[j + 1][nkey] = (cost, ("scan", key))
    return sets


def _oracle_build_tree(grammar: Grammar, sets, key, j: int) -> Node:
    rules = grammar.rules
    frames: List[list] = [[key, j, []]]
    result: Optional[Node] = None
    while frames:
        frame = frames[-1]
        if result is not None:
            frame[2].append(result)
            result = None
        while True:
            key, j = frame[0], frame[1]
            back = sets[j][key][1]
            if back is None:
                rid = key[0]
                children = frame[2][::-1]
                node = Node(rid, children)
                assert len(children) == rules[rid].arity
                frames.pop()
                result = node
                break
            if back[0] == "scan":
                frame[0] = back[1]
                frame[1] = j - 1
            else:
                _, pkey, ckey, cj = back
                frame[0] = pkey
                frame[1] = ckey[2]
                frames.append([ckey, cj, []])
                break
    return result


def oracle_shortest_derivation_tree(grammar: Grammar,
                                    symbols: Sequence[int],
                                    start: Optional[int] = None) -> Node:
    """Unpruned cost-annotated Earley, as before FIRST-set pruning."""
    if start is None:
        start = grammar.start
    sets = _oracle_parse_chart(grammar, symbols, start)
    n = len(symbols)
    best_key = None
    best_cost = _INF
    for key, (cost, _) in sets[n].items():
        rid, dot, origin = key
        rule = grammar.rules[rid]
        if rule.lhs == start and origin == 0 and dot == len(rule.rhs):
            if cost + 1 < best_cost:
                best_cost = cost + 1
                best_key = key
    if best_key is None:
        raise EarleyError(
            f"input of length {n} does not derive from "
            f"<{grammar.nt_name(start)}>"
        )
    return _oracle_build_tree(grammar, sets, best_key, n)


# -- the pre-refactor compressor flow ----------------------------------------

def oracle_compress_procedure(grammar: Grammar, proc: Procedure,
                              engine: str = "tiling",
                              tiler: Optional[OracleTiler] = None
                              ) -> CompressedProcedure:
    """Per-procedure compression over the frozen paths (no derivation
    cache; the cache is output-transparent and orthogonal to the
    refactor)."""
    if tiler is None and engine == "tiling":
        tiler = OracleTiler(grammar)
    blocks = parse_blocks(grammar, proc.code)
    out = bytearray()
    new_offset: Dict[int, int] = {}
    block_starts: List[int] = []
    for block in blocks:
        new_offset[block.start] = len(out)
        block_starts.append(len(out))
        if engine == "tiling":
            expanded = tiler.tile(block.tree)
        else:
            symbols = terminal_yield(block.tree, grammar)
            expanded = oracle_shortest_derivation_tree(grammar, symbols)
        out.extend(oracle_encode_tree(grammar, expanded))
    labels: List[int] = []
    for label_off in proc.labels:
        if label_off >= len(proc.code) or proc.code[label_off] != _LABELV:
            raise ValueError(
                f"{proc.name}: label offset {label_off} does not point "
                f"at a LABELV"
            )
        labels.append(new_offset[label_off + 1])
    return CompressedProcedure(
        name=proc.name,
        code=bytes(out),
        labels=labels,
        framesize=proc.framesize,
        needs_trampoline=proc.needs_trampoline,
        argsize=proc.argsize,
        block_starts=block_starts,
    )


def oracle_compress_module(grammar: Grammar, module: Module,
                           engine: str = "tiling") -> CompressedModule:
    """Whole-module compression over the frozen pre-refactor paths."""
    tiler = OracleTiler(grammar) if engine == "tiling" else None
    cmod = CompressedModule.like(grammar, module)
    for proc in module.procedures:
        cmod.procedures.append(
            oracle_compress_procedure(grammar, proc, engine, tiler))
    return cmod
