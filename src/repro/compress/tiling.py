"""Shortest derivations by exact tree tiling (the production compressor).

Every rule of an expanded grammar carries a *fragment*: the tree of original
rules it was inlined from.  Because the initial grammar is unambiguous on
valid bytecode, any derivation of a block under the expanded grammar
corresponds one-to-one to a *tiling* of the block's (unique) original parse
tree by rule fragments, and the derivation length equals the number of
tiles.  So the paper's "shortest derivation under the ambiguous expanded
grammar" (Section 4.1, found there with a modified Earley parser) is,
equivalently, a minimum tiling — which bottom-up dynamic programming over
the parse tree solves exactly, in time linear in the tree times the local
pattern-match work.  Tests cross-check this against
:func:`repro.parsing.earley.shortest_derivation`.

The per-node pattern-match work runs over the grammar's precompiled
:class:`~repro.core.program.GrammarProgram`: fragments come pre-indexed
by root rule with flat matcher programs (no per-node ``zip``/``list``
allocation) and precomputed sizes.  Two pruning steps keep the result
bit-identical to the pre-refactor tiler (frozen as
``repro.compress.oracle.OracleTiler``): a fragment larger than the
subtree rooted at the node is skipped — it could not have matched, since
a successful match maps fragment nodes injectively into the subtree —
and the one-node fragments of original rules skip matching entirely,
binding the node's children as holes directly (a parse tree node always
carries exactly its rule's arity in children).  Neither prune changes
which candidate wins a tie: candidates are still considered in grammar
iteration order and the first strictly cheaper one is kept.

This is the same shape of DP as BURS-style tree-pattern instruction
selection, which is fitting: the expanded grammar *is* a custom
instruction set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.program import GrammarProgram, match_fragment, program_for
from ..grammar.cfg import Grammar, Rule
from ..parsing.forest import Node, preorder

__all__ = ["Tiler"]


class Tiler:
    """Minimum-tiling compressor for parse trees under an expanded grammar.

    Build one per trained grammar; :meth:`tile` may then be called for every
    block of every program to compress.
    """

    def __init__(self, grammar: Grammar,
                 program: Optional[GrammarProgram] = None) -> None:
        self.grammar = grammar
        self.program = program if program is not None \
            else program_for(grammar)
        # Candidate (rule, size, trivial, matcher) entries indexed by the
        # original rule at their fragment root, grammar iteration order.
        self._by_root = self.program.fragments_by_root

    # -- DP -------------------------------------------------------------------
    def tile(self, tree: Node) -> Node:
        """Return the minimum-derivation parse tree of ``tree``'s yield
        under the expanded grammar (nodes labeled with expanded rules)."""
        cost, choice = self._solve(tree)
        return self._rebuild(tree, choice)

    def tile_cost(self, tree: Node) -> int:
        """Minimum derivation length without building the result tree."""
        cost, _ = self._solve(tree)
        return cost

    def _solve(self, tree: Node) -> Tuple[int, Dict[int, Tuple[Rule, List[Node]]]]:
        nodes = list(preorder(tree))
        best_cost: Dict[int, int] = {}
        subtree_size: Dict[int, int] = {}
        choice: Dict[int, Tuple[Rule, List[Node]]] = {}
        by_root = self._by_root
        # Children precede parents in reversed preorder, so both the
        # subtree sizes and the DP costs are available bottom-up.
        for node in reversed(nodes):
            size = 1
            for child in node.children:
                size += subtree_size[id(child)]
            subtree_size[id(node)] = size
            candidates = by_root.get(node.rule_id)
            if not candidates:
                raise ValueError(
                    f"no rule of the expanded grammar covers original rule "
                    f"{node.rule_id} (was the tree parsed with this "
                    f"grammar's original rules?)"
                )
            node_best = None
            node_rule = None
            node_holes = None
            for rule, frag_size, trivial, matcher in candidates:
                if frag_size > size:
                    continue
                if trivial:
                    holes = node.children
                else:
                    holes = match_fragment(matcher, node)
                    if holes is None:
                        continue
                cost = 1
                for sub in holes:
                    cost += best_cost[id(sub)]
                if node_best is None or cost < node_best:
                    node_best = cost
                    node_rule = rule
                    node_holes = holes
            if node_best is None:
                raise ValueError(
                    f"no fragment matches at rule {node.rule_id}"
                )
            best_cost[id(node)] = node_best
            choice[id(node)] = (node_rule, node_holes)
        return best_cost[id(tree)], choice

    @staticmethod
    def _rebuild(tree: Node,
                 choice: Dict[int, Tuple[Rule, List[Node]]]) -> Node:
        rule, holes = choice[id(tree)]
        root = Node(rule.id)
        work: List[Tuple[Node, List[Node], int]] = [(root, holes, 0)]
        while work:
            parent, bindings, i = work[-1]
            if i == len(bindings):
                work.pop()
                continue
            work[-1] = (parent, bindings, i + 1)
            sub_rule, sub_holes = choice[id(bindings[i])]
            child = Node(sub_rule.id)
            parent.children.append(child)
            child.parent = parent
            child.pindex = i
            work.append((child, sub_holes, 0))
        return root
