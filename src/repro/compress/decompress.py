"""Decompression: derivation bytes back to the original bytecode.

The interpreter never decompresses (that is the point of the paper), but a
decompressor gives an end-to-end correctness check: compress, decompress,
and the original code stream must come back byte for byte.  It also shows
the compressed form is a *complete* representation — nothing about the
original is lost.
"""

from __future__ import annotations

from typing import List

from ..bytecode.module import Module, Procedure
from ..bytecode.opcodes import opcode
from ..grammar.cfg import Grammar, is_byte_terminal, byte_value
from ..parsing.derivation import decode_tree
from ..parsing.forest import terminal_yield
from .container import CompressedModule, CompressedProcedure

__all__ = ["decompress_procedure", "decompress_module", "symbols_to_code"]

_LABELV = opcode("LABELV")


def symbols_to_code(symbols: List[int]) -> bytes:
    """Terminal symbols back to raw code bytes (opcodes and literals)."""
    out = bytearray()
    for sym in symbols:
        out.append(byte_value(sym) if is_byte_terminal(sym) else sym)
    return bytes(out)


def decompress_procedure(grammar: Grammar,
                         cproc: CompressedProcedure) -> Procedure:
    """Rebuild the uncompressed procedure, label table included."""
    pos = 0
    out = bytearray()
    # compressed block start -> uncompressed offset of its opening LABELV
    labelv_at: dict = {}
    first = True
    while pos < len(cproc.code):
        if not first:
            labelv_at[pos] = len(out)
            out.append(_LABELV)
        first = False
        tree, pos = decode_tree(grammar, cproc.code, pos)
        out.extend(symbols_to_code(terminal_yield(tree, grammar)))
    labels = []
    for coff in cproc.labels:
        if coff not in labelv_at:
            raise ValueError(
                f"{cproc.name}: compressed label offset {coff} is not a "
                f"block start"
            )
        labels.append(labelv_at[coff])
    return Procedure(
        name=cproc.name,
        code=bytes(out),
        labels=labels,
        framesize=cproc.framesize,
        needs_trampoline=cproc.needs_trampoline,
        argsize=cproc.argsize,
    )


def decompress_module(cmod: CompressedModule) -> Module:
    """Rebuild a full uncompressed module from a compressed one."""
    module = Module(
        globals=list(cmod.globals),
        data=cmod.data,
        bss_size=cmod.bss_size,
        entry=cmod.entry,
    )
    for cproc in cmod.procedures:
        module.procedures.append(decompress_procedure(cmod.grammar, cproc))
    return module
