"""Decompression: derivation bytes back to the original bytecode.

The interpreter never decompresses (that is the point of the paper), but a
decompressor gives an end-to-end correctness check: compress, decompress,
and the original code stream must come back byte for byte.  It also shows
the compressed form is a *complete* representation — nothing about the
original is lost.

The walk happens over the same flattened rule tables the direct-threaded
engine executes (:class:`~repro.interp.tables.CompiledTables`): each
flattened step carries the byte sequence it stands for — burned operator
and literal bytes, interleaved with copy-from-stream counts — so
decompression is a linear emit loop over an explicit stack, exercising the
exact tables the engine dispatches on.  Malformed input (a codeword with
no rule, a stream that ends mid-derivation) raises a structured
:class:`~repro.parsing.derivation.DerivationError`, never a bare
``IndexError``/``KeyError``.
"""

from __future__ import annotations

from typing import List

from ..bytecode.module import Module, Procedure
from ..bytecode.opcodes import opcode
from ..grammar.cfg import Grammar, is_byte_terminal, byte_value
from ..interp.tables import (
    STEP_CALL,
    STEP_OP1,
    STEP_RUN,
    compiled_tables,
)
from ..parsing.derivation import DerivationError
from .container import CompressedModule, CompressedProcedure

__all__ = ["decompress_procedure", "decompress_module", "symbols_to_code"]

_LABELV = opcode("LABELV")


def symbols_to_code(symbols: List[int]) -> bytes:
    """Terminal symbols back to raw code bytes (opcodes and literals)."""
    out = bytearray()
    for sym in symbols:
        out.append(byte_value(sym) if is_byte_terminal(sym) else sym)
    return bytes(out)


def _emit_block(tables, code: bytes, pos: int, out: bytearray,
                name: str) -> int:
    """Emit one complete ``<start>`` derivation starting at ``pos``,
    returning the position after its last byte.

    Mirrors the engine's dispatch loop — iterative, explicit stack, tail
    dispatches replace in place — but instead of executing each step it
    appends the step's emit bytes (copying streamed literal bytes straight
    from the compressed stream).
    """
    nbytes = len(code)
    steps = tables.rows[tables.start_row][code[pos]]
    pos += 1
    stack: list = []
    i = 0
    n = len(steps)
    while True:
        if i == n:
            if stack:
                steps, i, n = stack.pop()
                continue
            return pos  # derivation complete
        step = steps[i]
        i += 1
        tag = step[0]
        if tag == STEP_RUN:
            for item in step[5]:
                if type(item) is int:  # copy streamed literal bytes
                    end = pos + item
                    if end > nbytes:
                        raise DerivationError(
                            f"{name}: compressed stream ends inside "
                            f"literal bytes at offset {pos}"
                        )
                    out += code[pos:end]
                    pos = end
                else:                  # burned operator/literal bytes
                    out += item
        elif tag == STEP_OP1:
            out += step[4]
        elif tag == STEP_CALL:
            if pos >= nbytes:
                raise DerivationError(
                    f"{name}: compressed stream ends mid-derivation "
                    f"at offset {pos}"
                )
            if i != n:  # not a tail dispatch: save the frame
                stack.append((steps, i, n))
            steps = step[1][code[pos]]
            pos += 1
            i = 0
            n = len(steps)
        else:  # STEP_BAD sentinel: the codeword named no rule
            raise DerivationError(f"{name}: {step[1]}")


def decompress_procedure(grammar: Grammar,
                         cproc: CompressedProcedure) -> Procedure:
    """Rebuild the uncompressed procedure, label table included."""
    tables = compiled_tables(grammar)
    code = cproc.code
    pos = 0
    out = bytearray()
    # compressed block start -> uncompressed offset of its opening LABELV
    labelv_at: dict = {}
    first = True
    while pos < len(code):
        if not first:
            labelv_at[pos] = len(out)
            out.append(_LABELV)
        first = False
        pos = _emit_block(tables, code, pos, out, cproc.name)
    labels = []
    for coff in cproc.labels:
        if coff not in labelv_at:
            raise ValueError(
                f"{cproc.name}: compressed label offset {coff} is not a "
                f"block start"
            )
        labels.append(labelv_at[coff])
    return Procedure(
        name=cproc.name,
        code=bytes(out),
        labels=labels,
        framesize=cproc.framesize,
        needs_trampoline=cproc.needs_trampoline,
        argsize=cproc.argsize,
    )


def decompress_module(cmod: CompressedModule) -> Module:
    """Rebuild a full uncompressed module from a compressed one."""
    module = Module(
        globals=list(cmod.globals),
        data=cmod.data,
        bss_size=cmod.bss_size,
        entry=cmod.entry,
    )
    for cproc in cmod.procedures:
        module.procedures.append(decompress_procedure(cmod.grammar, cproc))
    return module
