"""The compressor: shortest derivations, containers, decompression."""

from .tiling import Tiler
from .compressor import Compressor, compress_module, compress_procedure
from .container import CompressedModule, CompressedProcedure
from .decompress import decompress_module, decompress_procedure

__all__ = [
    "Tiler", "Compressor", "compress_module", "compress_procedure",
    "CompressedModule", "CompressedProcedure",
    "decompress_module", "decompress_procedure",
]
