"""The program compressor (paper Sections 2 and 4.1).

For each procedure: parse its code into per-block parse trees (restarting
at every ``LABELV``), find the shortest derivation of each block under the
expanded grammar, emit one byte per derivation step, and rewrite the label
table so every label maps to the compressed offset of its block — the
label *indices* inside the code are untouched (Section 3).

Two derivation-search engines are available:

* ``engine="tiling"`` (default): exact minimum tiling of the original
  parse tree (:class:`repro.compress.tiling.Tiler`) — fast.
* ``engine="earley"``: the paper's modified shortest-derivation Earley
  parser — slow, kept as the reference; both give equal-length
  derivations (tested).
"""

from __future__ import annotations

from typing import Dict, List

from ..bytecode.module import Module, Procedure
from ..bytecode.opcodes import opcode
from ..grammar.cfg import Grammar
from ..parsing.derivation import (
    DerivationCache,
    derivation_of_tree,
    encode_tree,
)
from ..parsing.earley import shortest_derivation_tree
from ..parsing.forest import terminal_yield
from ..parsing.stackparser import parse_blocks
from .container import (
    CONTAINER_FORMATS,
    CompressedModule,
    CompressedProcedure,
)
from .tiling import Tiler

__all__ = ["Compressor", "compress_module", "compress_procedure"]

_LABELV = opcode("LABELV")


class Compressor:
    """Compresses programs against one trained grammar.

    ``cache_size`` bounds the shortest-derivation memo
    (:class:`~repro.parsing.derivation.DerivationCache`): repeated basic
    blocks — identical parse under the original rules, same start
    nonterminal — reuse the previously computed derivation bytes instead
    of re-running the tiling/Earley search.  Pass ``cache_size=0`` to
    disable (every block is derived from scratch; output is identical
    either way, which the property tests check).  Alternatively pass an
    existing :class:`DerivationCache` as ``cache`` to share one memo
    across compressors of the *same* grammar — how the service keeps a
    warm cache across request batches.

    ``format`` names the serialized container this compressor targets:
    ``"rcx1"`` (default, the paper's one-byte-per-step form) or
    ``"rcx2"`` (entropy-coded; requires the grammar to carry a trained
    rule-frequency model).  Compression itself is format-independent —
    a :class:`CompressedModule` *is* the rcx1 in-memory form — the
    format only selects what :meth:`compress_to_bytes` writes.
    """

    def __init__(self, grammar: Grammar, engine: str = "tiling", *,
                 cache_size: int = 4096,
                 cache: "DerivationCache | None" = None,
                 format: str = "rcx1") -> None:
        if engine not in ("tiling", "earley"):
            raise ValueError(f"unknown engine {engine!r}")
        if format not in CONTAINER_FORMATS:
            raise ValueError(f"unknown container format {format!r} "
                             f"(expected one of {CONTAINER_FORMATS})")
        self.grammar = grammar
        self.engine = engine
        self.format = format
        self._tiler = Tiler(grammar) if engine == "tiling" else None
        if cache is not None:
            self.cache = cache
        else:
            self.cache = DerivationCache(cache_size) if cache_size else None

    def compress_to_bytes(self, module: Module) -> bytes:
        """Compress and serialize in this compressor's ``format``."""
        from ..storage import save_compressed  # late: storage sits above
        return save_compressed(self.compress_module(module),
                               format=self.format)

    # -- block level ----------------------------------------------------------
    def compress_block_tree(self, tree) -> bytes:
        """Shortest-derivation bytes for one block's original parse tree."""
        key = None
        if self.cache is not None:
            # A block's shortest derivation depends only on the nonterminal
            # it derives from and its parse under the original rules.
            key = (self.grammar.start, tuple(derivation_of_tree(tree)))
            data = self.cache.get(key)
            if data is not None:
                return data
        if self.engine == "tiling":
            expanded = self._tiler.tile(tree)
        else:
            symbols = terminal_yield(tree, self.grammar)
            expanded = shortest_derivation_tree(self.grammar, symbols)
        data = encode_tree(self.grammar, expanded)
        if key is not None:
            self.cache.put(key, data)
        return data

    def cache_info(self) -> str:
        """Shortest-derivation cache statistics, for reports and the CLI."""
        if self.cache is None:
            return "disabled"
        return self.cache.info()

    def cache_stats(self) -> Dict[str, float]:
        """Cache counters as a dict — what the service's ``stats``
        endpoint exports per grammar."""
        if self.cache is None:
            return {"enabled": False}
        return {
            "enabled": True,
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "hit_rate": self.cache.hit_rate,
            "entries": len(self.cache),
        }

    # -- procedure level ------------------------------------------------------
    def compress_procedure(self, proc: Procedure) -> CompressedProcedure:
        blocks = parse_blocks(self.grammar, proc.code)
        out = bytearray()
        new_offset: Dict[int, int] = {}  # original block start -> compressed
        block_starts: List[int] = []
        for block in blocks:
            new_offset[block.start] = len(out)
            block_starts.append(len(out))
            out.extend(self.compress_block_tree(block.tree))

        labels: List[int] = []
        for label_off in proc.labels:
            if label_off >= len(proc.code) or proc.code[label_off] != _LABELV:
                raise ValueError(
                    f"{proc.name}: label offset {label_off} does not point "
                    f"at a LABELV"
                )
            labels.append(new_offset[label_off + 1])
        return CompressedProcedure(
            name=proc.name,
            code=bytes(out),
            labels=labels,
            framesize=proc.framesize,
            needs_trampoline=proc.needs_trampoline,
            argsize=proc.argsize,
            block_starts=block_starts,
        )

    # -- module level -----------------------------------------------------------
    def compress_module(self, module: Module) -> CompressedModule:
        cmod = CompressedModule.like(self.grammar, module)
        for proc in module.procedures:
            cmod.procedures.append(self.compress_procedure(proc))
        return cmod

    def compressed_size(self, module: Module) -> int:
        """Total compressed code bytes for a module (no container
        overheads)."""
        return sum(
            len(self.compress_procedure(p).code) for p in module.procedures
        )


def compress_procedure(grammar: Grammar, proc: Procedure,
                       engine: str = "tiling") -> CompressedProcedure:
    """One-shot convenience wrapper."""
    return Compressor(grammar, engine).compress_procedure(proc)


def compress_module(grammar: Grammar, module: Module,
                    engine: str = "tiling") -> CompressedModule:
    """One-shot convenience wrapper."""
    return Compressor(grammar, engine).compress_module(module)
