"""Compressed program containers (paper Sections 3 and 6).

A compressed procedure keeps the descriptor structure of the original —
code vector, label table, frame size — but its code vector now holds
derivation bytes and its label table holds offsets *into the compressed
stream* (the compressor rewrites the table; the indices embedded in the
code never change, Section 3).  Globals, data and trampolines are shared
with the original module unchanged.

Two serialized container formats carry a :class:`CompressedModule`
(both in :mod:`repro.storage`):

* **RCX1** — the paper's form: one byte per derivation step, labels as
  byte offsets into the compressed stream.  The interpreters execute
  this form directly.
* **RCX2** — the entropy-coded form (see docs/CODING.md): a versioned
  header (:data:`RCX2_MAGIC`, :data:`RCX2_VERSION`), the grammar *and*
  its :class:`~repro.coding.model.RuleModel`, per-procedure metadata
  with labels as **block indices** (byte offsets are meaningless in an
  entropy-coded stream), one range-coded stream for the whole module, a
  CRC-32 of the decoded RCX1 payload, and the standard CRC-32 file
  trailer.  Loading RCX2 reconstructs the exact RCX1 in-memory form, so
  the engines never know which container a module arrived in.

Structural violations in an RCX2 file — version skew, a model bound to
a different grammar, label/block indices out of range, payload CRC
mismatch — raise :class:`ContainerError`; coder-level corruption raises
:class:`~repro.parsing.derivation.DerivationError` from the coding
layer.  Both are ``ValueError``s, so callers that guard the RCX1 paths
stay correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..bytecode.module import (
    DESCRIPTOR_BYTES,
    GLOBAL_ENTRY_BYTES,
    LABEL_ENTRY_BYTES,
    TRAMPOLINE_BYTES,
    GlobalEntry,
    Module,
)
from ..grammar.cfg import Grammar

__all__ = [
    "CompressedProcedure", "CompressedModule", "ContainerError",
    "CONTAINER_FORMATS", "RCX2_MAGIC", "RCX2_VERSION",
]

#: the serialized container formats a CompressedModule round-trips
#: through (``repro.storage.save_compressed(format=...)``)
CONTAINER_FORMATS = ("rcx1", "rcx2")

RCX2_MAGIC = b"RCX2"
RCX2_VERSION = 1


class ContainerError(ValueError):
    """A structurally invalid RCX2 container: version skew, a model
    bound to a different grammar, out-of-range label/block indices, or
    a decoded-payload CRC mismatch."""


@dataclass
class CompressedProcedure:
    """Descriptor of one procedure in compressed form."""

    name: str
    code: bytes                      # concatenated block derivations
    labels: List[int]                # label index -> compressed offset
    framesize: int
    needs_trampoline: bool = False
    argsize: int = 0
    block_starts: List[int] = field(default_factory=list)

    @property
    def code_bytes(self) -> int:
        return len(self.code)

    @property
    def label_table_bytes(self) -> int:
        return LABEL_ENTRY_BYTES * len(self.labels)


@dataclass
class CompressedModule:
    """A whole program in compressed form, plus the grammar that decodes
    it (the grammar lives in the interpreter; it is counted there, not
    here — see :mod:`repro.interp.sizes`)."""

    grammar: Grammar
    procedures: List[CompressedProcedure] = field(default_factory=list)
    globals: List[GlobalEntry] = field(default_factory=list)
    data: bytes = b""
    bss_size: int = 0
    entry: int = None

    @classmethod
    def like(cls, grammar: Grammar, module: Module) -> "CompressedModule":
        """Container sharing the non-code parts of ``module``."""
        return cls(
            grammar=grammar,
            globals=list(module.globals),
            data=module.data,
            bss_size=module.bss_size,
            entry=module.entry,
        )

    def proc_index(self, name: str) -> int:
        for i, p in enumerate(self.procedures):
            if p.name == name:
                return i
        raise KeyError(name)

    def proc_by_name(self, name: str) -> CompressedProcedure:
        return self.procedures[self.proc_index(name)]

    # -- size accounting ----------------------------------------------------
    @property
    def code_bytes(self) -> int:
        return sum(p.code_bytes for p in self.procedures)

    @property
    def label_table_bytes(self) -> int:
        return sum(p.label_table_bytes for p in self.procedures)

    @property
    def descriptor_bytes(self) -> int:
        return DESCRIPTOR_BYTES * len(self.procedures)

    @property
    def global_table_bytes(self) -> int:
        return GLOBAL_ENTRY_BYTES * len(self.globals)

    @property
    def trampoline_bytes(self) -> int:
        return TRAMPOLINE_BYTES * sum(
            1 for p in self.procedures if p.needs_trampoline
        )

    def size_breakdown(self) -> Dict[str, int]:
        return {
            "bytecode": self.code_bytes,
            "label_tables": self.label_table_bytes,
            "descriptors": self.descriptor_bytes,
            "global_table": self.global_table_bytes,
            "trampolines": self.trampoline_bytes,
            "data": len(self.data),
            "bss": self.bss_size,
        }
