"""Fixed-to-variable baseline: Huffman coding (paper Section 4).

The paper's first strawman: give each instruction a codeword whose length
varies with frequency.  Optimal for the symbol statistics, but the decoder
must consume the stream bit by bit (or pay for big lookup tables), which is
why the paper goes variable-to-FIXED instead.  We implement real canonical
Huffman over the code stream's bytes — encoder, decoder, and table-size
accounting — so benchmark A3 can put an honest number next to the paper's
argument.
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["HuffmanCode", "build_code", "compressed_size"]


@dataclass
class HuffmanCode:
    """A canonical Huffman code over byte symbols."""

    lengths: Dict[int, int]              # symbol -> codeword bits
    codewords: Dict[int, Tuple[int, int]]  # symbol -> (bits, length)

    @property
    def table_bytes(self) -> int:
        """Bytes to ship the code: one length byte per possible symbol
        (canonical codes are reconstructible from lengths alone)."""
        return 256

    def encode(self, data: bytes) -> bytes:
        acc = 0
        nbits = 0
        out = bytearray()
        for byte in data:
            bits, length = self.codewords[byte]
            acc = (acc << length) | bits
            nbits += length
            while nbits >= 8:
                nbits -= 8
                out.append((acc >> nbits) & 0xFF)
        if nbits:
            out.append((acc << (8 - nbits)) & 0xFF)
        return bytes(out)

    def encoded_bits(self, data: bytes) -> int:
        return sum(self.lengths[b] for b in data)

    def decode(self, data: bytes, count: int) -> bytes:
        """Decode ``count`` symbols (bit-serial, as the paper warns)."""
        # Build a prefix map; fine for tests, deliberately naive.
        by_code = {code: sym for sym, code in self.codewords.items()}
        out = bytearray()
        bits = 0
        length = 0
        bit_iter = (
            (byte >> (7 - i)) & 1 for byte in data for i in range(8)
        )
        for bit in bit_iter:
            bits = (bits << 1) | bit
            length += 1
            if (bits, length) in by_code:
                out.append(by_code[(bits, length)])
                bits = 0
                length = 0
                if len(out) == count:
                    break
        if len(out) != count:
            raise ValueError("truncated Huffman stream")
        return bytes(out)


def build_code(data: bytes) -> HuffmanCode:
    """Build a canonical Huffman code from byte frequencies."""
    freq = Counter(data)
    if not freq:
        freq[0] = 1
    if len(freq) == 1:
        only = next(iter(freq))
        lengths = {only: 1}
    else:
        heap: List[Tuple[int, int, tuple]] = []
        for i, (sym, n) in enumerate(sorted(freq.items())):
            heap.append((n, i, ("leaf", sym)))
        heapq.heapify(heap)
        counter = len(heap)
        while len(heap) > 1:
            n1, _, t1 = heapq.heappop(heap)
            n2, _, t2 = heapq.heappop(heap)
            heapq.heappush(heap, (n1 + n2, counter, ("node", t1, t2)))
            counter += 1
        lengths = {}

        stack = [(heap[0][2], 0)]
        while stack:
            tree, depth = stack.pop()
            if tree[0] == "leaf":
                lengths[tree[1]] = max(depth, 1)
            else:
                stack.append((tree[1], depth + 1))
                stack.append((tree[2], depth + 1))

    # Canonical codeword assignment: shortest codes first, then by symbol.
    codewords: Dict[int, Tuple[int, int]] = {}
    code = 0
    prev_len = 0
    for sym in sorted(lengths, key=lambda s: (lengths[s], s)):
        length = lengths[sym]
        code <<= (length - prev_len)
        codewords[sym] = (code, length)
        code += 1
        prev_len = length
    return HuffmanCode(lengths, codewords)


def compressed_size(data: bytes, include_table: bool = True) -> int:
    """Huffman-compressed size in bytes (payload + code table)."""
    code = build_code(data)
    payload = (code.encoded_bits(data) + 7) // 8
    return payload + (code.table_bytes if include_table else 0)
