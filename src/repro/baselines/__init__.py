"""Comparator methods: Huffman, Tunstall, superoperators, gzip."""

from .huffman import HuffmanCode, build_code as build_huffman
from .huffman import compressed_size as huffman_size
from .tunstall import TunstallCode, build_code as build_tunstall
from .tunstall import compressed_size_blocks as tunstall_size_blocks
from .superop import train_superoperators
from .gzipref import gzip_ratio, gzip_size, gzip_size_per_block, split_blocks

__all__ = [
    "HuffmanCode", "build_huffman", "huffman_size",
    "TunstallCode", "build_tunstall", "tunstall_size_blocks",
    "train_superoperators",
    "gzip_ratio", "gzip_size", "gzip_size_per_block", "split_blocks",
]
