"""Superoperator baseline (Proebsting, POPL 1995; paper Section 7).

The closest prior work: assign new bytecodes to frequent patterns *within*
expression trees.  The paper's two claimed advantages over superoperators
are (1) a grammar rule may span several expression trees, and (2) the
generated interpreter has a context (nonterminal) per rule position rather
than one flat opcode space.  We model superoperators in this framework as
profiled grammar rewriting with the cross-tree channel closed: edges whose
parent rule expands ``<start>`` (the statement-sequencing spine) are never
inlined, so no rule can span a statement boundary.  The original
superoperator work also excluded literals from patterns; the follow-up
removed that restriction, so both variants are available.

This makes benchmark A3's comparison sharp: identical trainer, identical
compressor, differing only in the pattern language — exactly the axis the
paper argues about.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..bytecode.module import Module
from ..grammar.cfg import Grammar
from ..grammar.initial import initial_grammar
from ..parsing.stackparser import build_forest
from ..training.edges import EdgeKey
from ..training.expander import TrainingReport, expand_grammar

__all__ = ["train_superoperators"]


def train_superoperators(corpus: Iterable[Module], *,
                         allow_literals: bool = True,
                         max_rules_per_nt: int = 256,
                         min_count: int = 2,
                         max_iterations: Optional[int] = None,
                         ) -> Tuple[Grammar, TrainingReport]:
    """Train a superoperator-style grammar: no cross-statement patterns.

    Args:
        allow_literals: False reproduces the original 1995 restriction
            (patterns may not absorb literal bytes).
    """
    grammar = initial_grammar(max_rules_per_nt=max_rules_per_nt)
    start = grammar.nonterminal("start")
    byte = grammar.nonterminal("byte")
    forest = build_forest(grammar, corpus)
    rules = grammar.rules

    def edge_filter(key: EdgeKey) -> bool:
        parent_id, _slot, child_id = key
        if rules[parent_id].lhs == start:
            return False  # would span expression trees
        if not allow_literals and rules[child_id].lhs == byte:
            return False  # original superoperators had no literals
        return True

    report = expand_grammar(
        grammar, forest,
        min_count=min_count,
        max_iterations=max_iterations,
        edge_filter=edge_filter,
    )
    return grammar, report
