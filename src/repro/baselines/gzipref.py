"""gzip calibration baseline (paper Section 6).

"For calibration and as a very rough bound on what might be achievable
with good, general-purpose data compression, gzip compresses the inputs
above to 31-44% of their original size."  The paper is explicit that the
comparison flatters gzip: DEFLATE neither supports direct interpretation
nor random access, and it freely exploits patterns that span basic blocks.

We use :mod:`zlib` (the same DEFLATE algorithm) at maximum effort, both on
the raw concatenated bytecode (the paper's setting) and — as an extra data
point — per basic block, which shows how much of gzip's advantage comes
from ignoring branch-target addressability.
"""

from __future__ import annotations

import zlib
from typing import List

from ..bytecode.module import Module
from ..bytecode.opcodes import opcode

__all__ = ["gzip_size", "gzip_ratio", "gzip_size_per_block",
           "split_blocks"]

_LABELV = opcode("LABELV")


def gzip_size(module: Module) -> int:
    """DEFLATE-compressed size of the whole bytecode, in bytes."""
    return len(zlib.compress(module.concatenated_code(), 9))


def gzip_ratio(module: Module) -> float:
    """compressed / original (the paper's 31-44% band)."""
    return gzip_size(module) / module.code_bytes


def split_blocks(code: bytes) -> List[bytes]:
    """Split a code stream at LABELV marks (instruction-boundary aware)."""
    from ..bytecode.instructions import iter_decode

    blocks: List[bytes] = []
    start = 0
    for off, ins in iter_decode(code):
        if ins.op.code == _LABELV:
            blocks.append(code[start:off])
            start = off + 1
    blocks.append(code[start:])
    return blocks


def gzip_size_per_block(module: Module) -> int:
    """DEFLATE applied per basic block: what gzip would cost if it had to
    preserve branch-target addressability like the grammar compressor."""
    total = 0
    for proc in module.procedures:
        for block in split_blocks(proc.code):
            total += len(zlib.compress(block, 9))
    return total
