"""Variable-to-fixed baseline: Tunstall coding (paper Section 7).

Tunstall's construction — the inspiration the paper credits — assigns
fixed-length codewords to variable-length strings: starting from the
single-symbol dictionary, repeatedly expand the most probable entry with
every symbol, until ~2**k entries exist.  The dictionary is *uniquely
parsable* (a complete tree), which is exactly what breaks at branch
targets: a target can land mid-entry, so the encoder must flush and
restart, and the paper's plurally-parsable grammar method exists to fix
that.  This implementation restarts at block boundaries the same way the
grammar compressor does, so benchmark A3 compares the two fairly.
"""

from __future__ import annotations

import heapq
import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["TunstallCode", "build_code", "compressed_size_blocks"]


@dataclass
class TunstallCode:
    """A Tunstall dictionary over byte symbols."""

    entries: List[bytes]                # codeword value -> string
    index: Dict[bytes, int]
    prefixes: frozenset                 # proper prefixes of entries
    codeword_bits: int

    def encode_block(self, data: bytes) -> Tuple[int, int]:
        """Encode one block; returns (codewords used, flush count).

        The dictionary tree is complete, so the parse is unique: walk
        until a leaf (an entry).  A block that *ends* mid-walk is coded as
        that prefix ("the last subsequence in the partition may be a
        prefix of a sequence in the dictionary") — that flush at every
        branch target is the cost Section 7 describes.
        """
        used = 0
        flushes = 0
        pos = 0
        n = len(data)
        while pos < n:
            best = 1
            limit = min(self.max_len, n - pos)
            for length in range(limit, 0, -1):
                piece = data[pos:pos + length]
                if piece in self.index:
                    best = length
                    break
                if pos + length == n and piece in self.prefixes:
                    best = length
                    flushes += 1
                    break
            used += 1
            pos += best
        return used, flushes

    @property
    def max_len(self) -> int:
        return max(len(e) for e in self.entries)

    @property
    def table_bytes(self) -> int:
        """Dictionary storage: length byte + payload per entry."""
        return sum(1 + len(e) for e in self.entries)


def build_code(training: Sequence[bytes],
               codeword_bits: int = 8) -> TunstallCode:
    """Build a Tunstall dictionary from training blocks.

    Memoryless source model, as in the original construction: symbol
    probabilities are byte frequencies over the corpus.
    """
    freq = Counter()
    for block in training:
        freq.update(block)
    if not freq:
        freq[0] = 1
    total = sum(freq.values())
    probs = {sym: n / total for sym, n in freq.items()}
    symbols = sorted(probs)

    target = 2 ** codeword_bits
    # The tree's leaves are the dictionary.  Expanding a leaf replaces it
    # with len(symbols) children, so expand while it still fits.
    entries: Dict[bytes, float] = {
        bytes([sym]): probs[sym] for sym in symbols
    }
    heap = [(-p, e) for e, p in entries.items()]
    heapq.heapify(heap)
    # Each expansion nets len(symbols)-1 entries; a degenerate one-symbol
    # source nets zero, so bound entry length instead of looping forever.
    max_entry_len = 255
    while heap and len(entries) + len(symbols) - 1 <= target:
        neg_p, entry = heapq.heappop(heap)
        if entries.get(entry) != -neg_p:
            continue  # stale
        if len(entry) >= max_entry_len:
            break  # most probable entry is at the length bound: stop
        del entries[entry]
        for sym in symbols:
            child = entry + bytes([sym])
            p = -neg_p * probs[sym]
            entries[child] = p
            heapq.heappush(heap, (-p, child))
    ordered = sorted(entries)
    prefixes = set()
    for entry in ordered:
        for k in range(1, len(entry)):
            prefixes.add(entry[:k])
    return TunstallCode(
        entries=ordered,
        index={e: i for i, e in enumerate(ordered)},
        prefixes=frozenset(prefixes),
        codeword_bits=codeword_bits,
    )


def compressed_size_blocks(code: TunstallCode,
                           blocks: Sequence[bytes],
                           include_table: bool = True) -> int:
    """Compressed bytes for a program split into basic blocks.

    Each block restarts the parse (branch targets must stay addressable),
    which is precisely where unique parsability hurts (Section 7).
    """
    codewords = 0
    for block in blocks:
        used, _ = code.encode_block(block)
        codewords += used
    payload_bits = codewords * code.codeword_bits
    payload = math.ceil(payload_bits / 8)
    return payload + (code.table_bytes if include_table else 0)
