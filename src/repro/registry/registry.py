"""Content-addressed grammar store with tags and a deserialization LRU.

On-disk layout (all writes are atomic tmp-file + rename)::

    <root>/
        objects/<sha256>.rgr     the RGR1 bytes, exactly as saved
        meta/<sha256>.json       provenance: corpus fingerprint, training
                                 report numbers, rule counts, timestamps
        tags/<name>              text file holding one full hash

A grammar's identity *is* the SHA-256 of its ``RGR1`` encoding: putting
the same grammar twice is a no-op, and two registries that trained the
same grammar agree on its name.  References are resolved in order: exact
tag, full hash, unique hash prefix (>= 4 hex chars).

Deserialized :class:`~repro.grammar.cfg.Grammar` objects are served from
a bounded LRU guarded by a lock, so concurrent requests against the same
codebook never re-parse it — the service keeps one registry and hits the
cache on every request after the first.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from ..bytecode.module import Module
from ..grammar.cfg import Grammar
from ..grammar.serialize import grammar_bytes
from ..storage import (
    StorageError,
    load_grammar,
    save_grammar,
    save_module,
)
from ..training.expander import TrainingReport

__all__ = ["GrammarRegistry", "RegistryError", "corpus_fingerprint"]

_HASH_RE = re.compile(r"^[0-9a-f]{64}$")
_PREFIX_RE = re.compile(r"^[0-9a-f]{4,64}$")
_TAG_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class RegistryError(KeyError):
    """Unknown reference, ambiguous prefix, or malformed registry state."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0] if self.args else ""


def corpus_fingerprint(corpus: Iterable[Module]) -> str:
    """Order-insensitive SHA-256 over the RBC1 encodings of a corpus.

    Recorded at ``put`` time so a grammar can be traced back to exactly
    the training set that produced it (and retraining on the same corpus
    is detectable without keeping the corpus around).
    """
    digests = sorted(
        hashlib.sha256(save_module(m)).hexdigest() for m in corpus
    )
    acc = hashlib.sha256()
    for d in digests:
        acc.update(bytes.fromhex(d))
    return acc.hexdigest()


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_bytes(data)
    os.replace(tmp, path)


class GrammarRegistry:
    """See module docstring.  Safe for concurrent use from threads."""

    def __init__(self, root, *, cache_size: int = 8) -> None:
        self.root = Path(root)
        self._objects = self.root / "objects"
        self._meta = self.root / "meta"
        self._tags = self.root / "tags"
        for d in (self._objects, self._meta, self._tags):
            d.mkdir(parents=True, exist_ok=True)
        if cache_size <= 0:
            raise ValueError("cache_size must be positive")
        self._cache_size = cache_size
        self._cache: "OrderedDict[str, Grammar]" = OrderedDict()
        self._lock = threading.Lock()
        self.cache_hits = 0
        self.cache_misses = 0

    # -- writing ------------------------------------------------------------

    def put(self, grammar: Grammar, *,
            report: Optional[TrainingReport] = None,
            corpus: Optional[Iterable[Module]] = None,
            tags: Iterable[str] = (),
            extra: Optional[Dict] = None) -> str:
        """Store a trained grammar; returns its full hash.

        ``report`` and ``corpus`` fill the provenance metadata; ``extra``
        is merged into the metadata verbatim (client-supplied context).
        """
        data = save_grammar(grammar)
        meta: Dict = {}
        if report is not None:
            meta["training"] = {
                "iterations": report.iterations,
                "rules_added": report.rules_added,
                "rules_removed": report.rules_removed,
                "initial_size": report.initial_size,
                "final_size": report.final_size,
                "size_ratio": report.size_ratio,
                "wall_seconds": report.wall_seconds,
            }
        if corpus is not None:
            modules = list(corpus)
            meta["corpus"] = {
                "fingerprint": corpus_fingerprint(modules),
                "modules": len(modules),
            }
        if extra:
            meta.update(extra)
        return self.put_bytes(data, tags=tags, meta=meta, grammar=grammar)

    def put_bytes(self, data: bytes, *, tags: Iterable[str] = (),
                  meta: Optional[Dict] = None,
                  grammar: Optional[Grammar] = None) -> str:
        """Store raw ``RGR1`` bytes (validated by parsing them)."""
        if grammar is None:
            try:
                grammar = load_grammar(data)  # reject junk before it lands
            except StorageError:
                raise
            except ValueError as exc:
                raise StorageError(
                    f"not a valid RGR1 grammar: {exc}") from None
        digest = hashlib.sha256(data).hexdigest()
        obj_path = self._objects / f"{digest}.rgr"
        if not obj_path.exists():
            record = dict(meta or {})
            record.update({
                "hash": digest,
                "created": time.time(),
                "size_bytes": len(data),
                "nonterminals": len(grammar.nt_names),
                "rules": grammar.total_rules(),
                "encoded_bytes": grammar_bytes(grammar, compact=True),
            })
            _atomic_write(obj_path, data)
            _atomic_write(self._meta / f"{digest}.json",
                          json.dumps(record, indent=1).encode())
        for tag in tags:
            self.tag(digest, tag)
        with self._lock:
            self._cache_put(digest, grammar)
        return digest

    def tag(self, ref: str, name: str) -> str:
        """Point a human tag at a grammar; returns the full hash."""
        if not _TAG_RE.match(name):
            raise RegistryError(f"invalid tag name {name!r}")
        digest = self.resolve(ref)
        _atomic_write(self._tags / name, (digest + "\n").encode())
        return digest

    # -- reading ------------------------------------------------------------

    def resolve(self, ref: str) -> str:
        """tag | full hash | unique >=4-char hash prefix -> full hash."""
        tag_path = self._tags / ref
        if _TAG_RE.match(ref) and tag_path.exists():
            digest = tag_path.read_text().strip()
            if not _HASH_RE.match(digest):
                raise RegistryError(f"tag {ref!r} is corrupt")
            return digest
        if _HASH_RE.match(ref):
            if (self._objects / f"{ref}.rgr").exists():
                return ref
            raise RegistryError(f"no grammar {ref}")
        if _PREFIX_RE.match(ref):
            matches = [p.stem for p in self._objects.glob(f"{ref}*.rgr")]
            if len(matches) == 1:
                return matches[0]
            if matches:
                raise RegistryError(f"ambiguous prefix {ref!r} "
                                    f"({len(matches)} matches)")
        raise RegistryError(f"unknown grammar reference {ref!r}")

    def get_bytes(self, ref: str) -> bytes:
        return (self._objects / f"{self.resolve(ref)}.rgr").read_bytes()

    def get(self, ref: str) -> Grammar:
        """Deserialized grammar, served from the LRU when warm."""
        digest = self.resolve(ref)
        with self._lock:
            cached = self._cache.get(digest)
            if cached is not None:
                self._cache.move_to_end(digest)
                self.cache_hits += 1
                return cached
            self.cache_misses += 1
        # Parse outside the lock: deserialization is the slow part and
        # must not serialize concurrent readers of *other* grammars.
        grammar = load_grammar(
            (self._objects / f"{digest}.rgr").read_bytes()
        )
        with self._lock:
            self._cache_put(digest, grammar)
        return grammar

    def meta(self, ref: str) -> Dict:
        digest = self.resolve(ref)
        path = self._meta / f"{digest}.json"
        if not path.exists():
            raise RegistryError(f"no metadata for {digest}")
        record = json.loads(path.read_text())
        record["tags"] = sorted(
            t for t, h in self.tags().items() if h == digest
        )
        return record

    def list(self) -> List[Dict]:
        """All grammars' metadata, newest first."""
        records = [
            self.meta(p.stem) for p in sorted(self._objects.glob("*.rgr"))
        ]
        records.sort(key=lambda r: r.get("created", 0), reverse=True)
        return records

    def tags(self) -> Dict[str, str]:
        out = {}
        for path in self._tags.iterdir():
            if path.is_file() and not path.name.startswith("."):
                digest = path.read_text().strip()
                if _HASH_RE.match(digest):
                    out[path.name] = digest
        return out

    def __len__(self) -> int:
        return sum(1 for _ in self._objects.glob("*.rgr"))

    def __contains__(self, ref: str) -> bool:
        try:
            self.resolve(ref)
            return True
        except RegistryError:
            return False

    # -- LRU ----------------------------------------------------------------

    def _cache_put(self, digest: str, grammar: Grammar) -> None:
        self._cache[digest] = grammar
        self._cache.move_to_end(digest)
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def cache_info(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "entries": len(self._cache),
                "capacity": self._cache_size,
            }
