"""Content-addressed grammar store with tags and a deserialization LRU.

On-disk layout (all writes are atomic tmp-file + rename, fsynced)::

    <root>/
        objects/<sha256>.rgr         the RGR1 bytes, exactly as saved
        objects/quarantine/          integrity failures, moved aside
        meta/<sha256>.json           provenance: corpus fingerprint,
                                     training report numbers, rule
                                     counts, timestamps
        tags/<name>                  text file holding one full hash

A grammar's identity *is* the SHA-256 of its ``RGR1`` encoding: putting
the same grammar twice is a no-op, and two registries that trained the
same grammar agree on its name.  References are resolved in order: exact
tag, full hash, unique hash prefix (>= 4 hex chars).

Durability and self-healing
---------------------------

Writes are crash-consistent: the temp file is fsynced before the rename
and the directory after it, and a ``put`` writes provenance *before* the
object so a crash between the two leaves an invisible orphan (reaped by
:meth:`GrammarRegistry.gc`), never a half-visible grammar.  Reads are
verifying: object bytes are re-hashed against their name on every cold
read, and a mismatch (bit rot, torn write that somehow landed) moves the
object to ``objects/quarantine/`` and raises a structured
:class:`RegistryError` instead of serving corrupt bytes.  A tag pointing
at a missing object is a structured error too, never a raw
``FileNotFoundError``.  :meth:`GrammarRegistry.verify` is the full
integrity scan (the service runs it at startup); :meth:`gc` reaps temp
files, orphan metadata, and dangling tags.

The deserialization LRU holds precompiled
:class:`~repro.core.program.GrammarProgram` objects (not raw grammars):
one parse *and* one program construction per digest, so concurrent
requests against the same codebook share the program's codeword tables,
prediction sets, fragment index, and every artifact hung off it
(interpreter tables, batching, breakers, derivation caches) — the
service keeps one registry and hits the cache on every request after
the first.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import re
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from .. import faults
from ..bytecode.module import Module
from ..coding.model import COUNTS_ATTR
from ..core.program import GrammarProgram, program_for
from ..faults import InjectedFault
from ..grammar.cfg import Grammar
from ..grammar.serialize import grammar_bytes
from ..storage import (
    StorageError,
    load_grammar,
    save_grammar,
    save_module,
)
from ..training.expander import TrainingReport

__all__ = [
    "GrammarRegistry",
    "RegistryError",
    "corpus_fingerprint",
    "poison_key",
]

_HASH_RE = re.compile(r"^[0-9a-f]{64}$")
_PREFIX_RE = re.compile(r"^[0-9a-f]{4,64}$")
_TAG_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class RegistryError(KeyError):
    """Unknown reference, ambiguous prefix, or malformed registry state."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0] if self.args else ""


def corpus_fingerprint(corpus: Iterable[Module]) -> str:
    """Order-insensitive SHA-256 over the RBC1 encodings of a corpus.

    Recorded at ``put`` time so a grammar can be traced back to exactly
    the training set that produced it (and retraining on the same corpus
    is detectable without keeping the corpus around).
    """
    digests = sorted(
        hashlib.sha256(save_module(m)).hexdigest() for m in corpus
    )
    acc = hashlib.sha256()
    for d in digests:
        acc.update(bytes.fromhex(d))
    return acc.hexdigest()


def poison_key(content_key: str, request_digest: str) -> str:
    """The quarantine key for one (grammar, request) pair.

    Both inputs are hex digests: the grammar's content key and the
    SHA-256 over the request's payload, arguments, and input.  The key
    is stable across workers and restarts, so a request that crashed
    the native engine once is recognized forever after.
    """
    return hashlib.sha256(
        f"{content_key}:{request_digest}".encode()
    ).hexdigest()


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (signal 0; EPERM counts as alive)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


def _fsync_dir(path: Path) -> None:
    """Make a rename in ``path`` durable (no-op where dirs can't open)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: Path, data: bytes) -> None:
    """Crash-consistent write: readers see the old bytes or the new
    bytes, never a mixture, even across a crash at any point.

    The temp file is fsynced before the rename (so the rename can never
    publish a torn file) and the directory entry after it (so the rename
    itself survives a crash).  Fault sites cover the payload, the torn
    prefix, and both crash windows around the rename.
    """
    plane = faults.ACTIVE
    if plane is not None:
        data = plane.mutate("registry.atomic.corrupt", data)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    with open(tmp, "wb") as fh:
        if plane is not None \
                and plane.decide("registry.atomic.torn") is not None:
            fh.write(data[:max(1, len(data) // 2)])
            fh.flush()
            os.fsync(fh.fileno())
            raise InjectedFault("registry.atomic.torn", path.name)
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    if plane is not None:
        plane.fire("registry.atomic.pre_rename", message=path.name)
    os.replace(tmp, path)
    if plane is not None:
        plane.fire("registry.atomic.post_rename", message=path.name)
    _fsync_dir(path.parent)


class GrammarRegistry:
    """See module docstring.  Safe for concurrent use from threads."""

    def __init__(self, root, *, cache_size: int = 8) -> None:
        self.root = Path(root)
        self._objects = self.root / "objects"
        self._meta = self.root / "meta"
        self._tags = self.root / "tags"
        for d in (self._objects, self._meta, self._tags):
            d.mkdir(parents=True, exist_ok=True)
        if cache_size <= 0:
            raise ValueError("cache_size must be positive")
        self._cache_size = cache_size
        self._cache: "OrderedDict[str, GrammarProgram]" = OrderedDict()
        self._lock = threading.Lock()
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def quarantine_dir(self) -> Path:
        return self._objects / "quarantine"

    # -- writing ------------------------------------------------------------

    def put(self, grammar: Grammar, *,
            report: Optional[TrainingReport] = None,
            corpus: Optional[Iterable[Module]] = None,
            tags: Iterable[str] = (),
            extra: Optional[Dict] = None) -> str:
        """Store a trained grammar; returns its full hash.

        ``report`` and ``corpus`` fill the provenance metadata; ``extra``
        is merged into the metadata verbatim (client-supplied context).
        """
        data = save_grammar(grammar)
        meta: Dict = {}
        if report is not None:
            meta["training"] = {
                "trainer": report.strategy,
                "trainer_params": dict(report.strategy_params),
                "iterations": report.iterations,
                "rules_added": report.rules_added,
                "rules_removed": report.rules_removed,
                "initial_size": report.initial_size,
                "final_size": report.final_size,
                "size_ratio": report.size_ratio,
                "wall_seconds": report.wall_seconds,
                "seed_rules": report.seed_rules,
                "seed_rounds": report.seed_rounds,
                "seed_contractions": report.seed_contractions,
                "seed_seconds": report.seed_seconds,
                "refine_seconds": report.refine_seconds,
            }
        if corpus is not None:
            modules = list(corpus)
            meta["corpus"] = {
                "fingerprint": corpus_fingerprint(modules),
                "modules": len(modules),
            }
        if extra:
            meta.update(extra)
        return self.put_bytes(data, tags=tags, meta=meta, grammar=grammar)

    def put_bytes(self, data: bytes, *, tags: Iterable[str] = (),
                  meta: Optional[Dict] = None,
                  grammar: Optional[Grammar] = None) -> str:
        """Store raw ``RGR1`` bytes (validated by parsing them)."""
        if grammar is None:
            try:
                grammar = load_grammar(data)  # reject junk before it lands
            except StorageError:
                raise
            except ValueError as exc:
                raise StorageError(
                    f"not a valid RGR1 grammar: {exc}") from None
        digest = hashlib.sha256(data).hexdigest()
        obj_path = self._objects / f"{digest}.rgr"
        if not obj_path.exists():
            record = dict(meta or {})
            record.update({
                "hash": digest,
                "created": time.time(),
                "size_bytes": len(data),
                "nonterminals": len(grammar.nt_names),
                "rules": grammar.total_rules(),
                "encoded_bytes": grammar_bytes(grammar, compact=True),
                # Whether this grammar ships a rule-frequency model and
                # can therefore serve rcx2 compression requests.
                "model": getattr(grammar, COUNTS_ATTR, None) is not None,
            })
            # Provenance lands before the object: an interrupted put
            # leaves an invisible orphan meta (reaped by gc), never an
            # object whose metadata is missing.
            _atomic_write(self._meta / f"{digest}.json",
                          json.dumps(record, indent=1).encode())
            _atomic_write(obj_path, data)
        for tag in tags:
            self.tag(digest, tag)
        program = program_for(grammar)
        with self._lock:
            self._cache_put(digest, program)
        return digest

    def tag(self, ref: str, name: str) -> str:
        """Point a human tag at a grammar; returns the full hash."""
        if not _TAG_RE.match(name):
            raise RegistryError(f"invalid tag name {name!r}")
        digest = self.resolve(ref)
        _atomic_write(self._tags / name, (digest + "\n").encode())
        return digest

    # -- reading ------------------------------------------------------------

    def resolve(self, ref: str) -> str:
        """tag | full hash | unique >=4-char hash prefix -> full hash."""
        tag_path = self._tags / ref
        if _TAG_RE.match(ref) and tag_path.exists():
            digest = tag_path.read_text().strip()
            if not _HASH_RE.match(digest):
                raise RegistryError(f"tag {ref!r} is corrupt")
            if not (self._objects / f"{digest}.rgr").exists():
                raise RegistryError(
                    f"tag {ref!r} points at missing grammar "
                    f"{digest[:12]} (dangling tag; "
                    f"run `repro registry verify`)")
            return digest
        if _HASH_RE.match(ref):
            if (self._objects / f"{ref}.rgr").exists():
                return ref
            raise RegistryError(f"no grammar {ref}")
        if _PREFIX_RE.match(ref):
            matches = [p.stem for p in self._objects.glob(f"{ref}*.rgr")]
            if len(matches) == 1:
                return matches[0]
            if matches:
                raise RegistryError(f"ambiguous prefix {ref!r} "
                                    f"({len(matches)} matches)")
        raise RegistryError(f"unknown grammar reference {ref!r}")

    def _object_bytes(self, digest: str) -> bytes:
        """Verified object read: re-hash against the name; corruption
        quarantines the object and raises a structured error."""
        path = self._objects / f"{digest}.rgr"
        plane = faults.ACTIVE
        try:
            if plane is not None:
                plane.fire("registry.read.missing",
                           exc=FileNotFoundError, message=path.name)
            data = path.read_bytes()
        except FileNotFoundError:
            raise RegistryError(
                f"grammar {digest[:12]} missing from object store "
                f"(run `repro registry verify`)") from None
        if plane is not None:
            data = plane.mutate("registry.read.corrupt", data)
        if hashlib.sha256(data).hexdigest() != digest:
            self._quarantine(digest, "content hash mismatch on read")
            raise RegistryError(
                f"grammar {digest[:12]} failed its integrity check "
                f"(hash mismatch); quarantined")
        return data

    def get_bytes(self, ref: str) -> bytes:
        return self._object_bytes(self.resolve(ref))

    def get(self, ref: str) -> Grammar:
        """Deserialized grammar, served from the LRU when warm."""
        return self.program(ref).grammar

    def program(self, ref: str) -> GrammarProgram:
        """The grammar's precompiled program, served from the LRU.

        One parse and one :class:`GrammarProgram` construction per
        digest per cache lifetime — every consumer of this registry
        (service workers, the CLI, decompression) shares the same
        program instance and everything derived from it.
        """
        digest = self.resolve(ref)
        with self._lock:
            cached = self._cache.get(digest)
            if cached is not None:
                self._cache.move_to_end(digest)
                self.cache_hits += 1
                return cached
            self.cache_misses += 1
        # Parse outside the lock: deserialization is the slow part and
        # must not serialize concurrent readers of *other* grammars.
        data = self._object_bytes(digest)
        try:
            grammar = load_grammar(data)
        except (StorageError, ValueError) as exc:
            self._quarantine(digest, f"invalid RGR1: {exc}")
            raise RegistryError(
                f"grammar {digest[:12]} failed to parse ({exc}); "
                f"quarantined") from None
        program = program_for(grammar)
        with self._lock:
            self._cache_put(digest, program)
        return program

    def meta(self, ref: str) -> Dict:
        digest = self.resolve(ref)
        path = self._meta / f"{digest}.json"
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            # Missing or unreadable provenance must not hide the object:
            # recover a minimal record from the object itself.
            record = self._recover_meta(digest)
        record["tags"] = sorted(
            t for t, h in self.tags().items() if h == digest
        )
        return record

    def _recover_meta(self, digest: str,
                      data: Optional[bytes] = None) -> Dict:
        if data is None:
            data = self._object_bytes(digest)
        grammar = load_grammar(data)
        obj_path = self._objects / f"{digest}.rgr"
        return {
            "hash": digest,
            "created": obj_path.stat().st_mtime,
            "size_bytes": len(data),
            "nonterminals": len(grammar.nt_names),
            "rules": grammar.total_rules(),
            "encoded_bytes": grammar_bytes(grammar, compact=True),
            "model": getattr(grammar, COUNTS_ATTR, None) is not None,
            "recovered": True,
        }

    def list(self) -> List[Dict]:
        """All grammars' metadata, newest first."""
        records = [
            self.meta(p.stem) for p in sorted(self._objects.glob("*.rgr"))
        ]
        records.sort(key=lambda r: r.get("created") or 0, reverse=True)
        return records

    def tags(self) -> Dict[str, str]:
        out = {}
        for path in self._tags.iterdir():
            if path.is_file() and not path.name.startswith(".") \
                    and ".tmp." not in path.name:
                digest = path.read_text().strip()
                if _HASH_RE.match(digest):
                    out[path.name] = digest
        return out

    def __len__(self) -> int:
        return sum(1 for _ in self._objects.glob("*.rgr"))

    def __contains__(self, ref: str) -> bool:
        try:
            self.resolve(ref)
            return True
        except RegistryError:
            return False

    # -- integrity: quarantine, verify, gc ----------------------------------

    def _quarantine(self, digest: str, reason: str) -> None:
        """Move ``digest``'s object (and meta) aside; evict it from the
        LRU so the corruption can't be papered over by a warm cache."""
        qdir = self.quarantine_dir
        qdir.mkdir(exist_ok=True)
        obj_path = self._objects / f"{digest}.rgr"
        with contextlib.suppress(OSError):
            os.replace(obj_path, qdir / obj_path.name)
        meta_path = self._meta / f"{digest}.json"
        if meta_path.exists():
            with contextlib.suppress(OSError):
                os.replace(meta_path, qdir / meta_path.name)
        with contextlib.suppress(OSError):
            (qdir / f"{digest}.reason").write_text(reason + "\n")
        with self._lock:
            self._cache.pop(digest, None)

    def verify(self, *, repair: bool = False) -> Dict:
        """Full integrity scan; with ``repair`` it also heals.

        Checks every object (name well-formed, content re-hashes to the
        name, RGR1 parses — which verifies the CRC-32 trailer), every
        metadata record (present, regenerable), every tag (well-formed,
        target present), and reports leftover temp files.  With
        ``repair=True``: corrupt objects move to ``objects/quarantine/``,
        missing metadata is regenerated from the object, orphan metadata
        and dangling tags are removed, temp files are reaped.

        Returns a report dict; ``report["clean"]`` is True when nothing
        was wrong (regardless of ``repair``).
        """
        report: Dict = {
            "checked": 0, "ok": 0,
            "corrupt": [], "quarantined": [],
            "missing_meta": [], "repaired_meta": [],
            "orphan_meta": [], "dangling_tags": [],
            "tmp_files": [],
        }
        present = set()
        for path in sorted(self._objects.glob("*.rgr")):
            digest = path.stem
            report["checked"] += 1
            reason = None
            data = None
            if not _HASH_RE.match(digest):
                reason = "malformed object name"
            else:
                try:
                    data = path.read_bytes()
                except OSError as exc:
                    reason = f"unreadable: {exc}"
                if data is not None \
                        and hashlib.sha256(data).hexdigest() != digest:
                    reason = "content hash mismatch"
                elif data is not None:
                    try:
                        load_grammar(data)
                    except (StorageError, ValueError) as exc:
                        reason = f"invalid RGR1: {exc}"
            if reason is not None:
                report["corrupt"].append({"hash": digest,
                                          "reason": reason})
                if repair:
                    self._quarantine(digest, reason)
                    report["quarantined"].append(digest)
                continue
            present.add(digest)
            report["ok"] += 1
            if not (self._meta / f"{digest}.json").exists():
                report["missing_meta"].append(digest)
                if repair:
                    record = self._recover_meta(digest, data)
                    _atomic_write(
                        self._meta / f"{digest}.json",
                        json.dumps(record, indent=1).encode())
                    report["repaired_meta"].append(digest)
        for mpath in sorted(self._meta.glob("*.json")):
            if mpath.stem not in present:
                report["orphan_meta"].append(mpath.stem)
                if repair:
                    with contextlib.suppress(OSError):
                        mpath.unlink()
        for tpath in sorted(self._tags.iterdir()):
            if not tpath.is_file() or tpath.name.startswith(".") \
                    or ".tmp." in tpath.name:
                continue
            target = tpath.read_text().strip()
            if _HASH_RE.match(target) and target in present:
                continue
            report["dangling_tags"].append(
                {"tag": tpath.name, "target": target})
            if repair:
                with contextlib.suppress(OSError):
                    tpath.unlink()
        for d in (self._objects, self._meta, self._tags):
            for tmp in sorted(d.glob("*.tmp.*")):
                report["tmp_files"].append(tmp.name)
                if repair:
                    with contextlib.suppress(OSError):
                        tmp.unlink()
        # Poison verdicts and pending native-run intents are deliberate
        # state, surfaced for the operator but never "dirt".
        report["poison"] = sum(
            1 for _ in self.quarantine_dir.glob("*.poison.json"))
        report["poison_intents"] = sum(
            1 for _ in self.quarantine_dir.glob("*.intent.json"))
        report["clean"] = not (report["corrupt"]
                               or report["missing_meta"]
                               or report["orphan_meta"]
                               or report["dangling_tags"]
                               or report["tmp_files"])
        report["repaired"] = repair
        return report

    def gc(self) -> Dict[str, int]:
        """Reap crash debris: temp files from interrupted writes, orphan
        metadata (meta without its object), and dangling tags."""
        removed = {"tmp_files": 0, "orphan_meta": 0, "dangling_tags": 0}
        for d in (self._objects, self._meta, self._tags):
            for tmp in d.glob("*.tmp.*"):
                with contextlib.suppress(OSError):
                    tmp.unlink()
                    removed["tmp_files"] += 1
        for mpath in self._meta.glob("*.json"):
            if not (self._objects / f"{mpath.stem}.rgr").exists():
                with contextlib.suppress(OSError):
                    mpath.unlink()
                    removed["orphan_meta"] += 1
        for tpath in list(self._tags.iterdir()):
            if not tpath.is_file() or tpath.name.startswith(".") \
                    or ".tmp." in tpath.name:
                continue
            target = tpath.read_text().strip()
            if not _HASH_RE.match(target) \
                    or not (self._objects / f"{target}.rgr").exists():
                with contextlib.suppress(OSError):
                    tpath.unlink()
                    removed["dangling_tags"] += 1
        return removed

    def startup_scan(self) -> Dict:
        """The self-healing pass a long-lived service runs before
        serving: quarantine corruption, regenerate metadata, drop
        dangling tags, reap crash debris, and convert native-run
        intents orphaned by a crashed worker into poison verdicts."""
        converted = self.scan_native_intents()
        report = self.verify(repair=True)
        report["gc"] = self.gc()
        report["poison_converted"] = len(converted)
        return report

    # -- poison quarantine --------------------------------------------------
    #
    # Requests that crashed or hung the native engine.  A verdict is a
    # small JSON sidecar under objects/quarantine/ keyed by
    # :func:`poison_key`; once recorded, the service fails the same
    # request fast with a non-retryable ``poison_input`` error instead
    # of feeding it to the engine again.  Verdicts are deliberate
    # records, not corruption: ``verify`` counts them but they never
    # make the registry un-clean.
    #
    # For *in-process* native runs (no sandbox to absorb the signal) an
    # intent sidecar is written before the run and removed after it.  A
    # worker that dies mid-run leaves its intent behind; the next
    # startup converts intents whose pid is gone into poison verdicts,
    # so even an un-sandboxed crash is quarantined after one respawn.

    def _poison_path(self, key: str) -> Path:
        if not _HASH_RE.match(key):
            raise RegistryError(f"malformed poison key {key!r}")
        return self.quarantine_dir / f"{key}.poison.json"

    def _intent_path(self, key: str) -> Path:
        if not _HASH_RE.match(key):
            raise RegistryError(f"malformed poison key {key!r}")
        return self.quarantine_dir / f"{key}.intent.json"

    def record_poison(self, key: str, verdict: str, *,
                      content_key: str = "",
                      request_digest: str = "",
                      detail: str = "") -> Dict:
        """Record (idempotently) that a request is poisonous.

        ``verdict`` names what happened (``"crash"``, ``"hang"``);
        ``detail`` is the human-readable specifics (signal name,
        timeout).  Returns the stored record.
        """
        existing = self.check_poison(key)
        if existing is not None:
            return existing
        record = {
            "key": key,
            "verdict": verdict,
            "content_key": content_key,
            "request_digest": request_digest,
            "detail": detail,
            "recorded": time.time(),
            "pid": os.getpid(),
        }
        self.quarantine_dir.mkdir(exist_ok=True)
        _atomic_write(self._poison_path(key),
                      json.dumps(record, indent=1).encode())
        return record

    def check_poison(self, key: str) -> Optional[Dict]:
        """The poison verdict for ``key``, or ``None`` if it is clean."""
        try:
            return json.loads(self._poison_path(key).read_text())
        except (OSError, ValueError):
            return None

    def poison_list(self) -> List[Dict]:
        """All poison verdicts, oldest first."""
        records = []
        for path in sorted(self.quarantine_dir.glob("*.poison.json")):
            with contextlib.suppress(OSError, ValueError):
                records.append(json.loads(path.read_text()))
        records.sort(key=lambda r: r.get("recorded") or 0)
        return records

    def record_native_intent(self, key: str, *,
                             content_key: str = "",
                             request_digest: str = "") -> None:
        """Journal an imminent in-process native run.

        Must be durable *before* the run starts: if the process dies
        with the intent on disk, :meth:`scan_native_intents` converts
        it into a poison verdict at the next startup.
        """
        record = {
            "key": key,
            "content_key": content_key,
            "request_digest": request_digest,
            "pid": os.getpid(),
            "created": time.time(),
        }
        self.quarantine_dir.mkdir(exist_ok=True)
        _atomic_write(self._intent_path(key),
                      json.dumps(record).encode())

    def clear_native_intent(self, key: str) -> None:
        """The run survived (completed or raised in Python): retract."""
        with contextlib.suppress(OSError, RegistryError):
            self._intent_path(key).unlink()

    def scan_native_intents(self) -> List[Dict]:
        """Convert dead-owner intents into poison verdicts.

        An intent whose recording pid is still alive belongs to a run in
        progress somewhere in the fleet and is left alone.  Returns the
        verdicts recorded by this scan.
        """
        converted = []
        for path in sorted(self.quarantine_dir.glob("*.intent.json")):
            try:
                record = json.loads(path.read_text())
                pid = int(record["pid"])
                key = str(record["key"])
            except (OSError, ValueError, KeyError, TypeError):
                with contextlib.suppress(OSError):
                    path.unlink()
                continue
            if pid > 0 and _pid_alive(pid):
                continue
            converted.append(self.record_poison(
                key, "crash",
                content_key=str(record.get("content_key", "")),
                request_digest=str(record.get("request_digest", "")),
                detail=f"in-process native run by pid {pid} never "
                       f"returned (process died mid-run)"))
            with contextlib.suppress(OSError):
                path.unlink()
        return converted

    # -- LRU ----------------------------------------------------------------

    def _cache_put(self, digest: str, program: GrammarProgram) -> None:
        self._cache[digest] = program
        self._cache.move_to_end(digest)
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def cache_info(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "entries": len(self._cache),
                "capacity": self._cache_size,
            }
