"""Content-addressed, versioned grammar registry.

The paper's workflow is train-once / compress-many: a trained grammar is
a shared codebook that many programs are compressed against.  The
registry makes that codebook an addressable, versioned artifact — stored
by the SHA-256 of its ``RGR1`` encoding, carrying training provenance,
and resolvable by hash, unique hash prefix, or human tag.
"""

from .registry import (
    GrammarRegistry,
    RegistryError,
    corpus_fingerprint,
)

__all__ = ["GrammarRegistry", "RegistryError", "corpus_fingerprint"]
