"""Binary file formats for modules, compressed modules and grammars.

Four self-describing formats, all little-endian:

* ``RBC1`` — an uncompressed bytecode module (the compiler's output and
  the decompressor's; what Section 3 calls the packaged bytecodes).
* ``RCX1`` — a compressed module *with its grammar embedded* (the compact
  encoding of :mod:`repro.grammar.serialize`), so a single file is enough
  to interpret or decompress it — the shippable artifact.
* ``RCX2`` — the entropy-coded compressed module (see docs/CODING.md):
  grammar *and* rule-frequency model embedded, labels stored as block
  indices, and all procedure bodies range-coded into one stream.  It
  loads to the exact same in-memory :class:`CompressedModule` as RCX1,
  so everything downstream of :func:`load_compressed` is format-blind.
* ``RGR1`` — a stand-alone trained grammar, for the train-once /
  compress-many workflow of the CLI.  Grammars trained since models
  exist carry an optional trailing section with the raw rule-frequency
  counts (legacy files without it still load; compressing from them to
  RCX2 then reports the model as missing).

Strings are UTF-8 with a 2-byte length; offsets/sizes are u32.  Every
loader validates magic and trailing bytes, and the module loader runs the
bytecode validator, so a corrupted file fails loudly rather than
misexecuting.

Writers append a CRC-32 trailer (4 bytes, little-endian, over magic +
body) so bit rot is detected before the structural validators run.
Loaders accept trailer-less files — everything written before the
trailer existed still loads.  RCX2 additionally embeds a CRC-32 of the
*decoded* RCX1 payload inside the (trailer-protected) header, so even a
coded stream that decodes without a structural error cannot silently
deliver wrong bytes.
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from typing import List, Union

from .bytecode.module import GlobalEntry, Module, Procedure
from .bytecode.validate import validate_module
from .coding.model import (
    COUNTS_ATTR,
    RuleModel,
    model_for,
    parse_model,
)
from .coding.stream import decode_module_streams, encode_module_streams
from .compress.container import (
    CONTAINER_FORMATS,
    CompressedModule,
    CompressedProcedure,
    ContainerError,
    RCX2_MAGIC,
    RCX2_VERSION,
)
from .core.program import non_byte_rows, original_ordinals, program_for
from .grammar.cfg import Grammar
from .grammar.serialize import decode_grammar, encode_grammar_compact

__all__ = [
    "save_module", "load_module",
    "save_compressed", "load_compressed",
    "save_grammar", "load_grammar",
    "load_any", "StorageError",
]

_MAGIC_MODULE = b"RBC1"
_MAGIC_COMPRESSED = b"RCX1"
_MAGIC_COMPRESSED2 = RCX2_MAGIC
_MAGIC_GRAMMAR = b"RGR1"

_KINDS = ["data", "proc", "lib"]


class StorageError(ValueError):
    """Malformed or mismatched file content."""


def _seal(w: "_Writer") -> bytes:
    """Append the CRC-32 trailer over everything written so far."""
    payload = bytes(w.out)
    return payload + struct.pack("<I", zlib.crc32(payload))


def _finish(r: "_Reader", full: bytes) -> None:
    """End-of-body check: verify the CRC-32 trailer if present.

    ``full`` is the whole file including magic; ``r`` holds the body with
    the magic stripped.  Exactly 4 bytes after the body is a trailer
    (verified, mismatch is a loud :class:`StorageError`); zero bytes is a
    legacy trailer-less file; anything else is trailing garbage.
    """
    remaining = len(r.data) - r.pos
    if remaining == 0:
        return  # pre-CRC file: accepted unchanged
    if remaining == 4:
        (stored,) = struct.unpack("<I", r.data[r.pos:r.pos + 4])
        if stored != zlib.crc32(full[:-4]):
            raise StorageError("CRC-32 mismatch (corrupt file)")
        r.pos += 4
        return
    r.done()  # raises with the trailing-byte count


class _Writer:
    def __init__(self) -> None:
        self.out = bytearray()

    def u8(self, v: int) -> None:
        self.out.append(v & 0xFF)

    def u16(self, v: int) -> None:
        self.out.extend(struct.pack("<H", v))

    def u32(self, v: int) -> None:
        self.out.extend(struct.pack("<I", v))

    def text(self, s: str) -> None:
        data = s.encode("utf-8")
        self.u16(len(data))
        self.out.extend(data)

    def blob(self, data: bytes) -> None:
        self.u32(len(data))
        self.out.extend(data)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def _take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise StorageError("truncated file")
        piece = self.data[self.pos:self.pos + n]
        self.pos += n
        return piece

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return struct.unpack("<H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def text(self) -> str:
        return self._take(self.u16()).decode("utf-8")

    def blob(self) -> bytes:
        return self._take(self.u32())

    def done(self) -> None:
        if self.pos != len(self.data):
            raise StorageError(
                f"{len(self.data) - self.pos} trailing bytes"
            )


def _write_shared(w: _Writer, module) -> None:
    """globals / data / bss / entry, common to both module kinds."""
    w.u16(len(module.globals))
    for g in module.globals:
        w.u8(_KINDS.index(g.kind))
        w.text(g.name)
        w.u32(g.value)
    w.blob(module.data)
    w.u32(module.bss_size)
    w.u32(module.entry + 1 if module.entry is not None else 0)


def _read_shared(r: _Reader) -> dict:
    globals_: List[GlobalEntry] = []
    for _ in range(r.u16()):
        kind_index = r.u8()
        if kind_index >= len(_KINDS):
            raise StorageError(f"bad global kind byte {kind_index}")
        kind = _KINDS[kind_index]
        name = r.text()
        value = r.u32()
        globals_.append(GlobalEntry(kind, name, value))
    data = r.blob()
    bss = r.u32()
    entry_raw = r.u32()
    return {
        "globals": globals_, "data": data, "bss_size": bss,
        "entry": entry_raw - 1 if entry_raw else None,
    }


def _write_proc_common(w: _Writer, proc) -> None:
    w.text(proc.name)
    w.u32(proc.framesize)
    w.u32(proc.argsize)
    w.u8(1 if proc.needs_trampoline else 0)
    w.u16(len(proc.labels))
    for off in proc.labels:
        w.u32(off)
    w.blob(proc.code)


def _read_proc_common(r: _Reader) -> dict:
    name = r.text()
    framesize = r.u32()
    argsize = r.u32()
    tramp = bool(r.u8())
    labels = [r.u32() for _ in range(r.u16())]
    code = r.blob()
    return {
        "name": name, "framesize": framesize, "argsize": argsize,
        "needs_trampoline": tramp, "labels": labels, "code": code,
    }


# -- modules ------------------------------------------------------------------

def save_module(module: Module) -> bytes:
    w = _Writer()
    w.out.extend(_MAGIC_MODULE)
    _write_shared(w, module)
    w.u16(len(module.procedures))
    for proc in module.procedures:
        _write_proc_common(w, proc)
    return _seal(w)


def load_module(data: bytes) -> Module:
    if data[:4] != _MAGIC_MODULE:
        raise StorageError("not an RBC1 module file")
    r = _Reader(data[4:])
    shared = _read_shared(r)
    procs = [Procedure(**_read_proc_common(r)) for _ in range(r.u16())]
    _finish(r, data)
    module = Module(procedures=procs, **shared)
    validate_module(module)
    return module


# -- compressed modules ---------------------------------------------------------

def _write_nt_names(w: _Writer, grammar: Grammar) -> None:
    w.u8(len(grammar.nt_names))
    for name in grammar.nt_names:
        w.text(name)


def _read_nt_names(r: _Reader) -> List[str]:
    return [r.text() for _ in range(r.u8())]


def save_compressed(cmod: CompressedModule,
                    format: str = "rcx1") -> bytes:
    """Serialize a compressed module.

    ``format="rcx1"`` is the paper's one-byte-per-step container;
    ``"rcx2"`` entropy-codes the derivation bytes against the grammar's
    :class:`~repro.coding.model.RuleModel` (raising
    :class:`~repro.coding.model.ModelMissingError` when the grammar was
    trained before models existed).  Both load back byte-identically
    through :func:`load_compressed`.
    """
    if format not in CONTAINER_FORMATS:
        raise ValueError(f"unknown container format {format!r} "
                         f"(expected one of {CONTAINER_FORMATS})")
    if format == "rcx2":
        return _save_compressed2(cmod)
    w = _Writer()
    w.out.extend(_MAGIC_COMPRESSED)
    _write_nt_names(w, cmod.grammar)
    w.blob(encode_grammar_compact(cmod.grammar))
    _write_shared(w, cmod)
    w.u16(len(cmod.procedures))
    for proc in cmod.procedures:
        _write_proc_common(w, proc)
        w.u16(len(proc.block_starts))
        for off in proc.block_starts:
            w.u32(off)
    return _seal(w)


def _save_compressed2(cmod: CompressedModule) -> bytes:
    """The RCX2 container: header + one range-coded stream per module.

    Labels are stored as *block indices* — a label always targets a
    block start in the RCX1 form, and byte offsets are meaningless in
    an entropy-coded stream; the loader rebuilds the exact offsets from
    the block starts it observes while decoding.
    """
    program = program_for(cmod.grammar)
    model = model_for(program)  # ModelMissingError when untrained
    w = _Writer()
    w.out.extend(_MAGIC_COMPRESSED2)
    w.u8(RCX2_VERSION)
    _write_nt_names(w, cmod.grammar)
    w.blob(encode_grammar_compact(cmod.grammar))
    w.blob(model.to_bytes())
    _write_shared(w, cmod)
    w.u16(len(cmod.procedures))
    payload_crc = 0
    for proc in cmod.procedures:
        w.text(proc.name)
        w.u32(proc.framesize)
        w.u32(proc.argsize)
        w.u8(1 if proc.needs_trampoline else 0)
        if len(proc.block_starts) > 0xFFFF:
            raise StorageError(
                f"procedure {proc.name!r} has too many blocks for RCX2")
        block_index = {off: i for i, off in enumerate(proc.block_starts)}
        w.u16(len(proc.labels))
        for off in proc.labels:
            if off not in block_index:
                raise StorageError(
                    f"label offset {off} in {proc.name!r} is not a "
                    f"block start")
            w.u16(block_index[off])
        w.u16(len(proc.block_starts))
        w.u32(len(proc.code))
        payload_crc = zlib.crc32(proc.code, payload_crc)
    w.u32(payload_crc)
    w.blob(encode_module_streams(program, model,
                                 [p.code for p in cmod.procedures]))
    return _seal(w)


def load_compressed(data: bytes) -> CompressedModule:
    """Load either compressed-module container (dispatch on magic)."""
    if data[:4] == _MAGIC_COMPRESSED2:
        return _load_compressed2(data)
    if data[:4] != _MAGIC_COMPRESSED:
        raise StorageError("not an RCX1/RCX2 compressed-module file")
    r = _Reader(data[4:])
    names = _read_nt_names(r)
    grammar = decode_grammar(r.blob(), nt_names=names)
    shared = _read_shared(r)
    procs = []
    for _ in range(r.u16()):
        common = _read_proc_common(r)
        block_starts = [r.u32() for _ in range(r.u16())]
        procs.append(CompressedProcedure(block_starts=block_starts,
                                         **common))
    _finish(r, data)
    return CompressedModule(grammar=grammar, procedures=procs, **shared)


def _load_compressed2(data: bytes) -> CompressedModule:
    # RCX2 has no legacy window: the CRC-32 trailer is mandatory, and it
    # is verified before any field is parsed — bit rot anywhere in the
    # file fails loudly here instead of surfacing as a deep parse error
    # from the grammar or model decoders.
    if len(data) < 9:
        raise ContainerError("truncated RCX2 file")
    (stored,) = struct.unpack("<I", data[-4:])
    if stored != zlib.crc32(data[:-4]):
        raise StorageError("CRC-32 mismatch (corrupt file)")
    r = _Reader(data[4:-4])
    version = r.u8()
    if version != RCX2_VERSION:
        raise ContainerError(f"unsupported RCX2 version {version}")
    names = _read_nt_names(r)
    gblob = r.blob()
    grammar = decode_grammar(gblob, nt_names=names)
    mblob = r.blob()
    shared = _read_shared(r)
    specs = []
    for _ in range(r.u16()):
        name = r.text()
        framesize = r.u32()
        argsize = r.u32()
        tramp = bool(r.u8())
        label_blocks = [r.u16() for _ in range(r.u16())]
        nblocks = r.u16()
        code_len = r.u32()
        specs.append((name, framesize, argsize, tramp, label_blocks,
                      nblocks, code_len))
    payload_crc = r.u32()
    stream = r.blob()
    r.done()

    try:
        binding, eos_count, counts = parse_model(mblob)
    except ValueError as exc:
        raise ContainerError(f"bad embedded model: {exc}") from None
    if binding != hashlib.sha256(gblob).digest():
        raise ContainerError(
            "model/grammar content-key mismatch (the embedded model "
            "was trained for a different grammar)")
    program = program_for(grammar)
    try:
        model = RuleModel(program, counts, eos_count, binding=binding)
    except ValueError as exc:
        raise ContainerError(f"bad embedded model: {exc}") from None
    # Re-attach the counts (and prime the model memo) so a loaded
    # module can be re-saved as RCX2 and its grammar drives coding
    # stats, exactly like a freshly trained one.
    setattr(grammar, COUNTS_ATTR,
            {"rules": [list(row) for row in model.counts],
             "eos": model.eos_count})
    program.derived("coding.model", lambda: model)

    decoded = decode_module_streams(program, model,
                                    [s[6] for s in specs], stream)
    procs = []
    crc = 0
    for (name, framesize, argsize, tramp, label_blocks, nblocks,
         code_len), (code, block_starts) in zip(specs, decoded):
        if len(block_starts) != nblocks:
            raise ContainerError(
                f"procedure {name!r} decoded {len(block_starts)} "
                f"blocks, header declares {nblocks}")
        labels = []
        for idx in label_blocks:
            if idx >= len(block_starts):
                raise ContainerError(
                    f"label block index {idx} out of range in {name!r}")
            labels.append(block_starts[idx])
        crc = zlib.crc32(code, crc)
        procs.append(CompressedProcedure(
            name=name, code=code, labels=labels, framesize=framesize,
            needs_trampoline=tramp, argsize=argsize,
            block_starts=list(block_starts)))
    if crc != payload_crc:
        raise ContainerError(
            "decoded payload CRC-32 mismatch (corrupt coded stream)")
    return CompressedModule(grammar=grammar, procedures=procs, **shared)


# -- grammars ---------------------------------------------------------------------
#
# The nameless, fragment-less compact encoding is what ships inside an
# interpreter (and what the size experiments measure).  The RGR1 *tool*
# format additionally stores nonterminal names and each rule's provenance
# fragment, because the tiling compressor matches fragments against
# original-grammar parse trees.  Fragments are serialized over *canonical
# ordinals*: the position of each original rule in its nonterminal's rule
# list, which training never disturbs (only inlined rules are appended or
# removed).

def _write_fragment(w: _Writer, fragment, to_ordinal) -> None:
    rule_id, children = fragment
    if rule_id not in to_ordinal:
        raise StorageError(
            "fragment references a non-original rule (corrupt grammar)"
        )
    nt_index, position = to_ordinal[rule_id]
    w.u8(nt_index)
    w.u16(position)
    w.u8(len(children))
    for child in children:
        if child is None:
            w.u8(0)
        else:
            w.u8(1)
            _write_fragment(w, child, to_ordinal)


def _read_fragment(r: _Reader, from_ordinal):
    nt_index = r.u8()
    position = r.u16()
    key = (nt_index, position)
    if key not in from_ordinal:
        raise StorageError("fragment ordinal out of range")
    children = []
    for _ in range(r.u8()):
        if r.u8():
            children.append(_read_fragment(r, from_ordinal))
        else:
            children.append(None)
    return (from_ordinal[key], tuple(children))


def save_grammar(grammar: Grammar) -> bytes:
    w = _Writer()
    w.out.extend(_MAGIC_GRAMMAR)
    _write_nt_names(w, grammar)
    w.blob(encode_grammar_compact(grammar))
    # Provenance: per nonterminal (byte excluded), per rule in codeword
    # order: origin flag, and for inlined rules the fragment tree.  The
    # ordinal table and row layout come off the grammar's precompiled
    # program (one shared index instead of three local rebuild loops).
    program = program_for(grammar)
    for _nt, rules in program.rows:
        for rule in rules:
            if rule.origin == "original":
                w.u8(0)
            else:
                w.u8(1)
                _write_fragment(w, rule.fragment,
                                program.original_to_ordinal)
    # Optional trailing section: the rule-frequency model, when training
    # attached counts (absent -> byte-identical to the legacy format, so
    # old readers and golden files are unaffected).
    if getattr(grammar, COUNTS_ATTR, None) is not None:
        w.u8(1)
        w.blob(model_for(program).to_bytes())
    return _seal(w)


def load_grammar(data: bytes) -> Grammar:
    if data[:4] != _MAGIC_GRAMMAR:
        raise StorageError("not an RGR1 grammar file")
    r = _Reader(data[4:])
    names = _read_nt_names(r)
    gblob = r.blob()
    grammar = decode_grammar(gblob, nt_names=names)
    # Re-attach provenance.  decode_grammar marked every rule original;
    # rebuild each rule with its true origin and fragment so the tiling
    # compressor works on loaded grammars.  This mutates rules in place
    # mid-rebuild, so it uses the pure core helpers directly — never the
    # program cache (see repro.core.program).
    _, from_ordinal = original_ordinals(grammar)
    for _nt, rules in non_byte_rows(grammar):
        for rule in rules:
            if r.u8():
                fragment = _read_fragment(r, from_ordinal)
                rule.origin = "inlined"
                rule.fragment = fragment
                from .grammar.cfg import fragment_hole_count
                if fragment_hole_count(fragment) != rule.arity:
                    raise StorageError("fragment does not match rule arity")
    # Optional model section (legacy files end here, with 0 or 4 bytes
    # left for the CRC trailer; a section is at least 5).
    if len(r.data) - r.pos not in (0, 4):
        if r.u8() != 1:
            raise StorageError("bad model-section flag")
        mblob = r.blob()
        try:
            binding, eos_count, counts = parse_model(mblob)
        except ValueError as exc:
            raise StorageError(f"bad grammar model: {exc}") from None
        if binding != hashlib.sha256(gblob).digest():
            raise StorageError(
                "model/grammar content-key mismatch in RGR1 file")
        setattr(grammar, COUNTS_ATTR,
                {"rules": [list(row) for row in counts],
                 "eos": eos_count})
    _finish(r, data)
    grammar.check()
    return grammar


def load_any(data: bytes) -> Union[Module, CompressedModule]:
    """Dispatch on magic: module or compressed module (either format)."""
    if data[:4] == _MAGIC_MODULE:
        return load_module(data)
    if data[:4] in (_MAGIC_COMPRESSED, _MAGIC_COMPRESSED2):
        return load_compressed(data)
    raise StorageError("unrecognized file magic")
