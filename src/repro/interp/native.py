"""The native execution engine: compressed bytecode on compiled C.

The paper's argument is that the compressed form is directly
*executable*; the generated interpreter should therefore run as fast as
the hardware allows, not as fast as CPython allows.  This module loads
the shared object built from :func:`repro.interp.cgen.emit_native` (via
the content-addressed cache in :mod:`repro.interp.nativebuild`) and
gives it the same observable contract as the Python engines: identical
exit codes, output bytes, ``instret``, final memory image, and the same
structured trap taxonomy — the C side reports a numeric trap code plus
two payload words, and :meth:`NativeEngine._map_trap` reconstructs the
exact exception class and message the reference engine would have
raised.  The four-engine differential suite holds it to that promise.

The request/result ABI is documented in ``docs/INTERPRETER.md``; the
structures below must match the C declarations in ``cgen.py`` field for
field.
"""

from __future__ import annotations

import ctypes
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .base import UnsupportedOpcode
from .cgen import NATIVE_PROC_WORDS, NATIVE_TRAP_CODES
from .memory import MemoryError_
from .nativebuild import NativeBuildCache, default_cache, find_compiler
from .runtime import DATA_BASE, MemoryLayout, resolve_globals
from .state import BudgetExceeded, Trap
from .tables import TableError, interp_tables

__all__ = [
    "NativeEngine",
    "NativeRun",
    "NativeExecutionError",
    "native_available",
    "run_native",
]

#: initial output-buffer size; doubled-and-rerun on overflow (runs are
#: deterministic, so a rerun with a bigger buffer is byte-identical).
_INITIAL_OUTPUT_CAP = 1 << 16
_MAX_OUTPUT_CAP = 1 << 28


class NativeExecutionError(Exception):
    """The engine violated its own invariants (e.g. the evaluation-stack
    guard fired).  Unreachable for validated modules; deliberately not a
    ``Trap`` so it is never mistaken for a program fault."""


def native_available() -> bool:
    """True when a C compiler is present (the engine can be built)."""
    return find_compiler() is not None


def _ubytes(data: bytes) -> ctypes.Array:
    """A C byte array holding ``data`` (never zero-length: ctypes pointers
    to empty arrays are still dereferenceable-size-zero on the C side)."""
    buf = (ctypes.c_ubyte * max(len(data), 1))()
    if data:
        ctypes.memmove(buf, data, len(data))
    return buf


class _RxnRequest(ctypes.Structure):
    _fields_ = [
        ("code", ctypes.POINTER(ctypes.c_ubyte)),
        ("procs", ctypes.POINTER(ctypes.c_uint32)),
        ("nprocs", ctypes.c_uint32),
        ("labels", ctypes.POINTER(ctypes.c_uint32)),
        ("global_addrs", ctypes.POINTER(ctypes.c_uint32)),
        ("nglobals", ctypes.c_uint32),
        ("entry", ctypes.c_uint32),
        ("args", ctypes.POINTER(ctypes.c_uint32)),
        ("nargs", ctypes.c_uint32),
        ("input", ctypes.POINTER(ctypes.c_ubyte)),
        ("input_len", ctypes.c_uint32),
        ("memory", ctypes.POINTER(ctypes.c_ubyte)),
        ("memory_size", ctypes.c_uint32),
        ("heap_base", ctypes.c_uint32),
        ("heap_limit", ctypes.c_uint32),
        ("arg_base", ctypes.c_uint32),
        ("frame_base", ctypes.c_uint32),
        ("output", ctypes.POINTER(ctypes.c_ubyte)),
        ("output_cap", ctypes.c_uint32),
        ("budget", ctypes.c_uint64),
    ]


class _RxnResult(ctypes.Structure):
    _fields_ = [
        ("status", ctypes.c_int32),
        ("exit_code", ctypes.c_int32),
        ("trap_code", ctypes.c_int32),
        ("trap_a", ctypes.c_uint32),
        ("trap_b", ctypes.c_uint32),
        ("output_len", ctypes.c_uint32),
        ("instret", ctypes.c_uint64),
        ("dispatches", ctypes.c_uint64),
    ]


@dataclass
class NativeRun:
    """Everything observable from one completed native run."""

    code: int
    output: bytes
    instret: int
    dispatches: int
    memory: bytes


class NativeEngine:
    """A compressed module bound to its grammar's compiled engine.

    Construction marshals the module once (code vectors, descriptors,
    label tables, resolved globals) and triggers the build if the cache
    has no object for the grammar; :meth:`run` is then allocation-light.
    Raises :class:`~repro.interp.nativebuild.NativeBuildError` (or its
    ``NativeUnavailableError`` subclass) when the engine cannot be built.
    """

    def __init__(self, cmodule, cache: Optional[NativeBuildCache] = None,
                 *, heap_size: int = 1 << 20) -> None:
        self.module = cmodule
        self.grammar = cmodule.grammar
        self._heap_size = heap_size
        self._budget = 0
        self._engine = (cache or default_cache()).load(self.grammar)
        lib = self._engine.lib
        lib.rxn_run.argtypes = [ctypes.POINTER(_RxnRequest),
                                ctypes.POINTER(_RxnResult)]

        code_parts: List[bytes] = []
        proc_words: List[int] = []
        label_words: List[int] = []
        offset = 0
        for proc in cmodule.procedures:
            proc_words.extend([
                offset, len(proc.code),
                len(label_words), len(proc.labels),
                proc.argsize, proc.framesize,
                1 if proc.needs_trampoline else 0,
            ])
            assert len(proc_words) % NATIVE_PROC_WORDS == 0
            code_parts.append(proc.code)
            label_words.extend(proc.labels)
            offset += len(proc.code)
        self._code = _ubytes(b"".join(code_parts))
        self._procs = (ctypes.c_uint32 * max(len(proc_words), 1))(
            *proc_words)
        self._labels = (ctypes.c_uint32 * max(len(label_words), 1))(
            *label_words)
        globals_ = resolve_globals(cmodule)
        self._globals = (ctypes.c_uint32 * max(len(globals_), 1))(*globals_)
        self._nglobals = len(globals_)

    # -- running -----------------------------------------------------------
    def run(self, *int_args: int, input_data: bytes = b"",
            budget: int = 0) -> NativeRun:
        """Run the entry procedure to completion.

        Raises the same exceptions a Python ``Machine`` would: ``Trap``
        and its subclasses for program faults, reconstructed from the
        engine's trap code.  ``budget`` bounds the run to that many rule
        dispatches (0 = unlimited); exceeding it raises
        :class:`~repro.interp.state.BudgetExceeded` at the identical
        dispatch the Python engines would.
        """
        if self.module.entry is None:
            raise Trap("program has no entry procedure")
        self._budget = int(budget or 0)
        layout = MemoryLayout.for_program(self.module,
                                          heap_size=self._heap_size)
        args = (ctypes.c_uint32 * max(len(int_args), 1))(
            *[a & 0xFFFFFFFF for a in int_args])
        inp = _ubytes(input_data)
        out_cap = _INITIAL_OUTPUT_CAP
        while True:
            # a fresh image per attempt: runs are deterministic, so the
            # overflow retry replays into identical memory
            memory = (ctypes.c_ubyte * layout.total)()
            if self.module.data:
                ctypes.memmove(ctypes.byref(memory, DATA_BASE),
                               self.module.data, len(self.module.data))
            output = (ctypes.c_ubyte * out_cap)()
            req = _RxnRequest(
                code=self._code,
                procs=self._procs,
                nprocs=len(self.module.procedures),
                labels=self._labels,
                global_addrs=self._globals,
                nglobals=self._nglobals,
                entry=self.module.entry,
                args=args,
                nargs=len(int_args),
                input=inp,
                input_len=len(input_data),
                memory=memory,
                memory_size=layout.total,
                heap_base=layout.heap_base,
                heap_limit=layout.heap_limit,
                arg_base=layout.arg_base,
                frame_base=layout.frame_base,
                output=output,
                output_cap=out_cap,
                budget=self._budget,
            )
            res = _RxnResult()
            retry = self._engine.lib.rxn_run(ctypes.byref(req),
                                             ctypes.byref(res))
            if retry:
                if out_cap >= _MAX_OUTPUT_CAP:
                    raise NativeExecutionError(
                        f"output exceeded {_MAX_OUTPUT_CAP} bytes")
                out_cap *= 4
                continue
            if res.status:
                raise self._map_trap(res.trap_code, res.trap_a, res.trap_b)
            return NativeRun(
                code=res.exit_code,
                output=bytes(output[:res.output_len]),
                instret=res.instret,
                dispatches=res.dispatches,
                memory=bytes(memory),
            )

    # -- trap reconstruction ----------------------------------------------
    def _proc_name(self, index: int) -> str:
        return self.module.procedures[index].name

    def _map_trap(self, code: int, a: int, b: int) -> Exception:
        """The exact exception the reference engine raises for this
        fault (class and message are asserted byte-identical by the
        equivalence suite)."""
        T = NATIVE_TRAP_CODES
        if code == T["DIV0"]:
            return Trap("division by zero")
        if code == T["IDIV0"]:
            return Trap("integer division by zero")
        if code == T["MEM_RANGE"]:
            return MemoryError_(
                f"access of {a} bytes at address {b:#x} is out of range")
        if code == T["UNTERMINATED"]:
            return MemoryError_(f"unterminated string at {a:#x}")
        if code == T["CALL_DEPTH"]:
            return Trap("call stack overflow")
        if code == T["FRAME_OVERFLOW"]:
            return Trap("frame stack overflow")
        if code == T["HEAP"]:
            return Trap("out of heap")
        if code == T["GLOBAL_RANGE"]:
            return Trap(f"global index {a} out of range")
        if code == T["PROC_RANGE"]:
            return Trap(f"procedure index {a} out of range")
        if code == T["BAD_CALL_ADDR"]:
            return Trap(f"call to non-function address {a:#x}")
        if code == T["NO_TRAMPOLINE"]:
            return Trap(f"indirect call to {self._proc_name(a)!r},"
                        f" which has no trampoline")
        if code == T["ABORT"]:
            return Trap("abort() called")
        if code == T["FELL_OFF"]:
            return Trap(f"{self._proc_name(a)}: fell off the end of the code")
        if code == T["LABEL_RANGE"]:
            return Trap(f"{self._proc_name(a)}: branch to label {b}"
                        f" out of range")
        if code == T["STREAM"]:
            return Trap("compressed stream exhausted mid-derivation")
        if code == T["BAD_CODEWORD"]:
            nt = self.grammar.nonterminals[a]
            rules = interp_tables(self.grammar).by_nt[nt]
            return TableError(
                f"codeword {b} out of range for"
                f" <{self.grammar.nt_name(nt)}> ({len(rules)} rules)")
        if code == T["UNSUPPORTED_OP"]:
            return UnsupportedOpcode(
                "block operators (ASGNB/ARGB) are not emitted by"
                " this front end")
        if code == T["BUDGET"]:
            return BudgetExceeded(BudgetExceeded.message(self._budget))
        return NativeExecutionError(
            f"native engine invariant violated (trap code {code})")


def run_native(cmodule, *int_args: int, input_data: bytes = b"",
               cache: Optional[NativeBuildCache] = None,
               budget: int = 0) -> Tuple[int, bytes]:
    """Convenience mirroring :func:`repro.interp.runtime.run_program`."""
    run = NativeEngine(cmodule, cache=cache).run(
        *int_args, input_data=input_data, budget=budget)
    return run.code, run.output
