"""Runtime compilation and caching of the native engine.

:func:`emit_native <repro.interp.cgen.emit_native>` produces one C file
per trained grammar; this module turns it into a loadable shared object.
The cache is content-addressed: the key folds together the ABI version,
the code-generator version, the compiler's identity and the grammar's
``content_key``, so a change to any of them compiles into a *new* slot
and stale objects can never be picked up (they are simply never looked
at again).  Builds are atomic — compile to a temp name in the cache
directory, ``os.replace`` into place — so concurrent processes racing on
the same grammar converge on one valid object.

Failure taxonomy
----------------

:class:`NativeBuildError` deliberately does **not** subclass
``RuntimeError``: the service maps ``RuntimeError`` (``Trap``) to a
*program* fault, while a build failure is an *environment* fault that
callers handle by falling back to the compiled Python engine.
:class:`NativeUnavailableError` is the no-compiler case of the same
thing.  The fault-injection site ``native.build`` fires at the head of
every real build so chaos plans can exercise the fallback path without
uninstalling the compiler.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shlex
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

from .. import faults
from ..core.program import program_for
from .cgen import NATIVE_ABI_VERSION, NATIVE_CGEN_VERSION, emit_native

__all__ = [
    "NativeBuildError",
    "NativeUnavailableError",
    "find_compiler",
    "NativeBuildCache",
    "default_cache",
]


class NativeBuildError(Exception):
    """Compiling or loading the native engine failed.

    Not a ``RuntimeError``/``Trap``: this is an environment problem, not
    a program fault, and the service's engine routing must be able to
    tell the two apart (fall back vs. report)."""


class NativeUnavailableError(NativeBuildError):
    """No usable C compiler on this host (or disabled via environment)."""


#: candidate driver names, tried in order when no override is set.
_COMPILERS = ("cc", "gcc", "clang")


def find_compiler() -> Optional[str]:
    """Absolute path of the C compiler to use, or None.

    ``REPRO_NATIVE_CC`` (then ``CC``) overrides detection; setting either
    to ``"none"`` or the empty string disables the native engine — the
    hook the deliberately compiler-less CI job uses.
    """
    for var in ("REPRO_NATIVE_CC", "CC"):
        override = os.environ.get(var)
        if override is not None:
            if override.strip() in ("", "none"):
                return None
            return shutil.which(override) or None
    for name in _COMPILERS:
        path = shutil.which(name)
        if path:
            return path
    return None


def _extra_cflags() -> List[str]:
    """Extra compiler flags from ``REPRO_NATIVE_CFLAGS`` (shlex rules).

    The hook the sanitizer CI job uses to build the generated C with
    ``-fsanitize=address,undefined``.  The flags are folded into the
    cache key, so a sanitized build and a plain build of the same
    grammar occupy different slots and can never shadow each other.
    """
    return shlex.split(os.environ.get("REPRO_NATIVE_CFLAGS", ""))


_compiler_ids: Dict[str, str] = {}


def _compiler_id(cc: str) -> str:
    """A string identifying the compiler build (folded into cache keys so
    a toolchain upgrade invalidates old objects)."""
    cached = _compiler_ids.get(cc)
    if cached is None:
        try:
            out = subprocess.run(
                [cc, "--version"], capture_output=True, text=True,
                timeout=30, check=False,
            ).stdout
            cached = (out or "").splitlines()[0].strip() if out else cc
        except OSError:
            cached = cc
        _compiler_ids[cc] = cached
    return cached


def _default_cache_root() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return Path(base) / "repro" / "native"


def _dlclose(lib: ctypes.CDLL) -> None:
    """Release a rejected dlopen handle (best effort, CPython-specific)."""
    try:
        import _ctypes
        _ctypes.dlclose(lib._handle)
    except Exception:  # noqa: BLE001 - hygiene only, never fatal
        pass


class _LoadedEngine:
    """One dlopen'd shared object with its entry points typed."""

    def __init__(self, path: Path, lib: ctypes.CDLL) -> None:
        self.path = path
        self.lib = lib
        lib.rxn_abi.restype = ctypes.c_int
        lib.rxn_abi.argtypes = []
        lib.rxn_grammar_key.restype = ctypes.c_char_p
        lib.rxn_grammar_key.argtypes = []
        lib.rxn_run.restype = ctypes.c_int
        # argtypes for rxn_run are set by repro.interp.native, which owns
        # the ctypes Structure definitions.


class NativeBuildCache:
    """Content-addressed build cache for native-engine shared objects.

    ``compilations`` and ``cache_hits`` count real compiler invocations
    and on-disk hits — the observable the cache tests pin ("a second load
    compiles zero times").
    """

    def __init__(self, root: Optional[Path] = None,
                 compiler: Optional[str] = "auto") -> None:
        self.root = Path(root) if root is not None else _default_cache_root()
        self._compiler_override = compiler
        self.compilations = 0
        self.cache_hits = 0
        self._loaded: Dict[str, _LoadedEngine] = {}

    # -- key / paths -------------------------------------------------------
    def compiler(self) -> str:
        cc = (find_compiler() if self._compiler_override == "auto"
              else self._compiler_override)
        if not cc:
            raise NativeUnavailableError(
                "no C compiler found (tried cc, gcc, clang; "
                "set REPRO_NATIVE_CC to override)")
        return cc

    def key_for(self, grammar) -> str:
        cc = self.compiler()
        ident = ":".join([
            str(NATIVE_ABI_VERSION),
            str(NATIVE_CGEN_VERSION),
            _compiler_id(cc),
            " ".join(_extra_cflags()),
            program_for(grammar).content_key,
        ])
        return hashlib.sha256(ident.encode()).hexdigest()[:40]

    def object_path(self, grammar) -> Path:
        return self.root / f"{self.key_for(grammar)}.so"

    # -- build / load ------------------------------------------------------
    def _compile(self, grammar, target: Path,
                 source_text: Optional[str] = None) -> None:
        if faults.ACTIVE is not None:
            faults.ACTIVE.fire("native.build", exc=NativeBuildError,
                               message="injected native build failure")
        cc = self.compiler()
        source = source_text if source_text is not None \
            else emit_native(grammar)
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_c = tempfile.mkstemp(suffix=".c", dir=self.root)
        tmp_so = tmp_c[:-2] + ".so"
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(source)
            cmd: List[str] = [cc, "-O2", "-shared", "-fPIC",
                              *_extra_cflags(),
                              "-o", tmp_so, tmp_c, "-lm"]
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=300)
            if proc.returncode != 0:
                detail = (proc.stderr or proc.stdout or "").strip()
                raise NativeBuildError(
                    f"{os.path.basename(cc)} failed (exit {proc.returncode})"
                    + (f":\n{detail[:2000]}" if detail else ""))
            self.compilations += 1
            os.replace(tmp_so, target)
        except subprocess.TimeoutExpired:
            raise NativeBuildError(f"{cc} timed out compiling the engine")
        finally:
            for leftover in (tmp_c, tmp_so):
                try:
                    os.unlink(leftover)
                except OSError:
                    pass

    def _try_load(self, path: Path, expect_key: str) -> _LoadedEngine:
        """dlopen + validate; raises NativeBuildError on any mismatch.

        A rejected object is dlclose'd before raising: dlopen caches open
        handles by pathname, so leaking the bad handle would make the
        subsequent rebuild's load return the stale object."""
        try:
            lib = ctypes.CDLL(str(path))
        except OSError as e:
            raise NativeBuildError(f"cannot load {path.name}: {e}") from e
        try:
            engine = _LoadedEngine(path, lib)
            abi = engine.lib.rxn_abi()
            key = engine.lib.rxn_grammar_key().decode()
        except AttributeError as e:
            _dlclose(lib)
            raise NativeBuildError(
                f"{path.name} lacks the engine entry points: {e}") from e
        if abi != NATIVE_ABI_VERSION:
            _dlclose(lib)
            raise NativeBuildError(
                f"{path.name} has ABI {abi}, expected {NATIVE_ABI_VERSION}")
        if key != expect_key:
            _dlclose(lib)
            raise NativeBuildError(
                f"{path.name} was built for grammar {key[:12]}…, "
                f"expected {expect_key[:12]}…")
        return engine

    def load(self, grammar, source_text: Optional[str] = None
             ) -> _LoadedEngine:
        """The loaded engine for ``grammar``, building if necessary.

        ``source_text`` substitutes the emitted C (the build tests use it
        to provoke compiler errors); it does not change the cache key, so
        pass it only with a private cache root.
        """
        cache_key = self.key_for(grammar)
        engine = self._loaded.get(cache_key)
        if engine is not None:
            self.cache_hits += 1
            return engine
        content_key = program_for(grammar).content_key
        target = self.root / f"{cache_key}.so"
        if target.exists():
            try:
                engine = self._try_load(target, content_key)
                self.cache_hits += 1
                self._loaded[cache_key] = engine
                return engine
            except NativeBuildError:
                # corrupted or truncated object: rebuild, don't crash
                try:
                    os.unlink(target)
                except OSError:
                    pass
        self._compile(grammar, target, source_text=source_text)
        engine = self._try_load(target, content_key)
        self._loaded[cache_key] = engine
        return engine


_DEFAULT: Optional[NativeBuildCache] = None


def default_cache() -> NativeBuildCache:
    """The process-wide cache (shared so every engine instance for the
    same grammar reuses one dlopen'd object)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = NativeBuildCache()
    return _DEFAULT
