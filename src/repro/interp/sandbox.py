"""Crash-isolated native execution: a supervised helper subprocess.

The native engine (:mod:`repro.interp.native`) runs generated C inside
the calling process.  That is the right default for trusted grammars —
zero marshalling overhead, direct ctypes calls — but it means a
memory-safety bug in the generated code, or a genuinely runaway
derivation, takes the whole process with it: in a service worker one
poisonous request kills every in-flight request on that worker and
costs a respawn.

This module moves the blast radius into a disposable helper::

    supervisor (service worker)          helper (this module, -m)
    ---------------------------          -------------------------
    NativeSandbox.run(container, ...) ->  length-prefixed pickle
        watchdog on the reply read        NativeEngine per container
                                          digest (small LRU), runs it,
    NativeRun | the engine's own      <-  pickles the result or the
    exception, re-raised intact           exception back

The helper is *pooled*: it stays alive across requests (so the happy
path pays one pipe round-trip, not a process spawn — the speed gate in
``benchmarks/test_interp_speed.py`` holds through the sandbox) and is
respawned on demand after a crash.  Three failure classes become
structured errors instead of dead workers:

* the helper dies on a signal (SIGSEGV, SIGBUS, SIGABRT, ...): the
  supervisor sees EOF plus a negative returncode and raises
  :class:`NativeCrashError` carrying the signal, the grammar's content
  key, and the request digest;
* the helper never answers: the supervisor's wall-clock watchdog
  expires, the helper is SIGKILLed, and :class:`NativeHangError` is
  raised (the in-engine dispatch budget usually traps runaways first —
  the watchdog is the backstop for hangs the budget cannot see);
* the engine raises normally (``Trap``, ``BudgetExceeded``, decode
  errors for malformed containers): the exception object itself rides
  the pipe back and is re-raised in the supervisor, byte-identical to
  the in-process engine's behaviour.

Both sandbox errors are deliberately **not** ``Trap``/``RuntimeError``
subclasses: they are verdicts about the *request* (it broke the
engine), not program faults, and the service routes them into the
poison quarantine rather than the trap path.

The chaos sites ``native.crash`` and ``native.hang`` are evaluated in
the supervisor (keeping the fault plane's RNG stream in one process)
and carried to the helper as directives: the helper kills itself with
the requested signal, or sleeps past the watchdog, producing the real
failure end to end.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import select
import signal
import struct
import subprocess
import sys
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Sequence

from .. import faults
from .native import NativeRun

__all__ = [
    "NativeSandbox",
    "SandboxError",
    "SandboxRemoteError",
    "NativeCrashError",
    "NativeHangError",
    "request_digest",
    "CRASH_SIGNALS",
]

_HDR = struct.Struct(">I")
_MAX_FRAME = 1 << 30

#: helper-side engine LRU: distinct containers kept warm per helper
_ENGINE_CACHE_SIZE = 8

#: how long an injected hang sleeps when the rule gives no ``arg`` —
#: far past any plausible watchdog, never literally forever
_HANG_DEFAULT = 3600.0

CRASH_SIGNALS = {
    "segv": signal.SIGSEGV,
    "bus": signal.SIGBUS,
    "abort": signal.SIGABRT,
}


def request_digest(container: bytes, int_args: Sequence[int],
                   input_data: bytes) -> str:
    """SHA-256 identity of one native request (payload, args, input).

    The service combines this with the grammar's content key
    (:func:`repro.registry.registry.poison_key`) to recognize a request
    that has already crashed or hung the engine.
    """
    acc = hashlib.sha256(container)
    acc.update(b"\x00args")
    for a in int_args:
        acc.update(struct.pack(">q", int(a) & 0xFFFFFFFF))
    acc.update(b"\x00input")
    acc.update(input_data)
    return acc.hexdigest()


class SandboxError(Exception):
    """Base for supervisor-level failures (not program faults)."""


class SandboxRemoteError(SandboxError):
    """The helper raised something that could not ride the pipe back
    (unpicklable exception); carries its repr.  Treated by callers as
    an engine fault, never as a program trap."""


class NativeCrashError(SandboxError):
    """The helper died on a signal while running this request."""

    def __init__(self, signum: int, content_key: str = "",
                 req_digest: str = "") -> None:
        self.signum = signum
        self.content_key = content_key
        self.request_digest = req_digest
        try:
            name = signal.Signals(signum).name
        except ValueError:
            name = f"signal {signum}"
        self.signame = name
        super().__init__(
            f"native helper died with {name} running grammar "
            f"{content_key[:12] or '<unknown>'} "
            f"request {req_digest[:12] or '<unknown>'}")


class NativeHangError(SandboxError):
    """The helper blew the supervisor's wall-clock watchdog."""

    def __init__(self, timeout: float, content_key: str = "",
                 req_digest: str = "") -> None:
        self.timeout = timeout
        self.content_key = content_key
        self.request_digest = req_digest
        super().__init__(
            f"native helper exceeded its {timeout:g}s watchdog running "
            f"grammar {content_key[:12] or '<unknown>'} "
            f"request {req_digest[:12] or '<unknown>'}")


class _HelperGone(Exception):
    """Internal: EOF from the helper mid-reply."""


class _WatchdogExpired(Exception):
    """Internal: the reply deadline passed."""


class NativeSandbox:
    """Supervisor for one pooled helper subprocess.

    ``timeout`` is the default per-request watchdog; ``cache_dir``
    points the helper at a private native build cache (tests), else it
    shares the default content-addressed cache.  Thread-safe: one
    request runs at a time per sandbox (callers needing concurrency
    hold several sandboxes).
    """

    def __init__(self, *, timeout: float = 30.0,
                 spawn_timeout: float = 60.0,
                 cache_dir: Optional[os.PathLike] = None) -> None:
        self.timeout = float(timeout)
        self.spawn_timeout = float(spawn_timeout)
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._proc: Optional[subprocess.Popen] = None
        self._lock = threading.Lock()
        self.stats: Dict[str, int] = {
            "spawns": 0, "requests": 0, "crashes": 0, "hangs": 0,
        }

    # -- helper lifecycle ---------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.poll() is None

    def _spawn(self) -> None:
        cmd = [sys.executable, "-m", "repro.interp.sandbox"]
        if self._cache_dir is not None:
            cmd.append(str(self._cache_dir))
        self._proc = subprocess.Popen(
            cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, close_fds=True)
        self.stats["spawns"] += 1
        try:
            ready = self._read_frame(time.monotonic() + self.spawn_timeout)
        except (_HelperGone, _WatchdogExpired) as exc:
            self._kill()
            raise SandboxError(
                f"sandbox helper failed to start: {exc.__class__.__name__}"
            ) from None
        if not isinstance(ready, dict) or not ready.get("ready"):
            self._kill()
            raise SandboxError("sandbox helper sent a malformed handshake")

    def _kill(self) -> Optional[int]:
        """SIGKILL + reap; returns the exit status (negative = signal)."""
        proc, self._proc = self._proc, None
        if proc is None:
            return None
        if proc.poll() is None:
            proc.kill()
        rc = proc.wait()
        for fh in (proc.stdin, proc.stdout):
            if fh is not None:
                try:
                    fh.close()
                except OSError:
                    pass
        return rc

    def close(self) -> None:
        """Shut the helper down (EOF first, SIGKILL if it lingers)."""
        with self._lock:
            proc = self._proc
            if proc is None:
                return
            if proc.poll() is None and proc.stdin is not None:
                try:
                    proc.stdin.close()
                except OSError:
                    pass
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    pass
            self._kill()

    def __enter__(self) -> "NativeSandbox":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- framing ------------------------------------------------------------

    def _read_frame(self, deadline: float):
        """One pickled frame from the helper, or raise on EOF/deadline."""
        assert self._proc is not None and self._proc.stdout is not None
        fd = self._proc.stdout.fileno()
        header = self._read_exact(fd, _HDR.size, deadline)
        (length,) = _HDR.unpack(header)
        if length > _MAX_FRAME:
            raise _HelperGone(f"oversized frame ({length} bytes)")
        return pickle.loads(self._read_exact(fd, length, deadline))

    @staticmethod
    def _read_exact(fd: int, want: int, deadline: float) -> bytes:
        buf = bytearray()
        while len(buf) < want:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _WatchdogExpired()
            ready, _, _ = select.select([fd], [], [], remaining)
            if not ready:
                continue
            chunk = os.read(fd, want - len(buf))
            if not chunk:
                raise _HelperGone("eof")
            buf += chunk
        return bytes(buf)

    def _write_frame(self, obj) -> None:
        assert self._proc is not None and self._proc.stdin is not None
        body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._proc.stdin.write(_HDR.pack(len(body)) + body)
        self._proc.stdin.flush()

    # -- running ------------------------------------------------------------

    def run(self, container: bytes, int_args: Sequence[int] = (),
            input_data: bytes = b"", *, budget: int = 0,
            heap_size: int = 1 << 20, want_memory: bool = False,
            timeout: Optional[float] = None,
            content_key: str = "") -> NativeRun:
        """Run ``container`` (serialized compressed module) natively.

        Returns the same :class:`~repro.interp.native.NativeRun` an
        in-process engine would (``memory`` is ``b""`` unless
        ``want_memory``), re-raises the engine's own exceptions, and
        converts helper death into :class:`NativeCrashError` /
        :class:`NativeHangError`.
        """
        digest = request_digest(container, int_args, input_data)
        request = {
            "container": container,
            "args": tuple(int(a) for a in int_args),
            "input": input_data,
            "budget": int(budget or 0),
            "heap_size": int(heap_size),
            "want_memory": bool(want_memory),
        }
        plane = faults.ACTIVE
        if plane is not None:
            # native.build is evaluated here too: the helper has no
            # fault plane, and callers (the service's fallback path)
            # expect the site to work regardless of isolation mode.
            from .nativebuild import NativeBuildError
            plane.fire("native.build", exc=NativeBuildError,
                       message="injected native build failure")
            rule = plane.decide("native.crash")
            if rule is not None:
                request["crash"] = int(CRASH_SIGNALS.get(
                    rule.mode or "segv", signal.SIGSEGV))
            rule = plane.decide("native.hang")
            if rule is not None:
                request["hang"] = float(rule.arg or _HANG_DEFAULT)
        watchdog = self.timeout if timeout is None else float(timeout)
        with self._lock:
            if not self.alive:
                self._kill()
                self._spawn()
            try:
                self._write_frame(request)
            except (BrokenPipeError, OSError):
                # Died between requests (not on one): one respawn+retry.
                self._kill()
                self._spawn()
                self._write_frame(request)
            try:
                reply = self._read_frame(time.monotonic() + watchdog)
            except _WatchdogExpired:
                self._kill()
                self.stats["hangs"] += 1
                raise NativeHangError(
                    watchdog, content_key, digest) from None
            except _HelperGone:
                rc = self._kill()
                self.stats["crashes"] += 1
                signum = -rc if rc is not None and rc < 0 else 0
                raise NativeCrashError(
                    signum, content_key, digest) from None
            self.stats["requests"] += 1
        if not isinstance(reply, dict):
            raise SandboxRemoteError(f"malformed reply {type(reply)!r}")
        if reply.get("ok"):
            return NativeRun(
                code=reply["code"], output=reply["output"],
                instret=reply["instret"], dispatches=reply["dispatches"],
                memory=reply.get("memory", b""))
        exc = reply.get("exc")
        if isinstance(exc, BaseException):
            raise exc
        raise SandboxRemoteError(str(reply.get("repr", "unknown failure")))


# -- the helper process ------------------------------------------------------


def _h_read_exact(fh, want: int) -> bytes:
    buf = b""
    while len(buf) < want:
        chunk = fh.read(want - len(buf))
        if not chunk:
            raise EOFError
        buf += chunk
    return buf


def _h_read_frame(fh):
    (length,) = _HDR.unpack(_h_read_exact(fh, _HDR.size))
    if length > _MAX_FRAME:
        raise EOFError
    return pickle.loads(_h_read_exact(fh, length))


def _h_write_frame(fh, obj) -> None:
    body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    fh.write(_HDR.pack(len(body)) + body)
    fh.flush()


def _h_engine(req, engines: "OrderedDict", cache):
    """The helper's per-container engine LRU (keyed content+heap)."""
    from .native import NativeEngine
    from ..storage import load_any

    key = (hashlib.sha256(req["container"]).hexdigest(),
           int(req["heap_size"]))
    engine = engines.get(key)
    if engine is None:
        program = load_any(req["container"])
        if not hasattr(program, "grammar"):
            raise ValueError(
                "sandbox runs compressed containers only "
                "(got an uncompressed module)")
        engine = NativeEngine(program, cache=cache,
                              heap_size=int(req["heap_size"]))
        engines[key] = engine
        while len(engines) > _ENGINE_CACHE_SIZE:
            engines.popitem(last=False)
    else:
        engines.move_to_end(key)
    return engine


def _helper_main(argv) -> int:
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    # Anything that prints must not corrupt the frame stream.
    sys.stdout = sys.stderr
    cache = None
    if argv:
        from .nativebuild import NativeBuildCache
        cache = NativeBuildCache(Path(argv[0]))
    engines: "OrderedDict" = OrderedDict()
    _h_write_frame(stdout, {"ready": True, "pid": os.getpid()})
    while True:
        try:
            req = _h_read_frame(stdin)
        except EOFError:
            return 0
        # Chaos directives, decided by the supervisor's fault plane:
        # produce the *real* failure (a fatal signal, a blown watchdog),
        # end to end through the same machinery a genuine bug would hit.
        if req.get("crash"):
            os.kill(os.getpid(), int(req["crash"]))
        if req.get("hang"):
            time.sleep(float(req["hang"]))  # supervisor SIGKILLs us
        try:
            run = _h_engine(req, engines, cache).run(
                *req["args"], input_data=req["input"],
                budget=req["budget"])
            reply = {
                "ok": True,
                "code": run.code,
                "output": run.output,
                "instret": run.instret,
                "dispatches": run.dispatches,
            }
            if req.get("want_memory"):
                reply["memory"] = run.memory
        except Exception as exc:  # noqa: BLE001 — every engine error rides back
            try:
                pickle.dumps(exc)
                reply = {"ok": False, "exc": exc}
            except Exception:
                reply = {"ok": False, "exc": None,
                         "repr": f"{type(exc).__name__}: {exc}"}
        _h_write_frame(stdout, reply)


if __name__ == "__main__":
    sys.exit(_helper_main(sys.argv[1:]))
