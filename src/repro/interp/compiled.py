"""The direct-threaded engine: precompiled compressed-form execution.

:class:`~repro.interp.interp2.Interpreter2` is the *reference* executor —
a straight transliteration of the paper's generated ``interpNT`` that
re-walks rule right-hand sides and re-dispatches through dicts on every
symbol.  This module is the production engine over the same compressed
form: the grammar is flattened once at load time
(:class:`~repro.interp.tables.CompiledTables`) and execution becomes an
iterative dispatch loop over an explicit return stack:

* one list index per *rule* dispatch (nonterminal call sites were resolved
  to their target program list at compile time, and every row is padded
  with sentinel programs so no bounds check runs in the hot loop) instead
  of one dict probe per *symbol*;
* burned literal bytes are baked into the step (Section 5's specialized
  GET), and each maximal run of operators between control transfers is
  compiled into ONE generated function that calls its handlers directly,
  reads its streamed bytes at fixed offsets, and returns the advanced
  ``pc`` — no per-operator decode or loop overhead at all;
* a dispatch in tail position replaces the current program in place —
  chains of unit rules never grow the return stack;
* no Python recursion anywhere in a derivation: the return stack is an
  explicit list, local to the activation, so a ``Trap`` at any dispatch
  depth unwinds it trivially (it is dropped with the frame) and the engine
  object stays reusable.

Observable behaviour is identical to the reference engine by construction
and is enforced by ``tests/test_exec_equivalence.py`` (results, output,
memory images, traps) across the fuzz corpus; ``benchmarks/
test_interp_speed.py`` gates the speedup this buys.  The one deliberate
divergence: ``machine.instret`` is accounted per *run* of burned
operators, not per operator, so after a ``Trap`` raised mid-run (a fault
that kills the machine) the count may include the handful of operators
that were queued behind the faulting one.  Runs end at control-transfer
operators, so on every normally-terminating, branching, returning, and
exiting path the count matches the reference interpreters exactly.

Control transfers match the reference: a ``Jump`` abandons the in-progress
derivation (the return stack is cleared — the compressor guarantees every
label is the start of a fresh ``<start>`` derivation, Section 4.1) and a
``Return`` unwinds the whole activation.
"""

from __future__ import annotations

from typing import Any, Optional

from .. import faults
from .state import BudgetExceeded, IState, Jump, Return, Trap
from .tables import CompiledTables, TableError, compiled_tables

__all__ = ["CompiledEngine"]

_EXHAUSTED = "compressed stream exhausted mid-derivation"


def _stream_need(step) -> int:
    """Bytes the step reads from the compressed stream (for classifying
    an IndexError as stream exhaustion)."""
    tag = step[0]
    if tag == 0:    # fused run: streamed slots in its literal plans
        return sum(plan.count(None) for plan in step[4])
    if tag == 3:    # dispatch: one codeword byte
        return 1
    return 0


class CompiledEngine:
    """Executor for compressed modules over flattened rule tables (plug
    into :class:`repro.interp.runtime.Machine`, same duck type as the
    reference :class:`~repro.interp.interp2.Interpreter2`)."""

    def __init__(self, cmodule,
                 tables: Optional[CompiledTables] = None) -> None:
        self.module = cmodule
        self.tables = tables if tables is not None \
            else compiled_tables(cmodule.grammar)

    def run_procedure(self, machine, index: int, istate: IState) -> Any:
        # Fault site at activation granularity, not per step: the hot
        # loop below stays branch-free when no fault plane is active.
        if faults.ACTIVE is not None:
            faults.ACTIVE.fire("engine.dispatch",
                               message=f"procedure {index}")
        cproc = self.module.procedures[index]
        code = cproc.code
        labels = cproc.labels
        end = len(code)
        start_programs = self.tables.rows[self.tables.start_row]

        pc = 0
        instret = 0        # flushed to machine.instret in the finally
        # Dispatches count on the machine directly (not a local): nested
        # activations share one exact total, so the execution budget
        # traps at the identical dispatch on every engine.
        budget = machine.budget
        stack = []         # explicit return stack: (steps, resume, len)
        push = stack.append
        pop = stack.pop
        step = None        # most recent step, for exhaustion diagnosis
        try:
            while True:
                try:
                    while pc < end:
                        # One complete block derivation (interpNT).
                        steps = start_programs[code[pc]]
                        pc += 1
                        machine.dispatches += 1
                        if budget and machine.dispatches > budget:
                            raise BudgetExceeded(
                                BudgetExceeded.message(budget))
                        i = 0
                        n = len(steps)
                        while True:
                            if i == n:
                                if stack:
                                    steps, i, n = pop()
                                    continue
                                break  # derivation complete
                            step = steps[i]
                            i += 1
                            tag = step[0]
                            if tag == 1:    # one burned operator
                                instret += 1
                                step[1](istate, machine, step[2])
                            elif tag == 3:  # nonterminal dispatch
                                if i != n:  # not a tail call: save frame
                                    push((steps, i, n))
                                steps = step[1][code[pc]]
                                pc += 1
                                machine.dispatches += 1
                                if budget and \
                                        machine.dispatches > budget:
                                    raise BudgetExceeded(
                                        BudgetExceeded.message(budget))
                                i = 0
                                n = len(steps)
                            elif tag == 0:  # fused operator run
                                instret += step[2]
                                pc = step[1](istate, machine, code, pc)
                            else:           # sentinel: invalid codeword
                                raise TableError(step[1])
                    raise Trap(
                        f"{cproc.name}: fell off the end of the code"
                    )
                except IndexError:
                    # The hot loop reads the stream unguarded (fused runs
                    # read ``code[pc+k]``; dispatches read ``code[pc]``):
                    # running off the end surfaces as IndexError here.
                    # Convert it to the reference engines' Trap when the
                    # faulting step indeed needed bytes past the end;
                    # anything else is a real bug and propagates.
                    if step is not None and pc + _stream_need(step) > end:
                        raise Trap(_EXHAUSTED) from None
                    raise
                except Jump as jump:
                    label = jump.label
                    if not 0 <= label < len(labels):
                        raise Trap(
                            f"{cproc.name}: branch to label {label} "
                            f"out of range"
                        ) from None
                    pc = labels[label]
                    # The in-progress derivation is abandoned: the label
                    # is the start of a fresh <start> derivation, so the
                    # return stack unwinds wholesale.
                    if stack:
                        del stack[:]
                except Return as ret:
                    return ret.value
        finally:
            # Counter flush + pc publication happen on *every* exit —
            # normal return, Exit, or a Trap from any dispatch depth —
            # so the machine's counters stay exact and the faulting
            # stream position is observable after unwinding.
            machine.instret += instret
            istate.pc = pc
