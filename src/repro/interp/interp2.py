"""The generated interpreter: executes compressed bytecode (paper Section 5).

``interp`` repeatedly calls ``interpNT(istate, NT_start)``: one call
executes one whole block derivation.  ``interpNT`` fetches the next
compressed byte which, with the current nonterminal, identifies the rule
for the next derivation step; it then advances across the rule's right-hand
side, executing terminals through the same ``interpret1`` switch as the
uncompressed interpreter and recursing on nonterminals.  Literal operand
bytes come either from the rule (burned in) or from the stream, as the
rule's compiled plan says (Section 5's modified GET macro).

The recursion is realized with an explicit step stack, because a block with
many statements derives through a deep left-recursive ``<start>`` spine.

On a control transfer the whole in-progress derivation is abandoned and the
pc moves to the label's compressed offset — guaranteed by the compressor to
be the start of a fresh ``<start>`` derivation (Section 4.1).
"""

from __future__ import annotations

from typing import Any, List, Tuple

from .base import HANDLERS
from .state import BudgetExceeded, IState, Jump, Return, Trap
from .tables import interp_tables

__all__ = ["Interpreter2"]


class Interpreter2:
    """Executor for compressed modules (plug into
    :class:`repro.interp.runtime.Machine`)."""

    def __init__(self, cmodule) -> None:
        self.module = cmodule
        self.tables = interp_tables(cmodule.grammar)
        self.byte_nt = self.tables.byte_nt

    # -- stream access ------------------------------------------------------
    @staticmethod
    def _read_byte(istate: IState, code: bytes) -> int:
        pc = istate.pc
        if pc >= len(code):
            raise Trap("compressed stream exhausted mid-derivation")
        istate.pc = pc + 1
        return code[pc]

    def _exec_derivation(self, machine, istate: IState, code: bytes) -> None:
        """interpNT(istate, NT_start): run one complete block derivation."""
        tables = self.tables
        read = self._read_byte
        budget = machine.budget
        program = tables.program(tables.start, read(istate, code))
        machine.dispatches += 1
        if budget and machine.dispatches > budget:
            raise BudgetExceeded(BudgetExceeded.message(budget))
        stack: List[Tuple[tuple, int]] = [(program.steps, 0)]
        while stack:
            steps, i = stack[-1]
            if i == len(steps):
                stack.pop()
                continue
            stack[-1] = (steps, i + 1)
            step = steps[i]
            if step[0] == "op":
                _, opcode_, plan = step
                if plan:
                    operands = tuple(
                        b if b is not None else read(istate, code)
                        for b in plan
                    )
                else:
                    operands = ()
                machine.instret += 1
                HANDLERS[opcode_](istate, machine, operands)
            else:
                sub = tables.program(step[1], read(istate, code))
                machine.dispatches += 1
                if budget and machine.dispatches > budget:
                    raise BudgetExceeded(BudgetExceeded.message(budget))
                stack.append((sub.steps, 0))

    def run_procedure(self, machine, index: int, istate: IState) -> Any:
        cproc = self.module.procedures[index]
        code = cproc.code
        labels = cproc.labels
        end = len(code)
        istate.pc = 0
        while True:
            try:
                while istate.pc < end:
                    self._exec_derivation(machine, istate, code)
                raise Trap(f"{cproc.name}: fell off the end of the code")
            except Jump as jump:
                try:
                    istate.pc = labels[jump.label]
                except IndexError:
                    raise Trap(
                        f"{cproc.name}: branch to label {jump.label} "
                        f"out of range"
                    ) from None
            except Return as ret:
                return ret.value
