"""The initial interpreter: executes uncompressed bytecode (paper Section 5).

``interp`` is the classic fetch/dispatch loop: fetch the operator byte at
the pc, collect its literal bytes (the GET macro), dispatch through the
``interpret1`` switch (:mod:`repro.interp.base`).  Control transfers set the
pc from the procedure's label table; returns unwind to ``call_procedure``.

Procedures are predecoded once into a pc-indexed table so repeated
execution (loops) does not re-split literal bytes — the moral equivalent of
a threaded-code interpreter, without changing observable behaviour.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..bytecode.instructions import iter_decode
from .base import HANDLERS
from .state import BudgetExceeded, IState, Jump, Return, Trap

__all__ = ["Interpreter1"]


def _noop(istate, machine, operands):
    return None


class Interpreter1:
    """Executor for uncompressed modules (plug into
    :class:`repro.interp.runtime.Machine`)."""

    def __init__(self, module) -> None:
        self.module = module
        # pc -> (handler, operand bytes, next pc), per procedure
        self._decoded = [self._predecode(p.code) for p in module.procedures]

    @staticmethod
    def _predecode(code: bytes) -> Dict[int, Tuple]:
        table: Dict[int, Tuple] = {}
        decoded = list(iter_decode(code))
        for off, ins in reversed(decoded):
            if ins.op.name == "LABELV":
                # A branch-target mark, not an operator: alias its entry to
                # the following instruction so it costs (and counts) nothing,
                # matching the compressed interpreter where LABELV does not
                # exist at all.
                nxt = off + ins.size
                table[off] = table.get(nxt, (_noop, (), nxt))
            else:
                table[off] = (
                    HANDLERS[ins.op.code], ins.operands, off + ins.size
                )
        return table

    def run_procedure(self, machine, index: int, istate: IState) -> Any:
        proc = self.module.procedures[index]
        table = self._decoded[index]
        labels = proc.labels
        end = len(proc.code)
        # The uncompressed form has no rule dispatches; the budget
        # counts instruction fetches instead (still deterministic —
        # the same program always traps at the same fetch).
        budget = machine.budget
        pc = 0
        while True:
            try:
                while pc < end:
                    handler, operands, pc = table[pc]
                    machine.instret += 1
                    if budget:
                        machine.dispatches += 1
                        if machine.dispatches > budget:
                            raise BudgetExceeded(
                                BudgetExceeded.message(budget))
                    handler(istate, machine, operands)
                raise Trap(f"{proc.name}: fell off the end of the code")
            except Jump as jump:
                try:
                    pc = labels[jump.label]
                except IndexError:
                    raise Trap(
                        f"{proc.name}: branch to label {jump.label} "
                        f"out of range"
                    ) from None
            except Return as ret:
                return ret.value
