"""Interpreter size measurement (paper Section 6).

The paper reports 7,855 bytes for the initial interpreter and 18,962 bytes
for the one generated from the lcc-trained grammar, compiled with a
space-optimizing C compiler; the grammar accounts for most of the growth.

We measure the same way when a C compiler is available: emit the two
interpreters (:mod:`repro.interp.cgen`), compile with ``cc -Os -c``, and
read text+data from ``size``.  Without a compiler, a documented fallback
model is used: measured per-case costs plus the real encoded grammar size
(the grammar bytes are exact either way — they come from the actual
encoder in :mod:`repro.grammar.serialize`).
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from typing import Optional

from ..bytecode.opcodes import OPS
from ..grammar.cfg import Grammar
from ..grammar.serialize import grammar_bytes
from .cgen import emit_interp1, emit_interp2

__all__ = ["InterpreterSizes", "measure_sizes", "compiler_available"]

# Fallback model constants (bytes), calibrated once against gcc -Os on
# x86-64 for the emitted sources; used only when no C compiler exists.
_MODEL_CORE1 = 400          # fetch loop + switch skeleton
_MODEL_PER_CASE = 29        # average case body + jump-table slot
_MODEL_CORE2 = 800          # interpNT walker + GET indirection


@dataclass
class InterpreterSizes:
    """The Section-6 size figures."""

    interp1: int            # initial interpreter, bytes
    interp2: int            # generated interpreter, bytes
    grammar: int            # encoded grammar/rule tables, bytes
    measured: bool          # True if compiled with a real C compiler

    @property
    def growth(self) -> int:
        """Extra interpreter bytes paid for compressed execution."""
        return self.interp2 - self.interp1


def compiler_available() -> Optional[str]:
    """Path of a usable C compiler, or None."""
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _compile_size(cc: str, source: str, workdir: str, name: str) -> int:
    """Compile one translation unit with -Os and return text+data bytes."""
    c_path = os.path.join(workdir, f"{name}.c")
    o_path = os.path.join(workdir, f"{name}.o")
    with open(c_path, "w") as f:
        f.write(source)
    subprocess.run(
        [cc, "-Os", "-w", "-c", c_path, "-o", o_path],
        check=True, capture_output=True,
    )
    out = subprocess.run(
        ["size", o_path], check=True, capture_output=True, text=True
    ).stdout.splitlines()
    # "   text    data     bss     dec ..." then one row per file.
    fields = out[1].split()
    return int(fields[0]) + int(fields[1])


def measure_sizes(grammar: Grammar) -> InterpreterSizes:
    """Measure interpreter-1 and interpreter-2 sizes for a grammar."""
    gbytes = grammar_bytes(grammar, compact=True)
    cc = compiler_available()
    if cc is not None:
        with tempfile.TemporaryDirectory() as workdir:
            try:
                size1 = _compile_size(cc, emit_interp1(), workdir, "i1")
                size2 = _compile_size(cc, emit_interp2(grammar), workdir,
                                      "i2")
                return InterpreterSizes(size1, size2, gbytes, True)
            except (subprocess.CalledProcessError, OSError):
                pass  # fall through to the model
    n_cases = len(OPS)
    size1 = _MODEL_CORE1 + _MODEL_PER_CASE * n_cases
    size2 = size1 + _MODEL_CORE2 + gbytes
    return InterpreterSizes(size1, size2, gbytes, False)
