"""Operator semantics: the ``interpret1`` switch (paper Section 5).

One handler per operator, shared verbatim by both interpreters: the
uncompressed interpreter fetches operator and literal bytes from the code
stream, the compressed interpreter fetches the operator from a rule's
right-hand side and each literal byte either from the rule (burned in) or
from the stream — but both then call :func:`execute` with the same
``(opcode, operand_bytes)`` pair.

Integer values on the evaluation stack are 32-bit patterns; the signed
operators reinterpret (see :mod:`repro.interp.memory`).  C semantics are
followed where they differ from Python's: signed division/remainder
truncate toward zero, shifts mask the count to 5 bits, float arithmetic
with the ``F`` suffix rounds through single precision.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

from ..bytecode.opcodes import OPS, OP_BY_NAME
from .memory import f32, to_signed, to_unsigned
from .state import IState, Jump, Return, Trap

__all__ = ["execute", "HANDLERS", "UnsupportedOpcode"]


class UnsupportedOpcode(Trap):
    """Raised for block operators (ASGNB/ARGB) the mini-C front end never
    emits; they remain in the ISA and grammar for fidelity to Appendix 2."""


Handler = Callable[[IState, "object", Tuple[int, ...]], None]
HANDLERS: Dict[int, Handler] = {}


def _u16(operands: Tuple[int, ...]) -> int:
    return operands[0] | (operands[1] << 8)


def _lit_value(operands: Tuple[int, ...]) -> int:
    value = 0
    for i, b in enumerate(operands):
        value |= b << (8 * i)
    return value


def _register(name: str, fn: Handler) -> None:
    HANDLERS[OP_BY_NAME[name].code] = fn


def _idiv(a: int, b: int) -> int:
    """C signed division: truncation toward zero."""
    if b == 0:
        raise Trap("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


def _imod(a: int, b: int) -> int:
    return a - _idiv(a, b) * b


# -- binary value operators (v2) --------------------------------------------

_BIN_U = {
    "ADDU": lambda a, b: a + b,
    "SUBU": lambda a, b: a - b,
    "MULU": lambda a, b: a * b,
    "DIVU": lambda a, b: a // b if b else _div0(),
    "MODU": lambda a, b: a % b if b else _div0(),
    "BANDU": lambda a, b: a & b,
    "BORU": lambda a, b: a | b,
    "BXORU": lambda a, b: a ^ b,
    "LSHU": lambda a, b: a << (b & 31),
    "RSHU": lambda a, b: a >> (b & 31),
}

_BIN_I = {
    "MULI": lambda a, b: a * b,
    "DIVI": _idiv,
    "MODI": _imod,
    "LSHI": lambda a, b: a << (b & 31),
    "RSHI": lambda a, b: a >> (b & 31),
}

_CMP = {"EQ": lambda a, b: a == b, "NE": lambda a, b: a != b,
        "GE": lambda a, b: a >= b, "GT": lambda a, b: a > b,
        "LE": lambda a, b: a <= b, "LT": lambda a, b: a < b}

_BIN_F = {"ADD": lambda a, b: a + b, "SUB": lambda a, b: a - b,
          "MUL": lambda a, b: a * b,
          "DIV": lambda a, b: a / b if b else _div0()}


def _div0():
    raise Trap("division by zero")


# Handlers manipulate ``istate.stack`` directly rather than going through
# the ``IState.push``/``pop`` conveniences: the evaluation stack is touched
# by nearly every operator, and list methods avoid a Python frame per
# access.  (The semantics are identical — push/pop are thin wrappers.)

def _make_bin_u(fn):
    def handler(istate, machine, operands):
        stack = istate.stack
        b = stack.pop()
        a = stack.pop()
        stack.append(to_unsigned(fn(a, b)))
    return handler


def _make_bin_i(fn):
    def handler(istate, machine, operands):
        stack = istate.stack
        b = stack.pop()
        a = stack.pop()
        stack.append(to_unsigned(fn(to_signed(a), to_signed(b))))
    return handler


def _make_shift_i(fn):
    # Shift counts are patterns, not signed values.
    def handler(istate, machine, operands):
        stack = istate.stack
        b = stack.pop()
        a = stack.pop()
        stack.append(to_unsigned(fn(to_signed(a), b)))
    return handler


def _make_cmp(fn, conv):
    def handler(istate, machine, operands):
        stack = istate.stack
        b = stack.pop()
        a = stack.pop()
        stack.append(1 if fn(conv(a), conv(b)) else 0)
    return handler


def _make_bin_d(fn):
    def handler(istate, machine, operands):
        stack = istate.stack
        b = stack.pop()
        a = stack.pop()
        stack.append(fn(a, b))
    return handler


def _make_bin_f(fn):
    def handler(istate, machine, operands):
        stack = istate.stack
        b = stack.pop()
        a = stack.pop()
        stack.append(f32(fn(a, b)))
    return handler


def _install_v2() -> None:
    for name, fn in _BIN_U.items():
        _register(name, _make_bin_u(fn))
    for name, fn in _BIN_I.items():
        if name in ("LSHI", "RSHI"):
            _register(name, _make_shift_i(fn))
        else:
            _register(name, _make_bin_i(fn))
    for generic, fn in _CMP.items():
        _register(generic + "U", _make_cmp(fn, lambda v: v))
        _register(generic + "D", _make_cmp(fn, lambda v: v))
        _register(generic + "F", _make_cmp(fn, lambda v: v))
        if generic + "I" in OP_BY_NAME:
            _register(generic + "I", _make_cmp(fn, to_signed))
    for generic, fn in _BIN_F.items():
        _register(generic + "D", _make_bin_d(fn))
        _register(generic + "F", _make_bin_f(fn))


# -- unary value operators (v1) ----------------------------------------------

def _install_v1() -> None:
    def bcomu(istate, machine, operands):
        stack = istate.stack
        stack.append(to_unsigned(~stack.pop()))
    _register("BCOMU", bcomu)

    def negi(istate, machine, operands):
        stack = istate.stack
        stack.append(to_unsigned(-to_signed(stack.pop())))
    _register("NEGI", negi)

    _register("NEGD", lambda s, m, o: s.stack.append(-s.stack.pop()))
    _register("NEGF", lambda s, m, o: s.stack.append(f32(-s.stack.pop())))

    # Conversions.
    _register("CVDF", lambda s, m, o: s.stack.append(f32(s.stack.pop())))
    _register("CVFD", lambda s, m, o: s.stack.append(float(s.stack.pop())))
    _register("CVDI", lambda s, m, o: s.stack.append(
        to_unsigned(int(math.trunc(s.stack.pop())))))
    _register("CVFI", lambda s, m, o: s.stack.append(
        to_unsigned(int(math.trunc(s.stack.pop())))))
    _register("CVID", lambda s, m, o: s.stack.append(
        float(to_signed(s.stack.pop()))))
    _register("CVIF", lambda s, m, o: s.stack.append(
        f32(float(to_signed(s.stack.pop())))))

    def cvi1i4(istate, machine, operands):
        stack = istate.stack
        b = stack.pop() & 0xFF
        stack.append(to_unsigned(b - 0x100 if b & 0x80 else b))
    _register("CVI1I4", cvi1i4)

    def cvi2i4(istate, machine, operands):
        stack = istate.stack
        h = stack.pop() & 0xFFFF
        stack.append(to_unsigned(h - 0x10000 if h & 0x8000 else h))
    _register("CVI2I4", cvi2i4)

    _register("CVU1U4", lambda s, m, o: s.stack.append(s.stack.pop() & 0xFF))
    _register("CVU2U4",
              lambda s, m, o: s.stack.append(s.stack.pop() & 0xFFFF))

    # Loads.
    _register("INDIRC",
              lambda s, m, o: s.stack.append(m.memory.load_u8(s.stack.pop())))
    _register("INDIRS",
              lambda s, m, o: s.stack.append(m.memory.load_u16(s.stack.pop())))
    _register("INDIRU",
              lambda s, m, o: s.stack.append(m.memory.load_u32(s.stack.pop())))
    _register("INDIRF",
              lambda s, m, o: s.stack.append(m.memory.load_f32(s.stack.pop())))
    _register("INDIRD",
              lambda s, m, o: s.stack.append(m.memory.load_f64(s.stack.pop())))

    # Indirect calls (address consumed from the stack).
    def make_call(push_result):
        def handler(istate, machine, operands):
            addr = istate.stack.pop()
            result = machine.call_address(addr)
            if push_result:
                istate.stack.append(result)
        return handler
    for name in ("CALLU", "CALLD", "CALLF"):
        _register(name, make_call(True))
    _register("CALLV", make_call(False))


# -- leaf value operators (v0) ------------------------------------------------

def _install_v0() -> None:
    def addrfp(istate, machine, operands):
        istate.stack.append(
            istate.args_base + (operands[0] | (operands[1] << 8)))
    _register("ADDRFP", addrfp)

    def addrlp(istate, machine, operands):
        istate.stack.append(
            istate.locals_base + (operands[0] | (operands[1] << 8)))
    _register("ADDRLP", addrlp)

    def addrgp(istate, machine, operands):
        istate.stack.append(
            machine.global_address(operands[0] | (operands[1] << 8)))
    _register("ADDRGP", addrgp)

    def lit(istate, machine, operands):
        value = 0
        shift = 0
        for b in operands:
            value |= b << shift
            shift += 8
        istate.stack.append(value)
    for name in ("LIT1", "LIT2", "LIT3", "LIT4"):
        _register(name, lit)

    def make_localcall(push_result):
        def handler(istate, machine, operands):
            result = machine.call_procedure(
                operands[0] | (operands[1] << 8))
            if push_result:
                istate.stack.append(result)
        return handler
    for name in ("LocalCALLU", "LocalCALLD", "LocalCALLF"):
        _register(name, make_localcall(True))
    _register("LocalCALLV", make_localcall(False))


# -- statements (x0/x1/x2) ------------------------------------------------------

def _install_x() -> None:
    def jumpv(istate, machine, operands):
        raise Jump(operands[0] | (operands[1] << 8))
    _register("JUMPV", jumpv)

    def brtrue(istate, machine, operands):
        if istate.stack.pop() != 0:
            raise Jump(operands[0] | (operands[1] << 8))
    _register("BrTrue", brtrue)

    def retv(istate, machine, operands):
        raise Return(None)
    _register("RETV", retv)

    def ret(istate, machine, operands):
        raise Return(istate.stack.pop())
    for name in ("RETU", "RETD", "RETF"):
        _register(name, ret)

    def pop(istate, machine, operands):
        istate.stack.pop()
    for name in ("POPU", "POPD", "POPF"):
        _register(name, pop)

    _register("ARGU", lambda s, m, o: m.push_arg_u32(s.stack.pop()))
    _register("ARGF", lambda s, m, o: m.push_arg_f32(s.stack.pop()))
    _register("ARGD", lambda s, m, o: m.push_arg_f64(s.stack.pop()))

    def unsupported(istate, machine, operands):
        raise UnsupportedOpcode(
            "block operators (ASGNB/ARGB) are not emitted by this front end"
        )
    _register("ARGB", unsupported)
    _register("ASGNB", unsupported)

    def asgn_u32(istate, machine, operands):
        stack = istate.stack
        value = stack.pop()
        machine.memory.store_u32(stack.pop(), value)
    _register("ASGNU", asgn_u32)

    def asgn_u8(istate, machine, operands):
        stack = istate.stack
        value = stack.pop()
        machine.memory.store_u8(stack.pop(), value)
    _register("ASGNC", asgn_u8)

    def asgn_u16(istate, machine, operands):
        stack = istate.stack
        value = stack.pop()
        machine.memory.store_u16(stack.pop(), value)
    _register("ASGNS", asgn_u16)

    def asgn_f32(istate, machine, operands):
        stack = istate.stack
        value = stack.pop()
        machine.memory.store_f32(stack.pop(), value)
    _register("ASGNF", asgn_f32)

    def asgn_f64(istate, machine, operands):
        stack = istate.stack
        value = stack.pop()
        machine.memory.store_f64(stack.pop(), value)
    _register("ASGND", asgn_f64)

    _register("LABELV", lambda s, m, o: None)


_install_v2()
_install_v1()
_install_v0()
_install_x()

_missing = [op.name for op in OPS if op.code not in HANDLERS]
assert not _missing, f"operators without semantics: {_missing}"


def execute(opcode: int, istate: IState, machine,
            operands: Tuple[int, ...] = ()) -> None:
    """Execute one operator against the interpreter state (interpret1)."""
    HANDLERS[opcode](istate, machine, operands)
