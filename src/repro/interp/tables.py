"""Rule tables for the generated interpreter (paper Section 5).

"A table encodes for each rule the sequence of terminals and non-terminals
on the rule's right-hand side."  We compile each rule into a *step program*:

* ``("op", opcode, literal_plan)`` — execute one operator; the plan has one
  entry per literal operand byte, either a burned-in value (the rule
  constrains that byte — partially-inlined literals, Section 5) or ``None``
  meaning "fetch the next byte from the compressed stream" (the GET macro's
  decision of where each literal half comes from).
* ``("nt", nonterminal)`` — recurse: read one byte, look up that
  nonterminal's rule, run its steps.

The compiler checks the structural invariant that makes this sound: in any
rule of an expanded grammar derived from the initial grammar, every operator
terminal is immediately followed by exactly its ``nlit`` byte symbols
(burned or streamed) — inlining preserves the adjacency because only whole
nonterminal occurrences are ever substituted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..bytecode.opcodes import OP_BY_CODE
from ..grammar.cfg import (
    Grammar,
    byte_value,
    is_byte_terminal,
    is_nonterminal,
)

__all__ = ["Step", "RuleProgram", "InterpTables", "TableError"]

Step = Tuple  # ("op", opcode, plan) | ("nt", nonterminal)


class TableError(ValueError):
    """Raised when a grammar violates the operator/literal adjacency
    invariant (cannot happen for grammars produced by this system)."""


class RuleProgram:
    """One rule compiled to interpreter steps."""

    __slots__ = ("rule_id", "steps")

    def __init__(self, rule_id: int, steps: Tuple[Step, ...]) -> None:
        self.rule_id = rule_id
        self.steps = steps


class InterpTables:
    """All rule programs of a grammar, indexed [nonterminal][codeword]."""

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self.start = grammar.start
        self.byte_nt = grammar.nonterminal("byte")
        self.by_nt: Dict[int, List[RuleProgram]] = {}
        for nt in grammar.nonterminals:
            if nt == self.byte_nt:
                continue  # byte "rules" are read directly from the stream
            self.by_nt[nt] = [
                self._compile(rule) for rule in grammar.rules_for(nt)
            ]

    def _compile(self, rule) -> RuleProgram:
        steps: List[Step] = []
        rhs = rule.rhs
        i = 0
        while i < len(rhs):
            sym = rhs[i]
            if is_nonterminal(sym):
                if sym == self.byte_nt:
                    raise TableError(
                        f"rule {rule.id}: <byte> not attached to an operator"
                    )
                steps.append(("nt", sym))
                i += 1
            elif is_byte_terminal(sym):
                raise TableError(
                    f"rule {rule.id}: burned byte not attached to an operator"
                )
            else:
                spec = OP_BY_CODE[sym]
                plan: List[Optional[int]] = []
                for k in range(1, spec.nlit + 1):
                    if i + k >= len(rhs):
                        raise TableError(
                            f"rule {rule.id}: {spec.name} missing literal "
                            f"bytes"
                        )
                    opnd = rhs[i + k]
                    if is_byte_terminal(opnd):
                        plan.append(byte_value(opnd))
                    elif opnd == self.byte_nt:
                        plan.append(None)  # streamed
                    else:
                        raise TableError(
                            f"rule {rule.id}: {spec.name} operand {k} is "
                            f"neither a byte nor <byte>"
                        )
                steps.append(("op", sym, tuple(plan)))
                i += 1 + spec.nlit
        return RuleProgram(rule.id, tuple(steps))

    def program(self, nt: int, codeword: int) -> RuleProgram:
        programs = self.by_nt[nt]
        if codeword >= len(programs):
            raise TableError(
                f"codeword {codeword} out of range for "
                f"<{self.grammar.nt_name(nt)}> ({len(programs)} rules)"
            )
        return programs[codeword]

    # -- size accounting (paper Section 6: "The grammar occupies 10,525
    # bytes") ---------------------------------------------------------------
    def encoded_bytes(self) -> int:
        """Bytes to store the rule tables in the straightforward encoding:
        per rule, a length byte plus one byte per step (operator or
        nonterminal tag) plus one byte per literal-plan entry."""
        total = 0
        for programs in self.by_nt.values():
            for rp in programs:
                total += 1  # rhs length
                for step in rp.steps:
                    if step[0] == "op":
                        total += 1 + len(step[2])
                    else:
                        total += 1
        # per-nonterminal table of rule offsets (2 bytes each)
        total += sum(2 * len(p) for p in self.by_nt.values())
        return total
