"""Rule tables for the generated interpreter (paper Section 5).

"A table encodes for each rule the sequence of terminals and non-terminals
on the rule's right-hand side."  We compile each rule into a *step program*:

* ``("op", opcode, literal_plan)`` — execute one operator; the plan has one
  entry per literal operand byte, either a burned-in value (the rule
  constrains that byte — partially-inlined literals, Section 5) or ``None``
  meaning "fetch the next byte from the compressed stream" (the GET macro's
  decision of where each literal half comes from).
* ``("nt", nonterminal)`` — recurse: read one byte, look up that
  nonterminal's rule, run its steps.

The compiler checks the structural invariant that makes this sound: in any
rule of an expanded grammar derived from the initial grammar, every operator
terminal is immediately followed by exactly its ``nlit`` byte symbols
(burned or streamed) — inlining preserves the adjacency because only whole
nonterminal occurrences are ever substituted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import faults
from ..bytecode.opcodes import OP_BY_CODE
from ..core.program import program_for
from ..grammar.cfg import (
    Grammar,
    byte_value,
    is_byte_terminal,
    is_nonterminal,
)

__all__ = [
    "Step", "RuleProgram", "InterpTables", "TableError",
    "CompiledTables", "compiled_tables", "interp_tables",
    "STEP_RUN", "STEP_OP1", "STEP_CALL", "STEP_BAD",
]

Step = Tuple  # ("op", opcode, plan) | ("nt", nonterminal)

# Flattened-step tags (see CompiledTables).
STEP_RUN = 0   # (0, fused, nops, opcodes, plans, emit): an operator run
STEP_OP1 = 1   # (1, handler, operands, opcode, emit): one burned operator
STEP_CALL = 3  # (3, programs, row): dispatch on the row's codeword table
STEP_BAD = 5   # (5, message): sentinel for an out-of-range codeword


class TableError(ValueError):
    """Raised when a grammar violates the operator/literal adjacency
    invariant (cannot happen for grammars produced by this system)."""


class RuleProgram:
    """One rule compiled to interpreter steps."""

    __slots__ = ("rule_id", "steps")

    def __init__(self, rule_id: int, steps: Tuple[Step, ...]) -> None:
        self.rule_id = rule_id
        self.steps = steps


class InterpTables:
    """All rule programs of a grammar, indexed [nonterminal][codeword]."""

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self.start = grammar.start
        self.byte_nt = grammar.nonterminal("byte")
        # The (nt, rules) row layout is shared with every other consumer
        # through the grammar's precompiled program; <byte> owns no row —
        # its "rules" are read directly from the stream.
        self.by_nt: Dict[int, List[RuleProgram]] = {
            nt: [self._compile(rule) for rule in rules]
            for nt, rules in program_for(grammar).rows
        }

    def _compile(self, rule) -> RuleProgram:
        steps: List[Step] = []
        rhs = rule.rhs
        i = 0
        while i < len(rhs):
            sym = rhs[i]
            if is_nonterminal(sym):
                if sym == self.byte_nt:
                    raise TableError(
                        f"rule {rule.id}: <byte> not attached to an operator"
                    )
                steps.append(("nt", sym))
                i += 1
            elif is_byte_terminal(sym):
                raise TableError(
                    f"rule {rule.id}: burned byte not attached to an operator"
                )
            else:
                spec = OP_BY_CODE[sym]
                plan: List[Optional[int]] = []
                for k in range(1, spec.nlit + 1):
                    if i + k >= len(rhs):
                        raise TableError(
                            f"rule {rule.id}: {spec.name} missing literal "
                            f"bytes"
                        )
                    opnd = rhs[i + k]
                    if is_byte_terminal(opnd):
                        plan.append(byte_value(opnd))
                    elif opnd == self.byte_nt:
                        plan.append(None)  # streamed
                    else:
                        raise TableError(
                            f"rule {rule.id}: {spec.name} operand {k} is "
                            f"neither a byte nor <byte>"
                        )
                steps.append(("op", sym, tuple(plan)))
                i += 1 + spec.nlit
        return RuleProgram(rule.id, tuple(steps))

    def program(self, nt: int, codeword: int) -> RuleProgram:
        programs = self.by_nt[nt]
        if codeword >= len(programs):
            raise TableError(
                f"codeword {codeword} out of range for "
                f"<{self.grammar.nt_name(nt)}> ({len(programs)} rules)"
            )
        return programs[codeword]

    # -- size accounting (paper Section 6: "The grammar occupies 10,525
    # bytes") ---------------------------------------------------------------
    def encoded_bytes(self) -> int:
        """Bytes to store the rule tables in the straightforward encoding:
        per rule, a length byte plus one byte per step (operator or
        nonterminal tag) plus one byte per literal-plan entry."""
        total = 0
        for programs in self.by_nt.values():
            for rp in programs:
                total += 1  # rhs length
                for step in rp.steps:
                    if step[0] == "op":
                        total += 1 + len(step[2])
                    else:
                        total += 1
        # per-nonterminal table of rule offsets (2 bytes each)
        total += sum(2 * len(p) for p in self.by_nt.values())
        return total


#: Operators that can transfer control out of the current rule program —
#: a branch (``Jump``), a procedure return (``Return``), or a call whose
#: callee may raise ``Exit``.  A fused run never *continues past* one of
#: these, so the engine may account a whole run's operator count (and
#: stream consumption) up front and still agree with the reference
#: interpreters on every normally-terminating and every branching path.
_CONTROL_PREFIXES = ("RET", "CALL", "LocalCALL", "JUMP")


def _is_control(name: str) -> bool:
    return name.startswith(_CONTROL_PREFIXES) or name == "BrTrue"


def _le_expr(parts) -> str:
    """Little-endian value expression over literal bytes, with burned
    bytes constant-folded.  ``parts`` items are ints (burned) or
    code-read expression strings (streamed)."""
    const = 0
    terms = []
    for i, p in enumerate(parts):
        if isinstance(p, int):
            const |= p << (8 * i)
        elif i:
            terms.append(f"({p} << {8 * i})")
        else:
            terms.append(p)
    if const or not terms:
        terms.append(str(const))
    return terms[0] if len(terms) == 1 else " | ".join(terms)


_INLINE_BIN = {  # wrapping binary integer ops: result is (a OP b) [& mask]
    "ADDU": ("+", True), "SUBU": ("-", True), "MULU": ("*", True),
    "MULI": ("*", True),  # signed mul ≡ unsigned mul mod 2**32
    "BANDU": ("&", False), "BORU": ("|", False), "BXORU": ("^", False),
}

_CMP_SYM = {"EQ": "==", "NE": "!=", "GE": ">=",
            "GT": ">", "LE": "<=", "LT": "<"}

#: branch-free to_signed for an already-masked 32-bit pattern
_SIGNED = "((stack.pop() & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000"

_LOAD = {"C": "load_u8", "S": "load_u16", "U": "load_u32",
         "F": "load_f32", "D": "load_f64"}
_STORE = {"C": "store_u8", "S": "store_u16", "U": "store_u32",
          "F": "store_f32", "D": "store_f64"}


def _inline_lines(name: str, exprs) -> Optional[List[str]]:
    """Source lines implementing one operator inside a fused run, or
    ``None`` to fall back to the registered handler.

    ``exprs`` holds one item per literal byte: an int (burned) or a
    code-read expression string (streamed).  Each template is the exact
    semantics of the corresponding :data:`~repro.interp.base.HANDLERS`
    entry — the equivalence suite holds the two implementations to the
    same observable behaviour.  Operators with failure modes beyond a
    clean exception from a machine helper (division by zero, unsupported
    block ops, float conversions) stay on the handler path.
    """
    if name.startswith("LIT"):
        return [f"stack.append({_le_expr(exprs)})"]
    if name == "ADDRLP":
        return [f"stack.append(istate.locals_base + ({_le_expr(exprs)}))"]
    if name == "ADDRFP":
        return [f"stack.append(istate.args_base + ({_le_expr(exprs)}))"]
    if name == "ADDRGP":
        return [f"stack.append(machine.global_address({_le_expr(exprs)}))"]
    if name.startswith("INDIR"):
        return [f"stack.append(machine.memory.{_LOAD[name[-1]]}"
                "(stack.pop()))"]
    if name.startswith("ASGN") and name[-1] in _STORE:
        return ["_v = stack.pop()",
                f"machine.memory.{_STORE[name[-1]]}(stack.pop(), _v)"]
    if name in _INLINE_BIN:
        sym, wraps = _INLINE_BIN[name]
        expr = f"(stack.pop() {sym} _b)"
        if wraps:
            expr += " & 0xFFFFFFFF"
        return ["_b = stack.pop()", f"stack.append({expr})"]
    if name in ("LSHU", "LSHI"):  # shifted-out high bits are masked away,
        return ["_b = stack.pop()",  # so signed ≡ unsigned left shift
                "stack.append((stack.pop() << (_b & 31)) & 0xFFFFFFFF)"]
    if name == "RSHU":
        return ["_b = stack.pop()", "stack.append(stack.pop() >> (_b & 31))"]
    if name == "RSHI":  # arithmetic shift: sign-extend, shift, re-wrap
        return ["_b = stack.pop()",
                f"_a = {_SIGNED}",
                "stack.append((_a >> (_b & 31)) & 0xFFFFFFFF)"]
    if len(name) == 3 and name[:2] in _CMP_SYM and name[2] in "UIDF":
        sym = _CMP_SYM[name[:2]]
        if name[2] == "I":
            return [f"_b = {_SIGNED}", f"_a = {_SIGNED}",
                    f"stack.append(1 if _a {sym} _b else 0)"]
        return ["_b = stack.pop()",
                f"stack.append(1 if stack.pop() {sym} _b else 0)"]
    if name == "JUMPV":
        return [f"raise _Jump({_le_expr(exprs)})"]
    if name == "BrTrue":
        return [f"if stack.pop() != 0: raise _Jump({_le_expr(exprs)})"]
    if name == "RETV":
        return ["raise _Return(None)"]
    if name in ("RETU", "RETD", "RETF"):
        return ["raise _Return(stack.pop())"]
    if name in ("POPU", "POPD", "POPF"):
        return ["stack.pop()"]
    if name == "ARGU":
        return ["machine.push_arg_u32(stack.pop())"]
    if name == "ARGF":
        return ["machine.push_arg_f32(stack.pop())"]
    if name == "ARGD":
        return ["machine.push_arg_f64(stack.pop())"]
    if name.startswith("LocalCALL"):
        call = f"machine.call_procedure({_le_expr(exprs)})"
        return [call] if name[-1] == "V" else [f"stack.append({call})"]
    if name.startswith("CALL"):
        call = "machine.call_address(stack.pop())"
        return [call] if name[-1] == "V" else [f"stack.append({call})"]
    if name == "LABELV":
        return []
    if name == "NEGI":  # -x mod 2**32, whatever sign x decodes to
        return ["stack.append(-stack.pop() & 0xFFFFFFFF)"]
    if name == "BCOMU":
        return ["stack.append(~stack.pop() & 0xFFFFFFFF)"]
    if name == "CVU1U4":
        return ["stack.append(stack.pop() & 0xFF)"]
    if name == "CVU2U4":
        return ["stack.append(stack.pop() & 0xFFFF)"]
    return None


def _gen_fused(ops) -> Tuple:
    """Generate one function executing a whole operator run.

    ``ops`` is a sequence of ``(handler, plan, opcode)``; the generated
    function has signature ``fused(istate, machine, code, pc) -> pc``.
    Common operators are inlined as straight-line source
    (:func:`_inline_lines`) — the evaluation stack is a local, burned
    literals are folded constants, streamed literals are read straight
    off ``code`` at compile-time-known offsets — and the rest call their
    registered handler bound as a default argument.  The advanced ``pc``
    is returned once at the end.

    Also returns the run's *emit spec* for the decompressor: a tuple
    whose items are ``bytes`` (burned output: operator and burned literal
    bytes) or ``int k`` ("copy k bytes from the stream").
    """
    from .state import Jump, Return

    params = ["istate", "machine", "code", "pc"]
    namespace = {"_Jump": Jump, "_Return": Return}
    body: List[str] = []
    emit: List = []
    burned = bytearray()
    off = 0
    uses_stack = False
    for j, (handler, plan, op) in enumerate(ops):
        burned.append(op)
        exprs: List = []
        elems: List[str] = []
        for b in plan:
            if b is None:
                read = f"code[pc+{off}]" if off else "code[pc]"
                exprs.append(read)
                elems.append(read)
                if burned:
                    emit.append(bytes(burned))
                    burned.clear()
                if emit and isinstance(emit[-1], int):
                    emit[-1] += 1
                else:
                    emit.append(1)
                off += 1
            else:
                exprs.append(b)
                elems.append(str(b))
                burned.append(b)
        lines = _inline_lines(OP_BY_CODE[op].name, exprs)
        if lines is None:
            namespace[f"_h{j}"] = handler
            params.append(f"h{j}=_h{j}")
            operands = "(" + ", ".join(elems) \
                + ("," if len(elems) == 1 else "") + ")"
            body.append(f"    h{j}(istate, machine, {operands})")
        else:
            if not uses_stack:
                uses_stack = any("stack" in line for line in lines)
            body.extend("    " + line for line in lines)
    if burned:
        emit.append(bytes(burned))
    src = [f"def _fused({', '.join(params)}):"]
    if uses_stack:
        src.append("    stack = istate.stack")
    src.extend(body)
    src.append(f"    return pc + {off}" if off else "    return pc")
    exec("\n".join(src), namespace)  # noqa: S102 — our own generated src
    return namespace["_fused"], tuple(emit)


class CompiledTables:
    """Rule tables flattened for the direct-threaded engine.

    Where :class:`InterpTables` keeps symbolic steps that the reference
    interpreter re-decodes on every visit (``HANDLERS[op]`` per operator,
    ``by_nt[nt]`` dict lookup per dispatch, a literal plan walked per
    execution), this second compile pass burns every run-time decision
    that does not depend on stream bytes into the table itself.  A rule
    flattens to a program of only two live step kinds:

    * :data:`STEP_RUN` — a maximal run of operators compiled into ONE
      generated function (:func:`_gen_fused`): handlers resolved to
      direct calls, burned literal bytes folded into constant operand
      tuples (Section 5's specialized GET), streamed literal bytes read
      at compile-time-known offsets.  Runs end at control-transfer
      operators so the run-level operator accounting stays exact on
      every branching path.
    * :data:`STEP_CALL` — a nonterminal call site, resolved to the target
      row's *program list itself*: a dispatch is one list index on the
      codeword byte — no dict probe, no row indirection.

    Every row is padded to 256 entries with :data:`STEP_BAD` sentinel
    programs, one per invalid codeword, so the hot loop needs no bounds
    check — an invalid derivation byte dispatches to a step that raises
    :class:`TableError` naming the precise codeword.

    Each RUN step also carries the byte sequence it *emits* (operators
    and burned literals interleaved with copy-from-stream counts), so the
    decompressor walks the same tables the engine executes — one
    flattening serves both — plus the symbolic per-operator plans the
    instrumented profiler executes one operator at a time.

    A dispatch in tail position (the nonterminal is the rule's last step)
    never grows the engine's return stack: the current program is simply
    replaced.  Chains of unit rules — ``<x> -> <x0>``, ``<x0> -> ...`` —
    therefore collapse to in-place re-dispatch, which is what keeps the
    deeply left-recursive ``<start>`` spine's stack proportional to the
    *pending* right-hand-side work only.

    Rows are indexed by nonterminal allocation order; ``row_of`` maps the
    (negative) nonterminal symbol to its row, ``nt_of_row`` inverts it;
    ``nrules[row]`` is the real (unpadded) rule count.  The ``<byte>``
    nonterminal owns no row: its "rules" are the stream bytes themselves
    and are compiled into the literal plans.
    """

    #: rows are padded to this many programs so a codeword byte can never
    #: index out of range (a derivation byte is 0..255 by construction)
    ROW_SIZE = 256

    def __init__(self, grammar: Grammar) -> None:
        from .base import HANDLERS  # deferred: base imports state/memory

        self.grammar = grammar
        byte_nt = grammar.nonterminal("byte")
        self.byte_nt = byte_nt
        grammar_rows = program_for(grammar).rows
        nts = [nt for nt, _rules in grammar_rows]
        self.nt_of_row: List[int] = nts
        self.row_of: Dict[int, int] = {nt: i for i, nt in enumerate(nts)}
        self.start_row = self.row_of[grammar.start]
        # The program lists are allocated up front and filled afterwards:
        # a CALL step references its target's list directly, and rules may
        # mention any nonterminal (including their own).
        self.rows: List[List[Tuple[Step, ...]]] = [[] for _ in nts]
        self.rule_ids: List[List[int]] = []
        self.nrules: List[int] = []
        # Identical runs recur across rules (epilogues, common idioms);
        # generate each distinct run once.
        self._fused_memo: Dict[Tuple, Tuple] = {}
        for row, (nt, rules) in enumerate(grammar_rows):
            if len(rules) > self.ROW_SIZE:
                raise TableError(
                    f"<{grammar.nt_name(nt)}> has {len(rules)} rules; "
                    f"codewords are single bytes"
                )
            programs = self.rows[row]
            ids = []
            for rule in rules:
                programs.append(self._flatten(rule, HANDLERS))
                ids.append(rule.id)
            name = grammar.nt_name(nt)
            for cw in range(len(rules), self.ROW_SIZE):
                programs.append((
                    (STEP_BAD,
                     f"codeword {cw} out of range for <{name}> "
                     f"({len(rules)} rules)"),
                ))
            self.rule_ids.append(ids)
            self.nrules.append(len(rules))
        del self._fused_memo  # only needed during construction

    def _flatten(self, rule, handlers) -> Tuple[Step, ...]:
        steps: List[Step] = []
        run: List[Tuple] = []  # pending (handler, plan, opcode) triples

        def flush_run() -> None:
            if not run:
                return
            key = tuple((op, plan) for _h, plan, op in run)
            cached = self._fused_memo.get(key)
            if cached is None:
                handler, plan, op = run[0]
                if (len(run) == 1 and None not in plan
                        and _inline_lines(OP_BY_CODE[op].name,
                                          list(plan)) is None):
                    # A lone fully-burned operator with no inline
                    # template: skip the fused wrapper, the engine
                    # calls the handler directly.
                    cached = (STEP_OP1, handler, plan, op,
                              bytes((op,) + plan))
                else:
                    fused, emit = _gen_fused(run)
                    cached = (STEP_RUN, fused, len(run),
                              tuple(op for _h, _p, op in run),
                              tuple(plan for _h, plan, _op in run),
                              emit)
                self._fused_memo[key] = cached
            steps.append(cached)
            run.clear()

        rhs = rule.rhs
        byte_nt = self.byte_nt
        i = 0
        while i < len(rhs):
            sym = rhs[i]
            if is_nonterminal(sym):
                if sym == byte_nt:
                    raise TableError(
                        f"rule {rule.id}: <byte> not attached to an operator"
                    )
                flush_run()
                row = self.row_of[sym]
                steps.append((STEP_CALL, self.rows[row], row))
                i += 1
                continue
            if is_byte_terminal(sym):
                raise TableError(
                    f"rule {rule.id}: burned byte not attached to an operator"
                )
            spec = OP_BY_CODE[sym]
            plan: List[Optional[int]] = []
            for k in range(1, spec.nlit + 1):
                if i + k >= len(rhs):
                    raise TableError(
                        f"rule {rule.id}: {spec.name} missing literal bytes"
                    )
                opnd = rhs[i + k]
                if is_byte_terminal(opnd):
                    plan.append(byte_value(opnd))
                elif opnd == byte_nt:
                    plan.append(None)  # streamed
                else:
                    raise TableError(
                        f"rule {rule.id}: {spec.name} operand {k} is "
                        f"neither a byte nor <byte>"
                    )
            run.append((handlers[sym], tuple(plan), sym))
            if _is_control(spec.name):
                flush_run()
            i += 1 + spec.nlit
        flush_run()
        return tuple(steps)

    def program(self, nt: int, codeword: int) -> Tuple[Step, ...]:
        """The flattened program for one (nonterminal, codeword) pair."""
        row = self.row_of[nt]
        if codeword >= self.nrules[row]:
            raise TableError(
                f"codeword {codeword} out of range for "
                f"<{self.grammar.nt_name(nt)}> ({self.nrules[row]} rules)"
            )
        return self.rows[row][codeword]


def interp_tables(grammar: Grammar) -> InterpTables:
    """Per-grammar memo of :class:`InterpTables`, hung off the grammar's
    precompiled program — the reference interpreter and the C code
    generator share one compile per grammar instance."""
    return program_for(grammar).derived(
        "interp_tables", lambda: InterpTables(grammar))


def compiled_tables(grammar: Grammar) -> CompiledTables:
    """Per-grammar memo of :class:`CompiledTables`.

    The flattening hangs off the grammar's precompiled
    :class:`~repro.core.program.GrammarProgram` (one per grammar
    instance), so the engine, the decompressor, and the profiler all
    share it — and everything else keyed to the same program (interp
    tables, registry entries) shares one cache lifetime.

    Fault site ``engine.tables`` fires here as a :class:`TableError`,
    modelling a grammar whose flattening fails.  It only fires on a
    cache miss — a grammar whose tables are already built cannot
    retroactively fail to build — and a failed build caches nothing.
    """

    def build() -> CompiledTables:
        if faults.ACTIVE is not None:
            faults.ACTIVE.fire("engine.tables", exc=TableError,
                               message="injected table build failure")
        return CompiledTables(grammar)

    return program_for(grammar).derived("compiled_tables", build)

