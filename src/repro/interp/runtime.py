"""The machine: memory layout, procedure calls, trampolines, intrinsics
(paper Sections 3 and 5, Appendix 3).

Layout of the flat address space::

    0 .. 63            unmapped guard (null pointers fault)
    DATA_BASE ..       initialized data, then zero-initialized bss
    heap ..            bump allocator for the malloc intrinsic
    arg region         the outgoing-argument stack (ARG* write here;
                       contiguous, so a callee's &arg1 is one address,
                       exactly the x86 convention the paper relies on)
    frame region       procedure locals, one frame per activation

Addresses at :data:`TRAMPOLINE_BASE` + i are the C-callable trampolines of
bytecoded procedures (Appendix 3); addresses at :data:`INTRINSIC_BASE` + i
are library routines (``exit``, ``putchar``, ``malloc``...).  The loader
fills the global table with these, so ``ADDRGP k; CALLU`` calls either kind
through one mechanism, as in the paper.

The machine is interpreter-agnostic: an *executor* object supplies
``run_procedure(machine, index, istate)``; :mod:`repro.interp.interp1` and
:mod:`repro.interp.interp2` provide the uncompressed and compressed
executors over the identical runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from .memory import MASK32, Memory, to_signed
from .state import Exit, IState, Trap

__all__ = [
    "DATA_BASE", "TRAMPOLINE_BASE", "INTRINSIC_BASE",
    "MemoryLayout", "resolve_globals",
    "Machine", "Intrinsic", "INTRINSICS", "run_program",
]

DATA_BASE = 64
TRAMPOLINE_BASE = 0x1000_0000
INTRINSIC_BASE = 0x2000_0000

_ARG_REGION = 1 << 16        # outgoing-argument stack
_FRAME_REGION = 1 << 20      # procedure frames
_DEFAULT_HEAP = 1 << 20


@dataclass(frozen=True)
class MemoryLayout:
    """The flat address-space layout for one loaded program.

    Computed in exactly one place so every executor — the Python
    machines here and the native engine's C runtime — runs over a
    byte-identical memory image (the execution-equivalence suites
    compare whole images across engines).
    """

    data_len: int
    bss_size: int
    bss_base: int
    heap_base: int
    heap_limit: int
    arg_base: int
    frame_base: int
    total: int

    @classmethod
    def for_program(cls, program,
                    heap_size: int = _DEFAULT_HEAP) -> "MemoryLayout":
        data_len = len(program.data)
        bss_base = DATA_BASE + data_len
        heap_base = _align(bss_base + program.bss_size, 16)
        heap_limit = heap_base + heap_size
        arg_base = _align(heap_limit, 16)
        frame_base = arg_base + _ARG_REGION
        return cls(
            data_len=data_len,
            bss_size=program.bss_size,
            bss_base=bss_base,
            heap_base=heap_base,
            heap_limit=heap_limit,
            arg_base=arg_base,
            frame_base=frame_base,
            total=frame_base + _FRAME_REGION,
        )


@dataclass(frozen=True)
class Intrinsic:
    """A library routine callable from bytecode.

    ``argtypes`` is a string over {'i' (4-byte word), 'f' (float32),
    'd' (float64)} describing the formal block layout; ``fn`` receives the
    machine and the decoded argument values and returns the result value
    (a 32-bit pattern or a float, or None for void).
    """

    name: str
    argtypes: str
    fn: Callable[..., Any]

    @property
    def argsize(self) -> int:
        return sum(8 if t == "d" else 4 for t in self.argtypes)


def _sizeof(t: str) -> int:
    return 8 if t == "d" else 4


# -- the intrinsic library ----------------------------------------------------

def _i_exit(machine, code):
    raise Exit(to_signed(code))


def _i_abort(machine):
    raise Trap("abort() called")


def _i_putchar(machine, c):
    machine.output.append(c & 0xFF)
    return c & 0xFF


def _i_getchar(machine):
    if machine.input_pos < len(machine.input):
        b = machine.input[machine.input_pos]
        machine.input_pos += 1
        return b
    return MASK32  # EOF = -1


def _i_puts(machine, p):
    machine.output.extend(machine.memory.read_cstring(p))
    machine.output.append(ord("\n"))
    return 0


def _i_putstr(machine, p):
    machine.output.extend(machine.memory.read_cstring(p))
    return 0


def _i_putint(machine, v):
    machine.output.extend(str(to_signed(v)).encode())
    return 0


def _i_putuint(machine, v):
    machine.output.extend(str(v & MASK32).encode())
    return 0


def _i_putfloat(machine, d):
    machine.output.extend(f"{d:.6g}".encode())
    return 0


def _i_malloc(machine, n):
    return machine.heap_alloc(n)


def _i_free(machine, p):
    return 0


def _i_memcpy(machine, dst, src, n):
    machine.memory.write_bytes(dst, machine.memory.read_bytes(src, n))
    return dst


def _i_memset(machine, p, v, n):
    machine.memory.write_bytes(p, bytes([v & 0xFF]) * n)
    return p


def _i_strlen(machine, p):
    return len(machine.memory.read_cstring(p))


INTRINSICS: List[Intrinsic] = [
    Intrinsic("exit", "i", _i_exit),
    Intrinsic("abort", "", _i_abort),
    Intrinsic("putchar", "i", _i_putchar),
    Intrinsic("getchar", "", _i_getchar),
    Intrinsic("puts", "i", _i_puts),
    Intrinsic("putstr", "i", _i_putstr),
    Intrinsic("putint", "i", _i_putint),
    Intrinsic("putuint", "i", _i_putuint),
    Intrinsic("putfloat", "d", _i_putfloat),
    Intrinsic("malloc", "i", _i_malloc),
    Intrinsic("free", "i", _i_free),
    Intrinsic("memcpy", "iii", _i_memcpy),
    Intrinsic("memset", "iii", _i_memset),
    Intrinsic("strlen", "i", _i_strlen),
]

_INTRINSIC_INDEX: Dict[str, int] = {
    intr.name: i for i, intr in enumerate(INTRINSICS)
}


def resolve_globals(program) -> List[int]:
    """Resolve the global table to flat addresses (the loader's job,
    Section 3).  Shared by the Python machine and the native engine so
    an unresolved library symbol traps identically from both."""
    addrs: List[int] = []
    for entry in program.globals:
        if entry.kind == "data":
            addrs.append(DATA_BASE + entry.value)
        elif entry.kind == "proc":
            addrs.append(TRAMPOLINE_BASE + entry.value)
        else:  # lib
            idx = _INTRINSIC_INDEX.get(entry.name)
            if idx is None:
                raise Trap(f"unresolved library symbol {entry.name!r}")
            addrs.append(INTRINSIC_BASE + idx)
    return addrs


class Machine:
    """One loaded program plus its execution resources."""

    def __init__(self, program, executor, *, heap_size: int = _DEFAULT_HEAP,
                 input_data: bytes = b"", budget: int = 0) -> None:
        """``program`` is a Module or CompressedModule (same duck type:
        procedures / globals / data / bss_size / entry); ``executor``
        supplies ``run_procedure(machine, index, istate)``.

        ``budget`` bounds the run: at most that many dispatches (one per
        codeword fetch on the compressed engines, one per instruction
        fetch on the uncompressed interpreter) before the machine traps
        with :class:`~repro.interp.state.BudgetExceeded`.  0 disables
        the check — the engines' hot loops stay one falsy test away
        from today's behaviour."""
        self.program = program
        self.executor = executor
        self.budget = int(budget or 0)
        self.output = bytearray()
        self.input = input_data
        self.input_pos = 0
        self.call_depth = 0
        # Each bytecode call nests a handful of Python frames; keep the
        # machine's own limit low enough that it fires before CPython's
        # recursion limit would, and give the interpreter headroom.
        self.max_call_depth = 400
        _PY_FRAMES_PER_CALL = 8
        import sys
        needed = self.max_call_depth * _PY_FRAMES_PER_CALL + 1000
        if sys.getrecursionlimit() < needed:
            sys.setrecursionlimit(needed)
        self.instret = 0  # executed operator count (for the speed bench)
        # Dispatches: one per codeword byte consumed on the compressed
        # engines (compiled, reference interp2, native — identical by
        # construction), one per instruction fetch on interp1.  The
        # execution budget is enforced against this counter.
        self.dispatches = 0

        layout = MemoryLayout.for_program(program, heap_size=heap_size)
        self.layout = layout
        self._bss_base = layout.bss_base
        self._heap_base = layout.heap_base
        self._heap_end = layout.heap_base
        self._heap_limit = layout.heap_limit
        self._arg_base = layout.arg_base
        self.arg_sp = layout.arg_base
        self._frame_base = layout.frame_base
        self.frame_sp = layout.frame_base
        self.memory = Memory(layout.total)
        self.memory.write_bytes(DATA_BASE, program.data)

        # Resolve the global table (the loader's job, Section 3).
        self._global_addrs: List[int] = resolve_globals(program)

    # -- address helpers ----------------------------------------------------
    def global_address(self, index: int) -> int:
        try:
            return self._global_addrs[index]
        except IndexError:
            raise Trap(f"global index {index} out of range") from None

    def heap_alloc(self, n: int) -> int:
        addr = self._heap_end
        self._heap_end = _align(addr + max(n, 1), 8)
        if self._heap_end > self._heap_limit:
            raise Trap("out of heap")
        return addr

    # -- outgoing arguments -------------------------------------------------
    def push_arg_u32(self, value: int) -> None:
        self.memory.store_u32(self.arg_sp, value)
        self.arg_sp += 4

    def push_arg_f32(self, value: float) -> None:
        self.memory.store_f32(self.arg_sp, value)
        self.arg_sp += 4

    def push_arg_f64(self, value: float) -> None:
        self.memory.store_f64(self.arg_sp, value)
        self.arg_sp += 8

    # -- calls ------------------------------------------------------------
    def call_address(self, addr: int) -> Any:
        """Indirect call: trampoline or library routine (one mechanism for
        both, Section 3)."""
        if TRAMPOLINE_BASE <= addr < TRAMPOLINE_BASE + len(
                self.program.procedures):
            proc_index = addr - TRAMPOLINE_BASE
            if not self.program.procedures[proc_index].needs_trampoline:
                raise Trap(
                    f"indirect call to {self.program.procedures[proc_index].name!r},"
                    f" which has no trampoline"
                )
            return self.call_procedure(proc_index)
        if INTRINSIC_BASE <= addr < INTRINSIC_BASE + len(INTRINSICS):
            return self.call_intrinsic(addr - INTRINSIC_BASE)
        raise Trap(f"call to non-function address {addr:#x}")

    def call_intrinsic(self, index: int) -> Any:
        intr = INTRINSICS[index]
        args_base = self.arg_sp - intr.argsize
        values = []
        offset = args_base
        for t in intr.argtypes:
            if t == "i":
                values.append(self.memory.load_u32(offset))
            elif t == "f":
                values.append(self.memory.load_f32(offset))
            else:
                values.append(self.memory.load_f64(offset))
            offset += _sizeof(t)
        self.arg_sp = args_base
        result = intr.fn(self, *values)
        return 0 if result is None else result

    def call_procedure(self, index: int) -> Any:
        """LocalCALL / trampoline body: build a frame and interpret."""
        try:
            proc = self.program.procedures[index]
        except IndexError:
            raise Trap(f"procedure index {index} out of range") from None
        if self.call_depth >= self.max_call_depth:
            raise Trap("call stack overflow")
        args_base = self.arg_sp - proc.argsize
        locals_base = self.frame_sp
        frame_top = locals_base + proc.framesize
        if frame_top > self.memory.size:
            raise Trap("frame stack overflow")
        istate = IState(args_base, locals_base)
        self.call_depth += 1
        self.frame_sp = frame_top
        try:
            return self.executor.run_procedure(self, index, istate)
        finally:
            self.frame_sp = locals_base
            self.arg_sp = args_base
            self.call_depth -= 1

    # -- program entry --------------------------------------------------------
    def run(self, *int_args: int) -> int:
        """Call the entry procedure with word arguments; returns the exit
        code (from ``exit``) or the entry's return value."""
        entry = self.program.entry
        if entry is None:
            raise Trap("program has no entry procedure")
        for a in int_args:
            self.push_arg_u32(a & MASK32)
        try:
            result = self.call_procedure(entry)
        except Exit as e:
            return e.code
        return to_signed(result) if isinstance(result, int) else 0

    def output_text(self) -> str:
        return self.output.decode("utf-8", errors="replace")


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


def run_program(program, executor, *int_args: int,
                input_data: bytes = b"",
                budget: int = 0) -> Tuple[int, bytes]:
    """Convenience: run to completion, returning (exit code, output)."""
    machine = Machine(program, executor, input_data=input_data,
                      budget=budget)
    code = machine.run(*int_args)
    return code, bytes(machine.output)
