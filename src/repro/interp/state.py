"""Interpreter state and control-flow signals (paper Section 5).

The C implementation keeps an ``istate`` struct (pc, evaluation stack) and
uses ``longjmp`` for returns and branch targets; our Python interpreters use
exceptions the same way: the operator semantics raise, the per-procedure
interpreter loop catches and adjusts the pc.
"""

from __future__ import annotations

from typing import Any, List

__all__ = ["IState", "Jump", "Return", "Exit", "Trap", "BudgetExceeded"]


class IState:
    """Per-activation interpreter state."""

    __slots__ = ("pc", "stack", "args_base", "locals_base")

    def __init__(self, args_base: int, locals_base: int) -> None:
        self.pc = 0
        self.stack: List[Any] = []
        self.args_base = args_base
        self.locals_base = locals_base

    def push(self, value: Any) -> None:
        self.stack.append(value)

    def pop(self) -> Any:
        return self.stack.pop()


class Jump(Exception):
    """Transfer control to a label (``JUMPV`` / taken ``BrTrue``)."""

    def __init__(self, label: int) -> None:
        super().__init__(label)
        self.label = label


class Return(Exception):
    """Return from the current procedure (``RET*``)."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Exit(Exception):
    """Terminate the whole program (the ``exit`` intrinsic)."""

    def __init__(self, code: int) -> None:
        super().__init__(code)
        self.code = code


class Trap(RuntimeError):
    """A machine fault: bad call target, unsupported operator, ..."""


class BudgetExceeded(Trap):
    """The execution budget ran out: the program dispatched more rules
    than the request allowed.  Deterministic — every engine counts the
    same dispatch stream, so the trap fires at the same dispatch on all
    of them — and a :class:`Trap`, so the service maps it to the same
    structured ``trap`` error a program fault gets."""

    @staticmethod
    def message(budget: int) -> str:
        return f"execution budget exceeded: {budget} dispatches"
