"""Byte-addressable memory for the bytecode machine.

The interpreter state manipulates a small evaluation stack of C-union-like
values (paper Section 5); everything addressable — globals, locals, formals,
heap — lives in one flat little-endian byte array so that ``ADDR*`` /
``INDIR*`` / ``ASGN*`` behave like real pointers.

Integer stack values are kept as 32-bit *patterns* (0 .. 2**32-1); the
signed operators reinterpret them, mirroring the C union of basic machine
types.  Floats are stored as Python floats; single-precision results are
rounded through a real float32 representation so ``F``-suffixed arithmetic
matches 32-bit hardware.
"""

from __future__ import annotations

import struct

__all__ = ["Memory", "MemoryError_", "MASK32", "to_signed", "to_unsigned",
           "f32"]

MASK32 = 0xFFFFFFFF


def to_signed(pattern: int) -> int:
    """Reinterpret a 32-bit pattern as a signed int."""
    pattern &= MASK32
    return pattern - 0x100000000 if pattern & 0x80000000 else pattern


def to_unsigned(value: int) -> int:
    """Wrap a Python int into a 32-bit pattern."""
    return value & MASK32


def f32(value: float) -> float:
    """Round a Python float through IEEE single precision."""
    return struct.unpack("<f", struct.pack("<f", value))[0]


class MemoryError_(RuntimeError):
    """Out-of-range access (the VM's segmentation fault)."""


class Memory:
    """Flat little-endian memory with typed accessors."""

    def __init__(self, size: int) -> None:
        self.size = size
        self._bytes = bytearray(size)

    def _check(self, addr: int, n: int) -> None:
        if addr < 0 or addr + n > self.size:
            raise MemoryError_(
                f"access of {n} bytes at address {addr:#x} is out of range"
            )

    # -- raw ----------------------------------------------------------------
    def write_bytes(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        self._bytes[addr:addr + len(data)] = data

    def read_bytes(self, addr: int, n: int) -> bytes:
        self._check(addr, n)
        return bytes(self._bytes[addr:addr + n])

    def read_cstring(self, addr: int) -> bytes:
        """NUL-terminated string starting at ``addr``."""
        end = self._bytes.find(b"\0", addr)
        if end < 0:
            raise MemoryError_(f"unterminated string at {addr:#x}")
        return bytes(self._bytes[addr:end])

    # -- integers ---------------------------------------------------------
    # The word-sized accessors run on nearly every operator, so the bounds
    # check is inlined (a ``_check`` call would cost a Python frame each).
    def load_u8(self, addr: int) -> int:
        if addr < 0 or addr + 1 > self.size:
            self._check(addr, 1)
        return self._bytes[addr]

    def load_u16(self, addr: int) -> int:
        if addr < 0 or addr + 2 > self.size:
            self._check(addr, 2)
        return self._bytes[addr] | (self._bytes[addr + 1] << 8)

    def load_u32(self, addr: int) -> int:
        if addr < 0 or addr + 4 > self.size:
            self._check(addr, 4)
        return int.from_bytes(self._bytes[addr:addr + 4], "little")

    def store_u8(self, addr: int, value: int) -> None:
        if addr < 0 or addr + 1 > self.size:
            self._check(addr, 1)
        self._bytes[addr] = value & 0xFF

    def store_u16(self, addr: int, value: int) -> None:
        if addr < 0 or addr + 2 > self.size:
            self._check(addr, 2)
        self._bytes[addr:addr + 2] = (value & 0xFFFF).to_bytes(2, "little")

    def store_u32(self, addr: int, value: int) -> None:
        if addr < 0 or addr + 4 > self.size:
            self._check(addr, 4)
        self._bytes[addr:addr + 4] = (value & MASK32).to_bytes(4, "little")

    # -- floats ------------------------------------------------------------
    def load_f32(self, addr: int) -> float:
        self._check(addr, 4)
        return struct.unpack_from("<f", self._bytes, addr)[0]

    def load_f64(self, addr: int) -> float:
        self._check(addr, 8)
        return struct.unpack_from("<d", self._bytes, addr)[0]

    def store_f32(self, addr: int, value: float) -> None:
        self._check(addr, 4)
        struct.pack_into("<f", self._bytes, addr, value)

    def store_f64(self, addr: int, value: float) -> None:
        self._check(addr, 8)
        struct.pack_into("<d", self._bytes, addr, value)
