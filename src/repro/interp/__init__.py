"""The two interpreters and their shared runtime (paper Section 5)."""

from .memory import MASK32, Memory, f32, to_signed, to_unsigned
from .state import Exit, IState, Jump, Return, Trap
from .base import HANDLERS, UnsupportedOpcode, execute
from .runtime import (
    INTRINSIC_BASE,
    INTRINSICS,
    Intrinsic,
    Machine,
    TRAMPOLINE_BASE,
    run_program,
)
from .tables import (
    CompiledTables,
    InterpTables,
    RuleProgram,
    TableError,
    compiled_tables,
    interp_tables,
)
from .interp1 import Interpreter1
from .interp2 import Interpreter2
from .compiled import CompiledEngine
from .profile import ExecutionProfile, ProfilingExecutor, profile_run

__all__ = [
    "MASK32", "Memory", "f32", "to_signed", "to_unsigned",
    "Exit", "IState", "Jump", "Return", "Trap",
    "HANDLERS", "UnsupportedOpcode", "execute",
    "INTRINSIC_BASE", "INTRINSICS", "Intrinsic", "Machine",
    "TRAMPOLINE_BASE", "run_program",
    "InterpTables", "RuleProgram", "TableError",
    "CompiledTables", "compiled_tables", "interp_tables",
    "Interpreter1", "Interpreter2", "CompiledEngine",
    "ExecutionProfile", "ProfilingExecutor", "profile_run",
]
