"""Execution profiling for both interpreters.

The paper's method is *profile-driven by static frequency*: the grammar is
rewritten to shorten the training corpus's derivations — i.e. to compress
the program text, not its execution.  This profiler measures the other
side: what actually runs.  It wraps either executor and counts

* operator executions (both interpreters),
* rule dispatches per (nonterminal, codeword) — interpreter 2 only: how
  often each *learned instruction* is fetched at run time,
* block entries (derivation restarts) and branch transfers.

That enables an analysis the paper does not run but clearly invites: the
correlation between a rule's static usage (how many bytes it saves) and
its dynamic usage (how often the interpreter walks it) — and the cost
model for a hypothetical execution-profile-driven variant of the trainer.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Tuple

from ..bytecode.opcodes import opname
from .interp1 import Interpreter1
from .interp2 import Interpreter2
from .state import IState, Jump, Return

__all__ = ["ExecutionProfile", "ProfilingExecutor", "profile_run"]


@dataclass
class ExecutionProfile:
    """Counters collected during one run."""

    operators: Counter = field(default_factory=Counter)   # opcode -> n
    rules: Counter = field(default_factory=Counter)       # (nt, cw) -> n
    blocks_entered: int = 0
    branches_taken: int = 0
    returns: int = 0

    @property
    def total_operators(self) -> int:
        return sum(self.operators.values())

    @property
    def total_dispatches(self) -> int:
        """Rule fetches (interp2) or operator fetches (interp1)."""
        return sum(self.rules.values()) or self.total_operators

    def top_operators(self, n: int = 10):
        return [(opname(code), count)
                for code, count in self.operators.most_common(n)]

    def top_rules(self, n: int = 10):
        return self.rules.most_common(n)


class ProfilingExecutor:
    """Wraps an Interpreter1 or Interpreter2, recording a profile.

    Plugs into :class:`repro.interp.runtime.Machine` exactly like the
    wrapped executor.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.profile = ExecutionProfile()
        if isinstance(inner, Interpreter2):
            self._install_interp2_hooks(inner)
        elif isinstance(inner, Interpreter1):
            self._install_interp1_hooks(inner)
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot profile {type(inner).__name__}")

    # The hooks shadow the executor's tables on a shallow copy, so the
    # original executor instances stay reusable and unprofiled.
    def _install_interp1_hooks(self, inner: Interpreter1) -> None:
        from ..bytecode.instructions import iter_decode
        from .base import HANDLERS

        profile = self.profile

        def make_traced(op_code, handler):
            def traced(istate, machine, operands):
                profile.operators[op_code] += 1
                try:
                    return handler(istate, machine, operands)
                except Jump:
                    profile.branches_taken += 1
                    raise
                except Return:
                    profile.returns += 1
                    raise
            return traced

        decoded = []
        for proc in inner.module.procedures:
            table = {}
            for off, ins in reversed(list(iter_decode(proc.code))):
                nxt = off + ins.size
                if ins.op.name == "LABELV":
                    table[off] = table.get(
                        nxt, (lambda s, m, o: None, (), nxt)
                    )
                else:
                    table[off] = (
                        make_traced(ins.op.code, HANDLERS[ins.op.code]),
                        ins.operands, nxt,
                    )
            decoded.append(table)
        clone = Interpreter1.__new__(Interpreter1)
        clone.module = inner.module
        clone._decoded = decoded
        self._run = clone.run_procedure

    def _install_interp2_hooks(self, inner: Interpreter2) -> None:
        profile = self.profile
        outer = self

        class _Tracing(Interpreter2):
            def __init__(self):  # noqa: D401 - share tables, no re-init
                self.module = inner.module
                self.tables = inner.tables
                self.byte_nt = inner.byte_nt

            def _exec_derivation(self, machine, istate, code):
                profile.blocks_entered += 1
                return outer._trace_derivation(self, machine, istate, code)

        self._run = _Tracing().run_procedure

    def _trace_derivation(self, interp: Interpreter2, machine,
                          istate: IState, code: bytes) -> None:
        from .base import HANDLERS

        profile = self.profile
        tables = interp.tables
        read = interp._read_byte
        codeword = read(istate, code)
        profile.rules[(tables.start, codeword)] += 1
        program = tables.program(tables.start, codeword)
        stack = [(program.steps, 0)]
        while stack:
            steps, i = stack[-1]
            if i == len(steps):
                stack.pop()
                continue
            stack[-1] = (steps, i + 1)
            step = steps[i]
            if step[0] == "op":
                _, op, plan = step
                operands = tuple(
                    b if b is not None else read(istate, code)
                    for b in plan
                ) if plan else ()
                machine.instret += 1
                profile.operators[op] += 1
                try:
                    HANDLERS[op](istate, machine, operands)
                except Jump:
                    profile.branches_taken += 1
                    raise
                except Return:
                    profile.returns += 1
                    raise
            else:
                codeword = read(istate, code)
                profile.rules[(step[1], codeword)] += 1
                sub = tables.program(step[1], codeword)
                stack.append((sub.steps, 0))

    def run_procedure(self, machine, index: int, istate: IState) -> Any:
        return self._run(machine, index, istate)


def profile_run(program, *args: int,
                input_data: bytes = b"") -> Tuple[int, bytes,
                                                  ExecutionProfile]:
    """Run a Module or CompressedModule under the profiler."""
    from ..bytecode.module import Module
    from .runtime import Machine

    if isinstance(program, Module):
        executor = ProfilingExecutor(Interpreter1(program))
    else:
        executor = ProfilingExecutor(Interpreter2(program))
    machine = Machine(program, executor, input_data=input_data)
    code = machine.run(*args)
    return code, bytes(machine.output), executor.profile
