"""Execution profiling for both interpreters.

The paper's method is *profile-driven by static frequency*: the grammar is
rewritten to shorten the training corpus's derivations — i.e. to compress
the program text, not its execution.  This profiler measures the other
side: what actually runs.  It wraps either executor and counts

* operator executions (all executors),
* rule dispatches per (nonterminal, codeword) — compressed executors
  only: how often each *learned instruction* is fetched at run time,
* block entries (derivation restarts) and branch transfers,
* for the direct-threaded engine, a dispatch-depth histogram: how deep
  the explicit return stack was at each rule dispatch (tail dispatches
  replace in place, so this measures the *pending* right-hand-side work,
  not raw derivation depth).

Profiling the direct-threaded engine walks the same flattened tables
(:class:`~repro.interp.tables.CompiledTables`) the engine dispatches on,
but executes the symbolic per-operator plans one at a time instead of the
fused run functions — exact per-operator accounting, at reference-engine
speed.

That enables an analysis the paper does not run but clearly invites: the
correlation between a rule's static usage (how many bytes it saves) and
its dynamic usage (how often the interpreter walks it) — and the cost
model for a hypothetical execution-profile-driven variant of the trainer.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Tuple

from ..bytecode.opcodes import opname
from .compiled import CompiledEngine
from .interp1 import Interpreter1
from .interp2 import Interpreter2
from .state import IState, Jump, Return, Trap

__all__ = ["ExecutionProfile", "ProfilingExecutor", "profile_run"]


@dataclass
class ExecutionProfile:
    """Counters collected during one run."""

    operators: Counter = field(default_factory=Counter)   # opcode -> n
    rules: Counter = field(default_factory=Counter)       # (nt, cw) -> n
    blocks_entered: int = 0
    branches_taken: int = 0
    returns: int = 0
    # return-stack depth at each rule dispatch (direct-threaded engine)
    dispatch_depth: Counter = field(default_factory=Counter)

    @property
    def total_operators(self) -> int:
        return sum(self.operators.values())

    @property
    def total_dispatches(self) -> int:
        """Rule fetches (interp2) or operator fetches (interp1)."""
        return sum(self.rules.values()) or self.total_operators

    def top_operators(self, n: int = 10):
        return [(opname(code), count)
                for code, count in self.operators.most_common(n)]

    def top_rules(self, n: int = 10):
        return self.rules.most_common(n)


class ProfilingExecutor:
    """Wraps an Interpreter1 or Interpreter2, recording a profile.

    Plugs into :class:`repro.interp.runtime.Machine` exactly like the
    wrapped executor.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.profile = ExecutionProfile()
        if isinstance(inner, CompiledEngine):
            self._install_compiled_hooks(inner)
        elif isinstance(inner, Interpreter2):
            self._install_interp2_hooks(inner)
        elif isinstance(inner, Interpreter1):
            self._install_interp1_hooks(inner)
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot profile {type(inner).__name__}")

    # The hooks shadow the executor's tables on a shallow copy, so the
    # original executor instances stay reusable and unprofiled.
    def _install_interp1_hooks(self, inner: Interpreter1) -> None:
        from ..bytecode.instructions import iter_decode
        from .base import HANDLERS

        profile = self.profile

        def make_traced(op_code, handler):
            def traced(istate, machine, operands):
                profile.operators[op_code] += 1
                try:
                    return handler(istate, machine, operands)
                except Jump:
                    profile.branches_taken += 1
                    raise
                except Return:
                    profile.returns += 1
                    raise
            return traced

        decoded = []
        for proc in inner.module.procedures:
            table = {}
            for off, ins in reversed(list(iter_decode(proc.code))):
                nxt = off + ins.size
                if ins.op.name == "LABELV":
                    table[off] = table.get(
                        nxt, (lambda s, m, o: None, (), nxt)
                    )
                else:
                    table[off] = (
                        make_traced(ins.op.code, HANDLERS[ins.op.code]),
                        ins.operands, nxt,
                    )
            decoded.append(table)
        clone = Interpreter1.__new__(Interpreter1)
        clone.module = inner.module
        clone._decoded = decoded
        self._run = clone.run_procedure

    def _install_interp2_hooks(self, inner: Interpreter2) -> None:
        profile = self.profile
        outer = self

        class _Tracing(Interpreter2):
            def __init__(self):  # noqa: D401 - share tables, no re-init
                self.module = inner.module
                self.tables = inner.tables
                self.byte_nt = inner.byte_nt

            def _exec_derivation(self, machine, istate, code):
                profile.blocks_entered += 1
                return outer._trace_derivation(self, machine, istate, code)

        self._run = _Tracing().run_procedure

    def _trace_derivation(self, interp: Interpreter2, machine,
                          istate: IState, code: bytes) -> None:
        from .base import HANDLERS

        profile = self.profile
        tables = interp.tables
        read = interp._read_byte
        codeword = read(istate, code)
        profile.rules[(tables.start, codeword)] += 1
        program = tables.program(tables.start, codeword)
        stack = [(program.steps, 0)]
        while stack:
            steps, i = stack[-1]
            if i == len(steps):
                stack.pop()
                continue
            stack[-1] = (steps, i + 1)
            step = steps[i]
            if step[0] == "op":
                _, op, plan = step
                operands = tuple(
                    b if b is not None else read(istate, code)
                    for b in plan
                ) if plan else ()
                machine.instret += 1
                profile.operators[op] += 1
                try:
                    HANDLERS[op](istate, machine, operands)
                except Jump:
                    profile.branches_taken += 1
                    raise
                except Return:
                    profile.returns += 1
                    raise
            else:
                codeword = read(istate, code)
                profile.rules[(step[1], codeword)] += 1
                sub = tables.program(step[1], codeword)
                stack.append((sub.steps, 0))

    def _install_compiled_hooks(self, inner: CompiledEngine) -> None:
        outer = self

        class _TracingEngine:
            module = inner.module
            tables = inner.tables

            def run_procedure(self, machine, index, istate):
                return outer._trace_compiled(inner, machine, index, istate)

        self._run = _TracingEngine().run_procedure

    def _trace_compiled(self, inner: CompiledEngine, machine, index: int,
                        istate: IState) -> Any:
        """The engine's dispatch loop, instrumented: same flattened
        tables, same explicit return stack and tail collapse, but the
        symbolic per-operator plans are executed one operator at a time
        so every counter is exact (including ``instret`` across traps).
        """
        from .base import HANDLERS
        from .compiled import _EXHAUSTED
        from .tables import STEP_CALL, STEP_OP1, STEP_RUN, TableError

        profile = self.profile
        tables = inner.tables
        cproc = inner.module.procedures[index]
        code = cproc.code
        labels = cproc.labels
        end = len(code)
        nt_of_row = tables.nt_of_row
        start_row = tables.start_row
        start_programs = tables.rows[start_row]

        def run_op(op: int, operands: tuple) -> None:
            machine.instret += 1
            profile.operators[op] += 1
            try:
                HANDLERS[op](istate, machine, operands)
            except Jump:
                profile.branches_taken += 1
                raise
            except Return:
                profile.returns += 1
                raise

        pc = 0
        stack: list = []
        try:
            while True:
                try:
                    while pc < end:
                        profile.blocks_entered += 1
                        profile.rules[(nt_of_row[start_row],
                                       code[pc])] += 1
                        profile.dispatch_depth[0] += 1
                        machine.dispatches += 1
                        steps = start_programs[code[pc]]
                        pc += 1
                        i = 0
                        n = len(steps)
                        while True:
                            if i == n:
                                if stack:
                                    steps, i, n = stack.pop()
                                    continue
                                break  # derivation complete
                            step = steps[i]
                            i += 1
                            tag = step[0]
                            if tag == STEP_RUN:
                                for op, plan in zip(step[3], step[4]):
                                    operands = []
                                    for b in plan:
                                        if b is None:
                                            if pc >= end:
                                                raise Trap(_EXHAUSTED)
                                            b = code[pc]
                                            pc += 1
                                        operands.append(b)
                                    run_op(op, tuple(operands))
                            elif tag == STEP_OP1:
                                run_op(step[3], step[2])
                            elif tag == STEP_CALL:
                                if pc >= end:
                                    raise Trap(_EXHAUSTED)
                                if i != n:  # not a tail dispatch
                                    stack.append((steps, i, n))
                                profile.rules[(nt_of_row[step[2]],
                                               code[pc])] += 1
                                profile.dispatch_depth[len(stack)] += 1
                                machine.dispatches += 1
                                steps = step[1][code[pc]]
                                pc += 1
                                i = 0
                                n = len(steps)
                            else:  # sentinel: invalid codeword
                                raise TableError(step[1])
                    raise Trap(
                        f"{cproc.name}: fell off the end of the code"
                    )
                except Jump as jump:
                    label = jump.label
                    if not 0 <= label < len(labels):
                        raise Trap(
                            f"{cproc.name}: branch to label {label} "
                            f"out of range"
                        ) from None
                    pc = labels[label]
                    if stack:
                        del stack[:]
                except Return as ret:
                    return ret.value
        finally:
            istate.pc = pc

    def run_procedure(self, machine, index: int, istate: IState) -> Any:
        return self._run(machine, index, istate)


def profile_run(program, *args: int, input_data: bytes = b"",
                engine: str = "compiled") -> Tuple[int, bytes,
                                                   ExecutionProfile]:
    """Run a Module or CompressedModule under the profiler.

    For compressed modules ``engine`` selects the executor being
    instrumented: ``"compiled"`` (the direct-threaded engine's tables,
    with the dispatch-depth histogram) or ``"reference"`` (interp2).
    """
    from ..bytecode.module import Module
    from .runtime import Machine

    if isinstance(program, Module):
        executor = ProfilingExecutor(Interpreter1(program))
    elif engine == "reference":
        executor = ProfilingExecutor(Interpreter2(program))
    elif engine == "compiled":
        executor = ProfilingExecutor(CompiledEngine(program))
    else:
        raise ValueError(f"unknown engine {engine!r}")
    machine = Machine(program, executor, input_data=input_data)
    code = machine.run(*args)
    return code, bytes(machine.output), executor.profile
