"""Derivations: the compressed representation (paper Section 4).

A program (block) is represented by its leftmost derivation: the list of
rules used to expand the leftmost nonterminal of each sentential form, each
rule written as its *index* within its nonterminal's rule list.  Because the
expander keeps every nonterminal at or under 256 rules, one derivation step
is exactly one byte; for the ``<byte>`` nonterminal the index *is* the
literal byte value.

The leftmost derivation of a parse tree is its preorder rule sequence, and
conversely a preorder rule sequence rebuilds the tree by always expanding
the leftmost pending nonterminal — both directions are implemented here and
are the encoder/decoder the compressor and the generated interpreter share.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, List, Optional, Tuple

from ..core.program import program_for
from ..grammar.cfg import Grammar
from .forest import Node, preorder

__all__ = [
    "derivation_of_tree",
    "tree_of_derivation",
    "encode_tree",
    "decode_tree",
    "DerivationCache",
    "DerivationError",
]


class DerivationError(ValueError):
    """Raised on a malformed encoded derivation."""


class DerivationCache:
    """LRU memo for shortest-derivation results, keyed by what is being
    derived: ``(nonterminal, span)``.

    Real programs repeat basic blocks — loop preambles, common epilogues,
    compiler-generated idioms — and the shortest derivation of a block
    depends only on its parse under the *original* rules (the span) and
    the nonterminal it derives from, never on where in the program it
    sits.  The compressor therefore keys this cache by
    ``(start nonterminal, preorder original-rule ids)`` and skips the
    tiling DP entirely on a repeat.  Bounded LRU so a huge corpus of
    unique blocks cannot grow it without limit.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[bytes]:
        data = self._data.get(key)
        if data is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return data

    def put(self, key: Hashable, data: bytes) -> None:
        self._data[key] = data
        self._data.move_to_end(key)
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def info(self) -> str:
        return (f"{self.hits} hits, {self.misses} misses "
                f"({self.hit_rate:.1%}), {len(self._data)} entries")


def derivation_of_tree(root: Node) -> List[int]:
    """Preorder rule ids = the leftmost derivation of the tree."""
    return [node.rule_id for node in preorder(root)]


def tree_of_derivation(grammar: Grammar, rule_ids: List[int],
                       start: Optional[int] = None) -> Node:
    """Rebuild the parse tree from a leftmost derivation (rule-id form)."""
    if start is None:
        start = grammar.start
    if not rule_ids:
        raise DerivationError("empty derivation")
    # Explicit-stack leftmost expansion (the <start> spine is too deep for
    # recursion).
    root_rule = grammar.rules.get(rule_ids[0])
    if root_rule is None or root_rule.lhs != start:
        raise DerivationError("derivation does not start at the start symbol")
    pos = 1
    root = Node(rule_ids[0])
    # Stack of (node, next_child_slot) still needing children.
    work: List[Tuple[Node, int]] = []
    if grammar.rules[root.rule_id].arity:
        work.append((root, 0))
    while work:
        node, slot = work[-1]
        rule = grammar.rules[node.rule_id]
        if slot == rule.arity:
            work.pop()
            continue
        expected = rule.rhs[rule.nt_positions[slot]]
        if pos >= len(rule_ids):
            raise DerivationError("derivation ends early")
        rid = rule_ids[pos]
        pos += 1
        crule = grammar.rules.get(rid)
        if crule is None or crule.lhs != expected:
            raise DerivationError(
                f"step {pos - 1}: rule {rid} does not expand "
                f"<{grammar.nt_name(expected)}>"
            )
        child = Node(rid)
        node.children.append(child)
        child.parent = node
        child.pindex = slot
        work[-1] = (node, slot + 1)
        if crule.arity:
            work.append((child, 0))
    if pos != len(rule_ids):
        raise DerivationError(
            f"{len(rule_ids) - pos} extra rules after complete derivation"
        )
    return root


def encode_tree(grammar: Grammar, root: Node) -> bytes:
    """Encode a parse tree as compressed bytes: one byte per derivation
    step, each the rule's index within its nonterminal's rule list.

    The index lookup goes through the grammar's precompiled codeword
    table (:class:`~repro.core.program.GrammarProgram`) instead of a
    linear ``list.index`` scan per step."""
    codeword_of = program_for(grammar).codeword_of
    out = bytearray()
    for node in preorder(root):
        idx = codeword_of[node.rule_id]
        if idx > 255:
            raise DerivationError(
                f"rule index {idx} does not fit in a byte"
            )
        out.append(idx)
    return bytes(out)


def decode_tree(grammar: Grammar, data: bytes, pos: int = 0,
                start: Optional[int] = None) -> Tuple[Node, int]:
    """Decode one derivation starting at ``data[pos]``.

    Returns the parse tree and the position just past the derivation —
    which is how the generated interpreter advances block by block.
    """
    if start is None:
        start = grammar.start
    by_lhs = grammar.by_lhs

    def read_rule(nt: int) -> int:
        nonlocal pos
        if pos >= len(data):
            raise DerivationError("compressed stream ends early")
        idx = data[pos]
        pos += 1
        rids = by_lhs[nt]
        if idx >= len(rids):
            raise DerivationError(
                f"byte {idx} is not a rule index for "
                f"<{grammar.nt_name(nt)}> ({len(rids)} rules)"
            )
        return rids[idx]

    root = Node(read_rule(start))
    work: List[Tuple[Node, int]] = []
    if grammar.rules[root.rule_id].arity:
        work.append((root, 0))
    while work:
        node, slot = work[-1]
        rule = grammar.rules[node.rule_id]
        if slot == rule.arity:
            work.pop()
            continue
        expected = rule.rhs[rule.nt_positions[slot]]
        child = Node(read_rule(expected))
        node.children.append(child)
        child.parent = node
        child.pindex = slot
        work[-1] = (node, slot + 1)
        if grammar.rules[child.rule_id].arity:
            work.append((child, 0))
    return root, pos
