"""Earley parsing, including the paper's modified shortest-derivation
variant (Section 4.1: "We use Earley's parsing algorithm, slightly modified,
to obtain a shortest derivation for a given sequence").

The expanded grammar is deliberately ambiguous (the original rules stay in),
so the compressor needs not *a* parse but a parse whose derivation — the
preorder list of rules — is as short as possible, because the compressed
form spends one byte per derivation step.  We annotate every Earley item
with the minimum number of rules needed to derive its span and relax items
to a fixpoint within each state set; completions propagate cost
``1 + sum(children costs)``.

The predictor prunes through the grammar's precompiled
:class:`~repro.core.program.GrammarProgram`: a rule is predicted only if
the next input symbol is in its first-terminal set or its right-hand side
is nullable.  The pruning is *exact* — a predicted item failing both
tests can never scan (its first terminal is not the next symbol), never
complete non-trivially (completing over a non-empty span requires a
scan somewhere beneath it), never complete emptily (that needs a
nullable RHS), and therefore never advances any parent item — so the
surviving items, their costs, their backpointers, and the worklist order
among them are identical to the unpruned parse (frozen as
``repro.compress.oracle.oracle_shortest_derivation_tree`` and held
byte-identical by the golden-equivalence sweep).  On the 256-rule
nonterminals of a trained grammar this removes almost the entire predict
fan-out.

This module is the reference implementation: it works for *any* CFG and is
cross-checked in tests against the production path (tree-tiling DP in
:mod:`repro.compress.tiling`), which exploits the structure of inlined
grammars and is much faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.program import GrammarProgram, program_for
from ..grammar.cfg import Grammar, is_nonterminal
from .forest import Node

__all__ = ["EarleyError", "recognize", "shortest_derivation_tree",
           "shortest_derivation"]

INF = float("inf")


class EarleyError(ValueError):
    """Raised when the input does not derive from the start symbol.

    Structured like :class:`~repro.parsing.derivation.DerivationError`
    messages: the text leads with the nonterminal, and the parse context
    is carried as attributes —

    * ``nonterminal``: name of the start nonterminal the parse was for;
    * ``position``: the furthest input position the parse reached;
    * ``expected``: terminal names that could have continued the parse
      there;
    * ``candidates``: the nearest rules (display strings) that were
      still in progress at the stall position.
    """

    def __init__(self, message: str, *,
                 nonterminal: Optional[str] = None,
                 position: Optional[int] = None,
                 expected: Sequence[str] = (),
                 candidates: Sequence[str] = ()) -> None:
        super().__init__(message)
        self.nonterminal = nonterminal
        self.position = position
        self.expected = tuple(expected)
        self.candidates = tuple(candidates)


# An item key is (rule_id, dot, origin).  Chart[j] maps item keys to
# (cost, backpointer).  Backpointers:
#   None                      -- initial (dot == 0)
#   ("scan", prev_key)        -- advanced over a terminal at j-1
#   ("complete", prev_key, child_nt_key, child_j)
# where child_nt_key identifies the completed child item (rule, 0-dot-at,
# origin) in chart[j].
_Key = Tuple[int, int, int]


@dataclass
class _Chart:
    sets: List[Dict[_Key, Tuple[int, Optional[tuple]]]]


def _parse_chart(grammar: Grammar, symbols: Sequence[int],
                 start: Optional[int] = None,
                 program: Optional[GrammarProgram] = None) -> _Chart:
    """Run cost-annotated Earley; returns the full chart."""
    if start is None:
        start = grammar.start
    if program is None:
        program = program_for(grammar)
    n = len(symbols)
    rules = grammar.rules
    by_lhs = grammar.by_lhs
    rule_first = program.rule_first
    rule_nullable = program.rule_nullable
    # Viable predictions per (nonterminal, lookahead), shared across
    # positions with the same next symbol (None past the end).
    predict_memo: Dict[Tuple[int, Optional[int]], tuple] = {}

    def predictable(sym: int, look: Optional[int]) -> tuple:
        key = (sym, look)
        rids = predict_memo.get(key)
        if rids is None:
            rids = tuple(
                rid for rid in by_lhs[sym]
                if rule_nullable[rid]
                or (look is not None and look in rule_first[rid])
            )
            predict_memo[key] = rids
        return rids

    sets: List[Dict[_Key, Tuple[int, Optional[tuple]]]] = [
        {} for _ in range(n + 1)
    ]

    def add(j: int, key: _Key, cost: int, back: Optional[tuple],
            worklist: List[_Key]) -> None:
        cur = sets[j].get(key)
        if cur is None or cost < cur[0]:
            sets[j][key] = (cost, back)
            worklist.append(key)

    # Seed S[0] with predictions for the start symbol.
    worklist: List[_Key] = []
    for rid in predictable(start, symbols[0] if n else None):
        add(0, (rid, 0, 0), 0, None, worklist)

    for j in range(n + 1):
        look = symbols[j] if j < n else None
        if j > 0:
            worklist = list(sets[j].keys())
        # Fixpoint over predictor/completer within S[j].
        while worklist:
            key = worklist.pop()
            entry = sets[j].get(key)
            if entry is None:
                continue
            cost, _ = entry
            rid, dot, origin = key
            rhs = rules[rid].rhs
            if dot < len(rhs):
                sym = rhs[dot]
                if is_nonterminal(sym):
                    # Predict (pruned: only rules that can start the
                    # remaining input or derive epsilon).
                    for rid2 in predictable(sym, look):
                        add(j, (rid2, 0, j), 0, None, worklist)
                    # Complete against already-finished children at j
                    # (handles epsilon and same-position completions).
                    for ckey, (ccost, _cb) in list(sets[j].items()):
                        crid, cdot, corigin = ckey
                        if corigin == j and cdot == len(rules[crid].rhs) \
                                and rules[crid].lhs == sym:
                            add(j, (rid, dot + 1, origin),
                                cost + ccost + 1,
                                ("complete", key, ckey, j), worklist)
            else:
                # Completer: advance every item waiting on this LHS.
                lhs = rules[rid].lhs
                for pkey, (pcost, _pb) in list(sets[origin].items()):
                    prid, pdot, porigin = pkey
                    prhs = rules[prid].rhs
                    if pdot < len(prhs) and prhs[pdot] == lhs:
                        add(j, (prid, pdot + 1, porigin),
                            pcost + cost + 1,
                            ("complete", pkey, key, j), worklist)
        # Scanner: move items over symbols[j] into S[j+1].
        if j < n:
            sym = symbols[j]
            for key, (cost, _) in sets[j].items():
                rid, dot, origin = key
                rhs = rules[rid].rhs
                if dot < len(rhs) and rhs[dot] == sym:
                    nkey = (rid, dot + 1, origin)
                    cur = sets[j + 1].get(nkey)
                    if cur is None or cost < cur[0]:
                        sets[j + 1][nkey] = (cost, ("scan", key))
    return _Chart(sets)


def recognize(grammar: Grammar, symbols: Sequence[int],
              start: Optional[int] = None) -> bool:
    """Does ``symbols`` derive from ``start``?"""
    if start is None:
        start = grammar.start
    chart = _parse_chart(grammar, symbols, start)
    n = len(symbols)
    for (rid, dot, origin), _ in chart.sets[n].items():
        rule = grammar.rules[rid]
        if rule.lhs == start and origin == 0 and dot == len(rule.rhs):
            return True
    return False


def _build_tree(grammar: Grammar, chart: _Chart, key: _Key, j: int) -> Node:
    """Reconstruct the parse tree for a completed item via backpointers.

    Iterative: the tree can be as deep as the input is long (a block is
    a left-recursive ``<start>`` spine, one level per statement), so
    recursing per child would hit Python's recursion limit on large
    procedures.  Each frame walks one item's backpointer chain
    right-to-left, pausing while a child frame rebuilds a completed
    subtree.
    """
    rules = grammar.rules
    # Frame: [key, j, children_rev] — mutated in place when paused.
    frames: List[list] = [[key, j, []]]
    result: Optional[Node] = None
    while frames:
        frame = frames[-1]
        if result is not None:
            frame[2].append(result)
            result = None
        while True:
            key, j = frame[0], frame[1]
            back = chart.sets[j][key][1]
            if back is None:
                rid = key[0]
                children = frame[2][::-1]
                node = Node(rid, children)
                assert len(children) == rules[rid].arity
                frames.pop()
                result = node
                break
            if back[0] == "scan":
                frame[0] = back[1]
                frame[1] = j - 1
            else:
                # The child completed its span (child_origin .. cj); the
                # parent item was sitting in the set where the child
                # started.  Park the parent there and rebuild the child.
                _, pkey, ckey, cj = back
                frame[0] = pkey
                frame[1] = ckey[2]
                frames.append([ckey, cj, []])
                break
    return result


def _stall_error(grammar: Grammar, program: GrammarProgram,
                 chart: _Chart, n: int, start: int) -> EarleyError:
    """Build the structured no-parse error from the furthest chart set."""
    position = 0
    for j in range(n, -1, -1):
        if chart.sets[j]:
            position = j
            break
    rules = grammar.rules
    expected: List[str] = []
    expected_seen: set = set()
    candidates: List[str] = []
    candidate_rids: set = set()
    for (rid, dot, _origin) in chart.sets[position]:
        rule = rules[rid]
        if dot >= len(rule.rhs):
            continue
        if rid not in candidate_rids and len(candidates) < 3:
            candidate_rids.add(rid)
            candidates.append(grammar.rule_str(rule))
        sym = rule.rhs[dot]
        terms = (program.nt_first.get(sym, frozenset())
                 if is_nonterminal(sym) else (sym,))
        for t in terms:
            if t not in expected_seen:
                expected_seen.add(t)
                expected.append(grammar.symbol_name(t))
    nt_name = grammar.nt_name(start)
    detail = (f"stalled at symbol {position}/{n}"
              + (f", expecting {' | '.join(sorted(expected))}"
                 if expected else "")
              + (f"; nearest rules: {'; '.join(candidates)}"
                 if candidates else ""))
    return EarleyError(
        f"<{nt_name}>: input of length {n} does not derive from "
        f"<{nt_name}> ({detail})",
        nonterminal=nt_name,
        position=position,
        expected=sorted(expected),
        candidates=candidates,
    )


def shortest_derivation_tree(grammar: Grammar, symbols: Sequence[int],
                             start: Optional[int] = None) -> Node:
    """Parse tree of a minimum-length derivation of ``symbols``."""
    if start is None:
        start = grammar.start
    program = program_for(grammar)
    chart = _parse_chart(grammar, symbols, start, program)
    n = len(symbols)
    best_key = None
    best_cost = INF
    for key, (cost, _) in chart.sets[n].items():
        rid, dot, origin = key
        rule = grammar.rules[rid]
        if rule.lhs == start and origin == 0 and dot == len(rule.rhs):
            if cost + 1 < best_cost:
                best_cost = cost + 1
                best_key = key
    if best_key is None:
        raise _stall_error(grammar, program, chart, n, start)
    return _build_tree(grammar, chart, best_key, n)


def shortest_derivation(grammar: Grammar, symbols: Sequence[int],
                        start: Optional[int] = None) -> List[int]:
    """Minimum-length derivation (preorder rule ids) of ``symbols``."""
    from .derivation import derivation_of_tree

    return derivation_of_tree(
        shortest_derivation_tree(grammar, symbols, start)
    )
