"""Earley parsing, including the paper's modified shortest-derivation
variant (Section 4.1: "We use Earley's parsing algorithm, slightly modified,
to obtain a shortest derivation for a given sequence").

The expanded grammar is deliberately ambiguous (the original rules stay in),
so the compressor needs not *a* parse but a parse whose derivation — the
preorder list of rules — is as short as possible, because the compressed
form spends one byte per derivation step.  We annotate every Earley item
with the minimum number of rules needed to derive its span and relax items
to a fixpoint within each state set; completions propagate cost
``1 + sum(children costs)``.

This module is the reference implementation: it works for *any* CFG and is
cross-checked in tests against the production path (tree-tiling DP in
:mod:`repro.compress.tiling`), which exploits the structure of inlined
grammars and is much faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..grammar.cfg import Grammar, is_nonterminal
from .forest import Node

__all__ = ["EarleyError", "recognize", "shortest_derivation_tree",
           "shortest_derivation"]

INF = float("inf")


class EarleyError(ValueError):
    """Raised when the input does not derive from the start symbol."""


# An item key is (rule_id, dot, origin).  Chart[j] maps item keys to
# (cost, backpointer).  Backpointers:
#   None                      -- initial (dot == 0)
#   ("scan", prev_key)        -- advanced over a terminal at j-1
#   ("complete", prev_key, child_nt_key, child_j)
# where child_nt_key identifies the completed child item (rule, 0-dot-at,
# origin) in chart[j].
_Key = Tuple[int, int, int]


@dataclass
class _Chart:
    sets: List[Dict[_Key, Tuple[int, Optional[tuple]]]]


def _parse_chart(grammar: Grammar, symbols: Sequence[int],
                 start: Optional[int] = None) -> _Chart:
    """Run cost-annotated Earley; returns the full chart."""
    if start is None:
        start = grammar.start
    n = len(symbols)
    rules = grammar.rules
    by_lhs = grammar.by_lhs

    sets: List[Dict[_Key, Tuple[int, Optional[tuple]]]] = [
        {} for _ in range(n + 1)
    ]

    def add(j: int, key: _Key, cost: int, back: Optional[tuple],
            worklist: List[_Key]) -> None:
        cur = sets[j].get(key)
        if cur is None or cost < cur[0]:
            sets[j][key] = (cost, back)
            worklist.append(key)

    # Seed S[0] with predictions for the start symbol.
    worklist: List[_Key] = []
    for rid in by_lhs[start]:
        add(0, (rid, 0, 0), 0, None, worklist)

    for j in range(n + 1):
        if j > 0:
            worklist = list(sets[j].keys())
        # Fixpoint over predictor/completer within S[j].
        while worklist:
            key = worklist.pop()
            entry = sets[j].get(key)
            if entry is None:
                continue
            cost, _ = entry
            rid, dot, origin = key
            rhs = rules[rid].rhs
            if dot < len(rhs):
                sym = rhs[dot]
                if is_nonterminal(sym):
                    # Predict.
                    for rid2 in by_lhs[sym]:
                        add(j, (rid2, 0, j), 0, None, worklist)
                    # Complete against already-finished children at j
                    # (handles epsilon and same-position completions).
                    for ckey, (ccost, _cb) in list(sets[j].items()):
                        crid, cdot, corigin = ckey
                        if corigin == j and cdot == len(rules[crid].rhs) \
                                and rules[crid].lhs == sym:
                            add(j, (rid, dot + 1, origin),
                                cost + ccost + 1,
                                ("complete", key, ckey, j), worklist)
            else:
                # Completer: advance every item waiting on this LHS.
                lhs = rules[rid].lhs
                for pkey, (pcost, _pb) in list(sets[origin].items()):
                    prid, pdot, porigin = pkey
                    prhs = rules[prid].rhs
                    if pdot < len(prhs) and prhs[pdot] == lhs:
                        add(j, (prid, pdot + 1, porigin),
                            pcost + cost + 1,
                            ("complete", pkey, key, j), worklist)
        # Scanner: move items over symbols[j] into S[j+1].
        if j < n:
            sym = symbols[j]
            nextlist: List[_Key] = []
            for key, (cost, _) in sets[j].items():
                rid, dot, origin = key
                rhs = rules[rid].rhs
                if dot < len(rhs) and rhs[dot] == sym:
                    nkey = (rid, dot + 1, origin)
                    cur = sets[j + 1].get(nkey)
                    if cur is None or cost < cur[0]:
                        sets[j + 1][nkey] = (cost, ("scan", key))
    return _Chart(sets)


def recognize(grammar: Grammar, symbols: Sequence[int],
              start: Optional[int] = None) -> bool:
    """Does ``symbols`` derive from ``start``?"""
    if start is None:
        start = grammar.start
    chart = _parse_chart(grammar, symbols, start)
    n = len(symbols)
    for (rid, dot, origin), _ in chart.sets[n].items():
        rule = grammar.rules[rid]
        if rule.lhs == start and origin == 0 and dot == len(rule.rhs):
            return True
    return False


def _build_tree(grammar: Grammar, chart: _Chart, key: _Key, j: int) -> Node:
    """Reconstruct the parse tree for a completed item via backpointers.

    Iterative: the tree can be as deep as the input is long (a block is
    a left-recursive ``<start>`` spine, one level per statement), so
    recursing per child would hit Python's recursion limit on large
    procedures.  Each frame walks one item's backpointer chain
    right-to-left, pausing while a child frame rebuilds a completed
    subtree.
    """
    rules = grammar.rules
    # Frame: [key, j, children_rev] — mutated in place when paused.
    frames: List[list] = [[key, j, []]]
    result: Optional[Node] = None
    while frames:
        frame = frames[-1]
        if result is not None:
            frame[2].append(result)
            result = None
        while True:
            key, j = frame[0], frame[1]
            back = chart.sets[j][key][1]
            if back is None:
                rid = key[0]
                children = frame[2][::-1]
                node = Node(rid, children)
                assert len(children) == rules[rid].arity
                frames.pop()
                result = node
                break
            if back[0] == "scan":
                frame[0] = back[1]
                frame[1] = j - 1
            else:
                # The child completed its span (child_origin .. cj); the
                # parent item was sitting in the set where the child
                # started.  Park the parent there and rebuild the child.
                _, pkey, ckey, cj = back
                frame[0] = pkey
                frame[1] = ckey[2]
                frames.append([ckey, cj, []])
                break
    return result


def shortest_derivation_tree(grammar: Grammar, symbols: Sequence[int],
                             start: Optional[int] = None) -> Node:
    """Parse tree of a minimum-length derivation of ``symbols``."""
    if start is None:
        start = grammar.start
    chart = _parse_chart(grammar, symbols, start)
    n = len(symbols)
    best_key = None
    best_cost = INF
    for key, (cost, _) in chart.sets[n].items():
        rid, dot, origin = key
        rule = grammar.rules[rid]
        if rule.lhs == start and origin == 0 and dot == len(rule.rhs):
            if cost + 1 < best_cost:
                best_cost = cost + 1
                best_key = key
    if best_key is None:
        raise EarleyError(
            f"input of length {n} does not derive from "
            f"<{grammar.nt_name(start)}>"
        )
    return _build_tree(grammar, chart, best_key, n)


def shortest_derivation(grammar: Grammar, symbols: Sequence[int],
                        start: Optional[int] = None) -> List[int]:
    """Minimum-length derivation (preorder rule ids) of ``symbols``."""
    from .derivation import derivation_of_tree

    return derivation_of_tree(
        shortest_derivation_tree(grammar, symbols, start)
    )
