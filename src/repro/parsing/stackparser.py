"""Deterministic parser from bytecode to parse forests (paper Sections 2,
4.1).

The initial grammar groups operators by stack effect, so on *valid* bytecode
(stack discipline, which :mod:`repro.bytecode.validate` checks) the parse is
unique and can be computed by simulating the evaluation stack — no general
CFG parsing needed.  Tests cross-check this parser against the Earley parser
on small inputs to confirm the unambiguity claim.

The parser restarts at every ``LABELV``: each basic block becomes its own
parse tree rooted at ``<start>``, so the compressed form of a block is an
independent derivation and branch targets stay addressable (Section 4.1).

Two grammar shapes are supported, detected by their nonterminal names:

* the standard Appendix-2 grammar (``v0``/``v1``/... class nonterminals
  plus ``<v>``/``<x>`` chain rules), and
* "flat" operator grammars such as :func:`repro.grammar.initial.typed_grammar`,
  where each operator has a single rule ``lhs -> operand-NTs OP byte-NTs``.

Only *original* rules are used, so the same parser serves both the training
phase (original grammar) and the compressor's tiling phase (original rules
inside an expanded grammar).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..bytecode.instructions import iter_decode
from ..bytecode.module import Module
from ..bytecode.opcodes import OP_BY_CODE, opcode
from ..grammar.cfg import (
    Grammar,
    Rule,
    is_byte_terminal,
    is_nonterminal,
)
from .forest import Forest, Node

__all__ = ["ParseError", "ParsedBlock", "parse_blocks", "parse_procedure",
           "parse_module", "build_forest"]

_LABELV = opcode("LABELV")


class ParseError(ValueError):
    """Raised when a code stream does not derive from the grammar."""


@dataclass
class ParsedBlock:
    """One basic block's parse tree.

    ``start`` is the offset of the block's first instruction in the original
    code stream (i.e. just after the ``LABELV`` that opens it, or 0); the
    compressor uses it to rewrite label tables.
    """

    start: int
    tree: Node


@dataclass
class _OpPlan:
    op_rule: Rule
    wrap_rule: Optional[Rule]  # chain rule above the class rule, or None
    npop: int
    is_value: bool
    nbytes: int
    klass: str = ""


class _Plans:
    """Per-grammar lookup tables for the stack parser."""

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        names = set(grammar.nt_names)
        self.height = "h0" in names and "v0" in names
        self.standard = "v0" in names and not self.height
        start = grammar.nonterminal("start")
        byte = grammar.nonterminal("byte")
        self.byte_rules: Dict[int, Rule] = {}
        for rule in grammar.rules_for(byte):
            if rule.origin == "original" and len(rule.rhs) == 1:
                self.byte_rules[rule.rhs[0] - 256] = rule

        self.start_empty: Optional[Rule] = None
        self.start_chain: Optional[Rule] = None
        for rule in grammar.rules_for(start):
            if rule.origin != "original":
                continue
            if rule.rhs == ():
                self.start_empty = rule
            elif len(rule.rhs) == 2:
                self.start_chain = rule
        if self.start_empty is None or self.start_chain is None:
            raise ParseError("grammar lacks the <start> rules")

        self.plans: Dict[int, _OpPlan] = {}
        self.height_wraps: Dict[Tuple[str, int], Rule] = {}
        self.max_depth = 0
        if self.standard:
            self._build_standard()
        elif self.height:
            self._build_height()
        else:
            self._build_flat()

    def _build_standard(self) -> None:
        g = self.grammar
        v = g.nonterminal("v")
        x = g.nonterminal("x")
        chain: Dict[Tuple[int, ...], Rule] = {}
        for nt in (v, x):
            for rule in g.rules_for(nt):
                if rule.origin == "original":
                    chain[rule.rhs] = rule
        klass_nt = {k: g.nonterminal(k)
                    for k in ("v0", "v1", "v2", "x0", "x1", "x2")}
        wrap_for = {
            "v0": chain[(klass_nt["v0"],)],
            "v1": chain[(v, klass_nt["v1"])],
            "v2": chain[(v, v, klass_nt["v2"])],
            "x0": chain[(klass_nt["x0"],)],
            "x1": chain[(v, klass_nt["x1"])],
            "x2": chain[(v, v, klass_nt["x2"])],
        }
        npop = {"v0": 0, "v1": 1, "v2": 2, "x0": 0, "x1": 1, "x2": 2}
        for klass, nt in klass_nt.items():
            for rule in g.rules_for(nt):
                if rule.origin != "original" or not rule.rhs:
                    continue
                op_sym = rule.rhs[0]
                if is_nonterminal(op_sym) or is_byte_terminal(op_sym):
                    continue
                self.plans[op_sym] = _OpPlan(
                    op_rule=rule,
                    wrap_rule=wrap_for[klass],
                    npop=npop[klass],
                    is_value=klass.startswith("v"),
                    nbytes=OP_BY_CODE[op_sym].nlit,
                )

    def _build_height(self) -> None:
        """The stack-depth-tracking grammar: per-depth value chain rules."""
        g = self.grammar
        x = g.nonterminal("x")
        heights = []
        d = 0
        while f"h{d}" in g.nt_names:
            heights.append(g.nonterminal(f"h{d}"))
            d += 1
        self.max_depth = len(heights) - 1
        klass_nt = {k: g.nonterminal(k)
                    for k in ("v0", "v1", "v2", "x0", "x1", "x2")}

        chain: Dict[Tuple[int, ...], Rule] = {}
        for nt in [x] + heights:
            for rule in g.rules_for(nt):
                if rule.origin == "original":
                    chain[(rule.lhs,) + rule.rhs] = rule
        for depth, h in enumerate(heights):
            deeper = heights[min(depth + 1, self.max_depth)]
            self.height_wraps[("v0", depth)] = chain[(h, klass_nt["v0"])]
            self.height_wraps[("v1", depth)] = chain[
                (h, h, klass_nt["v1"])]
            self.height_wraps[("v2", depth)] = chain[
                (h, h, deeper, klass_nt["v2"])]
        self.height_wraps[("x0", 0)] = chain[(x, klass_nt["x0"])]
        self.height_wraps[("x1", 0)] = chain[
            (x, heights[0], klass_nt["x1"])]
        self.height_wraps[("x2", 0)] = chain[
            (x, heights[0], heights[1], klass_nt["x2"])]

        npop = {"v0": 0, "v1": 1, "v2": 2, "x0": 0, "x1": 1, "x2": 2}
        for klass, nt in klass_nt.items():
            for rule in g.rules_for(nt):
                if rule.origin != "original" or not rule.rhs:
                    continue
                op_sym = rule.rhs[0]
                if is_nonterminal(op_sym) or is_byte_terminal(op_sym):
                    continue
                self.plans[op_sym] = _OpPlan(
                    op_rule=rule,
                    wrap_rule=None,  # selected per depth at parse time
                    npop=npop[klass],
                    is_value=klass.startswith("v"),
                    nbytes=OP_BY_CODE[op_sym].nlit,
                    klass=klass,
                )

    def _build_flat(self) -> None:
        g = self.grammar
        x = g.nonterminal("x")
        for rule in list(g):
            if rule.origin != "original":
                continue
            op_sym = next(
                (s for s in rule.rhs
                 if not is_nonterminal(s) and not is_byte_terminal(s)),
                None,
            )
            if op_sym is None:
                continue
            operand_nts = [s for s in rule.rhs[: rule.rhs.index(op_sym)]
                           if is_nonterminal(s)]
            self.plans[op_sym] = _OpPlan(
                op_rule=rule,
                wrap_rule=None,
                npop=len(operand_nts),
                is_value=rule.lhs != x,
                nbytes=OP_BY_CODE[op_sym].nlit,
            )


_PLAN_CACHE: Dict[int, _Plans] = {}


def _plans_for(grammar: Grammar) -> _Plans:
    plans = _PLAN_CACHE.get(id(grammar))
    if plans is None or plans.grammar is not grammar:
        plans = _Plans(grammar)
        _PLAN_CACHE[id(grammar)] = plans
    return plans


def parse_blocks(grammar: Grammar, code: bytes) -> List[ParsedBlock]:
    """Parse one code stream into per-block parse trees."""
    plans = _plans_for(grammar)
    blocks: List[ParsedBlock] = []
    spine = Node(plans.start_empty.id)
    stack: List[Node] = []
    block_start = 0

    def finish(next_start: int) -> None:
        nonlocal spine, block_start
        if stack:
            raise ParseError(
                f"offset {next_start}: {len(stack)} unconsumed values at "
                f"block end"
            )
        blocks.append(ParsedBlock(block_start, spine))
        spine = Node(plans.start_empty.id)
        block_start = next_start

    for off, ins in iter_decode(code):
        if ins.op.code == _LABELV:
            finish(off + 1)
            continue
        plan = plans.plans.get(ins.op.code)
        if plan is None:
            raise ParseError(f"offset {off}: no rule for {ins.op.name}")
        byte_nodes = [Node(plans.byte_rules[b].id) for b in ins.operands]
        if len(stack) < plan.npop:
            raise ParseError(
                f"offset {off}: {ins.op.name} needs {plan.npop} values, "
                f"stack has {len(stack)}"
            )
        operands = stack[len(stack) - plan.npop:]
        del stack[len(stack) - plan.npop:]
        if plan.wrap_rule is not None:  # standard grammar: class + chain
            op_node = Node(plan.op_rule.id, byte_nodes)
            node = Node(plan.wrap_rule.id, operands + [op_node])
        elif plans.height:  # depth-tracking grammar: chain chosen by depth
            depth = len(stack) if plan.is_value else 0
            wrap = plans.height_wraps[
                (plan.klass, min(depth, plans.max_depth))
            ]
            op_node = Node(plan.op_rule.id, byte_nodes)
            node = Node(wrap.id, operands + [op_node])
        else:  # flat grammar: single rule per operator
            node = Node(plan.op_rule.id, operands + byte_nodes)
        if plan.is_value:
            stack.append(node)
        else:
            if stack:
                # A statement completed while values remain: the input does
                # not derive from the grammar (statements are derived one
                # after another from an empty stack).  Refusing here keeps
                # the parse-tree yield identical to the input.
                raise ParseError(
                    f"offset {off}: {ins.op.name} completes a statement "
                    f"with {len(stack)} value(s) still on the stack"
                )
            spine = Node(plans.start_chain.id, [spine, node])
    finish(len(code))
    return blocks


def parse_procedure(grammar: Grammar, code: bytes) -> List[ParsedBlock]:
    """Alias of :func:`parse_blocks` (a procedure is one code stream)."""
    return parse_blocks(grammar, code)


def parse_module(grammar: Grammar, module: Module) -> List[List[ParsedBlock]]:
    """Parse every procedure of a module; result is parallel to
    ``module.procedures``."""
    return [parse_blocks(grammar, p.code) for p in module.procedures]


def build_forest(grammar: Grammar, modules,
                 workers: Optional[int] = None) -> Forest:
    """Parse a training corpus (iterable of modules) into one forest.

    With ``workers`` > 1, procedures are parsed concurrently on a
    ``concurrent.futures`` thread pool, fanned out one task per procedure.
    The forest is merged in *corpus order* — module by module, procedure by
    procedure, block by block — regardless of task completion order, so the
    result (and therefore everything trained from it) is identical for any
    worker count; the boundary tests pin forests and trained grammars
    across worker counts.  ``workers`` of ``None``, 0, or 1 uses the plain
    serial loop; any pool failure also falls back to serial parsing.
    """
    modules = list(modules)
    if workers is None or workers <= 1:
        return _build_forest_serial(grammar, modules)
    try:
        return _build_forest_parallel(grammar, modules, workers)
    except ParseError:
        raise  # invalid bytecode fails identically in both modes
    except Exception:  # pool setup/teardown failure: parse serially
        return _build_forest_serial(grammar, modules)


def _build_forest_serial(grammar: Grammar, modules) -> Forest:
    forest = Forest()
    for module in modules:
        for proc_blocks in parse_module(grammar, module):
            for block in proc_blocks:
                forest.add(block.tree)
    return forest


def _build_forest_parallel(grammar: Grammar, modules,
                           workers: int) -> Forest:
    from concurrent.futures import ThreadPoolExecutor

    # Build the per-grammar plan tables once, up front: the pool's first
    # tasks would otherwise race to construct them (harmless but wasteful).
    _plans_for(grammar)
    codes = [proc.code for module in modules for proc in module.procedures]
    forest = Forest()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        # map() yields results in submission order: the deterministic merge.
        for blocks in pool.map(lambda code: parse_blocks(grammar, code),
                               codes):
            forest.extend(block.tree for block in blocks)
    return forest
