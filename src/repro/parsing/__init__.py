"""Parsers: deterministic stack parser, Earley, shortest derivation."""

from .derivation import DerivationCache
from .forest import Forest, Node, preorder, terminal_yield, tree_size
from .stackparser import (
    ParseError,
    ParsedBlock,
    build_forest,
    parse_blocks,
    parse_module,
    parse_procedure,
)

__all__ = [
    "DerivationCache",
    "Forest", "Node", "preorder", "terminal_yield", "tree_size",
    "ParseError", "ParsedBlock", "build_forest", "parse_blocks",
    "parse_module", "parse_procedure",
]
