"""Parse trees and forests (paper Section 4.1).

A parse-tree node is labeled with a *rule*; an internal node has one child
per nonterminal occurrence on the rule's right-hand side (terminal symbols
carry no information beyond the rule identity, so they are not materialized
as leaves).  The training corpus parses into a *forest* because the parser
restarts at every potential branch target (``LABELV``).

Nodes carry parent links so the grammar expander can contract edges in
place (Figure 2).  All traversals are iterative: spine-shaped trees (the
left-recursive ``<start>`` chain) would overflow Python's recursion limit.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from ..grammar.cfg import Grammar, is_nonterminal

__all__ = ["Node", "preorder", "terminal_yield", "tree_size", "Forest"]


class Node:
    """A parse-tree node: a rule application."""

    __slots__ = ("rule_id", "children", "parent", "pindex")

    def __init__(self, rule_id: int, children: Sequence["Node"] = ()) -> None:
        self.rule_id = rule_id
        self.children: List[Node] = list(children)
        self.parent: Optional[Node] = None
        self.pindex: int = -1
        for i, child in enumerate(self.children):
            child.parent = self
            child.pindex = i

    def replace_children(self, children: Sequence["Node"]) -> None:
        """Install a new child list, fixing parent links and indices."""
        self.children = list(children)
        for i, child in enumerate(self.children):
            child.parent = self
            child.pindex = i

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node(r{self.rule_id}, {len(self.children)} children)"


def preorder(root: Node) -> Iterator[Node]:
    """Iterative preorder traversal (node before its children)."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def tree_size(root: Node) -> int:
    """Number of rule applications in the tree = derivation length."""
    return sum(1 for _ in preorder(root))


def terminal_yield(root: Node, grammar: Grammar) -> List[int]:
    """Reconstruct the terminal string (symbol list) the tree derives.

    Walks each node's RHS left to right: terminals are emitted, nonterminal
    occurrences descend into the corresponding child.
    """
    out: List[int] = []
    # Work stack holds either ('node', node) or ('emit', symbol).
    stack: List[tuple] = [("node", root)]
    while stack:
        kind, payload = stack.pop()
        if kind == "emit":
            out.append(payload)
            continue
        node = payload
        rule = grammar.rules[node.rule_id]
        items: List[tuple] = []
        child_i = 0
        for sym in rule.rhs:
            if is_nonterminal(sym):
                items.append(("node", node.children[child_i]))
                child_i += 1
            else:
                items.append(("emit", sym))
        stack.extend(reversed(items))
    return out


class Forest:
    """An ordered collection of block parse trees.

    ``blocks[i]`` is the parse tree of the i-th basic block of the training
    corpus (reading procedures in order, blocks split at ``LABELV``).
    """

    def __init__(self, blocks: Optional[List[Node]] = None) -> None:
        self.blocks: List[Node] = blocks if blocks is not None else []

    def add(self, root: Node) -> None:
        self.blocks.append(root)

    def extend(self, roots: Iterable[Node]) -> None:
        """Append a batch of block trees in order (the parallel parser's
        merge primitive: per-procedure results arrive as batches, and
        corpus order = concatenation order)."""
        self.blocks.extend(roots)

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.blocks)

    def nodes(self) -> Iterator[Node]:
        for root in self.blocks:
            yield from preorder(root)

    def size(self) -> int:
        """Total derivation length across all blocks (compressed bytes if
        one byte encodes one derivation step)."""
        return sum(tree_size(root) for root in self.blocks)
