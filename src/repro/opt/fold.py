"""Bytecode optimizer: constant folding and algebraic simplification.

Section 6 of the paper speculates about combining compression with "a more
ambitious optimizer": MSVC's space optimizer shrank lcc from 236,181 to
161,716 bytes, and the authors note that "highly optimized code is usually
less regular and thus less compressible", predicting the combination would
still win.  They could not run the experiment (no bytecode from MSVC);
we can — this module is a real optimizer over the bytecode, and benchmark
A4 measures both effects: optimized input is smaller in absolute terms and
(usually) compresses at a worse *ratio*.

The optimizer works on the same per-block parse trees as the compressor:

* **constant folding** — a pure operator applied to literal operands is
  evaluated at compile time *by the interpreter's own handlers*
  (:mod:`repro.interp.base`), so folded semantics are identical by
  construction, including 32-bit wraparound and C division; operations
  that would trap (division by zero) are left for run time;
* **algebraic identities** — ``x+0``, ``x-0``, ``x*1``, ``x|0``, ``x^0``,
  ``x<<0``, ``x>>0`` drop the operation; ``x*0`` and ``x&0`` become ``0``
  when ``x`` is side-effect free;
* **branch folding** — ``BrTrue`` on a constant flag becomes a ``JUMPV``
  or disappears; statements that compute a pure value and ``POP`` it
  disappear;
* **literal narrowing** — folded constants re-encode as the smallest
  ``LIT[1234]``.

The result is re-emitted block by block (label tables recomputed the same
way the compressor rewrites them), revalidated, and — by the shared-tree
construction — runs identically, which the tests check by executing
corpus programs before and after.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..bytecode.module import Module, Procedure
from ..bytecode.opcodes import OP_BY_CODE, OP_BY_NAME, opcode
from ..compress.decompress import symbols_to_code
from ..core.program import program_for
from ..grammar.cfg import Grammar
from ..grammar.initial import initial_grammar
from ..interp.base import HANDLERS
from ..interp.state import IState, Trap
from ..parsing.forest import Node, terminal_yield
from ..parsing.stackparser import parse_blocks

__all__ = ["OptStats", "optimize_module", "optimize_procedure"]

_LABELV = opcode("LABELV")

# Pure value operators: evaluatable at compile time when operands are
# constant.  Loads, calls and address operators are excluded.
_PURE_V2 = {
    op.code for op in OP_BY_CODE.values()
    if op.klass == "v2"
}
_PURE_V1 = {
    OP_BY_NAME[name].code
    for name in ("BCOMU", "NEGI", "CVI1I4", "CVI2I4", "CVU1U4", "CVU2U4")
}

_IDENT_RIGHT_ZERO = {  # x OP 0 == x
    OP_BY_NAME[name].code
    for name in ("ADDU", "SUBU", "BORU", "BXORU", "LSHU", "LSHI",
                 "RSHU", "RSHI")
}
_IDENT_RIGHT_ONE = {  # x OP 1 == x
    OP_BY_NAME[name].code for name in ("MULU", "MULI", "DIVU", "DIVI")
}
_ZERO_RIGHT_ZERO = {  # x OP 0 == 0 (x must be pure)
    OP_BY_NAME[name].code for name in ("MULU", "MULI", "BANDU")
}

_IMPURE_GENERICS = {"CALL", "LocalCALL", "INDIR", "ASGN", "ARG", "RET",
                    "POP", "BrTrue", "JUMPV"}


@dataclass
class OptStats:
    """What the optimizer did."""

    folded: int = 0
    identities: int = 0
    branches_folded: int = 0
    statements_removed: int = 0
    bytes_before: int = 0
    bytes_after: int = 0

    def merge(self, other: "OptStats") -> None:
        self.folded += other.folded
        self.identities += other.identities
        self.branches_folded += other.branches_folded
        self.statements_removed += other.statements_removed


class _Optimizer:
    """Per-grammar tree rewriting (grammar objects are shared/cached)."""

    def __init__(self, grammar: Optional[Grammar] = None) -> None:
        self.grammar = grammar if grammar is not None else initial_grammar()
        g = self.grammar
        # All rule tables come off the grammar's precompiled program:
        # codewords replace per-node list.index scans, and the per-NT rule
        # rows replace repeated rules_for list builds.
        program = program_for(g)
        self.program = program
        self._codeword_of = program.codeword_of
        byte = g.nonterminal("byte")
        self._byte_rules = [r.id for r in program.rules_of[byte]]
        v = g.nonterminal("v")
        v0 = g.nonterminal("v0")
        self._v_from_v0 = next(
            r.id for r in program.rules_of[v] if r.rhs == (v0,)
        )
        self._lit_rule: Dict[str, int] = {}
        for rule in program.rules_of[v0]:
            name = OP_BY_CODE.get(rule.rhs[0])
            if name is not None and name.generic == "LIT":
                self._lit_rule[name.name] = rule.id
        # opcode -> op rule node's rule id, for rebuilding; plus reverse:
        self._op_of_rule: Dict[int, int] = {}
        for rule in g:
            if rule.origin == "original" and rule.rhs and \
                    not rule.rhs[0] < 0 and rule.rhs[0] < 256:
                self._op_of_rule[rule.id] = rule.rhs[0]
        start = g.nonterminal("start")
        rules = program.rules_of[start]
        self._start_empty = next(r.id for r in rules if r.rhs == ())
        self._start_chain = next(r.id for r in rules if len(r.rhs) == 2)
        x = g.nonterminal("x")
        x0 = g.nonterminal("x0")
        self._x_from_x0 = next(
            r.id for r in program.rules_of[x] if r.rhs == (x0,)
        )
        self._jumpv_rule = next(
            r.id for r in program.rules_of[x0]
            if r.rhs and r.rhs[0] == opcode("JUMPV")
        )

    # -- tree inspection helpers ------------------------------------------------
    def op_of(self, node: Node) -> Optional[int]:
        """The operator code of a class-rule node (v0/v1/v2/x0/x1/x2)."""
        return self._op_of_rule.get(node.rule_id)

    def stmt_op(self, xnode: Node) -> Optional[int]:
        """The statement operator of an <x> node's class child."""
        return self.op_of(xnode.children[-1])

    def const_value(self, vnode: Node) -> Optional[int]:
        """If a <v> subtree is a literal, its 32-bit value."""
        if vnode.rule_id != self._v_from_v0:
            return None
        v0node = vnode.children[0]
        op = self.op_of(v0node)
        spec = OP_BY_CODE.get(op) if op is not None else None
        if spec is None or spec.generic != "LIT":
            return None
        value = 0
        for i, byte_node in enumerate(v0node.children):
            value |= self._byte_value(byte_node) << (8 * i)
        return value

    def _byte_value(self, byte_node: Node) -> int:
        # A byte rule's codeword is its position in <byte>'s rule list,
        # i.e. the literal byte value.
        return self._codeword_of[byte_node.rule_id]

    def make_const(self, value: int) -> Node:
        """A <v> subtree for a literal, smallest encoding."""
        value &= 0xFFFFFFFF
        if value < 1 << 8:
            name, n = "LIT1", 1
        elif value < 1 << 16:
            name, n = "LIT2", 2
        elif value < 1 << 24:
            name, n = "LIT3", 3
        else:
            name, n = "LIT4", 4
        bytes_ = [(value >> (8 * i)) & 0xFF for i in range(n)]
        byte_nodes = [Node(self._byte_rules[b]) for b in bytes_]
        return Node(self._v_from_v0,
                    [Node(self._lit_rule[name], byte_nodes)])

    def is_pure(self, node: Node) -> bool:
        """No observable effects anywhere in the subtree (conservative:
        loads count as impure because a folded trap would differ)."""
        stack = [node]
        while stack:
            n = stack.pop()
            op = self.op_of(n)
            if op is not None:
                if OP_BY_CODE[op].generic in _IMPURE_GENERICS:
                    return False
            stack.extend(n.children)
        return True

    # -- evaluation via the interpreter's own semantics ---------------------------
    @staticmethod
    def _evaluate(op: int, operands: List[int]) -> Optional[int]:
        istate = IState(0, 0)
        for value in operands:
            istate.push(value)
        try:
            HANDLERS[op](istate, None, ())
        except Trap:
            return None  # e.g. division by zero: leave it for run time
        return istate.pop() if istate.stack else None

    # -- expression rewriting ------------------------------------------------------
    def fold_value(self, vnode: Node, stats: OptStats) -> Node:
        """Bottom-up folding of one <v> subtree; returns the replacement."""
        vnode.replace_children([
            self.fold_value(c, stats) if self._is_v(c) else c
            for c in vnode.children
        ])
        rule = self.grammar.rules[vnode.rule_id]
        # <v> -> <v> <v1>
        if len(vnode.children) == 2 and self._is_v(vnode.children[0]):
            op = self.op_of(vnode.children[1])
            a = self.const_value(vnode.children[0])
            if op in _PURE_V1 and a is not None:
                result = self._evaluate(op, [a])
                if result is not None:
                    stats.folded += 1
                    return self.make_const(result)
        # <v> -> <v> <v> <v2>
        if len(vnode.children) == 3:
            op = self.op_of(vnode.children[2])
            left, right = vnode.children[0], vnode.children[1]
            a, b = self.const_value(left), self.const_value(right)
            if op in _PURE_V2 and a is not None and b is not None:
                result = self._evaluate(op, [a, b])
                if result is not None:
                    stats.folded += 1
                    return self.make_const(result)
            if b == 0 and op in _IDENT_RIGHT_ZERO:
                stats.identities += 1
                return left
            if b == 1 and op in _IDENT_RIGHT_ONE:
                stats.identities += 1
                return left
            if b == 0 and op in _ZERO_RIGHT_ZERO and self.is_pure(left):
                stats.identities += 1
                return self.make_const(0)
            if a == 0 and op == OP_BY_NAME["ADDU"].code:
                stats.identities += 1
                return right
        return vnode

    def _is_v(self, node: Node) -> bool:
        return self.grammar.rules[node.rule_id].lhs == \
            self.grammar.nonterminal("v")

    # -- statement / block rewriting ---------------------------------------------------
    def fold_block(self, root: Node, stats: OptStats) -> Node:
        """Fold every statement; returns the new block root."""
        # Collect the spine statements (left-recursive <start> chain).
        stmts: List[Node] = []
        node = root
        while node.rule_id == self._start_chain:
            stmts.append(node.children[1])
            node = node.children[0]
        stmts.reverse()

        kept: List[Node] = []
        for xnode in stmts:
            xnode.replace_children([
                self.fold_value(c, stats) if self._is_v(c) else c
                for c in xnode.children
            ])
            op = self.stmt_op(xnode)
            spec = OP_BY_CODE.get(op) if op is not None else None
            if spec is not None and spec.name == "BrTrue" and \
                    len(xnode.children) == 2:
                flag = self.const_value(xnode.children[0])
                if flag is not None:
                    stats.branches_folded += 1
                    if flag == 0:
                        continue  # never taken: drop the statement
                    # always taken: JUMPV with the same label bytes
                    label_bytes = [
                        self._byte_value(b)
                        for b in xnode.children[1].children
                    ]
                    jump = Node(self._jumpv_rule,
                                [Node(self._byte_rules[b])
                                 for b in label_bytes])
                    kept.append(Node(self._x_from_x0, [jump]))
                    continue
            if spec is not None and spec.generic == "POP" and \
                    len(xnode.children) == 2 and \
                    self.is_pure(xnode.children[0]):
                stats.statements_removed += 1
                continue
            kept.append(xnode)

        new_root = Node(self._start_empty)
        for xnode in kept:
            new_root = Node(self._start_chain, [new_root, xnode])
        return new_root


def optimize_procedure(proc: Procedure,
                       optimizer: Optional[_Optimizer] = None,
                       stats: Optional[OptStats] = None) -> Procedure:
    """Optimize one procedure; label tables are recomputed."""
    opt = optimizer if optimizer is not None else _Optimizer()
    st = stats if stats is not None else OptStats()
    grammar = opt.grammar
    blocks = parse_blocks(grammar, proc.code)

    out = bytearray()
    labelv_at: Dict[int, int] = {}  # original block start -> LABELV offset
    for i, block in enumerate(blocks):
        if i > 0:
            labelv_at[block.start] = len(out)
            out.append(_LABELV)
        folded = opt.fold_block(block.tree, st)
        out.extend(symbols_to_code(terminal_yield(folded, grammar)))

    labels = []
    for off in proc.labels:
        labels.append(labelv_at[off + 1])
    return Procedure(
        name=proc.name,
        code=bytes(out),
        labels=labels,
        framesize=proc.framesize,
        needs_trampoline=proc.needs_trampoline,
        argsize=proc.argsize,
    )


def optimize_module(module: Module) -> Tuple[Module, OptStats]:
    """Optimize a whole module; returns (new module, statistics)."""
    opt = _Optimizer()
    stats = OptStats(bytes_before=module.code_bytes)
    new = Module(
        globals=list(module.globals),
        data=module.data,
        bss_size=module.bss_size,
        entry=module.entry,
    )
    for proc in module.procedures:
        new.procedures.append(optimize_procedure(proc, opt, stats))
    stats.bytes_after = new.code_bytes
    return new, stats
