"""Bytecode optimization (the Section-6 "ambitious optimizer" experiment)."""

from .fold import OptStats, optimize_module, optimize_procedure

__all__ = ["OptStats", "optimize_module", "optimize_procedure"]
