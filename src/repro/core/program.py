"""The precompiled, content-addressed grammar core.

The expanded grammar is a single static artifact (the paper trains it
once, then ships it inside every compressed module), yet consumers used
to re-derive its structure independently per call: the Earley search
re-scanned rule lists to predict, the tiling compressor re-indexed
fragments, the encoder ran a linear ``list.index`` per derivation step,
the interpreter tables re-walked every right-hand side, and the storage
layer recomputed canonical rule ordinals three times over.

:class:`GrammarProgram` computes all of it exactly once per grammar
*instance* and is the one object every layer consumes:

* per-nonterminal rule tables with stable byte indices (``rules_of``,
  ``codeword_of`` — the codeword of a rule is its position in its
  nonterminal's rule list, paper Section 4);
* canonical original-rule ordinals (``original_to_ordinal`` /
  ``original_from_ordinal``), the serialization vocabulary of the RGR1
  provenance section;
* first-terminal prediction sets and nullability, per nonterminal and
  per rule — what lets the Earley predictor skip rules that cannot
  possibly start the remaining input;
* minimum expansion costs (fewest derivation steps to reach a terminal
  string), per nonterminal and per rule;
* reachability and productivity masks (:mod:`repro.grammar.analysis`);
* the tiling compressor's fragment index: candidate rules grouped by
  fragment root, each with a flat precompiled matcher program and its
  fragment size for subtree-size pruning.

Derived artifacts that belong to *higher* layers (interpreter tables,
flattened engine rows, optimizer indices) hang off the program through
:meth:`GrammarProgram.derived`, a per-program memo — the core stays
below :mod:`repro.parsing` and :mod:`repro.interp` in the layering, yet
every layer shares one cache keyed by one object.

Identity
--------

Programs are cached **per grammar instance**, not per content hash:
rule *ids* are instance-specific (a trained grammar and its
serialize/deserialize round-trip number rules differently even though
their content — and therefore their codewords and compressed output —
is identical), so sharing a program across instances would silently
mis-tile.  ``content_key`` is the instance-independent SHA-256 of the
grammar's full structure (names, rules, provenance over canonical
ordinals); the registry keys its LRU by the RGR1 digest and keeps one
grammar instance per digest, which together give "one construction per
grammar hash per process" — asserted by tests against
:data:`GrammarProgram.constructions`.

Mutation
--------

Grammars mutate during training.  :func:`program_for` fingerprints the
grammar (rule count plus the never-reused next rule id) and rebuilds on
any rule addition or removal, so a program can never describe a grammar
that has since changed shape.  Code that mutates rules *in place*
(``load_grammar`` re-attaching provenance) must not use the cache; it
uses the pure helpers :func:`original_ordinals` / :func:`non_byte_rows`
directly.
"""

from __future__ import annotations

import hashlib
import threading
from collections import Counter, OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from ..grammar.analysis import (
    productive_nonterminals,
    reachable_nonterminals,
)
from ..grammar.cfg import Grammar, Rule, is_nonterminal

__all__ = [
    "GrammarProgram",
    "program_for",
    "original_ordinals",
    "non_byte_rows",
]

_INF = float("inf")


# -- pure helpers (safe on half-built grammars) ------------------------------

def original_ordinals(grammar: Grammar):
    """Maps rule id <-> (nonterminal index, position) for original rules.

    The *position* is the rule's index within its nonterminal's full rule
    list — the codeword — which training never disturbs for original
    rules (only inlined rules are appended or removed behind them is
    impossible: appends go to the end, removals only hit inlined rules).
    Pure function of the grammar's current state: the storage loader
    calls it mid-rebuild, before provenance is re-attached, so it must
    never go through the program cache.
    """
    to_ordinal: Dict[int, Tuple[int, int]] = {}
    from_ordinal: Dict[Tuple[int, int], int] = {}
    rules = grammar.rules
    for nt_index, nt in enumerate(grammar.nonterminals):
        for position, rid in enumerate(grammar.by_lhs[nt]):
            if rules[rid].origin == "original":
                to_ordinal[rid] = (nt_index, position)
                from_ordinal[(nt_index, position)] = rid
    return to_ordinal, from_ordinal


def non_byte_rows(grammar: Grammar) -> List[Tuple[int, Tuple[Rule, ...]]]:
    """``(nonterminal, rules)`` per nonterminal in allocation order, the
    ``<byte>`` nonterminal excluded — the row layout shared by the RGR1
    provenance section and the interpreter tables.  Grammars without a
    ``<byte>`` nonterminal (toy test grammars) get every row."""
    byte_nt = (grammar.nonterminal("byte")
               if "byte" in grammar.nt_names else None)
    rules = grammar.rules
    return [
        (nt, tuple(rules[rid] for rid in grammar.by_lhs[nt]))
        for nt in grammar.nonterminals
        if nt != byte_nt
    ]


# -- fragment matchers -------------------------------------------------------

def _compile_matcher(fragment) -> Tuple:
    """Flatten a fragment into a matcher program: a preorder tuple whose
    items are ``None`` for a hole or ``(original_rule_id, n_children)``
    for an internal node, in the exact order a stack walk visits them.
    Matching replays the program against a parse tree with a bare node
    stack — no per-node tuple zipping or list allocation."""
    prog: List[Optional[Tuple[int, int]]] = []
    stack = [fragment]
    while stack:
        frag = stack.pop()
        if frag is None:
            prog.append(None)
            continue
        rid, children = frag
        prog.append((rid, len(children)))
        for k in range(len(children) - 1, -1, -1):
            stack.append(children[k])
    return tuple(prog)


def match_fragment(matcher: Tuple, node) -> Optional[list]:
    """Match a precompiled fragment matcher at ``node``; returns the
    subtrees bound to the fragment's holes in left-to-right frontier
    order, or None.  Equivalent to recursively comparing the fragment
    against the tree (``Tiler._match_collect`` pre-refactor), byte for
    byte in the holes it returns."""
    holes: list = []
    nstack = [node]
    pop = nstack.pop
    found = holes.append
    for item in matcher:
        n = pop()
        if item is None:
            found(n)
            continue
        if n.rule_id != item[0]:
            return None
        children = n.children
        k = item[1]
        if k != len(children):
            return None
        while k:
            k -= 1
            nstack.append(children[k])
    return holes


# -- first / nullable / min-cost --------------------------------------------

def _prediction_tables(grammar: Grammar):
    """Fixpoint FIRST sets and nullability, per nonterminal and per rule.

    ``rule_first[rid]`` holds every terminal that can begin a string
    derived from the rule's RHS; ``rule_nullable[rid]`` is whether the
    RHS derives epsilon.  A predicted Earley item whose rule is neither
    nullable nor has the next input symbol in its first set can never
    scan, never complete, and never advance a parent — pruning it is
    exact (see ``parsing/earley.py``).
    """
    nullable: set = set()
    first: Dict[int, set] = {nt: set() for nt in grammar.nonterminals}
    changed = True
    while changed:
        changed = False
        for rule in grammar:
            f = first[rule.lhs]
            rhs_nullable = True
            for sym in rule.rhs:
                if is_nonterminal(sym):
                    before = len(f)
                    f |= first[sym]
                    if len(f) != before:
                        changed = True
                    if sym not in nullable:
                        rhs_nullable = False
                        break
                else:
                    if sym not in f:
                        f.add(sym)
                        changed = True
                    rhs_nullable = False
                    break
            if rhs_nullable and rule.lhs not in nullable:
                nullable.add(rule.lhs)
                changed = True
    rule_first: Dict[int, frozenset] = {}
    rule_nullable: Dict[int, bool] = {}
    for rule in grammar:
        fs: set = set()
        rhs_nullable = True
        for sym in rule.rhs:
            if is_nonterminal(sym):
                fs |= first[sym]
                if sym not in nullable:
                    rhs_nullable = False
                    break
            else:
                fs.add(sym)
                rhs_nullable = False
                break
        rule_first[rule.id] = frozenset(fs)
        rule_nullable[rule.id] = rhs_nullable
    return ({nt: frozenset(s) for nt, s in first.items()},
            frozenset(nullable), rule_first, rule_nullable)


def _min_costs(grammar: Grammar):
    """Minimum derivation lengths: fewest rules to derive a terminal
    string from each nonterminal, and per rule (1 + the sum over its RHS
    nonterminals).  Unproductive nonterminals stay at infinity."""
    nt_cost: Dict[int, float] = {nt: _INF for nt in grammar.nonterminals}
    changed = True
    while changed:
        changed = False
        for rule in grammar:
            cost = 1.0
            for sym in rule.rhs:
                if is_nonterminal(sym):
                    cost += nt_cost[sym]
                    if cost == _INF:
                        break
            if cost < nt_cost[rule.lhs]:
                nt_cost[rule.lhs] = cost
                changed = True
    rule_cost: Dict[int, float] = {}
    for rule in grammar:
        cost = 1.0
        for sym in rule.rhs:
            if is_nonterminal(sym):
                cost += nt_cost[sym]
        rule_cost[rule.id] = cost
    return nt_cost, rule_cost


# -- the program -------------------------------------------------------------

class GrammarProgram:
    """Everything precomputable about one grammar, computed once.

    Immutable after construction; see the module docstring for the full
    inventory.  Build through :func:`program_for` (which memoizes per
    grammar instance), not directly.
    """

    #: constructions per ``content_key`` — the process-wide evidence that
    #: a grammar's program is built at most once per hash (tested).
    constructions: "Counter[str]" = Counter()

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self.start = grammar.start
        self.byte_nt = (grammar.nonterminal("byte")
                        if "byte" in grammar.nt_names else None)
        #: (total rules, next rule id): changes on any rule add/remove,
        #: so :func:`program_for` can detect a mutated grammar.
        self.fingerprint = (grammar.total_rules(), grammar._next_rule_id)

        rules = grammar.rules
        self.rules_of: Dict[int, Tuple[Rule, ...]] = {
            nt: tuple(rules[rid] for rid in grammar.by_lhs[nt])
            for nt in grammar.nonterminals
        }
        #: rule id -> codeword (position in its nonterminal's rule list)
        self.codeword_of: Dict[int, int] = {
            rid: position
            for rids in grammar.by_lhs.values()
            for position, rid in enumerate(rids)
        }
        #: (nt, rules) rows excluding <byte> — the serialization and
        #: interpreter-table layout.
        self.rows: List[Tuple[int, Tuple[Rule, ...]]] = [
            (nt, self.rules_of[nt])
            for nt in grammar.nonterminals
            if nt != self.byte_nt
        ]
        self.original_to_ordinal, self.original_from_ordinal = \
            original_ordinals(grammar)

        (self.nt_first, self.nullable,
         self.rule_first, self.rule_nullable) = _prediction_tables(grammar)
        self.nt_min_cost, self.rule_min_cost = _min_costs(grammar)
        self.reachable = frozenset(reachable_nonterminals(grammar))
        self.productive = frozenset(productive_nonterminals(grammar))

        # Tiling index: candidates by fragment root, grammar iteration
        # order (the tie-break order), each as
        # (rule, fragment_size, trivial, matcher).  ``trivial`` marks the
        # one-node fragments of original rules, whose holes are exactly
        # the node's children — no matching needed.
        by_root: Dict[int, list] = {}
        for rule in grammar:
            matcher = _compile_matcher(rule.fragment)
            size = sum(1 for item in matcher if item is not None)
            trivial = size == 1
            by_root.setdefault(rule.fragment[0], []).append(
                (rule, size, trivial, matcher))
        self.fragments_by_root: Dict[int, tuple] = {
            rid: tuple(entries) for rid, entries in by_root.items()
        }

        self.content_key = self._identity_digest()
        self._derived: Dict[str, object] = {}
        self._derived_lock = threading.Lock()
        GrammarProgram.constructions[self.content_key] += 1

    # -- identity -----------------------------------------------------------

    def _identity_digest(self) -> str:
        """SHA-256 over the grammar's full structure, instance-id free:
        names, cap, per-row rules (lhs, rhs, origin) and provenance
        fragments rewritten over canonical original-rule ordinals."""
        to_ordinal = self.original_to_ordinal

        def frag_key(frag):
            if frag is None:
                return None
            rid, children = frag
            return (to_ordinal.get(rid, ("?", rid)),
                    tuple(frag_key(c) for c in children))

        h = hashlib.sha256()
        g = self.grammar
        h.update(repr((tuple(g.nt_names), g.max_rules_per_nt,
                       g.start)).encode())
        for nt in g.nonterminals:
            for rule in self.rules_of[nt]:
                h.update(repr((rule.lhs, rule.rhs, rule.origin,
                               frag_key(rule.fragment))).encode())
        return h.hexdigest()

    @property
    def compact_key(self) -> str:
        """SHA-256 hex digest of the grammar's compact encoding — the
        per-grammar key the service's engine breaker uses (same hash
        basis as before the program existed, so stats keys are stable).
        Requires a full grammar (with ``<byte>``); lazy because toy
        grammars have no compact encoding."""
        key = getattr(self, "_compact_key", None)
        if key is None:
            from ..grammar.serialize import encode_grammar_compact
            key = hashlib.sha256(
                encode_grammar_compact(self.grammar)).hexdigest()
            self._compact_key = key
        return key

    # -- derived artifacts --------------------------------------------------

    def derived(self, key: str, builder: Callable[[], object]) -> object:
        """Per-program memo for artifacts built by higher layers
        (interpreter tables, flattened engine rows).  ``builder`` runs at
        most once per key; a builder that raises caches nothing, so a
        transient failure (an injected fault) does not poison the
        program."""
        value = self._derived.get(key)
        if value is not None:
            return value
        with self._derived_lock:
            value = self._derived.get(key)
            if value is None:
                value = builder()
                self._derived[key] = value
            return value

    # -- statistics ---------------------------------------------------------

    def stats(self) -> Dict:
        """Program statistics for reports and ``repro grammar stats``."""
        g = self.grammar
        terminals = sorted({
            sym
            for nt in g.nonterminals
            for rule in self.rules_of[nt]
            for sym in rule.rhs
            if not is_nonterminal(sym)
        })
        nts = g.nonterminals
        first_total = sum(len(self.nt_first[nt]) for nt in nts)
        density = (first_total / (len(nts) * len(terminals))
                   if nts and terminals else 0.0)
        return {
            "nonterminals": len(nts),
            "rules": g.total_rules(),
            "rules_per_nt": {
                g.nt_name(nt): len(self.rules_of[nt]) for nt in nts
            },
            "original_rules": len(self.original_to_ordinal),
            "terminals": len(terminals),
            "prediction_set_density": density,
            "prediction_set_sizes": {
                g.nt_name(nt): len(self.nt_first[nt]) for nt in nts
            },
            "nullable_nonterminals": sorted(
                g.nt_name(nt) for nt in self.nullable
            ),
            "min_expansion_cost": {
                g.nt_name(nt): (None if self.nt_min_cost[nt] == _INF
                                else int(self.nt_min_cost[nt]))
                for nt in nts
            },
            "reachable_nonterminals": len(self.reachable),
            "productive_nonterminals": len(self.productive),
            "content_key": self.content_key,
        }


# -- the per-instance cache --------------------------------------------------

_CACHE_SIZE = 16
_cache: "OrderedDict[int, GrammarProgram]" = OrderedDict()
_cache_lock = threading.Lock()


def program_for(grammar: Grammar) -> GrammarProgram:
    """The :class:`GrammarProgram` of a grammar instance, memoized.

    Keyed by object identity with an ``is`` check (ids are reused after
    garbage collection) and the rule-set fingerprint (training mutates
    grammars in place); bounded LRU so training runs that churn through
    grammar generations cannot grow the cache without limit.
    """
    key = id(grammar)
    fingerprint = (grammar.total_rules(), grammar._next_rule_id)
    with _cache_lock:
        program = _cache.get(key)
        if program is not None and program.grammar is grammar \
                and program.fingerprint == fingerprint:
            _cache.move_to_end(key)
            return program
        # Built under the lock: construction is cheap relative to any
        # consumer, and a concurrent double build would double-count
        # the per-hash construction counter.
        program = GrammarProgram(grammar)
        _cache[key] = program
        _cache.move_to_end(key)
        while len(_cache) > _CACHE_SIZE:
            _cache.popitem(last=False)
        return program
