"""The precompiled grammar core shared by every grammar consumer."""

from .program import (
    GrammarProgram,
    non_byte_rows,
    original_ordinals,
    program_for,
)

__all__ = [
    "GrammarProgram",
    "non_byte_rows",
    "original_ordinals",
    "program_for",
]
