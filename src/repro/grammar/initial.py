"""The initial bytecode grammars (paper Appendix 2, plus the Section-6
"type-tracking" variant used as an ablation).

The standard grammar groups operators by their effect on the evaluation
stack; it "effectively tracks stack height" (Section 6)::

    <start> = ε | <start> <x>
    <v>     = <v0> | <v> <v1> | <v> <v> <v2>
    <x>     = <x0> | <v> <x1> | <v> <v> <x2>
    <v0>    = ADDRFP <byte> <byte> | ... | LIT4 <byte> <byte> <byte> <byte>
    <v1>    = BCOMU | CALLD | ... | NEGI
    <v2>    = ADDD | ... | RSHU
    <x0>    = JUMPV <byte> <byte> | LocalCALLV <byte> <byte> | RETV
    <x1>    = ARGB | ... | RETU
    <x2>    = ASGNB | ... | ASGNF
    <byte>  = 0 | 1 | ... | 255

The type-tracking variant splits ``<v>`` by the datatype of the produced
value (D/F/integer-or-pointer), which the paper reports "did not do
significantly better" — we reproduce that comparison in benchmark A1.
"""

from __future__ import annotations

from typing import Dict, List

from ..bytecode.opcodes import OPS, OpSpec
from .cfg import Grammar, byte_terminal

__all__ = ["initial_grammar", "typed_grammar", "height_grammar"]


def _op_rhs(grammar: Grammar, op: OpSpec) -> List[int]:
    """RHS for a class rule: the operator terminal plus its literal bytes."""
    byte = grammar.nonterminal("byte")
    return [op.code] + [byte] * op.nlit


def initial_grammar(max_rules_per_nt: int = 256) -> Grammar:
    """Build the Appendix-2 grammar."""
    g = Grammar(max_rules_per_nt=max_rules_per_nt)
    start = g.add_nonterminal("start")
    x = g.add_nonterminal("x")
    v = g.add_nonterminal("v")
    v0 = g.add_nonterminal("v0")
    v1 = g.add_nonterminal("v1")
    v2 = g.add_nonterminal("v2")
    x0 = g.add_nonterminal("x0")
    x1 = g.add_nonterminal("x1")
    x2 = g.add_nonterminal("x2")
    byte = g.add_nonterminal("byte")
    g.start = start

    g.add_rule(start, [])
    g.add_rule(start, [start, x])
    g.add_rule(x, [x0])
    g.add_rule(x, [v, x1])
    g.add_rule(x, [v, v, x2])
    g.add_rule(v, [v0])
    g.add_rule(v, [v, v1])
    g.add_rule(v, [v, v, v2])

    class_nt = {"v0": v0, "v1": v1, "v2": v2, "x0": x0, "x1": x1, "x2": x2}
    for op in OPS:
        if op.klass == "pseudo":
            continue  # LABELV is a block separator, not a grammar symbol
        g.add_rule(class_nt[op.klass], _op_rhs(g, op))

    for value in range(256):
        g.add_rule(byte, [byte_terminal(value)])

    g.check()
    return g


# Result-type buckets for the typed grammar: D and F keep their own value
# nonterminal; everything else that yields a value (I/U/C/S/pointer) shares
# the "word" bucket, because the bytecode keeps all of those in one 4-byte
# stack slot.
_TYPE_BUCKET: Dict[str, str] = {"D": "d", "F": "f"}


def _result_bucket(op: OpSpec) -> str:
    """Which typed value nonterminal an operator's result belongs to."""
    suffix = op.suffix
    if op.generic in ("EQ", "NE", "GE", "GT", "LE", "LT"):
        return "w"  # comparisons push a 0/1 word flag regardless of suffix
    if op.generic in ("CVD", "CVF", "CVI"):
        # Conversions: result type is the *last* letter of the suffix.
        return _TYPE_BUCKET.get(suffix[-1], "w")
    if op.generic in ("CVI1", "CVI2", "CVU1", "CVU2"):
        return "w"
    if suffix and suffix[0] in _TYPE_BUCKET:
        return _TYPE_BUCKET[suffix[0]]
    return "w"


def _operand_buckets(op: OpSpec) -> List[str]:
    """Typed stack operands an operator pops, bottom-most first."""
    npop = {"v0": 0, "v1": 1, "v2": 2, "x0": 0, "x1": 1, "x2": 2}[op.klass]
    if npop == 0:
        return []
    g, s = op.generic, op.suffix
    if g in ("EQ", "NE", "GE", "GT", "LE", "LT"):
        b = _TYPE_BUCKET.get(s, "w")
        return [b, b]
    if g in ("CVD",):
        return ["d"]
    if g in ("CVF",):
        return ["f"]
    if g in ("CVI", "CVI1", "CVI2", "CVU1", "CVU2"):
        return ["w"]
    if g == "ASGN":
        # address, value
        return ["w", _TYPE_BUCKET.get(s, "w")]
    if g in ("ARG", "POP", "RET"):
        return [_TYPE_BUCKET.get(s, "w")]
    if g == "CALL":
        return ["w"]  # function address
    if g == "INDIR":
        return ["w"]  # address
    if g in ("LSH", "RSH"):
        return ["w", "w"]
    b = _TYPE_BUCKET.get(s, "w")
    return [b] * npop


def typed_grammar(max_rules_per_nt: int = 256) -> Grammar:
    """A starting grammar that tracks the datatype of each stack element.

    Value nonterminals: ``<vw>`` (word: int/unsigned/pointer), ``<vf>``
    (float), ``<vd>`` (double); statements stay untyped.  Same language as
    :func:`initial_grammar` restricted to type-correct programs, which is
    what the compiler emits.
    """
    g = Grammar(max_rules_per_nt=max_rules_per_nt)
    start = g.add_nonterminal("start")
    x = g.add_nonterminal("x")
    vnt = {b: g.add_nonterminal(f"v{b}") for b in ("w", "f", "d")}
    byte = g.add_nonterminal("byte")
    g.start = start

    g.add_rule(start, [])
    g.add_rule(start, [start, x])

    for op in OPS:
        if op.klass == "pseudo":
            continue
        rhs_tail = [op.code] + [byte] * op.nlit
        operands = [vnt[b] for b in _operand_buckets(op)]
        if op.klass.startswith("v"):
            lhs = vnt[_result_bucket(op)]
        else:
            lhs = x
        g.add_rule(lhs, operands + rhs_tail)

    for value in range(256):
        g.add_rule(byte, [byte_terminal(value)])

    g.check()
    return g


def height_grammar(max_depth: int = 3,
                   max_rules_per_nt: int = 256) -> Grammar:
    """A starting grammar that tracks the evaluation-stack *depth* of each
    value — one of the "grammars that track more state" the paper's closing
    note invites (Section 6).

    Value nonterminals ``<h0> .. <hK>`` mean "a value computed with d
    values already below it" (depths above ``max_depth`` collapse into
    ``<hK>``).  Same language as :func:`initial_grammar`; the extra context
    gives the expander up to ``max_depth`` times more rule budget for value
    positions, at the cost of a larger initial grammar.
    """
    if max_depth < 1:
        raise ValueError("max_depth must be >= 1")
    g = Grammar(max_rules_per_nt=max_rules_per_nt)
    start = g.add_nonterminal("start")
    x = g.add_nonterminal("x")
    heights = [g.add_nonterminal(f"h{d}") for d in range(max_depth + 1)]
    v0 = g.add_nonterminal("v0")
    v1 = g.add_nonterminal("v1")
    v2 = g.add_nonterminal("v2")
    x0 = g.add_nonterminal("x0")
    x1 = g.add_nonterminal("x1")
    x2 = g.add_nonterminal("x2")
    byte = g.add_nonterminal("byte")
    g.start = start

    g.add_rule(start, [])
    g.add_rule(start, [start, x])
    g.add_rule(x, [x0])
    g.add_rule(x, [heights[0], x1])
    g.add_rule(x, [heights[0], heights[1], x2])
    for d, h in enumerate(heights):
        deeper = heights[min(d + 1, max_depth)]
        g.add_rule(h, [v0])
        g.add_rule(h, [h, v1])
        g.add_rule(h, [h, deeper, v2])

    class_nt = {"v0": v0, "v1": v1, "v2": v2, "x0": x0, "x1": x1, "x2": x2}
    for op in OPS:
        if op.klass == "pseudo":
            continue
        g.add_rule(class_nt[op.klass], _op_rhs(g, op))
    for value in range(256):
        g.add_rule(byte, [byte_terminal(value)])
    g.check()
    return g
