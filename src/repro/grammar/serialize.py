"""Grammar serialization and size measurement (paper Section 6).

The expanded grammar ships inside the generated interpreter, so its encoded
size is the interpreter-growth the paper reports ("The grammar occupies
10,525 bytes and thus accounts for most of the difference in interpreter
size"), and Section 6 notes that "straightforward recoding should save
another 1,863 bytes".  We implement both encodings:

* the *plain* encoding — per rule, a length byte plus one byte per RHS
  symbol slot, where nonterminals and 2-byte symbols... in short, two bytes
  per symbol (the paper's "stores grammars sub-optimally"), and
* the *compact* encoding — one byte per symbol via a split symbol space
  (operators and nonterminals share the byte; burned literal bytes get an
  escape), the paper's "straightforward recoding".

Both encodings are real byte strings with a decoder, and a round-trip test
guarantees they are faithful; the size numbers used by the interpreter-size
model are therefore honest.
"""

from __future__ import annotations

import struct
from typing import List

from ..bytecode.opcodes import OPS
from .cfg import (
    Grammar,
    byte_terminal,
    byte_value,
    is_byte_terminal,
    is_nonterminal,
)

__all__ = [
    "encode_grammar_plain",
    "encode_grammar_compact",
    "decode_grammar",
    "grammar_bytes",
]

_MAGIC_PLAIN = b"EG1P"
_MAGIC_COMPACT = b"EG1C"

# Compact symbol space: 0..N-1 operators, N..N+K-1 nonterminals,
# 255 = escape for a burned literal byte (value follows).
_ESCAPE = 255


def _skip_byte_rules(grammar: Grammar):
    """Rules to serialize: everything except the 256 fixed <byte> rules
    (they are implicit: the codeword is the literal value)."""
    byte_nt = grammar.nonterminal("byte")
    if byte_nt != -len(grammar.nt_names):
        # The decoder reconstructs nonterminals positionally with <byte>
        # last; both initial grammars satisfy this.
        raise ValueError("<byte> must be the last nonterminal to encode")
    for nt in grammar.nonterminals:
        if nt == byte_nt:
            continue
        yield nt, grammar.rules_for(nt)


def encode_grammar_plain(grammar: Grammar) -> bytes:
    """Two bytes per RHS symbol, plus one length byte per rule and a
    2-byte rule count per nonterminal (the current, sub-optimal storage)."""
    out = bytearray(_MAGIC_PLAIN)
    out.append(len(grammar.nt_names))
    for nt, rules in _skip_byte_rules(grammar):
        out.extend(struct.pack("<H", len(rules)))
        for rule in rules:
            if len(rule.rhs) > 255:
                raise ValueError("rule too long to encode")
            out.append(len(rule.rhs))
            for sym in rule.rhs:
                if is_nonterminal(sym):
                    out.extend((0, -sym - 1))
                elif is_byte_terminal(sym):
                    out.extend((1, byte_value(sym)))
                else:
                    out.extend((2, sym))
    return bytes(out)


def encode_grammar_compact(grammar: Grammar) -> bytes:
    """One byte per RHS symbol where possible (the Section-6 recoding)."""
    n_ops = len(OPS)
    n_nts = len(grammar.nt_names)
    if n_ops + n_nts >= _ESCAPE:
        raise ValueError("symbol space does not fit one byte")
    out = bytearray(_MAGIC_COMPACT)
    out.append(n_nts)
    for nt, rules in _skip_byte_rules(grammar):
        out.extend(struct.pack("<H", len(rules)))
        for rule in rules:
            body = bytearray()
            for sym in rule.rhs:
                if is_nonterminal(sym):
                    body.append(n_ops + (-sym - 1))
                elif is_byte_terminal(sym):
                    body.append(_ESCAPE)
                    body.append(byte_value(sym))
                else:
                    body.append(sym)
            if len(body) > 255:
                raise ValueError("rule too long to encode")
            out.append(len(body))
            out.extend(body)
    return bytes(out)


def decode_grammar(data: bytes, nt_names=None) -> Grammar:
    """Rebuild a grammar from either encoding.

    Rule ids and fragments are not preserved (they are training-time
    bookkeeping); the decoded grammar has every rule marked original and is
    suitable for interpretation and decompression — exactly what ships in
    an embedded interpreter.

    ``nt_names`` optionally restores the original nonterminal names (the
    encoding itself is nameless, as a shipped grammar would be); without
    them, positional names ``nt0..`` are used, with ``byte`` last.
    """
    magic, payload = data[:4], data[4:]
    if magic == _MAGIC_PLAIN:
        compact = False
    elif magic == _MAGIC_COMPACT:
        compact = True
    else:
        raise ValueError("bad grammar magic")
    n_ops = len(OPS)
    pos = 0
    if not payload:
        raise ValueError("truncated grammar encoding")
    n_nts = payload[pos]
    pos += 1

    grammar = Grammar()
    if nt_names is not None:
        if len(nt_names) != n_nts or nt_names[-1] != "byte":
            raise ValueError("nonterminal names do not match the encoding")
        for name in nt_names:
            grammar.add_nonterminal(name)
    else:
        for i in range(n_nts):
            grammar.add_nonterminal(
                "byte" if i == n_nts - 1 else f"nt{i}"
            )
    grammar.start = -1
    byte_nt = grammar.nonterminal("byte")

    # The payload may be attacker-controllable (a corrupt or hostile
    # container): a short read anywhere below must surface as the same
    # structured ValueError as any other malformation, never as a bare
    # IndexError/struct.error escaping the decode.
    try:
        for i in range(n_nts - 1):
            nt = -(i + 1)
            (count,) = struct.unpack_from("<H", payload, pos)
            pos += 2
            for _ in range(count):
                length = payload[pos]
                pos += 1
                rhs: List[int] = []
                if compact:
                    end = pos + length
                    while pos < end:
                        b = payload[pos]
                        pos += 1
                        if b == _ESCAPE:
                            rhs.append(byte_terminal(payload[pos]))
                            pos += 1
                        elif b >= n_ops:
                            rhs.append(-(b - n_ops) - 1)
                        else:
                            rhs.append(b)
                else:
                    for _ in range(length):
                        tag, value = payload[pos], payload[pos + 1]
                        pos += 2
                        if tag == 0:
                            rhs.append(-value - 1)
                        elif tag == 1:
                            rhs.append(byte_terminal(value))
                        else:
                            rhs.append(value)
                grammar.add_rule(nt, rhs)
    except (IndexError, struct.error):
        raise ValueError("truncated grammar encoding") from None
    for value in range(256):
        grammar.add_rule(byte_nt, [byte_terminal(value)])
    if pos != len(payload):
        raise ValueError("trailing bytes after grammar")
    return grammar


def grammar_bytes(grammar: Grammar, compact: bool = False) -> int:
    """Encoded size in bytes (the paper's grammar-size figure)."""
    if compact:
        return len(encode_grammar_compact(grammar))
    return len(encode_grammar_plain(grammar))
