"""Grammar analyses: reachability, productivity, language preservation.

Inlining never changes the language (Section 4.1), and subsumption removal
only deletes *inlined* rules — these analyses let tests state that as a
checkable property rather than an assumption:

* every expanded rule's RHS re-derives under the original rules
  (:func:`derives_under_originals`), so L(expanded) = L(original);
* the grammar stays fully productive and reachable from <start>.
"""

from __future__ import annotations

from typing import List, Set

from .cfg import Grammar, Rule, is_nonterminal

__all__ = [
    "reachable_nonterminals",
    "productive_nonterminals",
    "derives_under_originals",
    "check_language_preserved",
]


def reachable_nonterminals(grammar: Grammar) -> Set[int]:
    """Nonterminals reachable from the start symbol."""
    seen: Set[int] = set()
    work = [grammar.start]
    while work:
        nt = work.pop()
        if nt in seen:
            continue
        seen.add(nt)
        for rule in grammar.rules_for(nt):
            for sym in rule.rhs:
                if is_nonterminal(sym) and sym not in seen:
                    work.append(sym)
    return seen


def productive_nonterminals(grammar: Grammar) -> Set[int]:
    """Nonterminals that derive at least one terminal string."""
    productive: Set[int] = set()
    changed = True
    while changed:
        changed = False
        for rule in grammar:
            if rule.lhs in productive:
                continue
            if all(not is_nonterminal(s) or s in productive
                   for s in rule.rhs):
                productive.add(rule.lhs)
                changed = True
    return productive


def derives_under_originals(grammar: Grammar, rule: Rule) -> bool:
    """Does ``lhs =>* rhs`` hold using only original rules?

    Checked structurally through the rule's fragment: expanding the
    fragment's original rules must reproduce the rule's RHS exactly.
    """
    expansion: List[int] = []

    def expand(frag, expected_lhs) -> bool:
        if frag is None:
            # A hole: contributes its nonterminal symbol.
            expansion.append(expected_lhs)
            return True
        rid, children = frag
        original = grammar.rules.get(rid)
        if original is None or original.origin != "original":
            return False
        if original.lhs != expected_lhs:
            return False
        child_i = 0
        for sym in original.rhs:
            if is_nonterminal(sym):
                if not expand(children[child_i], sym):
                    return False
                child_i += 1
            else:
                expansion.append(sym)
        return True

    if not expand(rule.fragment, rule.lhs):
        return False
    return tuple(expansion) == rule.rhs


def check_language_preserved(grammar: Grammar) -> None:
    """Assert the invariants that make training language-preserving."""
    for rule in grammar:
        if rule.origin == "inlined":
            assert derives_under_originals(grammar, rule), (
                f"rule {rule.id} does not re-derive under original rules"
            )
    reachable = reachable_nonterminals(grammar)
    productive = productive_nonterminals(grammar)
    for nt in grammar.nonterminals:
        assert nt in productive, f"<{grammar.nt_name(nt)}> is unproductive"
    assert grammar.start in reachable
