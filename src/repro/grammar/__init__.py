"""Grammar machinery: CFGs, the initial bytecode grammars, serialization."""

from .cfg import (
    BYTE_TERM_BASE,
    Grammar,
    Rule,
    byte_terminal,
    byte_value,
    fragment_graft,
    fragment_hole_count,
    fragment_rules,
    fragment_size,
    is_byte_terminal,
    is_nonterminal,
    is_terminal,
)
from .initial import initial_grammar, typed_grammar

__all__ = [
    "BYTE_TERM_BASE", "Grammar", "Rule", "byte_terminal", "byte_value",
    "fragment_graft", "fragment_hole_count", "fragment_rules",
    "fragment_size", "is_byte_terminal", "is_nonterminal", "is_terminal",
    "initial_grammar", "typed_grammar",
]
