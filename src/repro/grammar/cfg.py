"""Context-free grammar machinery (paper Section 4.1).

Symbols are plain ints for speed:

* **nonterminals** are negative ints, ``-1, -2, ...`` (allocated by the
  grammar in creation order);
* **operator terminals** are the opcode byte values ``0..len(OPS)-1``;
* **literal-byte terminals** are ``BYTE_TERM_BASE + value`` for
  ``value in 0..255`` (the alternatives of the ``<byte>`` nonterminal).

Every rule carries a *fragment*: the tree of original-grammar rules it was
built from by inlining.  Original rules have a one-node fragment whose
children are all holes; inlining rule B into rule A grafts B's fragment into
the corresponding hole of A's fragment.  Fragments are what let the
compressor treat shortest-derivation search as exact tree tiling (see
DESIGN.md Section 5), and they record the provenance the interpreter
generator needs.

A fragment is a nested tuple ``(rule_id, children)`` where ``children`` has
one slot per *nonterminal occurrence* of the rule's right-hand side, in
left-to-right order; a slot is either ``None`` (a hole, to be matched
against any subtree for that nonterminal) or another fragment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "BYTE_TERM_BASE",
    "byte_terminal",
    "byte_value",
    "is_nonterminal",
    "is_terminal",
    "is_byte_terminal",
    "Rule",
    "Grammar",
    "Fragment",
    "fragment_hole_count",
    "fragment_graft",
    "fragment_rules",
    "fragment_size",
]

BYTE_TERM_BASE = 256

Fragment = Tuple[int, tuple]  # (rule_id, children); child = Fragment | None


def byte_terminal(value: int) -> int:
    """The terminal symbol for the literal byte ``value``."""
    if not 0 <= value <= 255:
        raise ValueError(f"byte value {value} out of range")
    return BYTE_TERM_BASE + value


def byte_value(sym: int) -> int:
    """Inverse of :func:`byte_terminal`."""
    if not BYTE_TERM_BASE <= sym < BYTE_TERM_BASE + 256:
        raise ValueError(f"{sym} is not a byte terminal")
    return sym - BYTE_TERM_BASE


def is_nonterminal(sym: int) -> bool:
    return sym < 0


def is_terminal(sym: int) -> bool:
    return sym >= 0


def is_byte_terminal(sym: int) -> bool:
    return sym >= BYTE_TERM_BASE


@dataclass
class Rule:
    """One grammar rule ``lhs -> rhs``.

    Attributes:
        id: globally unique, never reused.
        lhs: nonterminal symbol.
        rhs: tuple of symbols (may be empty for epsilon rules).
        origin: ``"original"`` or ``"inlined"``.  Original rules may never
            be removed (removing one could shrink the language, Section 4.1);
            unused inlined rules may.
        fragment: provenance tree over original rule ids (see module doc).
    """

    id: int
    lhs: int
    rhs: Tuple[int, ...]
    origin: str = "original"
    fragment: Optional[Fragment] = None
    nt_positions: Tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        self.nt_positions = tuple(
            i for i, s in enumerate(self.rhs) if is_nonterminal(s)
        )
        if self.fragment is None:
            self.fragment = (self.id, (None,) * len(self.nt_positions))

    @property
    def arity(self) -> int:
        """Number of nonterminal occurrences on the right-hand side."""
        return len(self.nt_positions)

    def nts(self) -> Tuple[int, ...]:
        """The nonterminal symbols of the RHS, in order."""
        return tuple(self.rhs[i] for i in self.nt_positions)


class Grammar:
    """A mutable CFG with per-nonterminal rule ordering.

    The position of a rule in its nonterminal's rule list is the rule's
    *codeword*: the byte emitted for one derivation step (Section 4).  The
    expander refuses to grow a nonterminal past ``max_rules_per_nt``
    (256 in the paper, so one derivation step fits in one byte).
    """

    def __init__(self, max_rules_per_nt: int = 256) -> None:
        self.max_rules_per_nt = max_rules_per_nt
        self.nt_names: List[str] = []
        self.rules: Dict[int, Rule] = {}
        self.by_lhs: Dict[int, List[int]] = {}
        self.start: Optional[int] = None
        self._next_rule_id = 0

    # -- nonterminals -----------------------------------------------------
    def add_nonterminal(self, name: str) -> int:
        if name in self.nt_names:
            raise ValueError(f"duplicate nonterminal {name!r}")
        self.nt_names.append(name)
        nt = -len(self.nt_names)
        self.by_lhs[nt] = []
        return nt

    def nonterminal(self, name: str) -> int:
        """Look up a nonterminal symbol by name."""
        return -(self.nt_names.index(name) + 1)

    def nt_name(self, nt: int) -> str:
        return self.nt_names[-nt - 1]

    @property
    def nonterminals(self) -> List[int]:
        return [-(i + 1) for i in range(len(self.nt_names))]

    # -- rules ------------------------------------------------------------
    def add_rule(self, lhs: int, rhs: Sequence[int],
                 origin: str = "original",
                 fragment: Optional[Fragment] = None) -> Rule:
        if lhs not in self.by_lhs:
            raise ValueError(f"unknown nonterminal {lhs}")
        # The cap governs *growth* ("stop creating rules for a non-terminal
        # once it has N rules"); original rules are admitted regardless so
        # small ablation caps still accept the initial grammar.
        if origin != "original" and not self.can_grow(lhs):
            raise ValueError(
                f"nonterminal {self.nt_name(lhs)} already has "
                f"{len(self.by_lhs[lhs])} rules (cap {self.max_rules_per_nt})"
            )
        rule = Rule(self._next_rule_id, lhs, tuple(rhs), origin, fragment)
        self._next_rule_id += 1
        self.rules[rule.id] = rule
        self.by_lhs[lhs].append(rule.id)
        return rule

    def remove_rule(self, rule_id: int) -> None:
        rule = self.rules[rule_id]
        if rule.origin == "original":
            raise ValueError(
                "refusing to remove an original rule (language change)"
            )
        del self.rules[rule_id]
        self.by_lhs[rule.lhs].remove(rule_id)

    def rule_index(self, rule_id: int) -> int:
        """The codeword (position within the LHS rule list) of a rule."""
        rule = self.rules[rule_id]
        return self.by_lhs[rule.lhs].index(rule_id)

    def rules_for(self, nt: int) -> List[Rule]:
        return [self.rules[rid] for rid in self.by_lhs[nt]]

    def num_rules(self, nt: int) -> int:
        return len(self.by_lhs[nt])

    def can_grow(self, nt: int) -> bool:
        return len(self.by_lhs[nt]) < self.max_rules_per_nt

    def total_rules(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[Rule]:
        for nt in self.nonterminals:
            for rid in self.by_lhs[nt]:
                yield self.rules[rid]

    # -- display ----------------------------------------------------------
    def symbol_name(self, sym: int) -> str:
        if is_nonterminal(sym):
            return f"<{self.nt_name(sym)}>"
        if is_byte_terminal(sym):
            return str(byte_value(sym))
        from ..bytecode.opcodes import opname
        return opname(sym)

    def rule_str(self, rule: Rule) -> str:
        rhs = " ".join(self.symbol_name(s) for s in rule.rhs) or "ε"
        return f"<{self.nt_name(rule.lhs)}> -> {rhs}"

    def dump(self, include_bytes: bool = False) -> str:
        """Human-readable listing, one rule per line."""
        lines = []
        byte_nt = None
        if "byte" in self.nt_names and not include_bytes:
            byte_nt = self.nonterminal("byte")
        for rule in self:
            if byte_nt is not None and rule.lhs == byte_nt and (
                rule.origin == "original"
            ):
                continue
            idx = self.rule_index(rule.id)
            lines.append(f"{idx:3d}. {self.rule_str(rule)}")
        return "\n".join(lines)

    # -- integrity --------------------------------------------------------
    def check(self) -> None:
        """Internal-consistency assertions (used heavily by tests)."""
        for nt, rids in self.by_lhs.items():
            # Growth is capped; original rules may exceed a small ablation
            # cap, but byte-encodability (<= 256) must always hold.
            assert len(rids) <= max(self.max_rules_per_nt, 256)
            for rid in rids:
                rule = self.rules[rid]
                assert rule.lhs == nt
                for sym in rule.rhs:
                    if is_nonterminal(sym):
                        assert sym in self.by_lhs, f"dangling NT {sym}"
                assert fragment_hole_count(rule.fragment) == rule.arity
        for rid, rule in self.rules.items():
            assert rid == rule.id
            assert rid in self.by_lhs[rule.lhs]


# -- fragment utilities ----------------------------------------------------

def fragment_hole_count(fragment: Optional[Fragment]) -> int:
    """Number of holes (frontier nonterminals) in a fragment."""
    if fragment is None:
        return 1
    _, children = fragment
    return sum(fragment_hole_count(c) for c in children)


def fragment_graft(fragment: Fragment, hole_index: int,
                   sub: Fragment) -> Fragment:
    """Return a copy of ``fragment`` with its ``hole_index``-th hole (in
    left-to-right frontier order) replaced by ``sub``."""

    def go(frag: Fragment, k: int) -> Tuple[Fragment, int]:
        # Returns the rewritten fragment and the remaining hole index,
        # which is negative once the graft has been placed.
        rule_id, children = frag
        new_children = list(children)
        for i, child in enumerate(children):
            if k < 0:
                break
            if child is None:
                if k == 0:
                    new_children[i] = sub
                    k = -1
                else:
                    k -= 1
            else:
                holes = fragment_hole_count(child)
                if k < holes:
                    new_children[i], k = go(child, k)
                else:
                    k -= holes
        return (rule_id, tuple(new_children)), k

    result, k = go(fragment, hole_index)
    if k >= 0:
        raise IndexError(f"hole {hole_index} out of range")
    return result


def fragment_rules(fragment: Fragment) -> List[int]:
    """All original rule ids appearing in a fragment (preorder)."""
    out: List[int] = []
    stack = [fragment]
    while stack:
        rule_id, children = stack.pop()
        out.append(rule_id)
        for child in reversed(children):
            if child is not None:
                stack.append(child)
    return out


def fragment_size(fragment: Fragment) -> int:
    """Number of original rules a fragment covers."""
    return len(fragment_rules(fragment))
