"""Bytecode compression via profiled grammar rewriting.

A full reproduction of Evans & Fraser (PLDI 2001): a stack-based bytecode
and interpreter in the style of lcc's, a mini-C compiler targeting it, the
profiled grammar expander, the shortest-derivation compressor, and the
generated interpreter for the compressed form — plus the baselines and
benchmarks that regenerate the paper's evaluation.

Quickstart::

    import repro

    training = [repro.compile_source(src) for src in corpus]
    grammar, report = repro.train_grammar(training)
    program = repro.compile_source(app_src)
    compressed = repro.compress_module(grammar, program)

    print(compressed.code_bytes / program.code_bytes)   # ~0.3-0.5
    assert repro.run(program) == repro.run_compressed(compressed)
"""

from .bytecode import (
    Module,
    Procedure,
    assemble,
    disassemble,
    validate_module,
)
from .compress import (
    CompressedModule,
    Compressor,
    decompress_module,
)
from .core import GrammarProgram, program_for
from .grammar import Grammar, initial_grammar, typed_grammar
from .interp import Interpreter1, Interpreter2, Machine, run_program
from .minic import compile_and_run, compile_source, compile_sources
from .pipeline import (
    compress_module,
    compression_ratio,
    run,
    run_compressed,
    train_grammar,
)
from .registry import GrammarRegistry, RegistryError, corpus_fingerprint
from .service import (
    AsyncServiceClient,
    CompressionService,
    ServiceClient,
    ServiceError,
)
from .training import TrainingReport, expand_grammar

__version__ = "1.1.0"

__all__ = [
    "Module", "Procedure", "assemble", "disassemble", "validate_module",
    "CompressedModule", "Compressor", "decompress_module",
    "GrammarProgram", "program_for",
    "Grammar", "initial_grammar", "typed_grammar",
    "Interpreter1", "Interpreter2", "Machine", "run_program",
    "compile_and_run", "compile_source", "compile_sources",
    "compress_module", "compression_ratio", "run", "run_compressed",
    "train_grammar",
    "TrainingReport", "expand_grammar",
    "GrammarRegistry", "RegistryError", "corpus_fingerprint",
    "CompressionService", "ServiceClient", "AsyncServiceClient",
    "ServiceError",
    "__version__",
]
