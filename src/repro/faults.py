"""Deterministic, seedable fault injection (the chaos plane).

Production-grade compressors are judged by how they fail, not just how
they compress: torn writes, bit rot, dropped frames, and engine faults
are the operational reality of a registry serving many clients.  This
module gives every such failure a *name* (an injection site), and makes
firing it deterministic and reproducible:

* A :class:`FaultPlan` maps site names to :class:`FaultRule`\\ s — fire
  with probability ``p``, at exact evaluation indices ``at``, at most
  ``times`` times, optionally with a site-specific ``mode`` and ``arg``.
  Plans serialize to/from plain JSON for chaos-run manifests.
* A :class:`FaultPlane` is an *activated* plan: it owns one seeded RNG
  per site (derived from ``plan.seed`` and the site name, so a schedule
  replays identically regardless of evaluation interleaving across other
  sites), counts evaluations and fires, and is safe to consult from the
  event loop, executor threads, and test threads at once.

Zero overhead when disabled
---------------------------

The plane is off unless :func:`activate` (or the :func:`injected`
context manager) installs one.  Every injection site is guarded by a
single module-attribute check::

    if faults.ACTIVE is not None:
        faults.ACTIVE.fire("engine.dispatch")

so the inert cost is one attribute load and an ``is not None`` test —
no function call, no dict probe.  Hot loops keep their sites at
activation granularity (per procedure activation, per frame, per file
write), never per instruction.

Sites
-----

====================================  =========================================
``registry.atomic.corrupt``           bit-flip the payload before it is written
``registry.atomic.torn``              write a prefix of the temp file, then die
``registry.atomic.pre_rename``        die after the temp is durable, pre-rename
``registry.atomic.post_rename``       die after rename, before the dir fsync
``registry.read.missing``             object read raises (file vanished)
``registry.read.corrupt``             bit-flip object bytes as they are read
``service.frame.read``                server-side inbound framing fault
``service.frame.write``               server-side outbound framing fault
``engine.dispatch``                   compiled engine raises entering a proc
``engine.tables``                     compiled-table build raises TableError
``native.build``                      native-engine C compile/load raises
``native.crash``                      native run dies on a signal (mode:
                                      ``segv`` | ``bus`` | ``abort``)
``native.hang``                       native run never returns (sleeps
                                      ``arg`` seconds, default past any
                                      watchdog)
``coding.model``                      rule-frequency model build raises
``coding.decode``                     RCX2 stream decode raises (per module)
``fleet.worker.kill``                 SIGKILL a fleet worker (chaos suites)
====================================  =========================================

Frame modes (``service.frame.*``): ``garbage`` (clobber the JSON body so
the peer sees a framing error), ``truncate`` (deliver a prefix, then
hang up), ``disconnect`` (hang up without delivering), ``delay`` (sleep
``arg`` seconds, then deliver normally).
"""

from __future__ import annotations

import contextlib
import hashlib
import random
import threading
from typing import Dict, Iterable, Optional, Tuple, Union

__all__ = [
    "SITES", "InjectedFault", "FaultRule", "FaultPlan", "FaultPlane",
    "ACTIVE", "activate", "deactivate", "injected", "suspended",
]

#: every site the codebase declares; plans naming anything else are
#: rejected at construction so a typo'd chaos manifest fails loudly.
SITES = frozenset([
    "registry.atomic.corrupt",
    "registry.atomic.torn",
    "registry.atomic.pre_rename",
    "registry.atomic.post_rename",
    "registry.read.missing",
    "registry.read.corrupt",
    "service.frame.read",
    "service.frame.write",
    "engine.dispatch",
    "engine.tables",
    "native.build",
    "native.crash",
    "native.hang",
    "coding.model",
    "coding.decode",
    "fleet.worker.kill",
])


class InjectedFault(Exception):
    """An injected failure (simulated crash, I/O fault, engine fault).

    Deliberately *not* a subclass of the domain errors (``StorageError``,
    ``Trap``, ``FrameError``): resilience code must prove it handles an
    unclassified failure, exactly as it would a genuine bug.
    """

    def __init__(self, site: str, message: str = "") -> None:
        super().__init__(f"injected fault at {site}"
                         + (f": {message}" if message else ""))
        self.site = site


class FaultRule:
    """When (and how) one site fires.

    ``p``      probability per evaluation (seeded RNG, reproducible).
    ``at``     exact 1-based evaluation indices that fire (int or list).
    ``times``  cap on total fires (``None`` = unlimited).
    ``mode``   site-specific variant (see module docstring).
    ``arg``    mode parameter (e.g. delay seconds).
    """

    __slots__ = ("p", "at", "times", "mode", "arg")

    def __init__(self, p: float = 0.0,
                 at: Union[int, Iterable[int], None] = None,
                 times: Optional[int] = None,
                 mode: Optional[str] = None,
                 arg: Optional[float] = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability {p} out of [0, 1]")
        self.p = p
        if at is None:
            self.at: Optional[frozenset] = None
        elif isinstance(at, int):
            self.at = frozenset([at])
        else:
            self.at = frozenset(int(i) for i in at)
        self.times = times
        self.mode = mode
        self.arg = arg

    def to_dict(self) -> Dict:
        out: Dict = {}
        if self.p:
            out["p"] = self.p
        if self.at is not None:
            out["at"] = sorted(self.at)
        if self.times is not None:
            out["times"] = self.times
        if self.mode is not None:
            out["mode"] = self.mode
        if self.arg is not None:
            out["arg"] = self.arg
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultRule":
        unknown = set(data) - {"p", "at", "times", "mode", "arg"}
        if unknown:
            raise ValueError(f"unknown fault-rule keys {sorted(unknown)}")
        return cls(**data)


class FaultPlan:
    """A named, seeded fault schedule: ``{site: FaultRule}`` plus a seed.

    The JSON form (``to_dict``/``from_dict``) is the chaos-run manifest
    format::

        {"seed": 42,
         "sites": {"service.frame.write": {"p": 0.1, "mode": "truncate"},
                   "engine.dispatch": {"at": [3]}}}
    """

    def __init__(self, seed: int = 0,
                 sites: Optional[Dict[str, Union[FaultRule, Dict]]] = None
                 ) -> None:
        self.seed = int(seed)
        self.sites: Dict[str, FaultRule] = {}
        for name, rule in (sites or {}).items():
            if name not in SITES:
                raise ValueError(f"unknown fault site {name!r} "
                                 f"(known: {sorted(SITES)})")
            self.sites[name] = (rule if isinstance(rule, FaultRule)
                                else FaultRule.from_dict(dict(rule)))

    def to_dict(self) -> Dict:
        return {"seed": self.seed,
                "sites": {name: rule.to_dict()
                          for name, rule in sorted(self.sites.items())}}

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        return cls(seed=data.get("seed", 0), sites=data.get("sites"))


def _site_rng(seed: int, site: str) -> random.Random:
    digest = hashlib.sha256(f"{seed}:{site}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "little"))


class FaultPlane:
    """An activated :class:`FaultPlan`: per-site RNGs and counters.

    Thread-safe; every decision is made under one lock (the plane is
    only ever consulted on failure-injection paths, where contention is
    irrelevant by design — the inert path never takes it).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._rngs = {site: _site_rng(plan.seed, site)
                      for site in plan.sites}
        self._evals: Dict[str, int] = {site: 0 for site in plan.sites}
        self._fires: Dict[str, int] = {site: 0 for site in plan.sites}

    # -- the core decision ---------------------------------------------------

    def decide(self, site: str) -> Optional[FaultRule]:
        """One evaluation of ``site``: the rule if it fires, else None."""
        rule = self.plan.sites.get(site)
        if rule is None:
            return None
        with self._lock:
            self._evals[site] += 1
            if rule.times is not None and self._fires[site] >= rule.times:
                return None
            fired = False
            if rule.at is not None and self._evals[site] in rule.at:
                fired = True
            elif rule.p and self._rngs[site].random() < rule.p:
                fired = True
            if not fired:
                return None
            self._fires[site] += 1
        return rule

    def fire(self, site: str, exc=InjectedFault, message: str = "") -> None:
        """Raise ``exc`` if ``site`` fires this evaluation."""
        if self.decide(site) is not None:
            if exc is InjectedFault:
                raise InjectedFault(site, message)
            raise exc(f"injected fault at {site}"
                      + (f": {message}" if message else ""))

    def mutate(self, site: str, data: bytes,
               window: Optional[Tuple[int, int]] = None) -> bytes:
        """Bit-flip one byte of ``data`` if ``site`` fires (else verbatim).

        ``window`` restricts the flipped position to ``[lo, hi)`` — frame
        faults use it to guarantee the corruption lands somewhere a
        structural check will see.
        """
        if not data or self.decide(site) is None:
            return data
        lo, hi = window if window is not None else (0, len(data))
        hi = min(hi, len(data))
        with self._lock:
            pos = self._rngs[site].randrange(lo, max(hi, lo + 1))
            bit = self._rngs[site].randrange(8)
        out = bytearray(data)
        out[pos] ^= 1 << bit
        return bytes(out)

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-site evaluation and fire counts (for tests and reports)."""
        with self._lock:
            return {site: {"evals": self._evals[site],
                           "fires": self._fires[site]}
                    for site in sorted(self.plan.sites)}

    def fired(self, site: str) -> int:
        with self._lock:
            return self._fires.get(site, 0)


#: the installed plane; injection sites check ``faults.ACTIVE is not None``
ACTIVE: Optional[FaultPlane] = None


def activate(plan: Union[FaultPlan, Dict]) -> FaultPlane:
    """Install a plane for ``plan`` (replacing any previous one)."""
    global ACTIVE
    if not isinstance(plan, FaultPlan):
        plan = FaultPlan.from_dict(plan)
    ACTIVE = FaultPlane(plan)
    return ACTIVE


def deactivate() -> None:
    global ACTIVE
    ACTIVE = None


@contextlib.contextmanager
def injected(plan: Union[FaultPlan, Dict]):
    """``with faults.injected(plan) as plane: ...`` — scoped activation."""
    plane = activate(plan)
    try:
        yield plane
    finally:
        deactivate()


@contextlib.contextmanager
def suspended():
    """Temporarily lift the active plane (restoring it, counters and
    RNG state intact, on exit).  Chaos tests use this to run *oracle*
    checks — which must be fault-free to mean anything — in the middle
    of an injected schedule."""
    global ACTIVE
    plane, ACTIVE = ACTIVE, None
    try:
        yield plane
    finally:
        ACTIVE = plane
