"""Entropy-coded derivation streams (the RCX2 coding layer).

The paper spends exactly one byte per derivation step.  That is the
right trade for the embedded interpreter — the 1-byte form *is* the
executable — but it wastes most of each byte's code space when rule
usage is heavily skewed, which the training forest proves it is.  This
package supplies the upgrade path sketched by Naganuma et al. (PAPERS.md,
"Grammar compression with probabilistic context-free grammar"):

* :mod:`repro.coding.model` — a :class:`RuleModel` estimated from the
  training forest's per-nonterminal rule frequencies (Laplace-smoothed,
  deterministically quantized, content-addressed, memoized on the
  grammar's :class:`~repro.core.program.GrammarProgram`);
* :mod:`repro.coding.rangecoder` — a carry-less byte-oriented range
  coder (integer-only, bit-identical across platforms);
* :mod:`repro.coding.stream` — the derivation-stream codec: RCX1's
  one-byte-per-step codeword stream to/from an entropy-coded stream
  with an explicit end-of-stream symbol per procedure.

``repro.storage`` wires these into the RCX2 container format; the
execution engines never see RCX2 — it decodes losslessly back to the
RCX1 in-memory form on load.  See docs/CODING.md.
"""

from .model import ModelMissingError, RuleModel, model_for
from .rangecoder import RangeDecoder, RangeEncoder
from .stream import decode_module_streams, encode_module_streams

__all__ = [
    "ModelMissingError", "RuleModel", "model_for",
    "RangeEncoder", "RangeDecoder",
    "encode_module_streams", "decode_module_streams",
]
