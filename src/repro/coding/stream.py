"""Derivation-stream codec: RCX1 codeword bytes <-> entropy-coded bytes.

An RCX1 procedure body is a leftmost derivation written one byte per
step: the byte at each step is the chosen rule's codeword in the
*current* nonterminal's rule list (and the current nonterminal is fully
determined by the preceding steps — the same invariant the decompressor
and the generated interpreters rely on).  That makes the stream a
sequence of (context, symbol) pairs this module can re-code against a
:class:`~repro.coding.model.RuleModel` without any side information:

* **encode** walks the RCX1 bytes with an explicit stack (exactly the
  interpreter's traversal), range-coding each codeword in its
  nonterminal's context, and closes every procedure with the model's
  end-of-stream symbol (a ``<start>``-context extra — each basic block
  begins at ``<start>``, so that is where "next block" and "procedure
  ends" compete);
* **decode** runs the identical walk driven by the range decoder,
  re-emitting the original codeword bytes and recording block starts
  as it goes.

Both directions code against a fresh :class:`StreamCoder` — the
model's trained counts seed each context, then every coded step bumps
the chosen symbol's count, so a module whose rule usage differs from
the training corpus is learned on the fly.  Encoder and decoder see
the same symbols in the same order, keeping their tables in lockstep.

One coded stream covers a whole module (procedures in order), so the
coder's 4-byte flush is paid once, not per procedure.

Robustness contract (the malformed-RCX2 suite pins it): decoding is
**linear and bounded** — every decoded symbol appends exactly one byte
to the output, so the caller-supplied ``code_len`` (from the
CRC-protected container header) caps total work; a corrupt stream
raises a structured :class:`~repro.parsing.derivation.DerivationError`
(overrun, underrun, length mismatch, trailing bytes, EOS inside a
derivation) and can never hang.  Silent mis-decodes are caught one
layer up by the container's decoded-payload CRC.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .. import faults
from ..core.program import GrammarProgram
from ..parsing.derivation import DerivationError
from .model import RuleModel
from .rangecoder import CoderError, RangeDecoder, RangeEncoder

__all__ = ["encode_module_streams", "decode_module_streams"]


def _child_table(program: GrammarProgram) -> List[List[Tuple[int, ...]]]:
    """Per (nonterminal index, codeword): the nonterminal indices of the
    rule's RHS occurrences, left to right — the walk order shared by
    encoder, decoder, and the interpreters."""
    def build():
        table: List[List[Tuple[int, ...]]] = [[] for _ in
                                              program.grammar.nt_names]
        for nt in program.grammar.nonterminals:
            table[-nt - 1] = [
                tuple(-rule.rhs[p] - 1 for p in rule.nt_positions)
                for rule in program.rules_of[nt]
            ]
        return table
    return program.derived("coding.children", build)


def encode_module_streams(program: GrammarProgram, model: RuleModel,
                          proc_codes: Sequence[bytes]) -> bytes:
    """Entropy-code the RCX1 bodies of a module's procedures into one
    stream (procedures in order, each closed by end-of-stream)."""
    children = _child_table(program)
    start = -program.start - 1
    encode_symbol = model.coder().encode_symbol
    enc = RangeEncoder()
    for code in proc_codes:
        pos = 0
        n = len(code)
        while pos < n:
            stack = [start]
            while stack:
                ctx = stack.pop()
                if pos >= n:
                    raise DerivationError(
                        f"compressed stream ends mid-derivation at "
                        f"offset {pos}")
                codeword = code[pos]
                pos += 1
                row = children[ctx]
                if codeword >= len(row):
                    raise DerivationError(
                        f"codeword {codeword} out of range at offset "
                        f"{pos - 1}")
                encode_symbol(enc, ctx, codeword)
                kids = row[codeword]
                if kids:
                    stack.extend(reversed(kids))
        encode_symbol(enc, start, model.eos_symbol)
    return enc.finish()


def decode_module_streams(program: GrammarProgram, model: RuleModel,
                          code_lens: Sequence[int], data: bytes,
                          ) -> List[Tuple[bytes, Tuple[int, ...]]]:
    """Invert :func:`encode_module_streams`: per procedure, the RCX1
    body bytes and the block-start offsets observed while decoding.

    ``code_lens`` (one RCX1 byte length per procedure, from the
    container header) bounds the decode; any violation raises
    :class:`DerivationError`.
    """
    if faults.ACTIVE is not None:
        faults.ACTIVE.fire("coding.decode")
    children = _child_table(program)
    start = -program.start - 1
    eos = model.eos_symbol
    decode_symbol = model.coder().decode_symbol
    try:
        dec = RangeDecoder(data)
        results = []
        for code_len in code_lens:
            out = bytearray()
            starts: List[int] = []
            while True:
                sym = decode_symbol(dec, start)
                if sym == eos:
                    break
                if len(out) >= code_len:
                    raise DerivationError(
                        f"coded stream overruns the declared "
                        f"{code_len}-byte procedure body")
                starts.append(len(out))
                out.append(sym)
                stack = list(reversed(children[start][sym]))
                while stack:
                    ctx = stack.pop()
                    if len(out) >= code_len:
                        raise DerivationError(
                            f"coded stream overruns the declared "
                            f"{code_len}-byte procedure body")
                    codeword = decode_symbol(dec, ctx)
                    row = children[ctx]
                    if codeword >= len(row):
                        # only possible where <start> appears on a RHS
                        # and the stream decodes its EOS extra there
                        raise DerivationError(
                            "end-of-stream symbol inside a derivation")
                    out.append(codeword)
                    kids = row[codeword]
                    if kids:
                        stack.extend(reversed(kids))
            if len(out) != code_len:
                raise DerivationError(
                    f"decoded procedure body is {len(out)} bytes, "
                    f"header declares {code_len}")
            results.append((bytes(out), tuple(starts)))
        if dec.consumed != len(data):
            raise DerivationError(
                f"{len(data) - dec.consumed} trailing bytes in the "
                f"coded stream")
        return results
    except CoderError as exc:
        raise DerivationError(str(exc)) from None
