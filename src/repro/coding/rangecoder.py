"""A carry-less, byte-oriented range coder (Subbotin's construction).

The coder maps a sequence of symbols, each drawn from a static integer
frequency table, onto a byte string whose length approaches the
sequence's entropy.  Design constraints, in order:

* **Determinism.**  Integer-only arithmetic on 32-bit values (explicit
  ``& 0xFFFFFFFF`` wraps), so encoder and decoder are bit-identical on
  every platform and Python version.  No floats anywhere.
* **Carry-less renormalization.**  Rather than propagating carries into
  already-emitted bytes (the classic arithmetic-coder headache), the
  range is clipped at the cost of a fraction of a bit whenever the top
  byte of ``low`` and ``low + range`` disagree and the range is still
  wide (Subbotin's trick): ``range = -low & (BOTTOM - 1)``.
* **Byte orientation.**  Renormalization shifts whole bytes, so the
  coded stream is a plain byte string with no bit cursor — cheap to
  slice, frame, and CRC.

Invariants (documented in docs/CODING.md and held by the round-trip
property tests in tests/test_coding.py):

* every frequency table passed in has ``total <= BOTTOM`` (1 << 16) and
  every symbol frequency >= 1, so ``range // total >= 1`` after
  renormalization and any symbol stays decodable;
* the decoder consumes *exactly* the bytes the encoder produced: 4
  priming bytes mirror the encoder's 4 flush bytes, and each
  ``decode``'s renormalization reads precisely what the matching
  ``encode`` emitted.  A valid stream therefore ends with the read
  cursor on the last byte — anything else is corruption.

The tables themselves live in :mod:`repro.coding.model`; this module
knows nothing about grammars.
"""

from __future__ import annotations

from typing import List

__all__ = ["TOP", "BOTTOM", "CoderError", "RangeEncoder", "RangeDecoder"]

#: renormalize when the range drops below 2^24 (one spare byte of
#: precision above the 16-bit frequency totals).
TOP = 1 << 24
#: frequency totals must not exceed 2^16 (and the carry-less clip
#: masks against BOTTOM - 1).
BOTTOM = 1 << 16

_MASK = 0xFFFFFFFF


class CoderError(ValueError):
    """The coded stream ended early or violated a coder invariant."""


class RangeEncoder:
    """Encode symbols against static cumulative-frequency tables.

    Call :meth:`encode` once per symbol with the symbol's cumulative
    frequency, its own frequency, and the table total; :meth:`finish`
    flushes the final state and returns the coded bytes.
    """

    def __init__(self) -> None:
        self._low = 0
        self._range = _MASK
        self._out = bytearray()

    def encode(self, cum: int, freq: int, total: int) -> None:
        if not (0 < freq and 0 <= cum and cum + freq <= total <= BOTTOM):
            raise CoderError(
                f"bad frequency interval cum={cum} freq={freq} "
                f"total={total}")
        r = self._range // total
        self._low = (self._low + r * cum) & _MASK
        self._range = r * freq
        self._normalize()

    def _normalize(self) -> None:
        low, rng, out = self._low, self._range, self._out
        while True:
            if (low ^ ((low + rng) & _MASK)) < TOP:
                pass  # top byte settled: emit it
            elif rng < BOTTOM:
                rng = (-low) & (BOTTOM - 1)  # carry-less clip
            else:
                break
            out.append((low >> 24) & 0xFF)
            low = (low << 8) & _MASK
            rng = (rng << 8) & _MASK
        self._low, self._range = low, rng

    def finish(self) -> bytes:
        """Flush the remaining state (4 bytes) and return the stream."""
        low, out = self._low, self._out
        for _ in range(4):
            out.append((low >> 24) & 0xFF)
            low = (low << 8) & _MASK
        self._low = low
        self._range = 0  # encoder is spent; further encodes would error
        return bytes(out)


class RangeDecoder:
    """Decode a stream produced by :class:`RangeEncoder`.

    The caller drives it with the same frequency tables, in the same
    order, the encoder saw: :meth:`target` returns a value to locate in
    the cumulative table (binary search, caller-side), then
    :meth:`consume` commits the located symbol's interval.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0
        self._low = 0
        self._range = _MASK
        code = 0
        for _ in range(4):
            code = ((code << 8) | self._byte()) & _MASK
        self._code = code

    @property
    def consumed(self) -> int:
        """Bytes of input consumed so far (== len(data) after a full,
        valid decode)."""
        return self._pos

    def _byte(self) -> int:
        if self._pos >= len(self._data):
            raise CoderError(
                f"coded stream exhausted after {self._pos} bytes")
        b = self._data[self._pos]
        self._pos += 1
        return b

    def target(self, total: int) -> int:
        """The cumulative-frequency value the next symbol straddles."""
        if not 0 < total <= BOTTOM:
            raise CoderError(f"bad frequency total {total}")
        self._r = self._range // total
        t = ((self._code - self._low) & _MASK) // self._r
        return t if t < total else total - 1

    def consume(self, cum: int, freq: int) -> None:
        """Commit the symbol located at [cum, cum + freq)."""
        self._low = (self._low + self._r * cum) & _MASK
        self._range = self._r * freq
        low, rng, code = self._low, self._range, self._code
        while True:
            if (low ^ ((low + rng) & _MASK)) < TOP:
                pass
            elif rng < BOTTOM:
                rng = (-low) & (BOTTOM - 1)
            else:
                break
            code = ((code << 8) | self._byte()) & _MASK
            low = (low << 8) & _MASK
            rng = (rng << 8) & _MASK
        self._low, self._range, self._code = low, rng, code


def cumulative(freqs: List[int]) -> List[int]:
    """Prefix sums of a frequency table: cum[i] = sum(freqs[:i]),
    with the grand total appended (len(freqs) + 1 entries)."""
    out = [0] * (len(freqs) + 1)
    acc = 0
    for i, f in enumerate(freqs):
        out[i] = acc
        acc += f
    out[len(freqs)] = acc
    return out
