"""Probabilistic rule model estimated from the training forest.

The paper's coding is uniform: every derivation step spends one byte,
whatever the rule.  The training forest says that is wasteful — rule
usage per nonterminal is heavily skewed (the expander *selects* rules by
``use_count``), and literal bytes under ``<byte>`` are dominated by
small constants.  A :class:`RuleModel` captures that skew as one static
frequency table per nonterminal:

* **Counts** come from the post-training forest: one increment per
  forest node, bucketed by (nonterminal, codeword).  They are raw
  (unsmoothed) in the serialized form, so the model is a faithful
  record of the training data.
* **Laplace smoothing** (+1 per rule) is applied when the tables are
  built, so a rule the training corpus never used stays encodable —
  essential when a grammar trained on one program codes another.
* **Adaptation**: the trained counts are only a *prior*.  A grammar is
  routinely trained on one program and then codes another whose rule
  usage looks different; a static table tops out well short of the
  achievable skew.  So each stream is coded by a :class:`StreamCoder`
  that seeds every context with the smoothed prior and bumps the chosen
  symbol's count by ``ADAPT_INC`` after each coded step — encoder and
  decoder walk the identical symbol sequence, so their tables stay in
  lockstep without any side information.  When a context's total would
  exceed the range coder's 2^16 budget, all its counts are halved
  (floor at 1), which also ages out the prior in favour of the stream's
  own statistics.  Pure integer arithmetic throughout, so the coded
  bytes are identical on every platform.
* **End of stream**: the ``<start>`` context carries one extra symbol
  after its rules.  Every basic block begins at ``<start>``, so that is
  the only context where "another block" and "procedure ends" compete;
  its observed count is the number of procedures in the corpus.

Identity: a model embeds the SHA-256 of its grammar's *compact
encoding* (``GrammarProgram.compact_key``) — the same bytes RCX2 and
RGR1 files carry — so a container can detect a model paired with the
wrong grammar without re-encoding anything.  ``model_for(program)``
memoizes the built model via ``GrammarProgram.derived()``, so every
consumer (storage, service workers, CLI stats) shares one instance.

Training attaches the raw counts to the grammar as
``grammar.coding_counts`` (see :func:`attach_counts`); grammars loaded
from legacy RGR1 files lack them, and :func:`model_for` then raises
:class:`ModelMissingError` — the structured "train first or use rcx1"
signal the service maps to its retryable ``model_missing`` error.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Optional, Sequence, Tuple

from .. import faults
from ..core.program import GrammarProgram, program_for
from .rangecoder import BOTTOM, RangeDecoder, RangeEncoder, cumulative

__all__ = [
    "ADAPT_INC", "CONTEXT_TOTAL", "ModelMissingError", "RuleModel",
    "StreamCoder", "model_for", "parse_model", "derive_counts",
    "attach_counts",
]

#: every context's quantized frequencies sum to exactly this (2^14 —
#: comfortably under the range coder's 2^16 total budget, and enough
#: resolution that a once-seen rule among thousands still gets a
#: distinguishable probability).  Used by the *static* entropy report
#: (``stats``); the coded stream itself adapts, see StreamCoder.
CONTEXT_TOTAL = 1 << 14

#: how much a coded symbol's count grows after each step.  Large
#: relative to the +1-smoothed prior, so a cross-coded program's own
#: rule usage overtakes the training distribution within a few dozen
#: occurrences of a context; small enough that the prior still carries
#: the first steps of every stream.
ADAPT_INC = 32

_MAGIC = b"RMD1"
_VERSION = 1

#: the attribute training hangs the raw counts on (see attach_counts)
COUNTS_ATTR = "coding_counts"


class ModelMissingError(LookupError):
    """The grammar carries no training counts, so no RuleModel can be
    built — retrain (counts attach during training) or use rcx1."""


def _quantize(counts: Sequence[int], total: int) -> List[int]:
    """Deterministic largest-remainder quantization: integer frequencies
    summing to exactly ``total``, every entry >= 1, ordered ties broken
    by index.  ``counts`` must be positive (Laplace-smoothed)."""
    n = len(counts)
    if n == 0:
        return []
    if total < n:
        raise ValueError(f"cannot fit {n} symbols in total {total}")
    s = sum(counts)
    spare = total - n
    raw: List[int] = []
    remainders: List[Tuple[int, int]] = []
    for i, c in enumerate(counts):
        if c <= 0:
            raise ValueError("counts must be positive (smoothed)")
        q, r = divmod(c * spare, s)
        raw.append(q)
        remainders.append((-r, i))
    remainders.sort()
    freqs = [1 + q for q in raw]
    for k in range(spare - sum(raw)):
        freqs[remainders[k][1]] += 1
    return freqs


class RuleModel:
    """Static per-nonterminal frequency tables bound to one grammar.

    ``counts[i][w]`` is the raw training count of codeword ``w`` under
    the nonterminal with index ``i`` (``-nt - 1``); ``eos_count`` is the
    number of procedures observed.  The constructor validates the shape
    against the program, builds the quantized tables, and computes the
    model's own content key (SHA-256 of its serialized bytes).
    """

    def __init__(self, program: GrammarProgram,
                 counts: Sequence[Sequence[int]], eos_count: int,
                 binding: Optional[bytes] = None) -> None:
        grammar = program.grammar
        nts = list(grammar.nonterminals)
        if len(counts) != len(nts):
            raise ValueError(
                f"model has {len(counts)} contexts, grammar has "
                f"{len(nts)} nonterminals")
        self.counts: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(row) for row in counts)
        for nt in nts:
            i = -nt - 1
            want = len(program.rules_of[nt])
            if len(self.counts[i]) != want:
                raise ValueError(
                    f"model context {grammar.nt_name(nt)!r} has "
                    f"{len(self.counts[i])} rules, grammar has {want}")
        if eos_count < 0:
            raise ValueError("negative end-of-stream count")
        self.eos_count = int(eos_count)
        if binding is None:
            binding = bytes.fromhex(program.compact_key)
        if len(binding) != 32:
            raise ValueError("model binding must be a 32-byte digest")
        self.binding = binding

        self.start_index = -program.start - 1
        #: the end-of-stream symbol: one past the <start> rules
        self.eos_symbol = len(self.counts[self.start_index])

        # Laplace-smooth once at build time.  The smoothed rows seed
        # every StreamCoder; the quantized prefix sums only serve the
        # static entropy report (stats/entropy_bits/predicted_bits).
        self.priors: List[Tuple[int, ...]] = []
        self._cums: List[List[int]] = []
        for i, row in enumerate(self.counts):
            smoothed = [c + 1 for c in row]
            if i == self.start_index:
                smoothed.append(self.eos_count + 1)
            self.priors.append(tuple(smoothed))
            self._cums.append(cumulative(_quantize(smoothed,
                                                   CONTEXT_TOTAL))
                              if smoothed else [0])
        self.key = hashlib.sha256(self.to_bytes()).hexdigest()

    # -- serialization ------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Deterministic serialized form (embedded in RCX2 and RGR1).
        Counts are LEB128 varints — they are mostly zero or small, and
        the model ships in every RCX2 file."""
        out = bytearray(_MAGIC)
        out.append(_VERSION)
        out.extend(self.binding)
        _varint(out, self.eos_count)
        _varint(out, len(self.counts))
        for row in self.counts:
            _varint(out, len(row))
            for c in row:
                _varint(out, c)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes,
                   program: GrammarProgram) -> "RuleModel":
        """Parse and bind to ``program``; raises ValueError on any
        malformation (bad magic, truncation, shape mismatch)."""
        binding, eos_count, counts = parse_model(data)
        return cls(program, counts, eos_count, binding=binding)

    # -- coding -------------------------------------------------------------

    def context_size(self, ctx: int) -> int:
        """Symbols in context ``ctx`` (rules, plus EOS for <start>)."""
        return len(self.priors[ctx])

    def coder(self) -> "StreamCoder":
        """Fresh adaptive coding state seeded from this model's priors.
        One per stream, per direction — the state mutates as it codes."""
        return StreamCoder(self)

    # -- statistics ---------------------------------------------------------

    def entropy_bits(self, ctx: int) -> float:
        """Shannon entropy of one context's quantized *prior*, in bits
        per symbol (RCX1 spends a flat 8).  The adaptive coder tracks
        the stream it codes, so realized cost is usually lower — these
        figures bound what the prior alone would achieve."""
        cums = self._cums[ctx]
        total = cums[-1]
        if total == 0:
            return 0.0
        h = 0.0
        for i in range(len(cums) - 1):
            p = (cums[i + 1] - cums[i]) / total
            h -= p * math.log2(p)
        return h

    def predicted_bits(self, ctx: int) -> float:
        """Cross-entropy cost, in bits, of re-coding the *training*
        occurrences of this context under the quantized prior."""
        cums = self._cums[ctx]
        total = cums[-1]
        row = list(self.counts[ctx])
        if ctx == self.start_index:
            row.append(self.eos_count)
        bits = 0.0
        for i, c in enumerate(row):
            if c:
                p = (cums[i + 1] - cums[i]) / total
                bits -= c * math.log2(p)
        return bits

    def stats(self, program: GrammarProgram) -> Dict:
        """Per-context entropy report for ``repro coding stats``."""
        grammar = program.grammar
        contexts = []
        total_steps = 0
        total_bits = 0.0
        for nt in grammar.nonterminals:
            i = -nt - 1
            steps = sum(self.counts[i])
            if i == self.start_index:
                steps += self.eos_count
            bits = self.predicted_bits(i)
            total_steps += steps
            total_bits += bits
            contexts.append({
                "nonterminal": grammar.nt_name(nt),
                "rules": len(self.counts[i]),
                "trained_steps": steps,
                "entropy_bits": self.entropy_bits(i),
                "predicted_bits_per_step": bits / steps if steps else 0.0,
            })
        return {
            "model_key": self.key,
            "grammar_binding": self.binding.hex(),
            "procedures_trained": self.eos_count,
            "trained_steps": total_steps,
            "predicted_bits_per_step":
                total_bits / total_steps if total_steps else 0.0,
            "predicted_bytes": total_bits / 8,
            "rcx1_bytes": total_steps,  # one byte per step, by design
            "contexts": contexts,
        }


class _AdaptiveContext:
    """One nonterminal's adaptive frequency state.

    A Fenwick (binary indexed) tree over the per-symbol counts gives
    O(log n) prefix sums for the encoder and O(log n) find-by-target
    for the decoder, with O(log n) bumps after every step — the hot
    contexts hold up to 257 symbols (256 codewords plus EOS) and are
    consulted once per derivation step.

    Counts start at the model's smoothed prior and grow by ADAPT_INC
    per observation.  The total is kept <= the range coder's BOTTOM
    (2^16) budget: whenever a bump would cross it, every count is
    halved with a floor of 1 (so all symbols stay decodable), which
    doubles as exponential aging of old statistics.
    """

    __slots__ = ("n", "freqs", "total", "tree", "mask")

    def __init__(self, prior: Sequence[int]) -> None:
        self.n = len(prior)
        self.freqs = list(prior)
        self.total = sum(prior)
        while self.total > BOTTOM:
            self._halve()
        self._rebuild()

    def _halve(self) -> None:
        self.freqs = [(f + 1) >> 1 for f in self.freqs]
        self.total = sum(self.freqs)

    def _rebuild(self) -> None:
        n = self.n
        tree = [0] * (n + 1)
        for i, f in enumerate(self.freqs, 1):
            tree[i] += f
            j = i + (i & -i)
            if j <= n:
                tree[j] += tree[i]
        self.tree = tree
        mask = 1
        while mask << 1 <= n:
            mask <<= 1
        self.mask = mask

    def _bump(self, sym: int) -> None:
        if self.total + ADAPT_INC > BOTTOM:
            self._halve()
            self._rebuild()
        i = sym + 1
        tree, n = self.tree, self.n
        while i <= n:
            tree[i] += ADAPT_INC
            i += i & -i
        self.freqs[sym] += ADAPT_INC
        self.total += ADAPT_INC

    def encode(self, enc: RangeEncoder, sym: int) -> None:
        tree = self.tree
        cum = 0
        i = sym
        while i:
            cum += tree[i]
            i -= i & -i
        enc.encode(cum, self.freqs[sym], self.total)
        self._bump(sym)

    def decode(self, dec: RangeDecoder) -> int:
        target = dec.target(self.total)
        tree, n = self.tree, self.n
        sym = 0
        rem = target
        mask = self.mask
        while mask:
            nxt = sym + mask
            if nxt <= n and tree[nxt] <= rem:
                sym = nxt
                rem -= tree[nxt]
            mask >>= 1
        # sym is the largest index with cumulative <= target, and
        # target - rem is that cumulative — exactly the interval to
        # commit.  target < total guarantees sym < n.
        dec.consume(target - rem, self.freqs[sym])
        self._bump(sym)
        return sym


class StreamCoder:
    """Mutable per-stream coding state for one :class:`RuleModel`.

    The encoder and the decoder each build one (``model.coder()``) and
    drive it through the identical (context, symbol) sequence, so both
    sides' adaptive tables evolve in lockstep without any bytes spent
    on synchronization.  Never reuse one across streams — the state it
    accumulates is the stream's.
    """

    __slots__ = ("_contexts",)

    def __init__(self, model: RuleModel) -> None:
        self._contexts = [_AdaptiveContext(p) if p else None
                          for p in model.priors]

    def encode_symbol(self, enc: RangeEncoder, ctx: int,
                      sym: int) -> None:
        self._contexts[ctx].encode(enc, sym)

    def decode_symbol(self, dec: RangeDecoder, ctx: int) -> int:
        return self._contexts[ctx].decode(dec)


def _varint(out: bytearray, v: int) -> None:
    """Unsigned LEB128."""
    while v >= 0x80:
        out.append((v & 0x7F) | 0x80)
        v >>= 7
    out.append(v)


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    v = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated RuleModel (varint)")
        b = data[pos]
        pos += 1
        v |= (b & 0x7F) << shift
        if not b & 0x80:
            return v, pos
        shift += 7
        if shift > 63:
            raise ValueError("overlong varint in RuleModel")


def parse_model(data: bytes,
                ) -> Tuple[bytes, int, List[Tuple[int, ...]]]:
    """Parse a serialized model without binding it to a grammar:
    ``(binding, eos_count, counts)``.  Storage uses this to validate and
    re-attach counts while a grammar is still being deserialized (no
    program may be built from a half-loaded grammar)."""
    if len(data) < 37 or data[:4] != _MAGIC:
        raise ValueError("not a serialized RuleModel (bad magic)")
    if data[4] != _VERSION:
        raise ValueError(f"unsupported RuleModel version {data[4]}")
    binding = data[5:37]
    pos = 37
    eos_count, pos = _read_varint(data, pos)
    ncontexts, pos = _read_varint(data, pos)
    if ncontexts > 0xFFFF:
        raise ValueError(f"implausible context count {ncontexts}")
    counts: List[Tuple[int, ...]] = []
    for _ in range(ncontexts):
        n, pos = _read_varint(data, pos)
        if n > 0xFFFF:
            raise ValueError(f"implausible rule count {n}")
        row = []
        for _ in range(n):
            c, pos = _read_varint(data, pos)
            row.append(c)
        counts.append(tuple(row))
    if pos != len(data):
        raise ValueError(
            f"{len(data) - pos} trailing bytes after RuleModel")
    return binding, eos_count, counts


# -- estimation ---------------------------------------------------------------

def derive_counts(grammar, forest, procedures: int) -> Dict:
    """Raw per-(nonterminal, codeword) usage counts from a parse forest,
    in the dict shape ``attach_counts`` hangs on the grammar."""
    program = program_for(grammar)
    table: List[List[int]] = [[] for _ in grammar.nt_names]
    for nt in grammar.nonterminals:
        table[-nt - 1] = [0] * len(program.rules_of[nt])
    rules = grammar.rules
    codeword_of = program.codeword_of
    for node in forest.nodes():
        rule = rules[node.rule_id]
        table[-rule.lhs - 1][codeword_of[node.rule_id]] += 1
    return {"rules": table, "eos": int(procedures)}


def attach_counts(grammar, forest, modules) -> None:
    """Attach training counts to a freshly trained grammar (called by
    ``pipeline.train_grammar`` and the experiment harness)."""
    procedures = sum(len(m.procedures) for m in modules)
    setattr(grammar, COUNTS_ATTR, derive_counts(grammar, forest,
                                                procedures))


def model_for(program: GrammarProgram) -> RuleModel:
    """The shared RuleModel for a program (built once, memoized via
    ``GrammarProgram.derived``); raises :class:`ModelMissingError` when
    the grammar carries no training counts."""
    def build() -> RuleModel:
        if faults.ACTIVE is not None:
            faults.ACTIVE.fire("coding.model")
        counts = getattr(program.grammar, COUNTS_ATTR, None)
        if counts is None:
            raise ModelMissingError(
                "grammar has no rule-frequency model (trained before "
                "models existed, or loaded from a legacy RGR1 file); "
                "retrain or compress with format='rcx1'")
        return RuleModel(program, counts["rules"], counts["eos"])
    return program.derived("coding.model", build)
