"""Command-line interface: the system as a tool chain.

The paper's Figure-1 pipeline, as commands::

    python -m repro compile app.c -o app.rbc
    python -m repro train corpus1.rbc corpus2.rbc -o trained.rgr
    python -m repro compress app.rbc -g trained.rgr -o app.rcx
    python -m repro run app.rcx            # direct interpretation
    python -m repro decompress app.rcx -o back.rbc
    python -m repro disasm app.rbc
    python -m repro stats app.rbc app.rcx  # size breakdowns

`run` accepts either format and executes it on the matching interpreter;
integer arguments after the file become the entry procedure's arguments
and the process exit status is the program's.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .bytecode.assembler import disassemble
from .bytecode.module import Module
from .compress.compressor import Compressor
from .compress.decompress import decompress_module
from .grammar.serialize import grammar_bytes
from .interp.interp1 import Interpreter1
from .interp.interp2 import Interpreter2
from .interp.runtime import Machine
from .minic.driver import compile_sources
from .pipeline import train_grammar
from .storage import (
    load_any,
    load_grammar,
    load_module,
    save_compressed,
    save_grammar,
    save_module,
)

__all__ = ["main"]


def _cmd_compile(args) -> int:
    sources = [Path(p).read_text() for p in args.sources]
    module = compile_sources(sources)
    Path(args.output).write_bytes(save_module(module))
    print(f"{args.output}: {module.code_bytes} bytecode bytes, "
          f"{len(module.procedures)} procedures")
    return 0


def _cmd_train(args) -> int:
    corpus = [load_module(Path(p).read_bytes()) for p in args.corpus]
    grammar, report = train_grammar(
        corpus,
        max_rules_per_nt=args.cap,
        min_count=args.min_count,
        parser_workers=args.workers,
        index_mode="naive" if args.naive_index else "incremental",
        collect_stats=args.stats,
    )
    Path(args.output).write_bytes(save_grammar(grammar))
    print(f"{args.output}: {grammar.total_rules()} rules "
          f"({report.iterations} inlines; training derivations "
          f"{report.initial_size} -> {report.final_size}, "
          f"{report.size_ratio:.0%}); "
          f"{grammar_bytes(grammar, compact=True)} encoded bytes")
    if args.stats:
        for line in report.summary_lines():
            print(f"  {line}")
    return 0


def _cmd_compress(args) -> int:
    module = load_module(Path(args.module).read_bytes())
    grammar = load_grammar(Path(args.grammar).read_bytes())
    compressor = Compressor(grammar,
                            cache_size=0 if args.no_cache else 4096)
    cmod = compressor.compress_module(module)
    Path(args.output).write_bytes(save_compressed(cmod))
    ratio = cmod.code_bytes / module.code_bytes if module.code_bytes else 1
    print(f"{args.output}: {module.code_bytes} -> {cmod.code_bytes} "
          f"bytes ({ratio:.0%})")
    if args.stats:
        print(f"  derivation cache: {compressor.cache_info()}")
    return 0


def _cmd_decompress(args) -> int:
    cmod = load_any(Path(args.module).read_bytes())
    if isinstance(cmod, Module):
        print("input is already uncompressed", file=sys.stderr)
        return 2
    module = decompress_module(cmod)
    Path(args.output).write_bytes(save_module(module))
    print(f"{args.output}: {module.code_bytes} bytecode bytes")
    return 0


def _cmd_run(args) -> int:
    program = load_any(Path(args.module).read_bytes())
    if isinstance(program, Module):
        executor = Interpreter1(program)
    else:
        executor = Interpreter2(program)
    machine = Machine(program, executor,
                      input_data=sys.stdin.buffer.read()
                      if args.stdin else b"")
    code = machine.run(*args.args)
    sys.stdout.write(machine.output_text())
    return code & 0xFF


def _cmd_disasm(args) -> int:
    program = load_any(Path(args.module).read_bytes())
    if not isinstance(program, Module):
        program = decompress_module(program)
    sys.stdout.write(disassemble(program))
    return 0


def _cmd_stats(args) -> int:
    for path in args.modules:
        program = load_any(Path(path).read_bytes())
        kind = "module" if isinstance(program, Module) else "compressed"
        print(f"{path} ({kind}):")
        for key, value in program.size_breakdown().items():
            print(f"  {key:12} {value:8}")
        if not isinstance(program, Module):
            print(f"  {'grammar':12} "
                  f"{grammar_bytes(program.grammar, compact=True):8}")
        total = sum(program.size_breakdown().values())
        print(f"  {'total':12} {total:8}")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="bytecode compression via profiled grammar rewriting",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="mini-C sources -> .rbc module")
    p.add_argument("sources", nargs="+")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=_cmd_compile)

    p = sub.add_parser("train", help=".rbc corpus -> .rgr grammar")
    p.add_argument("corpus", nargs="+")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--cap", type=int, default=256,
                   help="rules per nonterminal (default 256)")
    p.add_argument("--min-count", type=int, default=2,
                   help="minimum pair frequency to inline (default 2)")
    p.add_argument("-j", "--workers", type=int, default=None,
                   help="parse the corpus on N parallel workers "
                        "(deterministic: same grammar for any N)")
    p.add_argument("--stats", action="store_true",
                   help="print parse/expand timings and edge-index "
                        "behaviour")
    p.add_argument("--naive-index", action="store_true",
                   help="use the full-recount edge index (the slow "
                        "oracle; same grammar, for verification)")
    p.set_defaults(fn=_cmd_train)

    p = sub.add_parser("compress", help=".rbc + .rgr -> .rcx")
    p.add_argument("module")
    p.add_argument("-g", "--grammar", required=True)
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--no-cache", action="store_true",
                   help="disable the shortest-derivation block cache")
    p.add_argument("--stats", action="store_true",
                   help="print derivation-cache statistics")
    p.set_defaults(fn=_cmd_compress)

    p = sub.add_parser("decompress", help=".rcx -> .rbc (verification)")
    p.add_argument("module")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=_cmd_decompress)

    p = sub.add_parser("run", help="execute .rbc or .rcx")
    p.add_argument("module")
    p.add_argument("args", nargs="*", type=int)
    p.add_argument("--stdin", action="store_true",
                   help="feed stdin to the program's getchar()")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("disasm", help="disassemble .rbc or .rcx")
    p.add_argument("module")
    p.set_defaults(fn=_cmd_disasm)

    p = sub.add_parser("stats", help="size breakdowns")
    p.add_argument("modules", nargs="+")
    p.set_defaults(fn=_cmd_stats)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
