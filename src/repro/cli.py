"""Command-line interface: the system as a tool chain.

The paper's Figure-1 pipeline, as commands::

    python -m repro compile app.c -o app.rbc
    python -m repro train corpus1.rbc corpus2.rbc -o trained.rgr
    python -m repro compress app.rbc -g trained.rgr -o app.rcx
    python -m repro run app.rcx            # direct interpretation
    python -m repro decompress app.rcx -o back.rbc
    python -m repro disasm app.rbc
    python -m repro stats app.rbc app.rcx  # size breakdowns

`run` accepts either format and executes it on the matching interpreter;
integer arguments after the file become the entry procedure's arguments
and the process exit status is the program's.

The system as a *service* (see ``docs/SERVICE.md``)::

    python -m repro registry add trained.rgr --tag prod
    python -m repro serve --registry .repro-registry
    python -m repro client put trained.rgr --tag prod
    python -m repro client compress app.rbc -g prod -o app.rcx
    python -m repro client run app.rcx
    python -m repro client stats

Operational errors — missing or corrupt input files, unknown registry
references, a server that is not running — print one line to stderr and
exit 2; tracebacks are reserved for bugs.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from .bytecode.assembler import disassemble
from .bytecode.module import Module
from .bytecode.validate import ValidationError
from .compress.compressor import Compressor
from .compress.decompress import decompress_module
from .grammar.serialize import grammar_bytes
from .interp.compiled import CompiledEngine
from .interp.interp1 import Interpreter1
from .interp.interp2 import Interpreter2
from .interp.runtime import Machine
from .minic.driver import compile_sources
from .pipeline import train_grammar
from .storage import (
    StorageError,
    load_any,
    load_grammar,
    load_module,
    save_compressed,
    save_grammar,
    save_module,
)

__all__ = ["main"]


class CliError(Exception):
    """Operational failure: one line on stderr, exit 2, no traceback."""


def _read_bytes(path: str) -> bytes:
    try:
        return Path(path).read_bytes()
    except OSError as exc:
        raise CliError(f"{path}: {exc.strerror or exc}") from None


def _load_file(loader, path: str):
    """Read + parse an artifact, mapping corruption to a CliError."""
    data = _read_bytes(path)
    try:
        return loader(data)
    except (StorageError, ValidationError) as exc:
        raise CliError(f"{path}: {exc}") from None


def _cmd_compile(args) -> int:
    try:
        sources = [Path(p).read_text() for p in args.sources]
    except OSError as exc:
        raise CliError(f"{exc.filename}: {exc.strerror or exc}") from None
    module = compile_sources(sources)
    Path(args.output).write_bytes(save_module(module))
    print(f"{args.output}: {module.code_bytes} bytecode bytes, "
          f"{len(module.procedures)} procedures")
    return 0


def _cmd_train(args) -> int:
    corpus = [_load_file(load_module, p) for p in args.corpus]
    grammar, report = train_grammar(
        corpus,
        max_rules_per_nt=args.cap,
        min_count=args.min_count,
        parser_workers=args.workers,
        index_mode="naive" if args.naive_index else "incremental",
        collect_stats=args.stats,
        strategy=args.trainer,
    )
    Path(args.output).write_bytes(save_grammar(grammar))
    seeded = (f"{report.seed_rules} seeded rules + "
              if report.seed_rules else "")
    print(f"{args.output}: {grammar.total_rules()} rules "
          f"[{report.strategy}] ({seeded}{report.iterations} inlines; "
          f"training derivations "
          f"{report.initial_size} -> {report.final_size}, "
          f"{report.size_ratio:.0%}); "
          f"{grammar_bytes(grammar, compact=True)} encoded bytes")
    if args.stats:
        for line in report.summary_lines():
            print(f"  {line}")
    if args.registry:
        from .registry import GrammarRegistry
        registry = GrammarRegistry(args.registry)
        digest = registry.put(grammar, report=report, corpus=corpus,
                              tags=args.tag)
        print(digest)
    return 0


def _cmd_compress(args) -> int:
    from .coding.model import ModelMissingError

    module = _load_file(load_module, args.module)
    grammar = _load_file(load_grammar, args.grammar)
    compressor = Compressor(grammar,
                            cache_size=0 if args.no_cache else 4096,
                            format=args.format)
    cmod = compressor.compress_module(module)
    try:
        payload = save_compressed(cmod, format=args.format)
    except ModelMissingError as exc:
        raise CliError(f"{args.grammar}: {exc}") from None
    Path(args.output).write_bytes(payload)
    ratio = cmod.code_bytes / module.code_bytes if module.code_bytes else 1
    print(f"{args.output}: {module.code_bytes} -> {cmod.code_bytes} "
          f"bytes ({ratio:.0%}, {args.format} container, "
          f"{len(payload)} file bytes)")
    if args.stats:
        print(f"  derivation cache: {compressor.cache_info()}")
    return 0


def _cmd_decompress(args) -> int:
    cmod = _load_file(load_any, args.module)
    if isinstance(cmod, Module):
        print("input is already uncompressed", file=sys.stderr)
        return 2
    module = decompress_module(cmod)
    Path(args.output).write_bytes(save_module(module))
    print(f"{args.output}: {module.code_bytes} bytecode bytes")
    return 0


def _cmd_run(args) -> int:
    program = _load_file(load_any, args.module)
    input_data = sys.stdin.buffer.read() if args.stdin else b""
    if args.profile:
        from .interp.profile import profile_run

        kwargs = {}
        if not isinstance(program, Module):
            if args.engine == "native":
                print("profiling instruments the Python engines; "
                      "using the compiled engine", file=sys.stderr)
                kwargs["engine"] = "compiled"
            else:
                kwargs["engine"] = args.engine
        code, output, prof = profile_run(program, *args.args,
                                         input_data=input_data, **kwargs)
        sys.stdout.write(output.decode("utf-8", errors="replace"))
        err = sys.stderr
        print(f"-- profile: {prof.total_operators} operators, "
              f"{prof.total_dispatches} dispatches, "
              f"{prof.blocks_entered} blocks entered, "
              f"{prof.branches_taken} branches, {prof.returns} returns",
              file=err)
        for name, count in prof.top_operators(10):
            print(f"   {name:12} {count:10}", file=err)
        if prof.dispatch_depth:
            histogram = "  ".join(
                f"{depth}:{count}"
                for depth, count in sorted(prof.dispatch_depth.items()))
            print(f"   dispatch depth  {histogram}", file=err)
        return code & 0xFF
    if isinstance(program, Module):
        executor = Interpreter1(program)
    else:
        if args.engine == "native":
            from .interp.native import NativeEngine
            from .interp.nativebuild import NativeBuildError
            try:
                result = NativeEngine(program).run(*args.args,
                                                   input_data=input_data,
                                                   budget=args.budget)
            except NativeBuildError as exc:
                print(f"native engine unavailable ({exc}); "
                      f"falling back to the compiled engine",
                      file=sys.stderr)
            else:
                sys.stdout.write(
                    result.output.decode("utf-8", errors="replace"))
                return result.code & 0xFF
        if args.engine == "reference":
            executor = Interpreter2(program)
        else:
            executor = CompiledEngine(program)
    machine = Machine(program, executor, input_data=input_data,
                      budget=args.budget)
    code = machine.run(*args.args)
    sys.stdout.write(machine.output_text())
    return code & 0xFF


def _cmd_disasm(args) -> int:
    program = _load_file(load_any, args.module)
    if not isinstance(program, Module):
        program = decompress_module(program)
    sys.stdout.write(disassemble(program))
    return 0


def _cmd_stats(args) -> int:
    for path in args.modules:
        program = _load_file(load_any, path)
        kind = "module" if isinstance(program, Module) else "compressed"
        print(f"{path} ({kind}):")
        for key, value in program.size_breakdown().items():
            print(f"  {key:12} {value:8}")
        if not isinstance(program, Module):
            print(f"  {'grammar':12} "
                  f"{grammar_bytes(program.grammar, compact=True):8}")
        total = sum(program.size_breakdown().values())
        print(f"  {'total':12} {total:8}")
    return 0


# -- registry / service commands ---------------------------------------------
#
# Imported lazily so the classic pipeline commands never pay for (or
# break on) the service stack.

def _open_registry(args):
    from .registry import GrammarRegistry
    return GrammarRegistry(args.registry)


def _cmd_grammar(args) -> int:
    from .interp.tables import interp_tables
    from .registry import RegistryError

    registry = _open_registry(args)
    try:
        program = registry.program(args.ref)
        meta = registry.meta(args.ref)
    except RegistryError as exc:
        raise CliError(str(exc)) from None
    stats = program.stats()
    print(f"grammar {program.content_key[:12]}: "
          f"{stats['rules']} rules, {stats['nonterminals']} nonterminals "
          f"({stats['original_rules']} original), "
          f"{stats['terminals']} terminals")
    training = meta.get("training")
    if training:
        params = training.get("trainer_params") or {}
        knobs = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
        print(f"  trainer {training.get('trainer', 'greedy')}"
              + (f" ({knobs})" if knobs else "") +
              f": {training.get('seed_rules', 0)} seeded + "
              f"{training.get('iterations', 0)} inlined rules; "
              f"seed {training.get('seed_seconds', 0.0):.3f}s / "
              f"refine {training.get('refine_seconds', 0.0):.3f}s")
    print(f"  prediction-set density {stats['prediction_set_density']:.3f}"
          f"  reachable {stats['reachable_nonterminals']}"
          f"  productive {stats['productive_nonterminals']}")
    print(f"  flattened rule tables: "
          f"{interp_tables(program.grammar).encoded_bytes()} bytes")
    name_w = max(len(n) for n in stats["rules_per_nt"])
    print(f"  {'NT':{name_w}}  rules  first-set  min-cost")
    for name, count in stats["rules_per_nt"].items():
        first = stats["prediction_set_sizes"][name]
        cost = stats["min_expansion_cost"][name]
        print(f"  {name:{name_w}}  {count:5}  {first:9}  "
              f"{cost if cost is not None else '-':>8}")
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


def _cmd_coding(args) -> int:
    from .coding.model import ModelMissingError, model_for
    from .registry import RegistryError

    registry = _open_registry(args)
    try:
        program = registry.program(args.ref)
    except RegistryError as exc:
        raise CliError(str(exc)) from None
    try:
        model = model_for(program)
    except ModelMissingError as exc:
        raise CliError(f"{args.ref}: {exc}") from None
    stats = model.stats(program)
    print(f"model {stats['model_key'][:12]} for grammar "
          f"{program.content_key[:12]}: "
          f"{stats['procedures_trained']} procedures, "
          f"{stats['trained_steps']} derivation steps trained")
    rcx1 = stats["rcx1_bytes"]
    predicted = stats["predicted_bytes"]
    print(f"  predicted {stats['predicted_bits_per_step']:.3f} bits/step"
          f" -> {predicted:.0f} coded bytes vs {rcx1} rcx1 payload bytes"
          + (f" ({predicted / rcx1:.0%})" if rcx1 else ""))
    name_w = max(len(c["nonterminal"]) for c in stats["contexts"])
    print(f"  {'NT':{name_w}}  rules  steps  entropy  bits/step")
    for ctx in stats["contexts"]:
        print(f"  {ctx['nonterminal']:{name_w}}  {ctx['rules']:5}  "
              f"{ctx['trained_steps']:5}  {ctx['entropy_bits']:7.3f}  "
              f"{ctx['predicted_bits_per_step']:9.3f}")
    if args.module:
        from .coding.stream import encode_module_streams

        module = _load_file(load_module, args.module)
        cmod = Compressor(program.grammar).compress_module(module)
        coded = encode_module_streams(
            program, model, [proc.code for proc in cmod.procedures])
        ratio = len(coded) / cmod.code_bytes if cmod.code_bytes else 1.0
        print(f"  {args.module}: rcx1 payload {cmod.code_bytes} -> "
              f"rcx2 coded {len(coded)} bytes ({ratio:.0%}); files "
              f"{len(save_compressed(cmod, format='rcx1'))} -> "
              f"{len(save_compressed(cmod, format='rcx2'))} bytes")
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


def _cmd_registry(args) -> int:
    from .registry import RegistryError
    registry = _open_registry(args)
    try:
        if args.registry_command == "add":
            grammar = _load_file(load_grammar, args.grammar)
            digest = registry.put_bytes(
                _read_bytes(args.grammar), tags=args.tag, grammar=grammar)
            print(digest)
        elif args.registry_command == "tag":
            digest = registry.tag(args.ref, args.name)
            print(f"{args.name} -> {digest}")
        elif args.registry_command == "show":
            print(json.dumps(registry.meta(args.ref), indent=2,
                             sort_keys=True))
        elif args.registry_command == "verify":
            report = registry.verify(repair=args.repair)
            print(json.dumps(report, indent=2, sort_keys=True))
            if not (report["clean"] or report.get("repaired")):
                return 1
        elif args.registry_command == "gc":
            swept = registry.gc()
            print(json.dumps(swept, indent=2, sort_keys=True))
        else:  # list
            tags = registry.tags()
            for record in registry.list():
                names = ",".join(sorted(
                    t for t, h in tags.items() if h == record["hash"]))
                print(f"{record['hash'][:12]}  {record['rules']:5} rules  "
                      f"{record['size_bytes']:7} bytes"
                      + (f"  [{names}]" if names else ""))
    except RegistryError as exc:
        raise CliError(str(exc)) from None
    return 0


def _cmd_serve(args) -> int:
    from .registry import GrammarRegistry
    from .service import CompressionService, FleetDispatcher

    if args.serve_workers > 0:
        service = FleetDispatcher(
            args.registry,
            workers=args.serve_workers,
            request_timeout=args.timeout,
            integrity_scan=not args.no_integrity_scan,
            worker_config={
                "max_inflight": args.max_inflight,
                "high_water": args.high_water,
                "batch_window": args.batch_window,
                "breaker_threshold": args.breaker_threshold,
                "breaker_cooldown": args.breaker_cooldown,
                "native_isolation": args.native_isolation,
                "exec_budget": args.exec_budget,
                "native_watchdog": args.native_watchdog,
            },
        )
    else:
        service = CompressionService(
            GrammarRegistry(args.registry),
            max_inflight=args.max_inflight,
            high_water=args.high_water,
            request_timeout=args.timeout,
            batch_window=args.batch_window,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            integrity_scan=not args.no_integrity_scan,
            native_isolation=args.native_isolation,
            exec_budget=args.exec_budget,
            native_watchdog=args.native_watchdog,
        )

    async def _serve() -> None:
        await service.start(args.host, args.port)
        fleet = (f", {args.serve_workers} workers"
                 if args.serve_workers > 0 else "")
        print(f"repro service on {args.host}:{service.port} "
              f"(registry {args.registry}, "
              f"{len(service.registry)} grammars{fleet})", flush=True)
        await service.serve_until_stopped()

    try:
        asyncio.run(_serve())
    except OSError as exc:
        raise CliError(f"cannot bind {args.host}:{args.port}: "
                       f"{exc.strerror or exc}") from None
    return 0


def _cmd_client(args) -> int:
    from .service import RetryPolicy, ServiceClient, ServiceError

    retry = (RetryPolicy(max_attempts=args.retries + 1)
             if args.retries > 0 else None)
    try:
        client = ServiceClient(args.host, args.port, timeout=args.timeout,
                               retry=retry, deadline=args.deadline)
    except OSError as exc:
        raise CliError(f"cannot connect to {args.host}:{args.port}: "
                       f"{exc.strerror or exc}") from None
    with client:
        try:
            return _run_client_command(client, args)
        except ServiceError as exc:
            raise CliError(f"{args.host}:{args.port}: {exc}") from None


def _run_client_command(client, args) -> int:
    cmd = args.client_command
    if cmd == "health":
        print(json.dumps(client.health(), indent=2, sort_keys=True))
    elif cmd == "stats":
        print(json.dumps(client.stats(), indent=2, sort_keys=True))
    elif cmd == "put":
        _load_file(load_grammar, args.grammar)  # fail client-side first
        print(client.put_grammar(_read_bytes(args.grammar),
                                 tags=args.tag))
    elif cmd == "list":
        listing = client.list_grammars()
        tags = listing.get("tags", {})
        for record in listing.get("grammars", []):
            names = ",".join(sorted(
                t for t, h in tags.items() if h == record["hash"]))
            print(f"{record['hash'][:12]}  {record['rules']:5} rules"
                  + (f"  [{names}]" if names else ""))
    elif cmd == "compress":
        data = client.compress(_read_bytes(args.module), args.grammar,
                               format=args.format)
        Path(args.output).write_bytes(data)
        original = len(_read_bytes(args.module))
        print(f"{args.output}: {original} -> {len(data)} file bytes")
    elif cmd == "decompress":
        data = client.decompress(_read_bytes(args.module))
        Path(args.output).write_bytes(data)
        print(f"{args.output}: {len(data)} file bytes")
    else:  # run
        code, output = client.run_compressed(
            _read_bytes(args.module), args.args,
            input_data=sys.stdin.buffer.read() if args.stdin else b"")
        sys.stdout.buffer.write(output)
        sys.stdout.flush()
        return code & 0xFF
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="bytecode compression via profiled grammar rewriting",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="mini-C sources -> .rbc module")
    p.add_argument("sources", nargs="+")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=_cmd_compile)

    p = sub.add_parser("train", help=".rbc corpus -> .rgr grammar")
    p.add_argument("corpus", nargs="+")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--cap", type=int, default=256,
                   help="rules per nonterminal (default 256)")
    p.add_argument("--min-count", type=int, default=2,
                   help="minimum pair frequency to inline (default 2)")
    p.add_argument("-j", "--workers", type=int, default=None,
                   help="parse the corpus on N parallel workers "
                        "(deterministic: same grammar for any N)")
    p.add_argument("--trainer", choices=("greedy", "repair", "hybrid"),
                   default="greedy",
                   help="trainer strategy: the paper's greedy "
                        "edge-contraction loop (default), MR-RePair "
                        "maximal-repeat seeding only, or seeding "
                        "followed by greedy refinement")
    p.add_argument("--stats", action="store_true",
                   help="print per-phase (parse/seed/refine) timings "
                        "and edge-index behaviour")
    p.add_argument("--naive-index", action="store_true",
                   help="use the full-recount edge index (the slow "
                        "oracle; same grammar, for verification)")
    p.add_argument("--registry", default=None, metavar="DIR",
                   help="also store the grammar (with trainer "
                        "provenance) in this registry and print its "
                        "hash")
    p.add_argument("-t", "--tag", action="append", default=[],
                   help="tag for the registered grammar (repeatable; "
                        "needs --registry)")
    p.set_defaults(fn=_cmd_train)

    p = sub.add_parser("compress", help=".rbc + .rgr -> .rcx")
    p.add_argument("module")
    p.add_argument("-g", "--grammar", required=True)
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--no-cache", action="store_true",
                   help="disable the shortest-derivation block cache")
    p.add_argument("--format", choices=("rcx1", "rcx2"), default="rcx1",
                   help="container format: rcx1 stores one codeword "
                        "byte per derivation step (directly "
                        "interpretable), rcx2 entropy-codes the steps "
                        "with the grammar's rule-frequency model "
                        "(smaller; decoded on load)")
    p.add_argument("--stats", action="store_true",
                   help="print derivation-cache statistics")
    p.set_defaults(fn=_cmd_compress)

    p = sub.add_parser("decompress", help=".rcx -> .rbc (verification)")
    p.add_argument("module")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=_cmd_decompress)

    p = sub.add_parser("run", help="execute .rbc or .rcx")
    p.add_argument("module")
    p.add_argument("args", nargs="*", type=int)
    p.add_argument("--stdin", action="store_true",
                   help="feed stdin to the program's getchar()")
    p.add_argument("--engine", choices=("compiled", "reference", "native"),
                   default="compiled",
                   help="compressed-form executor: the precompiled "
                        "direct-threaded engine (default), the "
                        "recursive reference interpreter, or the "
                        "machine-code engine compiled from generated C "
                        "(falls back to compiled when no C compiler "
                        "is available)")
    p.add_argument("--profile", action="store_true",
                   help="print an execution profile (operators, rule "
                        "dispatches, dispatch-depth histogram) to stderr")
    p.add_argument("--budget", type=int, default=0, metavar="N",
                   help="abort with a budget-exceeded trap after N rule "
                        "dispatches (default 0 = unlimited)")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("disasm", help="disassemble .rbc or .rcx")
    p.add_argument("module")
    p.set_defaults(fn=_cmd_disasm)

    p = sub.add_parser("stats", help="size breakdowns")
    p.add_argument("modules", nargs="+")
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser("grammar",
                       help="inspect a stored grammar's precompiled "
                            "program")
    p.add_argument("-d", "--registry", default=".repro-registry",
                   help="registry directory (default .repro-registry)")
    gsub = p.add_subparsers(dest="grammar_command", required=True)
    gp = gsub.add_parser(
        "stats", help="rules per NT, prediction-set density, "
                      "flattened-row bytes")
    gp.add_argument("ref", help="hash, unique prefix, or tag")
    gp.add_argument("--json", action="store_true",
                    help="also dump the full statistics as JSON")
    p.set_defaults(fn=_cmd_grammar)

    p = sub.add_parser("coding",
                       help="inspect a grammar's rule-frequency model")
    p.add_argument("-d", "--registry", default=".repro-registry",
                   help="registry directory (default .repro-registry)")
    osub = p.add_subparsers(dest="coding_command", required=True)
    op = osub.add_parser(
        "stats", help="per-NT entropy, predicted vs rcx1 coded size")
    op.add_argument("ref", help="hash, unique prefix, or tag")
    op.add_argument("-m", "--module", default=None,
                    help="also compress this .rbc both ways and report "
                         "the actual coded size")
    op.add_argument("--json", action="store_true",
                    help="also dump the full statistics as JSON")
    p.set_defaults(fn=_cmd_coding)

    p = sub.add_parser("registry", help="manage a local grammar registry")
    p.add_argument("-d", "--registry", default=".repro-registry",
                   help="registry directory (default .repro-registry)")
    rsub = p.add_subparsers(dest="registry_command", required=True)
    rp = rsub.add_parser("add", help="store a .rgr (prints its hash)")
    rp.add_argument("grammar")
    rp.add_argument("-t", "--tag", action="append", default=[],
                    help="also point this tag at it (repeatable)")
    rp = rsub.add_parser("tag", help="point a tag at a grammar")
    rp.add_argument("ref", help="hash, unique prefix, or existing tag")
    rp.add_argument("name")
    rp = rsub.add_parser("show", help="print a grammar's metadata")
    rp.add_argument("ref")
    rsub.add_parser("list", help="list stored grammars")
    rp = rsub.add_parser(
        "verify", help="integrity scan: re-hash objects, check tags")
    rp.add_argument("--repair", action="store_true",
                    help="quarantine corrupt objects, rebuild missing "
                         "metadata, drop dangling tags")
    rsub.add_parser("gc", help="sweep temp debris and orphaned metadata")
    p.set_defaults(fn=_cmd_registry)

    from .service.protocol import DEFAULT_PORT

    p = sub.add_parser("serve", help="run the compression service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_PORT)
    p.add_argument("-d", "--registry", default=".repro-registry")
    p.add_argument("--workers", dest="serve_workers", type=int, default=0,
                   metavar="N",
                   help="run a multi-process fleet: a dispatcher with N "
                        "worker processes and grammar-affinity routing "
                        "(default 0 = single in-process server)")
    p.add_argument("--max-inflight", type=int, default=4,
                   help="concurrent executing batches (default 4)")
    p.add_argument("--high-water", type=int, default=64,
                   help="reject work past this backlog (default 64)")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-request timeout, seconds (default 30)")
    p.add_argument("--batch-window", type=float, default=0.002,
                   help="micro-batch coalescing window, seconds")
    p.add_argument("--breaker-threshold", type=int, default=3,
                   help="compiled-engine failures per grammar before "
                        "degrading to the reference engine (default 3)")
    p.add_argument("--breaker-cooldown", type=float, default=30.0,
                   help="seconds before an open breaker allows a probe "
                        "(default 30)")
    p.add_argument("--native-isolation",
                   choices=("auto", "sandbox", "inproc"), default="auto",
                   help="where native-engine runs execute: 'sandbox' "
                        "(a supervised helper process; crashes surface "
                        "as structured errors), 'inproc' (in the server "
                        "process, guarded by an intent journal), or "
                        "'auto' (default: sandbox)")
    p.add_argument("--exec-budget", type=int, default=0, metavar="N",
                   help="max rule dispatches per run_compressed request "
                        "(default 0 = unlimited); exceeding it traps "
                        "with a budget_exceeded error on every engine")
    p.add_argument("--native-watchdog", type=float, default=10.0,
                   metavar="SECONDS",
                   help="wall-clock limit on a sandboxed native run "
                        "before the helper is killed and the request "
                        "quarantined (default 10)")
    p.add_argument("--no-integrity-scan", action="store_true",
                   help="skip the registry verify+gc pass at startup")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("client", help="talk to a running service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_PORT)
    p.add_argument("--timeout", type=float, default=60.0)
    p.add_argument("--retries", type=int, default=0,
                   help="retry retryable failures up to N times with "
                        "exponential backoff (default 0: single shot)")
    p.add_argument("--deadline", type=float, default=None,
                   help="total per-call budget in seconds, retries "
                        "included (propagated to the server)")
    csub = p.add_subparsers(dest="client_command", required=True)
    csub.add_parser("health", help="server liveness and backlog")
    csub.add_parser("stats", help="traffic counters and histograms")
    cp = csub.add_parser("put", help="upload a .rgr (prints its hash)")
    cp.add_argument("grammar")
    cp.add_argument("-t", "--tag", action="append", default=[])
    csub.add_parser("list", help="list the server's grammars")
    cp = csub.add_parser("compress", help="compress a .rbc remotely")
    cp.add_argument("module")
    cp.add_argument("-g", "--grammar", required=True,
                    help="registry reference: hash, prefix, or tag")
    cp.add_argument("-o", "--output", required=True)
    cp.add_argument("--format", choices=("rcx1", "rcx2"), default="rcx1",
                    help="container format (rcx2 = entropy-coded)")
    cp = csub.add_parser("decompress", help="decompress a .rcx remotely")
    cp.add_argument("module")
    cp.add_argument("-o", "--output", required=True)
    cp = csub.add_parser("run", help="execute a .rcx remotely")
    cp.add_argument("module")
    cp.add_argument("args", nargs="*", type=int)
    cp.add_argument("--stdin", action="store_true",
                    help="forward stdin to the program's getchar()")
    p.set_defaults(fn=_cmd_client)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except CliError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout was a pipe whose reader quit (e.g. `| head`): the Unix
        # convention is a silent 128+SIGPIPE.  Point stdout at devnull so
        # the interpreter's exit flush cannot traceback either.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
