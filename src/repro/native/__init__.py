"""Native (x86) code-size model for the Table-2 comparison."""

from .x86 import NativeSize, module_native_size, procedure_native_size

__all__ = ["NativeSize", "module_native_size", "procedure_native_size"]
