"""Native code-size model: the "lcc-compiled x86 executable" row of the
paper's Table 2 (Section 6).

The paper compares the bytecoded executables against a conventional x86
binary of the same program.  We cannot run lcc's x86 backend, so this
module is the documented substitute (DESIGN.md): a straightforward x86-32
instruction selector over the same bytecode, in the style of a simple
one-pass compiler — evaluation-stack slots live in registers (six of them,
then real pushes), floats use the x87 stack, comparisons fuse with a
following ``BrTrue``.  Every emitted instruction is counted with its real
IA-32 encoding length, so the total is a faithful size estimate of
non-optimizing compiler output, which is what lcc produces.

Only *sizes* come out of this model; it never executes anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bytecode.instructions import iter_decode
from ..bytecode.module import Module, Procedure

__all__ = ["NativeSize", "procedure_native_size", "module_native_size"]

_CMP_GENERICS = {"EQ", "NE", "GE", "GT", "LE", "LT"}

# Registers available for evaluation-stack slots before spilling.
_NUM_REGS = 6

#: crt0 + program entry glue in the conventional executable
STARTUP_BYTES = 96


def _disp_len(offset: int) -> int:
    """Extra bytes for a [reg+disp] memory operand."""
    return 1 if -128 <= offset <= 127 else 4


@dataclass
class NativeSize:
    """Byte totals for one module's conventional compilation."""

    code: int
    data: int
    bss: int

    @property
    def total(self) -> int:
        return self.code + self.data + self.bss


_LOAD_FUSED_FRAME = {"U": 2, "C": 3, "S": 4, "F": 2, "D": 2}
_LOAD_FUSED_ABS = {"U": 5, "C": 6, "S": 7, "F": 6, "D": 6}


def _fused_cost(first, second) -> int:
    """Byte cost of a fusible instruction pair, or -1.

    A real selector tiles trees: an address computation feeding a load
    becomes one mov with a memory operand, and a literal feeding integer
    arithmetic becomes an immediate operand.  Charging the pair as one
    instruction keeps the model honest about compiler output density.
    """
    g1, g2 = first.op.generic, second.op.generic
    s2 = second.op.suffix
    if g2 == "INDIR":
        if g1 in ("ADDRL", "ADDRF"):
            disp = first.literal() + (4 if g1 == "ADDRL" else 8)
            return _LOAD_FUSED_FRAME[s2] + _disp_len(disp)
        if g1 == "ADDRG":
            return _LOAD_FUSED_ABS[s2]
    if g1 == "LIT":
        imm = 1 if first.literal() <= 127 else 4
        if g2 in ("ADD", "SUB", "BAND", "BOR", "BXOR") and s2 in ("U", "I"):
            return 2 + imm               # op r, imm
        if g2 == "MUL" and s2 in ("U", "I"):
            return 2 + imm               # imul r, r, imm
        if g2 in ("LSH", "RSH"):
            return 3                     # shift r, imm8
    return -1


def procedure_native_size(proc: Procedure) -> int:
    """Estimated x86 code bytes for one procedure."""
    size = 0
    # prologue: push ebp; mov ebp,esp; sub esp, imm
    size += 1 + 2 + (3 if proc.framesize <= 127 else 6)
    depth = 0           # virtual evaluation-stack depth
    prev_was_cmp = False

    instructions = [ins for _, ins in iter_decode(proc.code)]
    skip_next = False
    index = -1
    for ins in instructions:
        index += 1
        g, s = ins.op.generic, ins.op.suffix
        klass = ins.op.klass
        pops = {"v0": 0, "v1": 1, "v2": 2,
                "x0": 0, "x1": 1, "x2": 2, "pseudo": 0}[klass]
        pushes = 1 if klass.startswith("v") else 0
        if skip_next:
            # second half of a fused pair: stack effect only
            skip_next = False
            depth += pushes - pops
            prev_was_cmp = False
            continue
        spill = 1 if depth > _NUM_REGS else 0  # push/pop around the op
        cost = 0
        is_cmp = False
        if index + 1 < len(instructions):
            fused = _fused_cost(ins, instructions[index + 1])
            if fused >= 0:
                if prev_was_cmp:
                    size += 6   # unfused comparison materializes its flag
                prev_was_cmp = False
                size += fused + spill
                depth += pushes - pops
                skip_next = True
                continue

        if g == "LIT":
            cost = 5                     # mov r, imm32
        elif g == "ADDRL":
            cost = 2 + _disp_len(-(ins.literal() + 4))   # lea r,[ebp-d]
        elif g == "ADDRF":
            cost = 2 + _disp_len(ins.literal() + 8)      # lea r,[ebp+d]
        elif g == "ADDRG":
            cost = 5                     # mov r, imm32 (relocated)
        elif g == "INDIR":
            cost = {"C": 3, "S": 4, "U": 2, "F": 2, "D": 2}[s]
        elif g == "ASGN":
            cost = {"C": 2, "S": 3, "U": 2, "F": 2, "D": 2, "B": 12}[s]
        elif g in ("ADD", "SUB") and s in ("U", "I"):
            cost = 2                     # op r1, r2
        elif g in ("BAND", "BOR", "BXOR"):
            cost = 2
        elif g == "MUL" and s in ("U", "I"):
            cost = 3                     # imul r1, r2
        elif g in ("DIV", "MOD") and s in ("U", "I"):
            cost = 6                     # xchg/cdq/idiv shuffle
        elif g in ("LSH", "RSH"):
            cost = 4                     # mov cl + shift
        elif g in ("ADD", "SUB", "MUL", "DIV") and s in ("F", "D"):
            cost = 2                     # x87 faddp etc.
        elif g in _CMP_GENERICS:
            if s in ("F", "D"):
                cost = 6                 # fcompp + fnstsw + sahf
            else:
                cost = 2                 # cmp r1, r2
            is_cmp = True
        elif g == "NEG":
            cost = 2
        elif g == "BCOM":
            cost = 2
        elif g.startswith("CV"):
            cost = {"CVI1I4": 3, "CVI2I4": 3, "CVU1U4": 3, "CVU2U4": 4,
                    "CVIF": 5, "CVID": 5, "CVFI": 8, "CVDI": 8,
                    "CVFD": 4, "CVDF": 4}.get(ins.op.name, 4)
        elif g == "ARG":
            cost = {"U": 1, "F": 6, "D": 9, "B": 12}[s]   # push r
        elif g == "CALL":
            cost = 2 + 3                 # call r; add esp, n
        elif g == "LocalCALL":
            cost = 5 + 3                 # call rel32; add esp, n
        elif g == "RET":
            cost = 2 + 2                 # mov eax, r; leave; ret
        elif g == "POP":
            cost = 0                     # discard a register
        elif ins.op.name == "JUMPV":
            cost = 5                     # jmp rel32
        elif ins.op.name == "BrTrue":
            if prev_was_cmp:
                cost = 6                 # fused jcc rel32
            else:
                cost = 2 + 6             # test r,r; jnz rel32
        elif ins.op.name == "LABELV":
            cost = 0
        else:  # pragma: no cover - exhaustive over the ISA
            raise NotImplementedError(ins.op.name)

        # Comparisons that did NOT fuse with a branch must materialize the
        # flag: setcc al + movzx.
        if prev_was_cmp and ins.op.name != "BrTrue":
            size += 6
        prev_was_cmp = is_cmp

        size += cost + spill
        depth += pushes - pops
    if prev_was_cmp:
        size += 6
    return size


def module_native_size(module: Module) -> NativeSize:
    """Whole-module conventional sizes: code, data, bss.

    The conventional executable needs no interpreter, no label tables
    (branch targets become inline rel32 offsets, already counted in the
    jump encodings), no descriptors, no trampolines, and no global table
    (addresses are relocated inline, counted in the mov encodings).
    """
    code = STARTUP_BYTES + sum(
        procedure_native_size(p) for p in module.procedures
    )
    return NativeSize(code=code, data=len(module.data),
                      bss=module.bss_size)
