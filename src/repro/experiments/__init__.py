"""Experiment harness: one helper per paper table/figure (see DESIGN.md)."""

from .harness import (
    INPUT_ORDER,
    PAPER_INTERP_SIZES,
    PAPER_TABLE1,
    PAPER_TABLE2,
    TrainerCompareRow,
    ablation_cap_rows,
    ablation_grammar_rows,
    baseline_rows,
    compressed_code_bytes,
    corpus,
    gzip_rows,
    interpreter_size_row,
    overhead_rows,
    table1_rows,
    table2_rows,
    trained,
    trainer_compare_rows,
    training_speed_rows,
    training_stats,
)
from .report import pct, render_table

__all__ = [
    "INPUT_ORDER", "PAPER_INTERP_SIZES", "PAPER_TABLE1", "PAPER_TABLE2",
    "TrainerCompareRow",
    "ablation_cap_rows", "ablation_grammar_rows", "baseline_rows",
    "compressed_code_bytes", "corpus", "gzip_rows",
    "interpreter_size_row", "overhead_rows", "table1_rows", "table2_rows",
    "trained", "trainer_compare_rows", "training_speed_rows",
    "training_stats",
    "pct", "render_table",
]
