"""Shared machinery for the evaluation benchmarks (paper Section 6).

Everything here is deterministic and cached per process: the corpus
compiles once, each distinct training configuration trains once, and the
benchmarks (one per table/figure, see DESIGN.md's experiment index) pull
rows out of these helpers and print them in the paper's layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..baselines.gzipref import gzip_size, gzip_size_per_block, split_blocks
from ..baselines.huffman import compressed_size as huffman_size
from ..baselines.superop import train_superoperators
from ..baselines.tunstall import build_code as build_tunstall
from ..baselines.tunstall import compressed_size_blocks
from ..bytecode.module import Module
from ..coding.model import attach_counts
from ..compress.compressor import Compressor
from ..corpus import GCCLIKE_SCALE, compiled_corpus
from ..grammar.cfg import Grammar
from ..grammar.initial import height_grammar, initial_grammar, typed_grammar
from ..grammar.serialize import grammar_bytes
from ..interp.sizes import InterpreterSizes, measure_sizes
from ..native.x86 import module_native_size
from ..parsing.stackparser import build_forest
from ..training.expander import (
    TrainingReport,
    TrainingStats,
    expand_grammar,
)

__all__ = [
    "INPUT_ORDER", "corpus", "trained", "compressed_code_bytes",
    "table1_rows", "table2_rows", "interpreter_size_row",
    "gzip_rows", "baseline_rows", "overhead_rows",
    "ablation_cap_rows", "ablation_grammar_rows",
    "training_stats", "training_speed_rows",
    "TrainerCompareRow", "trainer_compare_rows",
    "PAPER_TABLE1", "PAPER_TABLE2", "PAPER_INTERP_SIZES",
]

#: the paper's table order
INPUT_ORDER = ("gcc", "lcc", "gzip", "8q")

#: Section-6 reference numbers (original bytes; ratio trained-on-gcc,
#: trained-on-lcc) for EXPERIMENTS.md comparisons.
PAPER_TABLE1 = {
    "gcc": (1_423_370, 0.41, 0.33),
    "lcc": (199_497, 0.29, 0.38),
    "gzip": (47_066, 0.42, 0.41),
    "8q": (436, 0.35, 0.32),
}
PAPER_TABLE2 = {
    "uncompressed": 292_039,
    "compressed": 161_386,
    "native": 240_522,
}
PAPER_INTERP_SIZES = {"interp1": 7_855, "interp2": 18_962,
                      "grammar": 10_525}


def corpus(scale: int = GCCLIKE_SCALE) -> Dict[str, Module]:
    return compiled_corpus(scale)


@lru_cache(maxsize=32)
def trained(train_on: Tuple[str, ...], *, scale: int = GCCLIKE_SCALE,
            cap: int = 256, typed: bool = False, min_count: int = 2,
            remove_subsumed: bool = True,
            superop: Optional[bool] = None,
            ) -> Tuple[Grammar, TrainingReport]:
    """Train one grammar configuration (cached)."""
    modules = [corpus(scale)[name] for name in train_on]
    if superop:
        return train_superoperators(modules, max_rules_per_nt=cap,
                                    min_count=min_count)
    if typed == "height":
        grammar = height_grammar(max_rules_per_nt=cap)
    elif typed:
        grammar = typed_grammar(cap)
    else:
        grammar = initial_grammar(cap)
    forest = build_forest(grammar, modules)
    report = expand_grammar(grammar, forest, min_count=min_count,
                            remove_subsumed=remove_subsumed)
    attach_counts(grammar, forest, modules)
    return grammar, report


@lru_cache(maxsize=128)
def compressed_code_bytes(input_name: str, train_on: Tuple[str, ...],
                          *, scale: int = GCCLIKE_SCALE, cap: int = 256,
                          typed: bool = False,
                          superop: Optional[bool] = None) -> int:
    grammar, _ = trained(train_on, scale=scale, cap=cap, typed=typed,
                         superop=superop)
    module = corpus(scale)[input_name]
    return Compressor(grammar).compress_module(module).code_bytes


# -- E1: the compression table ------------------------------------------------

@dataclass
class Table1Row:
    input: str
    original: int
    gcc_bytes: int
    gcc_ratio: float
    lcc_bytes: int
    lcc_ratio: float


def table1_rows(scale: int = GCCLIKE_SCALE) -> List[Table1Row]:
    rows = []
    for name in INPUT_ORDER:
        original = corpus(scale)[name].code_bytes
        on_gcc = compressed_code_bytes(name, ("gcc",), scale=scale)
        on_lcc = compressed_code_bytes(name, ("lcc",), scale=scale)
        rows.append(Table1Row(name, original, on_gcc, on_gcc / original,
                              on_lcc, on_lcc / original))
    return rows


# -- E2: interpreter sizes -----------------------------------------------------

def interpreter_size_row(scale: int = GCCLIKE_SCALE) -> InterpreterSizes:
    grammar, _ = trained(("lcc",), scale=scale)
    return measure_sizes(grammar)


# -- E3: whole-executable comparison -------------------------------------------

@dataclass
class Table2Row:
    representation: str
    bytes: int
    breakdown: Dict[str, int]


def table2_rows(program: str = "lcc",
                scale: int = GCCLIKE_SCALE) -> List[Table2Row]:
    module = corpus(scale)[program]
    grammar, _ = trained((program,), scale=scale)
    sizes = measure_sizes(grammar)
    cmod = Compressor(grammar).compress_module(module)

    unc = dict(module.size_breakdown())
    unc["interpreter"] = sizes.interp1
    comp = dict(cmod.size_breakdown())
    comp["interpreter"] = sizes.interp2  # includes the grammar tables
    native = module_native_size(module)
    nat = {"code": native.code, "data": native.data, "bss": native.bss}

    return [
        Table2Row("uncompressed bytecode", sum(unc.values()), unc),
        Table2Row("compressed bytecode", sum(comp.values()), comp),
        Table2Row("native x86 executable", native.total, nat),
    ]


# -- E4: gzip calibration -------------------------------------------------------

@dataclass
class GzipRow:
    input: str
    original: int
    gzip_bytes: int
    gzip_ratio: float
    gzip_blocked: int
    ours_bytes: int
    ours_ratio: float


def gzip_rows(scale: int = GCCLIKE_SCALE) -> List[GzipRow]:
    rows = []
    for name in INPUT_ORDER:
        module = corpus(scale)[name]
        ours = compressed_code_bytes(name, ("gcc",), scale=scale)
        rows.append(GzipRow(
            name, module.code_bytes,
            gzip_size(module), gzip_size(module) / module.code_bytes,
            gzip_size_per_block(module),
            ours, ours / module.code_bytes,
        ))
    return rows


# -- A3: method comparison ------------------------------------------------------

@dataclass
class BaselineRow:
    input: str
    original: int
    grammar_m: int       # this paper's method
    superop: int         # Proebsting-style, with literals
    superop_nolit: int   # original 1995 restriction
    huffman: int
    tunstall: int
    gzip: int


def baseline_rows(scale: int = GCCLIKE_SCALE,
                  train_on: Tuple[str, ...] = ("gcc",)) -> List[BaselineRow]:
    rows = []
    tgrammar, _ = trained(train_on, scale=scale)
    so, _ = trained(train_on, scale=scale, superop=True)
    so_nolit, _ = _superop_nolit(train_on, scale)
    train_blocks = [
        b for name in train_on
        for p in corpus(scale)[name].procedures
        for b in split_blocks(p.code)
    ]
    tunstall = build_tunstall(train_blocks, 8)
    for name in INPUT_ORDER:
        module = corpus(scale)[name]
        blocks = [b for p in module.procedures
                  for b in split_blocks(p.code)]
        rows.append(BaselineRow(
            name, module.code_bytes,
            Compressor(tgrammar).compress_module(module).code_bytes,
            Compressor(so).compress_module(module).code_bytes,
            Compressor(so_nolit).compress_module(module).code_bytes,
            huffman_size(module.concatenated_code()),
            compressed_size_blocks(tunstall, blocks),
            gzip_size(module),
        ))
    return rows


@lru_cache(maxsize=4)
def _superop_nolit(train_on: Tuple[str, ...], scale: int):
    modules = [corpus(scale)[name] for name in train_on]
    return train_superoperators(modules, allow_literals=False)


# -- E5: overhead accounting -----------------------------------------------------

@dataclass
class OverheadRow:
    component: str
    bytes: int
    note: str


def overhead_rows(program: str = "lcc",
                  scale: int = GCCLIKE_SCALE) -> List[OverheadRow]:
    """Section 6's 'further compression' notes, measured."""
    module = corpus(scale)[program]
    grammar, _ = trained((program,), scale=scale)
    plain = grammar_bytes(grammar, compact=False)
    compact = grammar_bytes(grammar, compact=True)
    return [
        OverheadRow("label tables", module.label_table_bytes,
                    "out-of-line branch offsets (2 B/entry)"),
        OverheadRow("global table", module.global_table_bytes,
                    "out-of-line global addresses (4 B/entry)"),
        OverheadRow("trampolines", module.trampoline_bytes,
                    "C-callable stubs for address-taken procedures"),
        OverheadRow("descriptors", module.descriptor_bytes,
                    "framesize + code/label pointers per procedure"),
        OverheadRow("grammar (plain)", plain,
                    "current sub-optimal storage"),
        OverheadRow("grammar (recoded)", compact,
                    f"straightforward recoding saves {plain - compact} B"),
    ]


# -- S2: training speed (incremental index vs naive recount oracle) ------------

@dataclass
class TrainingSpeedRow:
    corpus_bytes: int
    forest_nodes: int
    iterations: int
    naive_seconds: float
    incremental_seconds: float
    speedup: float
    heap_peak: int
    heap_hit_rate: float
    identical: bool  # naive and incremental grammars byte-identical


def training_stats(train_on: Tuple[str, ...], *,
                   scale: int = GCCLIKE_SCALE,
                   parser_workers: Optional[int] = None,
                   index_mode: str = "incremental",
                   ) -> Tuple[Grammar, TrainingStats]:
    """Train one configuration with full instrumentation (uncached: stats
    are timings, and timings should be fresh)."""
    from ..pipeline import train_grammar

    modules = [corpus(scale)[name] for name in train_on]
    return train_grammar(modules, parser_workers=parser_workers,
                         index_mode=index_mode, collect_stats=True)


def training_speed_rows(sizes: Tuple[int, ...] = (18, 54, 120),
                        seed: int = 77) -> List[TrainingSpeedRow]:
    """Time naive-recount vs incremental training on synthetic corpora of
    increasing size, verifying the two grammars agree rule for rule."""
    import time

    from ..corpus.synth import generate_program
    from ..minic import compile_source

    rows = []
    for count in sizes:
        module = compile_source(generate_program(count, seed=seed))

        results = {}
        for mode in ("naive", "incremental"):
            grammar = initial_grammar()
            forest = build_forest(grammar, [module])
            nodes = sum(1 for _ in forest.nodes())
            start = time.perf_counter()
            report = expand_grammar(grammar, forest, index_mode=mode,
                                    collect_stats=True)
            seconds = time.perf_counter() - start
            signature = [(r.lhs, r.rhs, r.origin) for r in grammar]
            results[mode] = (seconds, report, signature, nodes)

        naive_s, _, naive_sig, nodes = results["naive"]
        inc_s, inc_report, inc_sig, _ = results["incremental"]
        rows.append(TrainingSpeedRow(
            corpus_bytes=module.code_bytes,
            forest_nodes=nodes,
            iterations=inc_report.iterations,
            naive_seconds=naive_s,
            incremental_seconds=inc_s,
            speedup=naive_s / inc_s if inc_s else float("inf"),
            heap_peak=inc_report.heap_peak,
            heap_hit_rate=inc_report.heap_hit_rate,
            identical=naive_sig == inc_sig,
        ))
    return rows


# -- S4: trainer-strategy comparison (greedy vs repair vs hybrid) -------------

@dataclass
class TrainerCompareRow:
    strategy: str
    rules: int
    seed_rules: int
    grammar_bytes: int
    train_seconds: float
    seed_seconds: float
    refine_seconds: float
    ratios: Dict[str, float]  # input name -> compressed/original


def trainer_compare_rows(train_on: Tuple[str, ...] = ("gcc",), *,
                         scale: int = GCCLIKE_SCALE,
                         strategies: Tuple[str, ...] = (
                             "greedy", "repair", "hybrid"),
                         ) -> List[TrainerCompareRow]:
    """Train each strategy on the same corpus and compress every input.

    Uncached on purpose: the wall-time columns gate the hybrid
    strategy's <= 1.5x-of-greedy budget, and timings should be fresh.
    """
    from ..pipeline import train_grammar

    modules = [corpus(scale)[name] for name in train_on]
    rows = []
    for strategy in strategies:
        grammar, report = train_grammar(modules, strategy=strategy)
        ratios = {}
        for name in INPUT_ORDER:
            module = corpus(scale)[name]
            size = Compressor(grammar).compress_module(module).code_bytes
            ratios[name] = size / module.code_bytes
        rows.append(TrainerCompareRow(
            strategy=strategy,
            rules=grammar.total_rules(),
            seed_rules=report.seed_rules,
            grammar_bytes=grammar_bytes(grammar, compact=True),
            train_seconds=report.wall_seconds,
            seed_seconds=report.seed_seconds,
            refine_seconds=report.refine_seconds,
            ratios=ratios,
        ))
    return rows


# -- A1/A2: ablations --------------------------------------------------------------

@dataclass
class AblationRow:
    label: str
    compressed: int
    ratio: float
    rules: int
    grammar_bytes: int


def ablation_cap_rows(program: str = "lcc", scale: int = GCCLIKE_SCALE,
                      caps: Tuple[int, ...] = (32, 64, 128, 256),
                      ) -> List[AblationRow]:
    module = corpus(scale)[program]
    rows = []
    for cap in caps:
        grammar, _ = trained((program,), scale=scale, cap=cap)
        size = Compressor(grammar).compress_module(module).code_bytes
        rows.append(AblationRow(
            f"cap={cap}", size, size / module.code_bytes,
            grammar.total_rules(), grammar_bytes(grammar, compact=True),
        ))
    return rows


def ablation_grammar_rows(program: str = "lcc",
                          scale: int = GCCLIKE_SCALE) -> List[AblationRow]:
    """Stack-height grammar vs the type-tracking variant (Section 6 note),
    plus subsumption removal on/off."""
    module = corpus(scale)[program]
    rows = []
    for label, kwargs in (
        ("stack-height", {}),
        ("type-tracking", {"typed": True}),
        ("depth-tracking", {"typed": "height"}),
        ("no-subsumption-removal", {"remove_subsumed": False}),
        ("min_count=4", {"min_count": 4}),
    ):
        grammar, _ = trained((program,), scale=scale, **kwargs)
        size = Compressor(grammar).compress_module(module).code_bytes
        rows.append(AblationRow(
            label, size, size / module.code_bytes,
            grammar.total_rules(), grammar_bytes(grammar, compact=True),
        ))
    return rows
