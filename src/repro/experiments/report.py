"""Paper-style table rendering for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "pct"]


def pct(ratio: float) -> str:
    return f"{ratio * 100:.0f}%"


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table, right-aligned numeric columns."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.rjust(w) if i else cell.ljust(w)
            for i, (cell, w) in enumerate(zip(cells, widths))
        )

    lines = [title, fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)
