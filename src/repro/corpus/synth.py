"""Deterministic structured program generator.

The paper trains on lcc and gcc — megabytes of real compiler output.  Our
mini-C corpus is hand-written, and to reach a realistic *scale* for the
large training input (``gcclike``) we extend it with generated functions.
The generator is deterministic (fixed-seed RNG) and produces plausible
compiler-output shapes: loops over scalars, if/else ladders, accumulators,
calls into previously generated functions — not random token soup, so
operator and literal statistics stay realistic for training.
"""

from __future__ import annotations

import random
from typing import Dict, List

__all__ = ["generate_functions", "generate_program"]


def _expr(rng: random.Random, vars_: List[str], depth: int) -> str:
    if depth <= 0 or rng.random() < 0.35:
        if rng.random() < 0.55 and vars_:
            return rng.choice(vars_)
        return str(rng.randrange(0, 64))
    op = rng.choice(["+", "-", "*", "&", "|", "^", "<<", ">>"])
    left = _expr(rng, vars_, depth - 1)
    right = _expr(rng, vars_, depth - 1)
    if op in ("<<", ">>"):
        right = str(rng.randrange(1, 8))
    return f"({left} {op} {right})"


def _condition(rng: random.Random, vars_: List[str]) -> str:
    op = rng.choice(["<", ">", "<=", ">=", "==", "!="])
    return f"({rng.choice(vars_)} {op} {_expr(rng, vars_, 1)})"


def _gen_function(rng: random.Random, name: str, arity: int,
                  callees: List[str], arities: Dict[str, int]) -> str:
    params = [f"p{i}" for i in range(arity)]
    locals_ = [f"v{i}" for i in range(rng.randrange(2, 5))]
    vars_ = params + locals_
    lines = [f"int {name}({', '.join('int ' + p for p in params)}) {{"]
    for v in locals_:
        lines.append(f"    int {v};")
    for v in locals_:
        lines.append(f"    {v} = {_expr(rng, params, 1)};")
    for _ in range(rng.randrange(3, 8)):
        shape = rng.random()
        v = rng.choice(locals_)
        if shape < 0.35:
            lines.append(f"    {v} = {_expr(rng, vars_, 2)};")
        elif shape < 0.55:
            bound = rng.randrange(2, 12)
            lines.append(
                f"    for ({params[0]} = 0; {params[0]} < {bound}; "
                f"{params[0]}++) {{ {v} += {_expr(rng, vars_, 1)}; }}"
            )
        elif shape < 0.75:
            lines.append(f"    if {_condition(rng, vars_)} "
                         f"{v} = {_expr(rng, vars_, 1)}; "
                         f"else {v} = {_expr(rng, vars_, 1)};")
        elif shape < 0.9 and callees:
            callee = rng.choice(callees)
            args = ", ".join(
                _expr(rng, vars_, 1) for _ in range(arities[callee])
            )
            lines.append(f"    {v} ^= {callee}({args});")
        else:
            denom = f"(({_expr(rng, vars_, 1)} & 7) + 1)"
            lines.append(f"    {v} = {v} / {denom} + {v} % {denom};")
    lines.append(f"    return {' ^ '.join(locals_)};")
    lines.append("}")
    return "\n".join(lines)


def generate_functions(count: int, seed: int = 7,
                       prefix: str = "gen") -> List[str]:
    """Generate ``count`` deterministic functions named ``<prefix>0..``."""
    rng = random.Random(seed)
    sources: List[str] = []
    names: List[str] = []
    arities: Dict[str, int] = {}
    for i in range(count):
        name = f"{prefix}{i}"
        arity = rng.randrange(1, 4)
        arities[name] = arity
        sources.append(
            _gen_function(random.Random(seed * 1_000_003 + i), name,
                          arity, names[-8:], arities)
        )
        names.append(name)
    return sources


def generate_program(count: int = 60, seed: int = 7) -> str:
    """A complete runnable program of generated functions.

    ``main`` calls a sample of them and returns a checksum, so the program
    is executable (and its behaviour must survive compression)."""
    functions = generate_functions(count, seed)
    # Recover arities the same way generate_functions assigned them.
    rng_a = random.Random(seed)
    arities = {f"gen{i}": rng_a.randrange(1, 4) for i in range(count)}
    rng = random.Random(seed ^ 0xC0FFEE)
    calls = []
    for i in rng.sample(range(count), min(10, count)):
        name = f"gen{i}"
        args = ", ".join(str(rng.randrange(1, 30))
                         for _ in range(arities[name]))
        calls.append(f"    acc ^= {name}({args});")
    body = "\n".join(calls)
    return "\n\n".join(functions) + f"""

int main(void) {{
    int acc;
    acc = 0;
{body}
    putint(acc);
    putchar('\\n');
    return acc & 127;
}}
"""
