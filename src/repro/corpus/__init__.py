"""The benchmark corpus and the program generator."""

from functools import lru_cache
from typing import Dict

from ..bytecode.module import Module
from ..minic.driver import compile_source
from .programs import EIGHTQ, GZ, LCCLIKE, corpus_sources, gcclike
from .synth import generate_functions, generate_program

__all__ = [
    "EIGHTQ", "GZ", "LCCLIKE", "gcclike", "corpus_sources",
    "generate_functions", "generate_program",
    "compiled_corpus", "GCCLIKE_SCALE",
]

#: generated-function count for the large (gcc-like) training input;
#: benchmarks and tests share this so compiled modules can be cached.
GCCLIKE_SCALE = 220


@lru_cache(maxsize=4)
def compiled_corpus(gcclike_scale: int = GCCLIKE_SCALE) -> Dict[str, Module]:
    """Compile the whole corpus once per process (it is deterministic)."""
    return {
        name: compile_source(src)
        for name, src in corpus_sources(gcclike_scale)
    }
