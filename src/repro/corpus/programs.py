"""The benchmark corpus (stand-ins for the paper's gcc, lcc, gzip, 8q).

Four programs, mirroring the paper's evaluation inputs (Section 6):

* ``EIGHTQ``   - the classic eight-queens search (the paper's ``8q``,
  tiny: 436 bytes of bytecode there).
* ``GZ``       - an LZSS compressor/decompressor with a self-check (the
  paper's ``gzip`` stand-in).
* ``LCCLIKE``  - a small compiler: lexer, recursive-descent parser, code
  generator, and a stack-machine evaluator for a tiny expression language,
  run over several embedded programs (the paper's ``lcc`` stand-in —
  fittingly, a compiler compiled to the bytecode).
* ``gcclike()``- a much larger program: the lcclike passes plus string,
  sorting, hashing and matrix kernels, plus deterministic generated
  functions for scale (the paper's ``gcc`` stand-in).

Every program runs to completion on the interpreter and checks its own
output, so corpus programs double as end-to-end correctness tests for
compression (identical behaviour compressed vs uncompressed).
"""

from __future__ import annotations

from .synth import generate_functions

__all__ = ["EIGHTQ", "GZ", "LCCLIKE", "gcclike", "corpus_sources"]


EIGHTQ = r"""
/* Eight queens: count and print all 92 solutions. */
int rows[8], up[15], down[15], board[8];
int solutions;

void record(void) {
    int y;
    solutions++;
    if (solutions == 1) {       /* print the first board found */
        for (y = 0; y < 8; y++) {
            int x;
            for (x = 0; x < 8; x++)
                putchar(board[y] == x ? 'Q' : '.');
            putchar('\n');
        }
    }
}

void place(int c) {
    int r;
    for (r = 0; r < 8; r++) {
        if (rows[r] && up[r - c + 7] && down[r + c]) {
            rows[r] = 0;
            up[r - c + 7] = 0;
            down[r + c] = 0;
            board[c] = r;
            if (c == 7)
                record();
            else
                place(c + 1);
            rows[r] = 1;
            up[r - c + 7] = 1;
            down[r + c] = 1;
        }
    }
}

int main(void) {
    int i;
    for (i = 0; i < 8; i++) rows[i] = 1;
    for (i = 0; i < 15; i++) { up[i] = 1; down[i] = 1; }
    solutions = 0;
    place(0);
    putint(solutions);
    putchar('\n');
    return solutions == 92 ? 0 : 1;
}
"""


GZ = r"""
/* LZSS compression with a greedy longest-match search, plus the matching
   decompressor and a self-check: generate data, compress, decompress,
   compare.  Token format: a flag byte introduces 8 items; bit i set means
   a (offset,length) pair follows, clear means a literal byte. */

int WINDOW;      /* 255: offset fits one byte  */
int MINLEN;      /* 3                          */
int MAXLEN;      /* 18                         */
int INSIZE;      /* bytes of test data         */

unsigned char input[4096];
unsigned char packed[8192];
unsigned char unpacked[4096];

int gen_data(int n) {
    /* deterministic, moderately repetitive test data */
    int i, x;
    x = 12345;
    for (i = 0; i < n; i++) {
        x = x * 1103515245 + 12345;
        if ((x >> 16 & 7) < 5 && i > 64) {
            /* copy an earlier run: creates matches for LZSS */
            int src, len, k;
            src = (x >> 8 & 63) + 1;
            len = (x >> 20 & 15) + 4;
            for (k = 0; k < len && i < n; k++) {
                input[i] = input[i - src];
                i++;
            }
            i--;
        } else {
            input[i] = 'a' + (x >> 16 & 15);
        }
    }
    return n;
}

int match_length(int pos, int cand, int limit) {
    int n;
    n = 0;
    while (n < limit && input[cand + n] == input[pos + n])
        n++;
    return n;
}

int compress(int n) {
    int in, out, flagpos, flag, bit;
    in = 0; out = 0;
    flagpos = out++; flag = 0; bit = 0;
    while (in < n) {
        int best, bestoff, start, cand, limit;
        if (bit == 8) {
            packed[flagpos] = flag;
            flagpos = out++;
            flag = 0; bit = 0;
        }
        best = 0; bestoff = 0;
        limit = n - in;
        if (limit > MAXLEN) limit = MAXLEN;
        start = in - WINDOW;
        if (start < 0) start = 0;
        for (cand = start; cand < in; cand++) {
            int len;
            len = match_length(in, cand, limit);
            if (len > best) { best = len; bestoff = in - cand; }
        }
        if (best >= MINLEN) {
            flag |= 1 << bit;
            packed[out++] = bestoff;
            packed[out++] = best - MINLEN;
            in += best;
        } else {
            packed[out++] = input[in++];
        }
        bit++;
    }
    packed[flagpos] = flag;
    return out;
}

int decompress(int packed_size) {
    int in, out, flag, bit;
    in = 0; out = 0;
    flag = 0; bit = 8;
    while (in < packed_size) {
        if (bit == 8) {
            flag = packed[in++];
            bit = 0;
            if (in >= packed_size) break;
        }
        if (flag & (1 << bit)) {
            int off, len, k;
            off = packed[in++];
            len = packed[in++] + MINLEN;
            for (k = 0; k < len; k++) {
                unpacked[out] = unpacked[out - off];
                out++;
            }
        } else {
            unpacked[out++] = packed[in++];
        }
        bit++;
    }
    return out;
}

int main(void) {
    int n, c, u, i;
    WINDOW = 255; MINLEN = 3; MAXLEN = 18; INSIZE = 1500;
    n = gen_data(INSIZE);
    c = compress(n);
    u = decompress(c);
    putstr("in=");  putint(n);
    putstr(" packed="); putint(c);
    putstr(" out="); putint(u);
    putchar('\n');
    if (u != n) return 1;
    for (i = 0; i < n; i++)
        if (unpacked[i] != input[i]) return 2;
    putstr("roundtrip ok\n");
    return 0;
}
"""


LCCLIKE = r"""
/* A miniature compiler + virtual machine for an expression language:

       stmt  := NAME '=' expr ';'  |  '!' expr ';'     (print)
       expr  := term (('+'|'-') term)*
       term  := fact (('*'|'/'|'%') fact)*
       fact  := NUMBER | NAME | '(' expr ')' | '-' fact

   The front end tokenizes and parses; the back end emits stack code into
   a code array; the VM executes it.  Several programs are embedded and
   run; outputs are printed.  A compiler compiled to bytecode, like lcc. */

char src[512];
int srcpos;

int token;       /* 0 eof, 1 number, 2 name, else the character */
int tokval;

/* opcodes for the little VM */
int OP_PUSH, OP_LOAD, OP_STORE, OP_ADD, OP_SUB, OP_MUL, OP_DIV,
    OP_MOD, OP_NEG, OP_PRINT, OP_HALT;

int code[512];
int codelen;
int vars[26];

void emit(int op, int arg) {
    code[codelen++] = op;
    code[codelen++] = arg;
}

int isdigit_(int c) { return c >= '0' && c <= '9'; }
int isname_(int c) { return c >= 'a' && c <= 'z'; }

void next(void) {
    int c;
    c = src[srcpos];
    while (c == ' ' || c == '\n' || c == '\t')
        c = src[++srcpos];
    if (c == 0) { token = 0; return; }
    if (isdigit_(c)) {
        tokval = 0;
        while (isdigit_(src[srcpos])) {
            tokval = tokval * 10 + (src[srcpos] - '0');
            srcpos++;
        }
        token = 1;
        return;
    }
    if (isname_(c)) {
        tokval = c - 'a';
        srcpos++;
        token = 2;
        return;
    }
    token = c;
    srcpos++;
}

void expr(void);

void fact(void) {
    if (token == 1) {
        emit(OP_PUSH, tokval);
        next();
    } else if (token == 2) {
        emit(OP_LOAD, tokval);
        next();
    } else if (token == '(') {
        next();
        expr();
        if (token == ')') next();
    } else if (token == '-') {
        next();
        fact();
        emit(OP_NEG, 0);
    } else {
        /* error: skip */
        next();
    }
}

void term(void) {
    fact();
    while (token == '*' || token == '/' || token == '%') {
        int op;
        op = token;
        next();
        fact();
        if (op == '*') emit(OP_MUL, 0);
        else if (op == '/') emit(OP_DIV, 0);
        else emit(OP_MOD, 0);
    }
}

void expr(void) {
    term();
    while (token == '+' || token == '-') {
        int op;
        op = token;
        next();
        term();
        emit(op == '+' ? OP_ADD : OP_SUB, 0);
    }
}

void stmt(void) {
    if (token == 2) {
        int v;
        v = tokval;
        next();
        if (token == '=') next();
        expr();
        emit(OP_STORE, v);
    } else if (token == '!') {
        next();
        expr();
        emit(OP_PRINT, 0);
    }
    if (token == ';') next();
}

void compile_src(void) {
    srcpos = 0;
    codelen = 0;
    next();
    while (token != 0)
        stmt();
    emit(OP_HALT, 0);
}

int stack[64];

void execute(void) {
    int pc, sp;
    pc = 0; sp = 0;
    for (;;) {
        int op, arg;
        op = code[pc];
        arg = code[pc + 1];
        pc += 2;
        switch (op) {          /* dispatched as a decision tree, like the
                                  paper's own lcc configuration */
        case 1:  stack[sp++] = arg; break;            /* PUSH  */
        case 2:  stack[sp++] = vars[arg]; break;      /* LOAD  */
        case 3:  vars[arg] = stack[--sp]; break;      /* STORE */
        case 4:  sp--; stack[sp - 1] += stack[sp]; break;
        case 5:  sp--; stack[sp - 1] -= stack[sp]; break;
        case 6:  sp--; stack[sp - 1] *= stack[sp]; break;
        case 7:  sp--; stack[sp - 1] /= stack[sp]; break;
        case 8:  sp--; stack[sp - 1] %= stack[sp]; break;
        case 9:  stack[sp - 1] = -stack[sp - 1]; break;
        case 10:
            putint(stack[--sp]);
            putchar('\n');
            break;
        default:
            return;   /* HALT */
        }
    }
}

void load_src(char *text) {
    int i;
    i = 0;
    while (text[i]) { src[i] = text[i]; i++; }
    src[i] = 0;
}

void run_one(char *text) {
    load_src(text);
    compile_src();
    execute();
}

int main(void) {
    OP_PUSH = 1; OP_LOAD = 2; OP_STORE = 3; OP_ADD = 4; OP_SUB = 5;
    OP_MUL = 6; OP_DIV = 7; OP_MOD = 8; OP_NEG = 9; OP_PRINT = 10;
    OP_HALT = 11;

    run_one("a = 2 + 3 * 4; ! a;");
    run_one("x = 10; y = x * x - 1; ! y; ! y % 7;");
    run_one("n = 100; s = n * (n + 1) / 2; ! s;");
    run_one("p = (1 + 2) * (3 + 4); q = -p; ! q;");
    run_one("! 2 * 3 + 4 * 5 - 6 / 2;");
    return 0;
}
"""


def gcclike(scale: int = 220, seed: int = 11) -> str:
    """The large training program: real kernels plus generated functions.

    ``scale`` controls the number of generated functions (roughly 200
    bytecode bytes each)."""
    kernels = r"""
/* -- string kernels ------------------------------------------------- */
int str_len(char *s) {
    int n;
    n = 0;
    while (s[n]) n++;
    return n;
}

int str_cmp(char *a, char *b) {
    int i;
    i = 0;
    while (a[i] && a[i] == b[i]) i++;
    return a[i] - b[i];
}

void str_rev(char *s) {
    int i, j;
    i = 0;
    j = str_len(s) - 1;
    while (i < j) {
        int t;
        t = s[i]; s[i] = s[j]; s[j] = t;
        i++; j--;
    }
}

unsigned str_hash(char *s) {
    unsigned h;
    int i;
    h = 5381u;
    for (i = 0; s[i]; i++)
        h = h * 33u + s[i];
    return h;
}

/* -- sorting -------------------------------------------------------- */
int work[128];

void quicksort(int *a, int lo, int hi) {
    int i, j, pivot;
    if (lo >= hi) return;
    pivot = a[(lo + hi) / 2];
    i = lo; j = hi;
    while (i <= j) {
        while (a[i] < pivot) i++;
        while (a[j] > pivot) j--;
        if (i <= j) {
            int t;
            t = a[i]; a[i] = a[j]; a[j] = t;
            i++; j--;
        }
    }
    quicksort(a, lo, j);
    quicksort(a, i, hi);
}

void insertion_sort(int *a, int n) {
    int i;
    for (i = 1; i < n; i++) {
        int key, j;
        key = a[i];
        j = i - 1;
        while (j >= 0 && a[j] > key) {
            a[j + 1] = a[j];
            j--;
        }
        a[j + 1] = key;
    }
}

/* -- hashing -------------------------------------------------------- */
int ht_keys[97], ht_vals[97], ht_used[97];

void ht_clear(void) {
    int i;
    for (i = 0; i < 97; i++) ht_used[i] = 0;
}

void ht_put(int key, int val) {
    int h;
    h = (key % 97 + 97) % 97;
    while (ht_used[h] && ht_keys[h] != key)
        h = (h + 1) % 97;
    ht_used[h] = 1;
    ht_keys[h] = key;
    ht_vals[h] = val;
}

int ht_get(int key) {
    int h;
    h = (key % 97 + 97) % 97;
    while (ht_used[h]) {
        if (ht_keys[h] == key) return ht_vals[h];
        h = (h + 1) % 97;
    }
    return -1;
}

/* -- fixed-point matrix kernel --------------------------------------- */
int mat_a[16], mat_b[16], mat_c[16];

void mat_mul(void) {
    int i, j, k;
    for (i = 0; i < 4; i++)
        for (j = 0; j < 4; j++) {
            int s;
            s = 0;
            for (k = 0; k < 4; k++)
                s += mat_a[i * 4 + k] * mat_b[k * 4 + j];
            mat_c[i * 4 + j] = s;
        }
}

/* -- struct kernels: BST symbol table, free-list allocator ----------- */
struct sym {
    int key;
    int value;
    int left;          /* node-pool indices; -1 = nil */
    int right;
};

struct sym pool[128];
int pool_used;
int bst_root;

int bst_new(int key, int value) {
    int i;
    i = pool_used++;
    pool[i].key = key;
    pool[i].value = value;
    pool[i].left = -1;
    pool[i].right = -1;
    return i;
}

void bst_insert(int key, int value) {
    int i;
    if (bst_root < 0) { bst_root = bst_new(key, value); return; }
    i = bst_root;
    for (;;) {
        if (key == pool[i].key) { pool[i].value = value; return; }
        if (key < pool[i].key) {
            if (pool[i].left < 0) {
                pool[i].left = bst_new(key, value);
                return;
            }
            i = pool[i].left;
        } else {
            if (pool[i].right < 0) {
                pool[i].right = bst_new(key, value);
                return;
            }
            i = pool[i].right;
        }
    }
}

int bst_lookup(int key) {
    int i;
    i = bst_root;
    while (i >= 0) {
        if (key == pool[i].key) return pool[i].value;
        i = key < pool[i].key ? pool[i].left : pool[i].right;
    }
    return -1;
}

struct cell { int value; struct cell *next; };
struct cell cells[32];
struct cell *freelist;

void cells_init(void) {
    int i;
    freelist = &cells[0];
    for (i = 0; i < 31; i++) cells[i].next = &cells[i + 1];
    cells[31].next = (struct cell *)0;
}

struct cell *cell_alloc(int value) {
    struct cell *c;
    c = freelist;
    freelist = c->next;
    c->value = value;
    c->next = (struct cell *)0;
    return c;
}

int structs_selftest(void) {
    int i, fails;
    struct cell *head, *p;
    fails = 0;

    bst_root = -1;
    pool_used = 0;
    for (i = 0; i < 60; i++)
        bst_insert(i * 37 % 101, i);
    for (i = 0; i < 60; i++)
        if (bst_lookup(i * 37 % 101) != i) fails++;
    if (bst_lookup(9999) != -1) fails++;

    cells_init();
    head = (struct cell *)0;
    for (i = 0; i < 10; i++) {
        p = cell_alloc(i * i);
        p->next = head;
        head = p;
    }
    i = 0;
    for (p = head; p != (struct cell *)0; p = p->next)
        i += p->value;
    if (i != 285) fails++;
    return fails;
}

/* -- double-precision kernel ----------------------------------------- */
double poly_eval(double x, int n) {
    double acc;
    int i;
    acc = 0.0;
    for (i = 0; i < n; i++)
        acc = acc * x + (i + 1);
    return acc;
}

double newton_sqrt(double v) {
    double guess;
    int i;
    guess = v / 2.0 + 0.001;
    for (i = 0; i < 20; i++)
        guess = (guess + v / guess) / 2.0;
    return guess;
}

int kernels_selftest(void) {
    int i, fails;
    char buf[16];
    fails = 0;

    buf[0] = 'h'; buf[1] = 'e'; buf[2] = 'l'; buf[3] = 'l';
    buf[4] = 'o'; buf[5] = 0;
    if (str_len(buf) != 5) fails++;
    str_rev(buf);
    if (buf[0] != 'o') fails++;
    if (str_hash(buf) == 0) fails++;

    for (i = 0; i < 64; i++) work[i] = (i * 37 + 11) % 64;
    quicksort(work, 0, 63);
    for (i = 1; i < 64; i++)
        if (work[i - 1] > work[i]) fails++;
    for (i = 0; i < 64; i++) work[i] = 63 - i;
    insertion_sort(work, 64);
    if (work[0] != 0 || work[63] != 63) fails++;

    ht_clear();
    for (i = 0; i < 50; i++) ht_put(i * 7, i);
    for (i = 0; i < 50; i++)
        if (ht_get(i * 7) != i) fails++;
    if (ht_get(9999) != -1) fails++;

    for (i = 0; i < 16; i++) { mat_a[i] = i; mat_b[i] = (i == i / 4 * 5); }
    mat_mul();
    for (i = 0; i < 16; i++)
        if (mat_c[i] != mat_a[i]) fails++;

    if (newton_sqrt(49.0) - 7.0 > 0.0001) fails++;
    if (7.0 - newton_sqrt(49.0) > 0.0001) fails++;
    if (poly_eval(1.0, 4) != 10.0) fails++;

    return fails;
}
"""
    generated = "\n\n".join(generate_functions(scale, seed))
    return kernels + "\n" + generated + r"""

int main(void) {
    int fails;
    fails = kernels_selftest() + structs_selftest();
    putstr("fails=");
    putint(fails);
    putchar('\n');
    return fails;
}
"""


def corpus_sources(gcclike_scale: int = 220):
    """The four benchmark inputs as (name, source) pairs, in the paper's
    table order."""
    return [
        ("gcc", gcclike(gcclike_scale)),
        ("lcc", LCCLIKE),
        ("gzip", GZ),
        ("8q", EIGHTQ),
    ]
