"""Compiler driver: source text -> validated Module, plus a convenience
runner used everywhere in tests, examples and benchmarks."""

from __future__ import annotations

from typing import Iterable, Tuple

from ..bytecode.module import Module
from ..bytecode.validate import validate_module
from ..interp.interp1 import Interpreter1
from ..interp.runtime import run_program
from .codegen import generate
from .parser import parse

__all__ = ["compile_source", "compile_sources", "compile_and_run"]

# The runtime library's C declarations, implicitly prepended so corpus
# programs can just call these (they resolve to interpreter intrinsics).
RUNTIME_DECLS = """
int putchar(int c);
int getchar(void);
int puts(char *s);
int putstr(char *s);
int putint(int v);
int putuint(unsigned v);
int putfloat(double v);
void exit(int code);
void abort(void);
char *malloc(unsigned n);
void free(char *p);
char *memcpy(char *dst, char *src, unsigned n);
char *memset(char *p, int v, unsigned n);
unsigned strlen(char *s);
"""


def compile_source(source: str, *, with_runtime: bool = True) -> Module:
    """Compile one translation unit to a validated bytecode module."""
    text = (RUNTIME_DECLS + source) if with_runtime else source
    module = generate(parse(text))
    validate_module(module)
    return module


def compile_sources(sources: Iterable[str]) -> Module:
    """Compile several source files as one program (textual linkage, the
    mini-C equivalent of whole-program compilation)."""
    return compile_source("\n".join(sources))


def compile_and_run(source: str, *args: int,
                    input_data: bytes = b"") -> Tuple[int, bytes]:
    """Compile and execute on the uncompressed interpreter; returns
    (exit code, output bytes)."""
    module = compile_source(source)
    return run_program(module, Interpreter1(module), *args,
                       input_data=input_data)
