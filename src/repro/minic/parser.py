"""Recursive-descent parser for mini-C."""

from __future__ import annotations

from typing import List

from . import ast
from .lexer import Token, tokenize
from .types import (
    Array, CHAR, DOUBLE, FLOAT, INT, Pointer, SHORT, Struct, Type, UCHAR,
    UINT, USHORT, VOID,
)

__all__ = ["ParseError", "parse"]

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}

_TYPE_KEYWORDS = {"char", "short", "int", "unsigned", "float", "double",
                  "void", "struct"}


class ParseError(ValueError):
    """Raised on a syntax error, with the offending line number."""


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.structs: dict = {}  # tag -> Struct

    # -- token plumbing ------------------------------------------------------
    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, ahead: int = 1) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tok
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def error(self, message: str) -> ParseError:
        return ParseError(f"line {self.tok.line}: {message}")

    def expect(self, text: str) -> Token:
        if self.tok.text != text:
            raise self.error(f"expected {text!r}, found {self.tok.text!r}")
        return self.advance()

    def accept(self, text: str) -> bool:
        if self.tok.text == text:
            self.advance()
            return True
        return False

    # -- types ------------------------------------------------------------
    def at_type(self) -> bool:
        return self.tok.kind == "kw" and self.tok.text in _TYPE_KEYWORDS

    def parse_base_type(self) -> Type:
        tok = self.advance()
        if tok.text == "struct":
            return self.parse_struct_type()
        if tok.text == "unsigned":
            if self.tok.text == "char":
                self.advance()
                return UCHAR
            if self.tok.text == "short":
                self.advance()
                return USHORT
            if self.tok.text == "int":
                self.advance()
            return UINT
        if tok.text == "char":
            return CHAR
        if tok.text == "short":
            if self.tok.text == "int":
                self.advance()
            return SHORT
        if tok.text == "int":
            return INT
        if tok.text == "float":
            return FLOAT
        if tok.text == "double":
            return DOUBLE
        if tok.text == "void":
            return VOID
        raise self.error(f"expected a type, found {tok.text!r}")

    def parse_struct_type(self) -> Type:
        """After the 'struct' keyword: tag, optional member definition."""
        if self.tok.kind != "id":
            raise self.error("expected a struct tag")
        tag = self.advance().text
        if self.tok.text != "{":
            if tag not in self.structs:
                raise self.error(f"unknown struct {tag!r}")
            return self.structs[tag]
        if tag in self.structs and self.structs[tag].is_complete:
            raise self.error(f"struct {tag!r} defined twice")
        # Register the tag before parsing members, so pointers to the
        # struct inside its own definition resolve (linked structures).
        struct = self.structs.setdefault(tag, Struct(tag))
        self.expect("{")
        members = []
        while not self.accept("}"):
            if self.tok.kind == "eof":
                raise self.error("unterminated struct definition")
            base = self.parse_base_type()
            while True:
                ftype = base
                while self.accept("*"):
                    ftype = Pointer(ftype)
                if self.tok.kind != "id":
                    raise self.error("expected a member name")
                fname = self.advance().text
                if self.accept("["):
                    count = self.parse_const_int()
                    self.expect("]")
                    ftype = Array(ftype, count)
                if ftype == VOID:
                    raise self.error("struct member of type void")
                element = ftype
                while isinstance(element, Array):
                    element = element.element
                if isinstance(element, Struct) and not element.is_complete:
                    raise self.error(
                        f"member {fname!r} has incomplete type "
                        f"{element.name} (use a pointer)"
                    )
                if any(m[0] == fname for m in members):
                    raise self.error(f"duplicate member {fname!r}")
                members.append((fname, ftype))
                if not self.accept(","):
                    break
            self.expect(";")
        if not members:
            raise self.error("empty struct")
        struct.define(members)
        return struct

    def parse_type(self) -> Type:
        t = self.parse_base_type()
        while self.accept("*"):
            t = Pointer(t)
        return t

    # -- top level ----------------------------------------------------------
    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self.tok.kind != "eof":
            unit.items.extend(self.parse_toplevel())
        return unit

    def parse_toplevel(self) -> List[ast.Node]:
        line = self.tok.line
        base = self.parse_type()
        if isinstance(base, Struct) and self.accept(";"):
            return []  # pure type definition
        if self.tok.kind != "id":
            raise self.error("expected a name")
        name = self.advance().text
        if self.tok.text == "(":
            return [self.parse_function(base, name, line)]
        return self.parse_global_decls(base, name, line)

    def parse_function(self, ret: Type, name: str, line: int) -> ast.FuncDef:
        self.expect("(")
        params: List[ast.Param] = []
        if not self.accept(")"):
            if self.tok.text == "void" and self.peek().text == ")":
                self.advance()
                self.expect(")")
            else:
                while True:
                    pline = self.tok.line
                    ptype = self.parse_type()
                    pname = ""
                    if self.tok.kind == "id":
                        pname = self.advance().text
                    if self.accept("["):
                        self.expect("]")  # array params decay to pointers
                        ptype = Pointer(ptype)
                    params.append(ast.Param(pline, ptype, pname))
                    if not self.accept(","):
                        break
                self.expect(")")
        if self.accept(";"):
            return ast.FuncDef(line, ret, name, params, None)
        body = self.parse_block()
        return ast.FuncDef(line, ret, name, params, body)

    def parse_global_decls(self, base: Type, first_name: str,
                           line: int) -> List[ast.Node]:
        # ``base`` arrives with any leading stars already folded in for the
        # first declarator (parse_toplevel used parse_type); subsequent
        # comma declarators take their stars from the element type.
        decls: List[ast.Node] = []
        name = first_name
        declared_type: Type = base
        element = base
        while isinstance(element, Pointer):
            element = element.pointee
        while True:
            ctype = declared_type
            if self.accept("["):
                count = self.parse_const_int()
                self.expect("]")
                ctype = Array(ctype, count)
            init = None
            if self.accept("="):
                init = self.parse_global_init()
            decls.append(ast.GlobalDecl(line, ctype, name, init))
            if not self.accept(","):
                break
            declared_type = element
            while self.accept("*"):
                declared_type = Pointer(declared_type)
            if self.tok.kind != "id":
                raise self.error("expected a name")
            name = self.advance().text
        self.expect(";")
        return decls

    def parse_global_init(self):
        if self.tok.kind == "str":
            return self.advance().value
        if self.accept("{"):
            values = []
            if not self.accept("}"):
                while True:
                    values.append(self.parse_const_scalar())
                    if not self.accept(","):
                        break
                self.expect("}")
            return values
        return self.parse_const_scalar()

    def parse_const_scalar(self):
        negate = False
        if self.accept("-"):
            negate = True
        tok = self.advance()
        if tok.kind == "int" or tok.kind == "char":
            return -tok.value if negate else tok.value
        if tok.kind == "float":
            value = tok.value[0]
            return -value if negate else value
        raise self.error("expected a constant")

    def parse_const_int(self) -> int:
        tok = self.advance()
        if tok.kind != "int":
            raise self.error("expected an integer constant")
        return tok.value

    # -- statements ------------------------------------------------------------
    def parse_block(self) -> ast.Block:
        line = self.tok.line
        self.expect("{")
        body: List[ast.Stmt] = []
        while not self.accept("}"):
            if self.tok.kind == "eof":
                raise self.error("unterminated block")
            body.extend(self.parse_statement())
        return ast.Block(line, body)

    def parse_statement(self) -> List[ast.Stmt]:
        tok = self.tok
        if tok.text == "{":
            return [self.parse_block()]
        if self.at_type():
            return self.parse_local_decl()
        if tok.text == "if":
            return [self.parse_if()]
        if tok.text == "while":
            return [self.parse_while()]
        if tok.text == "do":
            return [self.parse_do()]
        if tok.text == "for":
            return [self.parse_for()]
        if tok.text == "switch":
            return [self.parse_switch()]
        if tok.text == "case" or tok.text == "default":
            raise self.error(f"{tok.text!r} outside a switch body")
        if tok.text == "return":
            line = self.advance().line
            value = None
            if self.tok.text != ";":
                value = self.parse_expr()
            self.expect(";")
            return [ast.Return(line, value)]
        if tok.text == "break":
            self.advance()
            self.expect(";")
            return [ast.Break(tok.line)]
        if tok.text == "continue":
            self.advance()
            self.expect(";")
            return [ast.Continue(tok.line)]
        if self.accept(";"):
            return [ast.ExprStmt(tok.line, None)]
        expr = self.parse_expr()
        self.expect(";")
        return [ast.ExprStmt(tok.line, expr)]

    def parse_local_decl(self) -> List[ast.Stmt]:
        line = self.tok.line
        base = self.parse_base_type()
        decls: List[ast.Stmt] = []
        while True:
            ctype = base
            while self.accept("*"):
                ctype = Pointer(ctype)
            if self.tok.kind != "id":
                raise self.error("expected a name")
            name = self.advance().text
            if self.accept("["):
                count = self.parse_const_int()
                self.expect("]")
                ctype = Array(ctype, count)
            init = None
            if self.accept("="):
                init = self.parse_assignment()
            decls.append(ast.LocalDecl(line, ctype, name, init))
            if not self.accept(","):
                break
        self.expect(";")
        return decls

    def parse_switch(self) -> ast.Switch:
        line = self.expect("switch").line
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        self.expect("{")
        body: List[ast.Stmt] = []
        while not self.accept("}"):
            if self.tok.kind == "eof":
                raise self.error("unterminated switch body")
            if self.tok.text == "case":
                cline = self.advance().line
                negate = self.accept("-")
                tok = self.advance()
                if tok.kind not in ("int", "char"):
                    raise self.error("expected an integer case value")
                value = -tok.value if negate else tok.value
                self.expect(":")
                body.append(ast.CaseLabel(cline, value))
            elif self.tok.text == "default":
                cline = self.advance().line
                self.expect(":")
                body.append(ast.CaseLabel(cline, None))
            else:
                body.extend(self.parse_statement())
        return ast.Switch(line, cond, body)

    def parse_if(self) -> ast.If:
        line = self.expect("if").line
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = _single(self.parse_statement())
        other = None
        if self.accept("else"):
            other = _single(self.parse_statement())
        return ast.If(line, cond, then, other)

    def parse_while(self) -> ast.While:
        line = self.expect("while").line
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        return ast.While(line, cond, _single(self.parse_statement()))

    def parse_do(self) -> ast.DoWhile:
        line = self.expect("do").line
        body = _single(self.parse_statement())
        self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        self.expect(";")
        return ast.DoWhile(line, body, cond)

    def parse_for(self) -> ast.For:
        line = self.expect("for").line
        self.expect("(")
        init = None if self.tok.text == ";" else self.parse_expr()
        self.expect(";")
        cond = None if self.tok.text == ";" else self.parse_expr()
        self.expect(";")
        step = None if self.tok.text == ")" else self.parse_expr()
        self.expect(")")
        return ast.For(line, init, cond, step,
                       _single(self.parse_statement()))

    # -- expressions -------------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self.accept(","):
            right = self.parse_assignment()
            expr = ast.Binary(expr.line, None, ",", expr, right)
        return expr

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_conditional()
        if self.tok.text in _ASSIGN_OPS:
            op = self.advance().text
            value = self.parse_assignment()
            return ast.Assign(left.line, None, op, left, value)
        return left

    def parse_conditional(self) -> ast.Expr:
        cond = self.parse_binary(0)
        if self.accept("?"):
            then = self.parse_expr()
            self.expect(":")
            other = self.parse_conditional()
            return ast.Cond(cond.line, None, cond, then, other)
        return cond

    _LEVELS = [
        ["||"], ["&&"], ["|"], ["^"], ["&"],
        ["==", "!="], ["<", ">", "<=", ">="],
        ["<<", ">>"], ["+", "-"], ["*", "/", "%"],
    ]

    def parse_binary(self, level: int) -> ast.Expr:
        if level == len(self._LEVELS):
            return self.parse_unary()
        ops = self._LEVELS[level]
        left = self.parse_binary(level + 1)
        while self.tok.text in ops and self.tok.kind == "punct":
            op = self.advance().text
            right = self.parse_binary(level + 1)
            left = ast.Binary(left.line, None, op, left, right)
        return left

    def parse_unary(self) -> ast.Expr:
        tok = self.tok
        if tok.text in ("-", "!", "~", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(tok.line, None, tok.text, operand)
        if tok.text == "+":
            self.advance()
            return self.parse_unary()
        if tok.text in ("++", "--"):
            self.advance()
            operand = self.parse_unary()
            return ast.IncDec(tok.line, None, tok.text, operand, False)
        if tok.text == "sizeof":
            self.advance()
            self.expect("(")
            t = self.parse_type()
            if self.accept("["):
                count = self.parse_const_int()
                self.expect("]")
                t = Array(t, count)
            self.expect(")")
            return ast.SizeOf(tok.line, None, t)
        if tok.text == "(" and self.peek().kind == "kw" and \
                self.peek().text in _TYPE_KEYWORDS:
            self.advance()
            t = self.parse_type()
            self.expect(")")
            operand = self.parse_unary()
            return ast.Cast(tok.line, None, t, operand)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.accept("("):
                args: List[ast.Expr] = []
                if not self.accept(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept(","):
                            break
                    self.expect(")")
                expr = ast.Call(expr.line, None, expr, args)
            elif self.accept("["):
                index = self.parse_expr()
                self.expect("]")
                expr = ast.Index(expr.line, None, expr, index)
            elif self.tok.text in (".", "->"):
                arrow = self.advance().text == "->"
                if self.tok.kind != "id":
                    raise self.error("expected a member name")
                name = self.advance().text
                expr = ast.Member(expr.line, None, expr, name, arrow)
            elif self.tok.text in ("++", "--"):
                op = self.advance().text
                expr = ast.IncDec(expr.line, None, op, expr, True)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.advance()
        if tok.kind == "int":
            return ast.IntLit(tok.line, None, tok.value,
                              tok.text.lower().endswith("u"))
        if tok.kind == "char":
            return ast.IntLit(tok.line, None, tok.value, False)
        if tok.kind == "float":
            value, single = tok.value
            return ast.FloatLit(tok.line, None, value, single)
        if tok.kind == "str":
            return ast.StrLit(tok.line, None, tok.value)
        if tok.kind == "id":
            return ast.Name(tok.line, None, tok.text)
        if tok.text == "(":
            expr = self.parse_expr()
            self.expect(")")
            return expr
        raise ParseError(
            f"line {tok.line}: unexpected token {tok.text or tok.kind!r}"
        )


def _single(stmts: List[ast.Stmt]) -> ast.Stmt:
    if len(stmts) == 1:
        return stmts[0]
    return ast.Block(stmts[0].line if stmts else 0, stmts)


def parse(source: str) -> ast.TranslationUnit:
    """Parse a translation unit from source text."""
    return _Parser(tokenize(source)).parse_unit()
