"""Semantic analysis for mini-C: name binding, type checking, implicit
conversions.

Sema rewrites the AST in place: every expression gets a ``ctype``, implicit
conversions become explicit :class:`~repro.minic.ast.Cast` nodes, names are
bound to :class:`Symbol` objects, and each function definition gets frame
layout information (formal offsets, local offsets, frame size) that the
code generator turns into ``ADDRFP``/``ADDRLP`` offsets directly.

Known deviations from full C, documented here and in DESIGN.md:

* ``unsigned -> double`` conversion goes through the signed path (the
  paper's ISA has no CVU-to-float operator); values >= 2**31 convert
  incorrectly, which the corpus avoids.
* no variadic functions (the runtime library uses fixed-arity primitives
  like ``putint``);
* structs pass and return by pointer only, and whole-struct assignment is
  rejected (the ISA's block operators ASGNB/ARGB are present but, as in
  the paper's benchmarks, never emitted);
* ``switch`` is supported and lowered to decision trees — the exact lcc
  option the paper's evaluation used ("because the current implementation
  of the bytecode cannot handle indirect jumps", Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from . import ast
from .types import (
    Array, CHAR, DOUBLE, FLOAT, FuncType, INT, Pointer, Struct,
    Type, UCHAR, UINT, VOID, align_of, is_arith, is_integer,
    is_scalar, promote, usual_arith,
)

__all__ = ["SemaError", "Symbol", "FunctionInfo", "analyze"]


class SemaError(ValueError):
    """A semantic error, with source line."""


@dataclass
class Symbol:
    """A declared name.

    kind: ``param`` | ``local`` | ``global`` | ``func`` | ``lib``.
    ``offset`` is the frame offset for params/locals; globals get their
    addresses at code generation time.
    """

    name: str
    ctype: Type
    kind: str
    offset: int = 0
    func: Optional["FunctionInfo"] = None


@dataclass
class FunctionInfo:
    """Layout and signature of one function."""

    name: str
    ctype: FuncType
    defined: bool = False
    params: List[Symbol] = field(default_factory=list)
    locals: List[Symbol] = field(default_factory=list)
    argsize: int = 0
    framesize: int = 0
    address_taken: bool = False

    def add_local(self, name: str, ctype: Type) -> Symbol:
        align = max(align_of(ctype), 4)
        self.framesize = _align(self.framesize, align)
        sym = Symbol(name, ctype, "local", self.framesize)
        self.framesize += max(ctype.size, 1)
        self.framesize = _align(self.framesize, 4)
        self.locals.append(sym)
        return sym


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


def _param_slot(ctype: Type) -> int:
    return 8 if ctype == DOUBLE else 4


def _err(node: ast.Node, message: str) -> SemaError:
    return SemaError(f"line {node.line}: {message}")


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.names: Dict[str, Symbol] = {}

    def declare(self, sym: Symbol, node: ast.Node) -> None:
        if sym.name in self.names:
            raise _err(node, f"{sym.name!r} redeclared")
        self.names[sym.name] = sym

    def lookup(self, name: str) -> Optional[Symbol]:
        scope = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class Analyzer:
    """Analyzes one translation unit."""

    def __init__(self) -> None:
        self.globals = _Scope()
        self.functions: Dict[str, FunctionInfo] = {}
        self.current: Optional[FunctionInfo] = None
        self.loop_depth = 0
        self.break_depth = 0  # loops + switches

    # -- entry ------------------------------------------------------------
    def run(self, unit: ast.TranslationUnit) -> Dict[str, FunctionInfo]:
        # Two passes: declare everything, then check bodies (allows
        # forward references between functions).
        for item in unit.items:
            if isinstance(item, ast.FuncDef):
                self._declare_function(item)
            elif isinstance(item, ast.GlobalDecl):
                self._declare_global(item)
        for item in unit.items:
            if isinstance(item, ast.FuncDef) and item.body is not None:
                self._check_function(item)
        return self.functions

    # -- declarations ------------------------------------------------------
    def _declare_function(self, node: ast.FuncDef) -> None:
        if isinstance(node.ret, Struct):
            raise _err(node, "functions cannot return structs by value "
                             "(mini-C restriction; return a pointer)")
        for p in node.params:
            if isinstance(p.ctype, Struct):
                raise _err(node, "struct parameters must be pointers "
                                 "(mini-C restriction)")
        ftype = FuncType(node.ret, [p.ctype for p in node.params])
        info = self.functions.get(node.name)
        if info is None:
            info = FunctionInfo(node.name, ftype)
            self.functions[node.name] = info
            self.globals.declare(
                Symbol(node.name, ftype, "func", func=info), node
            )
        elif info.ctype.name != ftype.name:
            raise _err(node, f"conflicting declarations of {node.name!r}")
        if node.body is not None:
            if info.defined:
                raise _err(node, f"{node.name!r} defined twice")
            info.defined = True

    def _declare_global(self, node: ast.GlobalDecl) -> None:
        if node.ctype == VOID:
            raise _err(node, f"variable {node.name!r} has type void")
        sym = Symbol(node.name, node.ctype, "global")
        self.globals.declare(sym, node)
        self._check_global_init(node)

    def _check_global_init(self, node: ast.GlobalDecl) -> None:
        init = node.init
        if init is None:
            return
        if isinstance(init, bytes):
            if not (isinstance(node.ctype, Array)
                    and node.ctype.element in (CHAR, UCHAR)):
                raise _err(node, "string initializer on a non-char array")
            if len(init) + 1 > node.ctype.size:
                raise _err(node, "string initializer too long")
        elif isinstance(init, list):
            if not isinstance(node.ctype, Array):
                raise _err(node, "brace initializer on a non-array")
            if len(init) > node.ctype.count:
                raise _err(node, "too many initializers")
        else:
            if isinstance(node.ctype, (Array,)):
                raise _err(node, "scalar initializer on an array")

    # -- functions ----------------------------------------------------------
    def _check_function(self, node: ast.FuncDef) -> None:
        info = self.functions[node.name]
        self.current = info
        scope = _Scope(self.globals)
        offset = 0
        info.params = []
        for p in node.params:
            ctype = p.ctype
            if isinstance(ctype, Array):
                ctype = Pointer(ctype.element)
            sym = Symbol(p.name or f"<anon{offset}>", ctype, "param", offset)
            offset += _param_slot(ctype)
            info.params.append(sym)
            if p.name:
                scope.declare(sym, p)
        info.argsize = offset
        self._check_block(node.body, _Scope(scope))
        self.current = None

    # -- statements ------------------------------------------------------------
    def _check_block(self, block: ast.Block, scope: _Scope) -> None:
        for stmt in block.body:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, _Scope(scope))
        elif isinstance(stmt, ast.LocalDecl):
            if stmt.ctype == VOID:
                raise _err(stmt, f"variable {stmt.name!r} has type void")
            sym = self.current.add_local(stmt.name, stmt.ctype)
            if stmt.init is not None:
                stmt.init = self._check_expr(stmt.init, scope)
                if isinstance(stmt.ctype, Array):
                    raise _err(stmt, "array locals cannot be initialized")
                stmt.init = self._convert(stmt.init, stmt.ctype, stmt)
            scope.declare(sym, stmt)
            stmt.symbol = sym
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                stmt.expr = self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            stmt.cond = self._check_cond(stmt.cond, scope)
            self._check_stmt(stmt.then, _Scope(scope))
            if stmt.other is not None:
                self._check_stmt(stmt.other, _Scope(scope))
        elif isinstance(stmt, ast.While):
            stmt.cond = self._check_cond(stmt.cond, scope)
            self._in_loop(stmt.body, scope)
        elif isinstance(stmt, ast.DoWhile):
            self._in_loop(stmt.body, scope)
            stmt.cond = self._check_cond(stmt.cond, scope)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                stmt.init = self._check_expr(stmt.init, scope)
            if stmt.cond is not None:
                stmt.cond = self._check_cond(stmt.cond, scope)
            if stmt.step is not None:
                stmt.step = self._check_expr(stmt.step, scope)
            self._in_loop(stmt.body, scope)
        elif isinstance(stmt, ast.Return):
            ret = self.current.ctype.ret
            if stmt.value is None:
                if ret != VOID:
                    raise _err(stmt, "return without a value")
            else:
                if ret == VOID:
                    raise _err(stmt, "return with a value in void function")
                stmt.value = self._check_expr(stmt.value, scope)
                stmt.value = self._convert(stmt.value, ret, stmt)
        elif isinstance(stmt, ast.Switch):
            self._check_switch(stmt, scope)
        elif isinstance(stmt, ast.CaseLabel):
            raise _err(stmt, "case/default label outside a switch body")
        elif isinstance(stmt, ast.Break):
            if self.break_depth == 0:
                raise _err(stmt, "break outside a loop or switch")
        elif isinstance(stmt, ast.Continue):
            if self.loop_depth == 0:
                raise _err(stmt, "continue outside a loop")
        else:  # pragma: no cover - parser produces no other nodes
            raise _err(stmt, f"unhandled statement {type(stmt).__name__}")

    def _in_loop(self, body: ast.Stmt, scope: _Scope) -> None:
        self.loop_depth += 1
        self.break_depth += 1
        try:
            self._check_stmt(body, _Scope(scope))
        finally:
            self.loop_depth -= 1
            self.break_depth -= 1

    def _check_switch(self, stmt: ast.Switch, scope: _Scope) -> None:
        stmt.cond = self._check_expr(stmt.cond, scope)
        if not is_integer(stmt.cond.ctype):
            raise _err(stmt, f"switch on non-integer {stmt.cond.ctype}")
        stmt.cond = self._convert(stmt.cond, promote(stmt.cond.ctype), stmt)
        seen = set()
        defaults = 0
        inner = _Scope(scope)
        self.break_depth += 1
        try:
            for item in stmt.body:
                if isinstance(item, ast.CaseLabel):
                    if item.value is None:
                        defaults += 1
                        if defaults > 1:
                            raise _err(item, "multiple default labels")
                    else:
                        if item.value in seen:
                            raise _err(
                                item, f"duplicate case {item.value}"
                            )
                        seen.add(item.value)
                else:
                    self._check_stmt(item, inner)
        finally:
            self.break_depth -= 1
        if not seen and not defaults:
            raise _err(stmt, "switch body has no case or default labels")

    def _check_cond(self, expr: ast.Expr, scope: _Scope) -> ast.Expr:
        expr = self._check_expr(expr, scope)
        if not is_scalar(expr.ctype):
            raise _err(expr, f"condition has non-scalar type {expr.ctype}")
        return expr

    # -- expressions -------------------------------------------------------------
    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> ast.Expr:
        method = getattr(self, "_expr_" + type(expr).__name__)
        return method(expr, scope)

    def _decay(self, expr: ast.Expr) -> ast.Expr:
        """Arrays and functions decay to pointers."""
        if isinstance(expr.ctype, Array):
            target = Pointer(expr.ctype.element)
            return ast.Cast(expr.line, target, target, expr)
        if isinstance(expr.ctype, FuncType):
            # Using a function as a value takes its address: it will need a
            # trampoline (paper Section 3).
            if isinstance(expr, ast.Name) and expr.symbol.kind == "func":
                expr.symbol.func.address_taken = True
            target = Pointer(expr.ctype)
            return ast.Cast(expr.line, target, target, expr)
        return expr

    def _convert(self, expr: ast.Expr, target: Type,
                 at: ast.Node) -> ast.Expr:
        expr = self._decay(expr)
        src = expr.ctype
        if src == target:
            return expr
        ok = (
            (is_arith(src) and is_arith(target))
            or (isinstance(src, Pointer) and isinstance(target, Pointer))
            or (isinstance(src, Pointer) and is_integer(target))
            or (is_integer(src) and isinstance(target, Pointer))
            or (isinstance(src, FuncType) and isinstance(target, Pointer))
        )
        if not ok:
            raise _err(at, f"cannot convert {src} to {target}")
        cast = ast.Cast(expr.line, target, target, expr)
        return cast

    def _expr_IntLit(self, expr: ast.IntLit, scope) -> ast.Expr:
        expr.ctype = UINT if expr.unsigned else INT
        return expr

    def _expr_FloatLit(self, expr: ast.FloatLit, scope) -> ast.Expr:
        expr.ctype = FLOAT if expr.single else DOUBLE
        return expr

    def _expr_StrLit(self, expr: ast.StrLit, scope) -> ast.Expr:
        expr.ctype = Pointer(CHAR)
        return expr

    def _expr_Name(self, expr: ast.Name, scope: _Scope) -> ast.Expr:
        sym = scope.lookup(expr.name)
        if sym is None:
            raise _err(expr, f"undeclared name {expr.name!r}")
        expr.symbol = sym
        expr.ctype = sym.ctype
        return expr

    def _expr_SizeOf(self, expr: ast.SizeOf, scope) -> ast.Expr:
        lit = ast.IntLit(expr.line, UINT, expr.target_type.size, True)
        return lit

    def _expr_Cast(self, expr: ast.Cast, scope) -> ast.Expr:
        expr.operand = self._decay(self._check_expr(expr.operand, scope))
        target = expr.target_type
        if target == VOID:
            expr.ctype = VOID
            return expr
        src = expr.operand.ctype
        if not (is_arith(src) or isinstance(src, (Pointer, FuncType))):
            raise _err(expr, f"cannot cast from {src}")
        if not (is_arith(target) or isinstance(target, Pointer)):
            raise _err(expr, f"cannot cast to {target}")
        expr.ctype = target
        return expr

    def _expr_Unary(self, expr: ast.Unary, scope) -> ast.Expr:
        if expr.op == "&":
            operand = self._check_expr(expr.operand, scope)
            if isinstance(operand, ast.Name) and operand.symbol.kind in (
                    "func", "lib"):
                operand.symbol.func.address_taken = True
                expr.operand = operand
                expr.ctype = Pointer(operand.ctype)
                return expr
            self._require_lvalue(operand)
            expr.operand = operand
            expr.ctype = Pointer(operand.ctype)
            return expr
        operand = self._decay(self._check_expr(expr.operand, scope))
        expr.operand = operand
        if expr.op == "*":
            if isinstance(operand.ctype, Pointer):
                expr.ctype = operand.ctype.pointee
            elif isinstance(operand.ctype, FuncType):
                expr.ctype = operand.ctype  # *f == f for functions
            else:
                raise _err(expr, f"cannot dereference {operand.ctype}")
            return expr
        if expr.op == "!":
            if not is_scalar(operand.ctype):
                raise _err(expr, f"! on non-scalar {operand.ctype}")
            expr.ctype = INT
            return expr
        if expr.op == "~":
            if not is_integer(operand.ctype):
                raise _err(expr, f"~ on non-integer {operand.ctype}")
            expr.operand = self._convert(operand, promote(operand.ctype),
                                         expr)
            expr.ctype = expr.operand.ctype
            return expr
        if expr.op == "-":
            if not is_arith(operand.ctype):
                raise _err(expr, f"- on non-arithmetic {operand.ctype}")
            expr.operand = self._convert(operand, promote(operand.ctype),
                                         expr)
            expr.ctype = expr.operand.ctype
            return expr
        raise _err(expr, f"unhandled unary {expr.op!r}")

    def _expr_Binary(self, expr: ast.Binary, scope) -> ast.Expr:
        left = self._decay(self._check_expr(expr.left, scope))
        right = self._decay(self._check_expr(expr.right, scope))
        return self._type_binary(expr, left, right)

    def _type_binary(self, expr: ast.Binary, left: ast.Expr,
                     right: ast.Expr) -> ast.Expr:
        op = expr.op
        if op == ",":
            expr.left, expr.right = left, right
            expr.ctype = right.ctype
            return expr
        if op in ("&&", "||"):
            for side in (left, right):
                if not is_scalar(side.ctype):
                    raise _err(expr, f"{op} on non-scalar {side.ctype}")
            expr.left, expr.right = left, right
            expr.ctype = INT
            return expr
        lt, rt = left.ctype, right.ctype
        if op in ("+", "-"):
            if isinstance(lt, Pointer) and is_integer(rt):
                expr.left = left
                expr.right = self._convert(right, UINT, expr)
                expr.ctype = lt
                return expr
            if op == "+" and is_integer(lt) and isinstance(rt, Pointer):
                expr.left = self._convert(left, UINT, expr)
                expr.right = right
                expr.ctype = rt
                return expr
            if op == "-" and isinstance(lt, Pointer) and \
                    isinstance(rt, Pointer):
                expr.left, expr.right = left, right
                expr.ctype = INT
                return expr
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if isinstance(lt, Pointer) or isinstance(rt, Pointer):
                expr.left = self._convert(left, UINT, expr)
                expr.right = self._convert(right, UINT, expr)
                expr.ctype = INT
                return expr
            common = usual_arith(lt, rt)
            expr.left = self._convert(left, common, expr)
            expr.right = self._convert(right, common, expr)
            expr.ctype = INT
            return expr
        if op in ("<<", ">>"):
            if not (is_integer(lt) and is_integer(rt)):
                raise _err(expr, f"{op} on non-integers")
            expr.left = self._convert(left, promote(lt), expr)
            expr.right = self._convert(right, INT, expr)
            expr.ctype = expr.left.ctype
            return expr
        if op in ("&", "|", "^", "%"):
            if not (is_integer(lt) and is_integer(rt)):
                raise _err(expr, f"{op} on non-integers")
            common = usual_arith(lt, rt)
            expr.left = self._convert(left, common, expr)
            expr.right = self._convert(right, common, expr)
            expr.ctype = common
            return expr
        if op in ("+", "-", "*", "/"):
            if not (is_arith(lt) and is_arith(rt)):
                raise _err(expr, f"{op} on {lt} and {rt}")
            common = usual_arith(lt, rt)
            expr.left = self._convert(left, common, expr)
            expr.right = self._convert(right, common, expr)
            expr.ctype = common
            return expr
        raise _err(expr, f"unhandled operator {op!r}")

    def _expr_Assign(self, expr: ast.Assign, scope) -> ast.Expr:
        target = self._check_expr(expr.target, scope)
        self._require_lvalue(target)
        if isinstance(target.ctype, Array):
            raise _err(expr, "cannot assign to an array")
        if isinstance(target.ctype, Struct):
            raise _err(expr, "whole-struct assignment is not in the "
                             "mini-C subset (copy members)")
        value = self._check_expr(expr.value, scope)
        if expr.op != "=":
            # Compound assignment re-reads the target; the code generator
            # hoists side-effecting subexpressions out of the target first,
            # so sharing the node between the read and the write is safe.
            binop = ast.Binary(expr.line, None, expr.op[:-1], target, value)
            value = self._type_binary(binop, self._decay(target),
                                      self._decay(value))
        expr.target = target
        expr.value = self._convert(value, target.ctype, expr)
        expr.ctype = target.ctype
        return expr

    def _expr_Cond(self, expr: ast.Cond, scope) -> ast.Expr:
        expr.cond = self._check_cond(expr.cond, scope)
        then = self._decay(self._check_expr(expr.then, scope))
        other = self._decay(self._check_expr(expr.other, scope))
        if is_arith(then.ctype) and is_arith(other.ctype):
            common = usual_arith(then.ctype, other.ctype)
        elif then.ctype == other.ctype:
            common = then.ctype
        elif isinstance(then.ctype, Pointer) and \
                isinstance(other.ctype, Pointer):
            common = then.ctype
        else:
            raise _err(expr, f"?: branches disagree: "
                             f"{then.ctype} vs {other.ctype}")
        expr.then = self._convert(then, common, expr)
        expr.other = self._convert(other, common, expr)
        expr.ctype = common
        return expr

    def _expr_Call(self, expr: ast.Call, scope) -> ast.Expr:
        func = self._check_expr(expr.func, scope)
        ftype = func.ctype
        if isinstance(ftype, Pointer) and isinstance(ftype.pointee,
                                                     FuncType):
            ftype = ftype.pointee
        if not isinstance(ftype, FuncType):
            raise _err(expr, f"called object has type {ftype}, not function")
        if len(expr.args) != len(ftype.params):
            raise _err(
                expr,
                f"call takes {len(ftype.params)} arguments, "
                f"got {len(expr.args)}"
            )
        expr.func = func
        new_args = []
        for arg, ptype in zip(expr.args, ftype.params):
            if isinstance(ptype, Array):
                ptype = Pointer(ptype.element)
            arg = self._check_expr(arg, scope)
            new_args.append(self._convert(arg, ptype, expr))
        expr.args = new_args
        expr.ctype = ftype.ret
        return expr

    def _expr_Index(self, expr: ast.Index, scope) -> ast.Expr:
        base = self._decay(self._check_expr(expr.base, scope))
        index = self._check_expr(expr.index, scope)
        if not isinstance(base.ctype, Pointer):
            raise _err(expr, f"indexing non-pointer {base.ctype}")
        if not is_integer(index.ctype):
            raise _err(expr, "array index is not an integer")
        expr.base = base
        expr.index = self._convert(index, UINT, expr)
        expr.ctype = base.ctype.pointee
        return expr

    def _expr_Member(self, expr: ast.Member, scope) -> ast.Expr:
        base = self._check_expr(expr.base, scope)
        if expr.arrow:
            base = self._decay(base)
            if not (isinstance(base.ctype, Pointer)
                    and isinstance(base.ctype.pointee, Struct)):
                raise _err(expr, f"-> on non-struct-pointer {base.ctype}")
            struct = base.ctype.pointee
        else:
            if not isinstance(base.ctype, Struct):
                raise _err(expr, f". on non-struct {base.ctype}")
            self._require_lvalue(base)
            struct = base.ctype
        found = struct.field(expr.name)
        if found is None:
            raise _err(expr, f"{struct} has no member {expr.name!r}")
        expr.base = base
        expr.field_type, expr.field_offset = found
        expr.ctype = expr.field_type
        return expr

    def _expr_IncDec(self, expr: ast.IncDec, scope) -> ast.Expr:
        operand = self._check_expr(expr.operand, scope)
        self._require_lvalue(operand)
        if not is_scalar(operand.ctype):
            raise _err(expr, f"{expr.op} on non-scalar {operand.ctype}")
        expr.operand = operand
        expr.ctype = operand.ctype
        return expr

    # -- helpers ---------------------------------------------------------------
    @staticmethod
    def _require_lvalue(expr: ast.Expr) -> None:
        if isinstance(expr, ast.Name):
            if expr.symbol.kind in ("func", "lib"):
                raise _err(expr, "a function is not an lvalue")
            return
        if isinstance(expr, (ast.Index, ast.Member)):
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return
        raise _err(expr, "expression is not an lvalue")


def analyze(unit: ast.TranslationUnit) -> Dict[str, FunctionInfo]:
    """Run sema over a parsed unit; returns the function table."""
    return Analyzer().run(unit)
