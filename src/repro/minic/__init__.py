"""Mini-C: the lcc-substitute front end (see DESIGN.md)."""

from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse
from .sema import FunctionInfo, SemaError, Symbol, analyze
from .codegen import CodegenError, generate
from .driver import compile_and_run, compile_source, compile_sources

__all__ = [
    "LexError", "Token", "tokenize",
    "ParseError", "parse",
    "FunctionInfo", "SemaError", "Symbol", "analyze",
    "CodegenError", "generate",
    "compile_and_run", "compile_source", "compile_sources",
]
