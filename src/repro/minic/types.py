"""The mini-C type system.

The front end substitutes for lcc (see DESIGN.md): a C subset rich enough
to write realistic training corpora — integers of three widths and two
signednesses, float/double, pointers, arrays, functions.  Type sizes match
the 32-bit model the bytecode assumes (pointers are 4-byte words).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "Type", "CHAR", "UCHAR", "SHORT", "USHORT", "INT", "UINT",
    "FLOAT", "DOUBLE", "VOID", "Pointer", "Array", "FuncType", "Struct",
    "is_integer", "is_arith", "is_scalar", "usual_arith", "promote",
    "align_of",
]


@dataclass(frozen=True, eq=False)
class Type:
    """A basic type.

    Equality and hashing go by (class, name): type names are canonical
    (``int``, ``double*``, ``struct node``), and — unlike the generated
    field-wise comparison — name hashing terminates for self-referential
    struct types.
    """

    name: str
    size: int
    signed: bool = True

    def __eq__(self, other) -> bool:
        return (isinstance(other, Type) and type(self) is type(other)
                and self.name == other.name)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name))

    def __str__(self) -> str:
        return self.name


CHAR = Type("char", 1, True)
UCHAR = Type("unsigned char", 1, False)
SHORT = Type("short", 2, True)
USHORT = Type("unsigned short", 2, False)
INT = Type("int", 4, True)
UINT = Type("unsigned", 4, False)
FLOAT = Type("float", 4)
DOUBLE = Type("double", 8)
VOID = Type("void", 0)


@dataclass(frozen=True, eq=False)
class Pointer(Type):
    """Pointer to ``pointee`` (4-byte word)."""

    pointee: Optional[object] = None

    def __init__(self, pointee) -> None:
        object.__setattr__(self, "name", f"{pointee}*")
        object.__setattr__(self, "size", 4)
        object.__setattr__(self, "signed", False)
        object.__setattr__(self, "pointee", pointee)


@dataclass(frozen=True, eq=False)
class Array(Type):
    """Array of ``count`` elements of ``element``."""

    element: Optional[object] = None
    count: int = 0

    def __init__(self, element, count: int) -> None:
        object.__setattr__(self, "name", f"{element}[{count}]")
        object.__setattr__(self, "size", element.size * count)
        object.__setattr__(self, "signed", False)
        object.__setattr__(self, "element", element)
        object.__setattr__(self, "count", count)


@dataclass(frozen=True, eq=False)
class FuncType(Type):
    """Function type: return type plus parameter types."""

    ret: Optional[object] = None
    params: Tuple = ()

    def __init__(self, ret, params) -> None:
        object.__setattr__(
            self, "name",
            f"{ret}({', '.join(str(p) for p in params)})"
        )
        object.__setattr__(self, "size", 4)  # function designators decay
        object.__setattr__(self, "signed", False)
        object.__setattr__(self, "ret", ret)
        object.__setattr__(self, "params", tuple(params))


@dataclass(frozen=True, eq=False)
class Struct(Type):
    """A struct type: named fields laid out with natural alignment.

    Created *incomplete* (no members) so self-referential structures
    (``struct node { struct node *next; }``) can register the tag before
    the member list is parsed; :meth:`define` lays out the fields.
    """

    tag: str = ""
    fields: Tuple = ()  # of (name, type, offset)

    def __init__(self, tag: str, members=None) -> None:
        object.__setattr__(self, "name", f"struct {tag}")
        object.__setattr__(self, "size", 1)
        object.__setattr__(self, "signed", False)
        object.__setattr__(self, "tag", tag)
        object.__setattr__(self, "fields", ())
        if members is not None:
            self.define(members)

    @property
    def is_complete(self) -> bool:
        return bool(self.fields)

    def define(self, members) -> None:
        """Lay out (name, type) members with C's natural alignment."""
        if self.is_complete:
            raise ValueError(f"{self.name} defined twice")
        offset = 0
        max_align = 1
        laid = []
        for fname, ftype in members:
            align = align_of(ftype)
            max_align = max(max_align, align)
            offset = (offset + align - 1) & ~(align - 1)
            laid.append((fname, ftype, offset))
            offset += max(ftype.size, 1)
        size = (offset + max_align - 1) & ~(max_align - 1) if laid else 0
        object.__setattr__(self, "size", max(size, 1))
        object.__setattr__(self, "fields", tuple(laid))

    def field(self, name: str):
        """(type, offset) of a member, or None."""
        for fname, ftype, offset in self.fields:
            if fname == name:
                return ftype, offset
        return None


def align_of(t: Type) -> int:
    """Natural alignment of a type."""
    if isinstance(t, Array):
        return align_of(t.element)
    if isinstance(t, Struct):
        return max((align_of(ft) for _, ft, _ in t.fields), default=1)
    if t == DOUBLE:
        return 8
    return max(min(t.size, 4), 1)


_INTEGERS = {CHAR, UCHAR, SHORT, USHORT, INT, UINT}
_FLOATS = {FLOAT, DOUBLE}


def is_integer(t: Type) -> bool:
    return t in _INTEGERS


def is_float(t: Type) -> bool:
    return t in _FLOATS


def is_arith(t: Type) -> bool:
    return is_integer(t) or t in _FLOATS


def is_scalar(t: Type) -> bool:
    return is_arith(t) or isinstance(t, Pointer)


def promote(t: Type) -> Type:
    """Integral promotion: sub-int integers promote to int."""
    if t in (CHAR, SHORT):
        return INT
    if t in (UCHAR, USHORT):
        return INT  # both fit in int, per C
    return t


def usual_arith(a: Type, b: Type) -> Type:
    """Usual arithmetic conversions for a binary operator."""
    if DOUBLE in (a, b):
        return DOUBLE
    if FLOAT in (a, b):
        return FLOAT
    a, b = promote(a), promote(b)
    if UINT in (a, b):
        return UINT
    return INT
