"""Lexer for mini-C."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["Token", "LexError", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "char", "short", "int", "unsigned", "float", "double", "void",
    "struct",
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "switch", "case", "default", "sizeof",
}

# Longest first so e.g. ">>=" wins over ">>" and ">".
_PUNCT = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":", ".",
]

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39,
            '"': 34, "a": 7, "b": 8, "f": 12, "v": 11}


class LexError(ValueError):
    """Raised on malformed source text."""


@dataclass(frozen=True)
class Token:
    """kind: 'id', 'kw', 'int', 'float', 'char', 'str', 'punct', 'eof'."""

    kind: str
    text: str
    value: object = None
    line: int = 0

    def __str__(self) -> str:
        return self.text or self.kind


def tokenize(source: str) -> List[Token]:
    """Tokenize a full translation unit; appends an 'eof' token."""
    tokens: List[Token] = []
    i = 0
    n = len(source)
    line = 1
    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\v\f":
            i += 1
            continue
        if source.startswith("//", i):
            j = source.find("\n", i)
            i = n if j < 0 else j
            continue
        if source.startswith("/*", i):
            j = source.find("*/", i + 2)
            if j < 0:
                raise LexError(f"line {line}: unterminated comment")
            line += source.count("\n", i, j)
            i = j + 2
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "id"
            tokens.append(Token(kind, text, None, line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                value = int(source[i:j], 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                if j < n and source[j] == ".":
                    is_float = True
                    j += 1
                    while j < n and source[j].isdigit():
                        j += 1
                if j < n and source[j] in "eE":
                    is_float = True
                    j += 1
                    if j < n and source[j] in "+-":
                        j += 1
                    while j < n and source[j].isdigit():
                        j += 1
                value = float(source[i:j]) if is_float else int(source[i:j])
            suffix_f = False
            if j < n and source[j] in "fF" and is_float:
                suffix_f = True
                j += 1
            if j < n and source[j] in "uUlL":
                j += 1
            text = source[i:j]
            if is_float:
                tokens.append(Token("float", text,
                                    (value, suffix_f), line))
            else:
                tokens.append(Token("int", text, value, line))
            i = j
            continue
        if c == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                if j + 1 >= n or source[j + 1] not in _ESCAPES:
                    raise LexError(f"line {line}: bad escape")
                value = _ESCAPES[source[j + 1]]
                j += 2
            elif j < n:
                value = ord(source[j])
                j += 1
            else:
                raise LexError(f"line {line}: unterminated char literal")
            if j >= n or source[j] != "'":
                raise LexError(f"line {line}: unterminated char literal")
            tokens.append(Token("char", source[i:j + 1], value, line))
            i = j + 1
            continue
        if c == '"':
            j = i + 1
            out = bytearray()
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    if j + 1 >= n or source[j + 1] not in _ESCAPES:
                        raise LexError(f"line {line}: bad escape")
                    out.append(_ESCAPES[source[j + 1]])
                    j += 2
                elif source[j] == "\n":
                    raise LexError(f"line {line}: newline in string")
                else:
                    out.append(ord(source[j]))
                    j += 1
            if j >= n:
                raise LexError(f"line {line}: unterminated string")
            tokens.append(Token("str", source[i:j + 1], bytes(out), line))
            i = j + 1
            continue
        for p in _PUNCT:
            if source.startswith(p, i):
                tokens.append(Token("punct", p, None, line))
                i += len(p)
                break
        else:
            raise LexError(f"line {line}: unexpected character {c!r}")
    tokens.append(Token("eof", "", None, line))
    return tokens
